// Offline calibration utility: finds G(n, m) seeds whose maximum k-plex
// sizes match the optima the paper reports for its synthetic datasets
// (Tables III and IV). The winning seeds are hardcoded in
// src/workload/datasets.cc; re-run this tool if the generator changes.

#include <cstdint>
#include <iostream>

#include "classical/exact.h"
#include "graph/generators.h"

namespace qplex {
namespace {

/// Finds the first seed in [1, limit] for which G(n, m) has the target
/// maximum k-plex size for every (k, size) requirement.
void Search(const char* name, int n, int m,
            const std::vector<std::pair<int, int>>& requirements,
            std::uint64_t limit = 5000) {
  for (std::uint64_t seed = 1; seed <= limit; ++seed) {
    const Graph graph = RandomGnm(n, m, seed).value();
    bool ok = true;
    for (const auto& [k, want] : requirements) {
      if (SolveMkpByEnumeration(graph, k).value().size != want) {
        ok = false;
        break;
      }
    }
    if (ok) {
      std::cout << name << ": seed " << seed << "\n";
      return;
    }
  }
  std::cout << name << ": NO SEED FOUND within limit\n";
}

}  // namespace
}  // namespace qplex

int main() {
  using qplex::Search;
  Search("G_{7,8}   (k=2 -> 4)", 7, 8, {{2, 4}});
  Search("G_{8,10}  (k=2 -> 4)", 8, 10, {{2, 4}});
  Search("G_{9,15}  (k=2 -> 5)", 9, 15, {{2, 5}});
  Search("G_{10,23} (k=2 -> 6)", 10, 23, {{2, 6}});
  Search("G_{10,37} (k=2..5 -> 6,6,6,7)", 10, 37,
         {{2, 6}, {3, 6}, {4, 6}, {5, 7}});
  return 0;
}
