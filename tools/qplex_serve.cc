// qplex batch solve service: reads JSONL job requests, executes them through
// the svc::JobScheduler over every registered backend, and streams JSONL
// responses (job_start / job_end events) through the obs event sink.
//
//   qplex_serve --jobs <file|-> [--workers N] [--queue-cap N]
//               [--events <file|->] [--cache on|off]
//               [--metrics-json <file|->] [--progress-interval-ms N]
//
// One JSON object per input line:
//
//   {"id": "j1", "k": 2, "backend": "bs", "seed": 7, "deadline_ms": 500,
//    "graph": {"n": 8, "edges": [[0,1],[1,2]]},      // inline instance, or
//    "input": "graph.col", "format": "dimacs",       // a graph file
//    "backends": ["bs", "sa"],                       // portfolio race
//    "options": {"shots": 50}}                       // backend knobs
//
// `backends` (when present) races the listed backends and overrides
// `backend`. Responses stream to --events (default "-", stdout) as job_end
// lines carrying status, size, members, cache/queue/wall accounting. With
// fixed seeds the solutions are identical for any --workers value; malformed
// request lines fail the batch (exit 2), solver-level job failures are
// reported per job and summarised in batch_end.

#include <charconv>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "qplex/qplex.h"

namespace qplex {
namespace {

struct ServeOptions {
  std::string jobs;  // job file; "-" = stdin
  int workers = 4;
  int queue_cap = 64;
  std::string events = "-";
  bool cache = true;
  std::string metrics_json;
  int progress_interval_ms = obs::EventSink::kDefaultProgressIntervalMs;
};

void PrintUsage() {
  std::cerr << "usage: qplex_serve --jobs <file|-> [--workers <int>] "
               "[--queue-cap <int>]\n"
               "                   [--events <file|->] [--cache on|off]\n"
               "                   [--metrics-json <file|->] "
               "[--progress-interval-ms <int>]\n";
}

template <typename T>
Result<T> ParseInt(const std::string& flag, const std::string& value) {
  T parsed{};
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc{} || ptr != end || value.empty()) {
    return Status::InvalidArgument("bad integer for " + flag + ": '" + value +
                                   "'");
  }
  return parsed;
}

Result<ServeOptions> ParseArgs(int argc, char** argv) {
  ServeOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--jobs") {
      QPLEX_ASSIGN_OR_RETURN(options.jobs, next());
    } else if (arg == "--workers") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.workers, ParseInt<int>(arg, value));
    } else if (arg == "--queue-cap") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.queue_cap, ParseInt<int>(arg, value));
    } else if (arg == "--events") {
      QPLEX_ASSIGN_OR_RETURN(options.events, next());
    } else if (arg == "--cache") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      if (value != "on" && value != "off") {
        return Status::InvalidArgument("--cache must be on or off");
      }
      options.cache = value == "on";
    } else if (arg == "--metrics-json") {
      QPLEX_ASSIGN_OR_RETURN(options.metrics_json, next());
    } else if (arg == "--progress-interval-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.progress_interval_ms,
                             ParseInt<int>(arg, value));
    } else if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.jobs.empty()) {
    return Status::InvalidArgument("--jobs is required");
  }
  if (options.workers < 1) {
    return Status::InvalidArgument("--workers must be >= 1");
  }
  if (options.queue_cap < 1) {
    return Status::InvalidArgument("--queue-cap must be >= 1");
  }
  if (options.progress_interval_ms < 1) {
    return Status::InvalidArgument("--progress-interval-ms must be >= 1");
  }
  return options;
}

/// One parsed request line: the scheduler request plus the racer list.
struct JobSpec {
  svc::SolveRequest request;
  std::vector<std::string> backends;  ///< empty = single request.backend
};

Result<Graph> ParseInlineGraph(const obs::JsonValue& spec, int line_number) {
  const obs::JsonValue* n = spec.Find("n");
  if (n == nullptr || !n->is_int()) {
    return Status::InvalidArgument("graph.n missing at line " +
                                   std::to_string(line_number));
  }
  std::vector<std::pair<Vertex, Vertex>> edges;
  if (const obs::JsonValue* list = spec.Find("edges"); list != nullptr) {
    if (!list->is_array()) {
      return Status::InvalidArgument("graph.edges must be an array at line " +
                                     std::to_string(line_number));
    }
    for (std::size_t i = 0; i < list->size(); ++i) {
      const obs::JsonValue& edge = list->at(i);
      if (!edge.is_array() || edge.size() != 2 || !edge.at(0).is_int() ||
          !edge.at(1).is_int()) {
        return Status::InvalidArgument(
            "graph.edges[" + std::to_string(i) +
            "] must be [u, v] at line " + std::to_string(line_number));
      }
      edges.emplace_back(static_cast<Vertex>(edge.at(0).AsInt()),
                         static_cast<Vertex>(edge.at(1).AsInt()));
    }
  }
  return MakeGraph(static_cast<int>(n->AsInt()), edges);
}

Result<Graph> LoadJobGraph(const obs::JsonValue& line, int line_number) {
  if (const obs::JsonValue* inline_graph = line.Find("graph");
      inline_graph != nullptr) {
    return ParseInlineGraph(*inline_graph, line_number);
  }
  const obs::JsonValue* input = line.Find("input");
  if (input == nullptr || !input->is_string()) {
    return Status::InvalidArgument(
        "request needs \"graph\" or \"input\" at line " +
        std::to_string(line_number));
  }
  std::string format = "dimacs";
  if (const obs::JsonValue* f = line.Find("format"); f != nullptr) {
    if (!f->is_string()) {
      return Status::InvalidArgument("format must be a string at line " +
                                     std::to_string(line_number));
    }
    format = f->AsString();
  }
  if (format == "dimacs") {
    return LoadDimacsFile(input->AsString());
  }
  if (format == "edgelist") {
    return LoadEdgeListFile(input->AsString());
  }
  return Status::InvalidArgument("unknown format '" + format + "' at line " +
                                 std::to_string(line_number));
}

Result<JobSpec> ParseJobLine(const std::string& text, int line_number) {
  QPLEX_ASSIGN_OR_RETURN(obs::JsonValue line, obs::JsonValue::Parse(text));
  if (!line.is_object()) {
    return Status::InvalidArgument("request must be a JSON object at line " +
                                   std::to_string(line_number));
  }
  JobSpec spec;
  QPLEX_ASSIGN_OR_RETURN(spec.request.graph, LoadJobGraph(line, line_number));
  spec.request.label = "line-" + std::to_string(line_number);
  if (const obs::JsonValue* id = line.Find("id"); id != nullptr) {
    spec.request.label =
        id->is_string() ? id->AsString() : std::to_string(id->AsInt());
  }
  if (const obs::JsonValue* k = line.Find("k"); k != nullptr) {
    spec.request.k = static_cast<int>(k->AsInt());
  }
  if (const obs::JsonValue* seed = line.Find("seed"); seed != nullptr) {
    spec.request.seed = static_cast<std::uint64_t>(seed->AsInt());
  }
  if (const obs::JsonValue* deadline = line.Find("deadline_ms");
      deadline != nullptr) {
    spec.request.deadline_seconds = deadline->AsDouble() / 1e3;
  }
  if (const obs::JsonValue* backend = line.Find("backend");
      backend != nullptr) {
    spec.request.backend = backend->AsString();
  }
  if (const obs::JsonValue* backends = line.Find("backends");
      backends != nullptr) {
    if (!backends->is_array() || backends->size() == 0) {
      return Status::InvalidArgument(
          "backends must be a non-empty array at line " +
          std::to_string(line_number));
    }
    for (std::size_t i = 0; i < backends->size(); ++i) {
      spec.backends.push_back(backends->at(i).AsString());
    }
  }
  if (const obs::JsonValue* options = line.Find("options");
      options != nullptr) {
    if (!options->is_object()) {
      return Status::InvalidArgument("options must be an object at line " +
                                     std::to_string(line_number));
    }
    for (const auto& [key, value] : options->members()) {
      if (value.is_string()) {
        spec.request.options[key] = value.AsString();
      } else if (value.is_int()) {
        spec.request.options[key] = std::to_string(value.AsInt());
      } else if (value.is_number()) {
        std::ostringstream formatted;
        formatted << value.AsDouble();
        spec.request.options[key] = formatted.str();
      } else {
        return Status::InvalidArgument("option '" + key +
                                       "' must be a string or number at line " +
                                       std::to_string(line_number));
      }
    }
  }
  return spec;
}

Result<std::vector<JobSpec>> ReadJobs(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      return Status::NotFound("cannot open jobs file: " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  std::vector<JobSpec> specs;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    QPLEX_ASSIGN_OR_RETURN(JobSpec spec, ParseJobLine(line, line_number));
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Executes the whole batch with submission-order Wait()s; backpressure
/// rejections retry after draining the oldest outstanding job.
Result<int> RunBatch(svc::JobScheduler* scheduler, std::vector<JobSpec> specs) {
  int failures = 0;
  std::deque<svc::JobId> outstanding;
  auto drain_one = [&] {
    const svc::SolveResponse response = scheduler->Wait(outstanding.front());
    outstanding.pop_front();
    if (!response.status.ok()) {
      ++failures;
    }
  };
  for (JobSpec& spec : specs) {
    while (true) {
      Result<svc::JobId> submitted =
          spec.backends.empty()
              ? scheduler->Submit(spec.request)
              : scheduler->SubmitPortfolio(spec.request, spec.backends);
      if (submitted.ok()) {
        outstanding.push_back(submitted.value());
        break;
      }
      if (submitted.status().code() != StatusCode::kResourceExhausted) {
        return submitted.status();
      }
      if (outstanding.empty()) {
        // Queue smaller than one job's racer count: a config error, not
        // transient backpressure.
        return submitted.status();
      }
      drain_one();
    }
  }
  while (!outstanding.empty()) {
    drain_one();
  }
  return failures;
}

int Main(int argc, char** argv) {
  const Result<ServeOptions> options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::cerr << options.status() << "\n";
    PrintUsage();
    return 2;
  }

  std::unique_ptr<obs::EventSink> events;
  if (!options.value().events.empty()) {
    Result<std::unique_ptr<obs::EventSink>> opened = obs::EventSink::Open(
        options.value().events, options.value().progress_interval_ms);
    if (!opened.ok()) {
      std::cerr << "failed to open event stream " << options.value().events
                << ": " << opened.status() << "\n";
      return 2;
    }
    events = std::move(opened).value();
    obs::EventSink::InstallGlobal(events.get());
  }
  struct SinkUninstaller {
    ~SinkUninstaller() { obs::EventSink::InstallGlobal(nullptr); }
  } uninstaller;

  const Result<std::vector<JobSpec>> specs = ReadJobs(options.value().jobs);
  if (!specs.ok()) {
    std::cerr << "failed to read jobs: " << specs.status() << "\n";
    return 2;
  }

  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Reset();

  svc::SolverRegistry registry = svc::MakeBuiltinRegistry();
  svc::JobSchedulerOptions scheduler_options;
  scheduler_options.num_workers = options.value().workers;
  scheduler_options.queue_capacity =
      static_cast<std::size_t>(options.value().queue_cap);
  scheduler_options.enable_cache = options.value().cache;

  obs::EmitEvent(obs::EventLevel::kInfo, "svc", "batch_start",
                 {{"jobs", static_cast<std::int64_t>(specs.value().size())},
                  {"workers", options.value().workers},
                  {"queue_cap", options.value().queue_cap},
                  {"cache", options.value().cache}});
  Stopwatch watch;
  Result<int> failures = 0;
  {
    svc::JobScheduler scheduler(&registry, scheduler_options);
    failures = RunBatch(&scheduler, std::move(specs).value());
  }
  const double wall_seconds = watch.ElapsedSeconds();
  if (!failures.ok()) {
    obs::EmitEvent(obs::EventLevel::kWarn, "svc", "batch_error",
                   {{"status", failures.status().ToString()},
                    {"wall_seconds", wall_seconds}});
    std::cerr << "batch failed: " << failures.status() << "\n";
    return 2;
  }

  auto& metrics = obs::MetricsRegistry::Global();
  const std::int64_t total =
      metrics.GetCounter("svc.jobs.completed").Get();
  obs::EmitEvent(
      obs::EventLevel::kInfo, "svc", "batch_end",
      {{"jobs", total},
       {"failed", failures.value()},
       {"cache_hits", metrics.GetCounter("svc.cache.hits").Get()},
       {"cache_misses", metrics.GetCounter("svc.cache.misses").Get()},
       {"wall_seconds", wall_seconds},
       {"jobs_per_second",
        wall_seconds > 0 ? static_cast<double>(total) / wall_seconds : 0.0}});

  if (!options.value().metrics_json.empty()) {
    obs::RunReport report("qplex_serve");
    report.SetMeta("jobs", total);
    report.SetMeta("failed", failures.value());
    report.SetMeta("workers", options.value().workers);
    report.SetMeta("cache", options.value().cache);
    report.SetMeta("wall_seconds", wall_seconds);
    report.Capture();
    const Status written = report.WriteJsonFile(options.value().metrics_json);
    if (!written.ok()) {
      std::cerr << "failed to write metrics report to "
                << options.value().metrics_json << ": " << written << "\n";
      return 2;
    }
  }
  return 0;
}

}  // namespace
}  // namespace qplex

int main(int argc, char** argv) { return qplex::Main(argc, argv); }
