// qplex solve service: executes JSONL job requests through the
// svc::JobScheduler over every registered backend, either as a one-shot
// batch (--jobs, file or stdin) or as a persistent loopback TCP server
// (--listen) multiplexing many concurrent clients onto the one scheduler.
//
//   qplex_serve --jobs <file|-> | --listen <port> [--workers N]
//               [--queue-cap N] [--events <file|->] [--cache on|off]
//               [--metrics-json <file|->] [--metrics-prom <file>]
//               [--metrics-prom-interval-ms N] [--slo-ms X]
//               [--progress-interval-ms N]
//               [--journal <file>] [--resume]
//               [--fault-spec site:rate[:seed]] [--max-sim-bytes N]
//               [--max-retries N]
//               [--max-connections N] [--idle-timeout-ms N]
//               [--max-line-bytes N] [--port-file <file>]
//               [--breaker-threshold N] [--breaker-cooldown N]
//               [--watchdog-stall-ms X] [--watchdog-poll-ms X]
//               [--shed-target-ms X]
//
// Requests are one JSON object per line in both modes, parsed by the single
// svc::ParseRequestLine entry point (see src/svc/request.h for the schema),
// so a malformed line is rejected with identical error text whether it
// arrived from a file or a socket. In batch mode a malformed line fails the
// batch (exit 2); in socket mode it earns a per-request error response and
// the connection lives on.
//
// Socket mode (--listen, port 0 = kernel-assigned, announced via the
// "listening" event and --port-file): a single-threaded poll() event loop
// (src/net/) accepts clients, frames their request lines, and submits each
// to the scheduler; responses are routed back to the originating connection
// as one JSON line per request, tagged with the client's request id.
// Scheduler backpressure composes outward: admission-queue rejections park
// requests in a bounded backlog, and past that the server sheds load with
// per-request ResourceExhausted responses. SIGTERM/SIGINT performs the
// graceful drain — stop accepting, finish in-flight jobs, flush every
// response, close. A client disconnecting mid-stream degrades to a
// per-connection error (SIGPIPE is ignored); its jobs still run and
// journal, only the responses are dropped.
//
// Health (DESIGN.md section 15): --breaker-threshold N arms per-backend
// circuit breakers (N consecutive counted failures open a backend;
// --breaker-cooldown consultations later a half-open probe decides recovery),
// --watchdog-stall-ms arms the wedged-job watchdog (an execution that stops
// heartbeating for the budget is cancelled and falls back), and
// --shed-target-ms arms adaptive admission control in socket mode (requests
// are shed with a retry_after_ms hint once the smoothed queue delay runs past
// the target). Socket clients can probe all of it in-band with
// {"type": "health", "id": "..."} — answered immediately with breaker
// states, queue depth, shed counts, and drain status; batch mode rejects
// health lines to protect its byte-identical journal contract.
//
// Crash safety: --journal appends one timestamp-free JSON line per finished
// job (the WAL), flushed line-by-line. Batch mode journals in submission
// order and supports --resume (skip journaled jobs; byte-identical final
// journal). Socket mode journals in *admission order* through a reorder
// buffer, so a recorded connection script replayed in lockstep
// (qplex_client --replay) produces a byte-identical journal to the run it
// recorded. --fault-spec arms the deterministic fault injector (DESIGN.md
// section 10).

#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <fcntl.h>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qplex/qplex.h"

namespace qplex {
namespace {

/// Set by the SIGINT/SIGTERM handler; polled by the batch loop, the socket
/// event loop, and the cancellation watcher. Async-signal-safe by
/// construction (one store).
volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

struct ServeOptions {
  std::string jobs;      // job file; "-" = stdin; empty in socket mode
  int listen_port = -1;  // >= 0 enables socket mode (0 = kernel-assigned)
  int workers = 4;
  int queue_cap = 64;
  std::string events = "-";
  bool cache = true;
  std::string metrics_json;
  std::string metrics_prom;         // OpenMetrics exposition path
  int metrics_prom_interval_ms = 0;  // >0 = periodic snapshots during batch
  double slo_ms = 0;                 // >0 = per-job latency objective
  int progress_interval_ms = obs::EventSink::kDefaultProgressIntervalMs;
  std::string journal;       // WAL path; empty = no journaling
  bool resume = false;       // skip jobs already journaled (batch mode only)
  std::string fault_spec;    // forwarded to the global FaultInjector
  std::uint64_t max_sim_bytes = 0;  // 0 = keep the default budget
  int max_retries = 2;
  // Socket-mode knobs.
  int max_connections = 64;
  int idle_timeout_ms = 0;  // 0 = connections never idle out
  std::uint64_t max_line_bytes = net::FrameSplitter::kDefaultMaxLineBytes;
  std::string port_file;  // written with the bound port once listening
  // Health-subsystem knobs (all off by default; DESIGN.md section 15).
  int breaker_threshold = 0;     // >0 arms per-backend circuit breakers
  int breaker_cooldown = 8;      // open -> half-open after N consults
  double watchdog_stall_ms = 0;  // >0 arms the wedged-job watchdog
  double watchdog_poll_ms = 5;   // watchdog scan cadence
  double shed_target_ms = 0;     // >0 arms adaptive admission (socket mode)
};

void PrintUsage() {
  std::cerr << "usage: qplex_serve --jobs <file|-> | --listen <port>\n"
               "                   [--workers <int>] [--queue-cap <int>]\n"
               "                   [--events <file|->] [--cache on|off]\n"
               "                   [--metrics-json <file|->] "
               "[--metrics-prom <file>]\n"
               "                   [--metrics-prom-interval-ms <int>] "
               "[--slo-ms <float>]\n"
               "                   [--progress-interval-ms <int>]\n"
               "                   [--journal <file>] [--resume]\n"
               "                   [--fault-spec site:rate[:seed]] "
               "[--max-sim-bytes <int>]\n"
               "                   [--max-retries <int>]\n"
               "                   [--max-connections <int>] "
               "[--idle-timeout-ms <int>]\n"
               "                   [--max-line-bytes <int>] "
               "[--port-file <file>]\n"
               "                   [--breaker-threshold <int>] "
               "[--breaker-cooldown <int>]\n"
               "                   [--watchdog-stall-ms <float>] "
               "[--watchdog-poll-ms <float>]\n"
               "                   [--shed-target-ms <float>]\n";
}

template <typename T>
Result<T> ParseInt(const std::string& flag, const std::string& value) {
  T parsed{};
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc{} || ptr != end || value.empty()) {
    return Status::InvalidArgument("bad integer for " + flag + ": '" + value +
                                   "'");
  }
  return parsed;
}

Result<double> ParseFloat(const std::string& flag, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) {
      return Status::InvalidArgument("bad number for " + flag + ": '" + value +
                                     "'");
    }
    return parsed;
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad number for " + flag + ": '" + value +
                                   "'");
  }
}

Result<ServeOptions> ParseArgs(int argc, char** argv) {
  ServeOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--jobs") {
      QPLEX_ASSIGN_OR_RETURN(options.jobs, next());
    } else if (arg == "--listen") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.listen_port, ParseInt<int>(arg, value));
      if (options.listen_port < 0 || options.listen_port > 65535) {
        return Status::InvalidArgument("--listen port must be in [0, 65535]");
      }
    } else if (arg == "--workers") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.workers, ParseInt<int>(arg, value));
    } else if (arg == "--queue-cap") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.queue_cap, ParseInt<int>(arg, value));
    } else if (arg == "--events") {
      QPLEX_ASSIGN_OR_RETURN(options.events, next());
    } else if (arg == "--cache") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      if (value != "on" && value != "off") {
        return Status::InvalidArgument("--cache must be on or off");
      }
      options.cache = value == "on";
    } else if (arg == "--metrics-json") {
      QPLEX_ASSIGN_OR_RETURN(options.metrics_json, next());
    } else if (arg == "--metrics-prom") {
      QPLEX_ASSIGN_OR_RETURN(options.metrics_prom, next());
    } else if (arg == "--metrics-prom-interval-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.metrics_prom_interval_ms,
                             ParseInt<int>(arg, value));
    } else if (arg == "--slo-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.slo_ms, ParseFloat(arg, value));
    } else if (arg == "--progress-interval-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.progress_interval_ms,
                             ParseInt<int>(arg, value));
    } else if (arg == "--journal") {
      QPLEX_ASSIGN_OR_RETURN(options.journal, next());
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--fault-spec") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      // Repeated flags accumulate into one comma-joined spec.
      if (!options.fault_spec.empty()) {
        options.fault_spec += ",";
      }
      options.fault_spec += value;
    } else if (arg == "--max-sim-bytes") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.max_sim_bytes,
                             ParseInt<std::uint64_t>(arg, value));
      if (options.max_sim_bytes == 0) {
        return Status::InvalidArgument("--max-sim-bytes must be >= 1");
      }
    } else if (arg == "--max-retries") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.max_retries, ParseInt<int>(arg, value));
    } else if (arg == "--max-connections") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.max_connections,
                             ParseInt<int>(arg, value));
    } else if (arg == "--idle-timeout-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.idle_timeout_ms,
                             ParseInt<int>(arg, value));
    } else if (arg == "--max-line-bytes") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.max_line_bytes,
                             ParseInt<std::uint64_t>(arg, value));
      if (options.max_line_bytes < 2) {
        return Status::InvalidArgument("--max-line-bytes must be >= 2");
      }
    } else if (arg == "--port-file") {
      QPLEX_ASSIGN_OR_RETURN(options.port_file, next());
    } else if (arg == "--breaker-threshold") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.breaker_threshold,
                             ParseInt<int>(arg, value));
    } else if (arg == "--breaker-cooldown") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.breaker_cooldown,
                             ParseInt<int>(arg, value));
    } else if (arg == "--watchdog-stall-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.watchdog_stall_ms, ParseFloat(arg, value));
    } else if (arg == "--watchdog-poll-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.watchdog_poll_ms, ParseFloat(arg, value));
    } else if (arg == "--shed-target-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.shed_target_ms, ParseFloat(arg, value));
    } else if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  const bool socket_mode = options.listen_port >= 0;
  if (options.jobs.empty() && !socket_mode) {
    return Status::InvalidArgument("--jobs or --listen is required");
  }
  if (!options.jobs.empty() && socket_mode) {
    return Status::InvalidArgument("--jobs and --listen are exclusive");
  }
  if (socket_mode && options.resume) {
    return Status::InvalidArgument(
        "--resume applies to batch mode only (socket-mode journals are "
        "reproduced by replaying the connection script)");
  }
  if (options.workers < 1) {
    return Status::InvalidArgument("--workers must be >= 1");
  }
  if (options.queue_cap < 1) {
    return Status::InvalidArgument("--queue-cap must be >= 1");
  }
  if (options.progress_interval_ms < 1) {
    return Status::InvalidArgument("--progress-interval-ms must be >= 1");
  }
  if (options.resume && options.journal.empty()) {
    return Status::InvalidArgument("--resume requires --journal");
  }
  if (options.max_retries < 0) {
    return Status::InvalidArgument("--max-retries must be >= 0");
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument("--max-connections must be >= 1");
  }
  if (options.idle_timeout_ms < 0) {
    return Status::InvalidArgument("--idle-timeout-ms must be >= 0");
  }
  if (options.metrics_prom_interval_ms < 0) {
    return Status::InvalidArgument("--metrics-prom-interval-ms must be >= 0");
  }
  if (options.metrics_prom_interval_ms > 0 && options.metrics_prom.empty()) {
    return Status::InvalidArgument(
        "--metrics-prom-interval-ms requires --metrics-prom");
  }
  if (options.slo_ms < 0) {
    return Status::InvalidArgument("--slo-ms must be >= 0");
  }
  if (options.breaker_threshold < 0) {
    return Status::InvalidArgument("--breaker-threshold must be >= 0");
  }
  if (options.breaker_cooldown < 1) {
    return Status::InvalidArgument("--breaker-cooldown must be >= 1");
  }
  if (options.watchdog_stall_ms < 0) {
    return Status::InvalidArgument("--watchdog-stall-ms must be >= 0");
  }
  if (options.watchdog_poll_ms <= 0) {
    return Status::InvalidArgument("--watchdog-poll-ms must be > 0");
  }
  if (options.shed_target_ms < 0) {
    return Status::InvalidArgument("--shed-target-ms must be >= 0");
  }
  if (options.shed_target_ms > 0 && !socket_mode) {
    return Status::InvalidArgument(
        "--shed-target-ms applies to socket mode only (batch mode has no "
        "admission queue to shed from)");
  }
  return options;
}

/// Slurps a whole file (or stdin for "-") through the EINTR-safe read
/// wrapper, so a signal during journal replay or job-file loading retries
/// instead of truncating the input.
Result<std::string> SlurpFile(const std::string& path) {
  int fd = 0;  // stdin
  if (path != "-") {
    do {
      fd = ::open(path.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      return Status::NotFound("cannot open file: " + path);
    }
  }
  std::string text;
  char buffer[64 * 1024];
  while (true) {
    const net::IoResult got = net::ReadFd(fd, buffer, sizeof(buffer));
    if (got.state == net::IoState::kClosed) {
      break;
    }
    if (got.state != net::IoState::kOk) {
      if (path != "-") {
        net::CloseFd(fd);
      }
      return Status::Internal("read failed on " + path);
    }
    text.append(buffer, got.bytes);
  }
  if (path != "-") {
    net::CloseFd(fd);
  }
  return text;
}

Result<std::vector<svc::RequestSpec>> ReadJobs(const std::string& path) {
  QPLEX_ASSIGN_OR_RETURN(const std::string text, SlurpFile(path));
  std::vector<svc::RequestSpec> specs;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    QPLEX_ASSIGN_OR_RETURN(svc::RequestSpec spec,
                           svc::ParseRequestLine(line, line_number));
    if (spec.kind == svc::RequestKind::kHealth) {
      // Health responses are load-dependent snapshots; letting them into a
      // batch would poison the journal's byte-identity (--resume) contract.
      return Status::InvalidArgument(
          "health requests are socket-mode only (line " +
          std::to_string(line_number) + ")");
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct JournalEntry {
  std::string label;
  std::string status;
  std::string line;  ///< the raw serialized form, without the newline
};

/// Reads the valid prefix of a WAL. A torn tail line (the process died
/// mid-write) is dropped; anything after the first malformed line is
/// discarded with it.
Result<std::vector<JournalEntry>> ReadJournal(const std::string& path) {
  std::vector<JournalEntry> entries;
  const Result<std::string> slurped = SlurpFile(path);
  if (!slurped.ok()) {
    return entries;  // no journal yet: a fresh run
  }
  std::istringstream in(slurped.value());
  std::string text;
  while (std::getline(in, text)) {
    Result<obs::JsonValue> parsed = obs::JsonValue::Parse(text);
    if (!parsed.ok() || !parsed.value().is_object()) {
      break;
    }
    const obs::JsonValue* label = parsed.value().Find("label");
    const obs::JsonValue* status = parsed.value().Find("status");
    if (label == nullptr || !label->is_string() || status == nullptr ||
        !status->is_string()) {
      break;
    }
    entries.push_back(
        JournalEntry{label->AsString(), status->AsString(), text});
  }
  return entries;
}

struct BatchOutcome {
  int failures = 0;   ///< non-OK jobs, journaled replays included
  int skipped = 0;    ///< jobs satisfied from the journal
  bool interrupted = false;
};

/// Executes the whole batch with submission-order Wait()s. Backpressure
/// rejections drain the oldest outstanding job, then back off with
/// decorrelated jitter (recorded in svc.admission.backoff_ms) instead of
/// hot-spinning. `journaled` jobs are skipped; on SIGINT/SIGTERM the loop
/// stops submitting, a watcher cancels everything in flight, and journaling
/// stops so the WAL stays a clean prefix of the uninterrupted run.
Result<BatchOutcome> RunBatch(svc::JobScheduler* scheduler,
                              std::vector<svc::RequestSpec> specs,
                              std::ostream* journal,
                              const std::vector<JournalEntry>& journaled) {
  BatchOutcome outcome;
  if (journaled.size() > specs.size()) {
    return Status::InvalidArgument(
        "journal has " + std::to_string(journaled.size()) +
        " entries but the batch only has " + std::to_string(specs.size()) +
        " jobs — wrong journal for this job file?");
  }
  for (std::size_t i = 0; i < journaled.size(); ++i) {
    if (journaled[i].label != specs[i].request.label) {
      return Status::InvalidArgument(
          "journal entry " + std::to_string(i + 1) + " is for job '" +
          journaled[i].label + "' but the job file has '" +
          specs[i].request.label + "' — wrong journal for this job file?");
    }
    if (journaled[i].status != "OK") {
      ++outcome.failures;
    }
    ++outcome.skipped;
    if (obs::EventsEnabled()) {
      obs::EmitEvent(obs::EventLevel::kInfo, "svc", "job_replayed",
                     {{"label", journaled[i].label},
                      {"status", journaled[i].status}});
    }
  }

  std::mutex mutex;
  std::deque<std::pair<svc::JobId, const svc::RequestSpec*>> outstanding;
  std::atomic<bool> done{false};
  // On a signal, cancel every in-flight job (repeatedly — cancellation is
  // idempotent and new jobs cannot be submitted once g_signal is set). This
  // runs in a thread because the batch loop itself blocks inside Wait().
  std::thread watcher([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (g_signal != 0) {
        std::lock_guard<std::mutex> lock(mutex);
        for (const auto& [id, spec] : outstanding) {
          scheduler->Cancel(id);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  struct WatcherJoiner {
    std::atomic<bool>& done;
    std::thread& watcher;
    ~WatcherJoiner() {
      done.store(true, std::memory_order_relaxed);
      watcher.join();
    }
  } joiner{done, watcher};

  auto drain_one = [&] {
    svc::JobId id;
    const svc::RequestSpec* spec;
    {
      std::lock_guard<std::mutex> lock(mutex);
      std::tie(id, spec) = outstanding.front();
    }
    const svc::SolveResponse response = scheduler->Wait(id);
    {
      std::lock_guard<std::mutex> lock(mutex);
      outstanding.pop_front();
    }
    if (!response.status.ok()) {
      ++outcome.failures;
    }
    // Once a signal landed, responses are from cancelled jobs — don't
    // journal them, so --resume recomputes them with full budgets.
    if (journal != nullptr && g_signal == 0) {
      *journal << svc::RenderResponseLine(spec->request.label, response)
               << "\n"
               << std::flush;
    }
  };

  resilience::BackoffOptions admission_backoff_options;
  admission_backoff_options.base_ms = 0.5;
  admission_backoff_options.cap_ms = 20;
  admission_backoff_options.seed = 0xad715510;
  resilience::Backoff admission_backoff(admission_backoff_options);

  for (std::size_t i = journaled.size(); i < specs.size(); ++i) {
    svc::RequestSpec& spec = specs[i];
    if (g_signal != 0) {
      outcome.interrupted = true;
      break;
    }
    while (true) {
      Result<svc::JobId> submitted =
          spec.backends.empty()
              ? scheduler->Submit(spec.request)
              : scheduler->SubmitPortfolio(spec.request, spec.backends);
      if (submitted.ok()) {
        std::lock_guard<std::mutex> lock(mutex);
        outstanding.emplace_back(submitted.value(), &spec);
        admission_backoff.Reset();
        break;
      }
      if (submitted.status().code() != StatusCode::kResourceExhausted) {
        return submitted.status();
      }
      bool empty;
      {
        std::lock_guard<std::mutex> lock(mutex);
        empty = outstanding.empty();
      }
      if (empty) {
        // Queue smaller than one job's racer count: a config error, not
        // transient backpressure.
        return submitted.status();
      }
      drain_one();
      if (g_signal != 0) {
        break;  // re-checked at the top of the outer loop
      }
      const double delay_ms = admission_backoff.NextDelayMs();
      obs::MetricsRegistry::Global()
          .GetHistogram("svc.admission.backoff_ms")
          .Record(delay_ms);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
  }
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (outstanding.empty()) {
        break;
      }
    }
    drain_one();
  }
  if (g_signal != 0) {
    outcome.interrupted = true;
  }
  if (journal != nullptr) {
    journal->flush();
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Socket mode: the poll event loop glued to the scheduler.

/// Renders the per-request error line used for malformed requests, unknown
/// backends, and shed load. Shares the "label"/"status" keys with the
/// success renderer so clients parse one schema.
std::string RenderErrorLine(const std::string& label, const Status& status) {
  obs::JsonValue line = obs::JsonValue::Object();
  line.Set("label", label);
  line.Set("status", std::string(StatusCodeName(status.code())));
  line.Set("error", status.message());
  return line.Dump();
}

/// Shed responses are error lines plus a retry_after_ms hint so a
/// well-behaved client backs off for a delay the server actually measured
/// instead of guessing.
std::string RenderShedLine(const std::string& label, const Status& status,
                           double retry_after_ms) {
  obs::JsonValue line = obs::JsonValue::Object();
  line.Set("label", label);
  line.Set("status", std::string(StatusCodeName(status.code())));
  line.Set("error", status.message());
  line.Set("retry_after_ms", retry_after_ms);
  return line.Dump();
}

/// Everything the socket front-end tracks about one admitted request.
struct Route {
  std::uint64_t conn = 0;      ///< originating connection
  std::string label;           ///< the client's request id
  std::uint64_t admission = 0; ///< journal reorder position
};

/// Socket-mode statistics for the final summary event.
struct SocketOutcome {
  std::int64_t requests = 0;
  std::int64_t responses = 0;
  std::int64_t failures = 0;
  std::int64_t malformed = 0;
  std::int64_t shed = 0;
  bool interrupted = false;
};

class SocketFrontEnd {
 public:
  SocketFrontEnd(const ServeOptions& options, svc::JobScheduler* scheduler,
                 std::ostream* journal)
      : options_(options),
        scheduler_(scheduler),
        journal_(journal),
        overload_(MakeOverloadOptions(options)) {}

  Result<SocketOutcome> Run() {
    net::ServerOptions server_options;
    server_options.port = options_.listen_port;
    server_options.max_connections = options_.max_connections;
    server_options.idle_timeout_ms = options_.idle_timeout_ms;
    server_options.max_line_bytes =
        static_cast<std::size_t>(options_.max_line_bytes);
    server_options.busy_response =
        RenderErrorLine("", Status::ResourceExhausted(
                                "server at max connections")) +
        "\n";
    net::ServerCallbacks callbacks;
    callbacks.on_line = [this](std::uint64_t conn, std::string line) {
      OnLine(conn, std::move(line));
    };
    callbacks.on_close = [this](std::uint64_t conn) { OnClose(conn); };
    callbacks.on_protocol_error = [this](std::uint64_t conn,
                                         const Status& violation) {
      ++outcome_.malformed;
      server_->Send(conn, RenderErrorLine("", violation) + "\n");
    };
    QPLEX_ASSIGN_OR_RETURN(
        server_, net::Server::Create(server_options, std::move(callbacks)));

    if (!options_.port_file.empty()) {
      std::ofstream port_out(options_.port_file, std::ios::trunc);
      port_out << server_->port() << "\n";
      if (!port_out) {
        return Status::Internal("cannot write port file: " +
                                options_.port_file);
      }
    }
    if (obs::EventsEnabled()) {
      obs::EmitEvent(obs::EventLevel::kInfo, "net", "listening",
                     {{"port", server_->port()},
                      {"max_connections", options_.max_connections},
                      {"idle_timeout_ms", options_.idle_timeout_ms}});
    }

    while (true) {
      if (g_signal != 0 && !draining_) {
        // Graceful drain: no new connections, no new reads beyond what is
        // already buffered; in-flight and backlogged jobs run to completion
        // and every response flushes before exit.
        draining_ = true;
        outcome_.interrupted = true;
        server_->StopAccepting();
        if (obs::EventsEnabled()) {
          obs::EmitEvent(obs::EventLevel::kInfo, "net", "draining",
                         {{"outstanding",
                           static_cast<std::int64_t>(outstanding_.size())},
                          {"backlog",
                           static_cast<std::int64_t>(backlog_.size())}});
        }
      }
      const bool busy = !outstanding_.empty() || !backlog_.empty();
      // 2 ms keeps completion-drain latency negligible against solve times
      // while jobs are in flight; an idle server parks in poll() for long
      // slices (interrupted early by signals or traffic either way).
      const int timeout_ms = busy ? 2 : (draining_ ? 10 : 200);
      QPLEX_RETURN_IF_ERROR(server_->Poll(timeout_ms));
      SubmitBacklog();
      DrainCompletions();
      server_->FlushWritable();
      if (draining_ && outstanding_.empty() && backlog_.empty()) {
        break;
      }
    }
    server_->DrainWrites(/*timeout_ms=*/2000);
    if (journal_ != nullptr) {
      journal_->flush();
    }
    return outcome_;
  }

 private:
  static resilience::OverloadOptions MakeOverloadOptions(
      const ServeOptions& options) {
    resilience::OverloadOptions overload;
    overload.target_delay_ms = options.shed_target_ms;
    return overload;
  }

  void OnLine(std::uint64_t conn, std::string line) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      return;  // same skip rule as batch mode
    }
    const int line_number = ++conn_lines_[conn];
    ++outcome_.requests;
    obs::MetricsRegistry::Global().GetCounter("net.requests.received")
        .Increment();
    Result<svc::RequestSpec> parsed = svc::ParseRequestLine(line, line_number);
    if (!parsed.ok()) {
      ++outcome_.malformed;
      obs::MetricsRegistry::Global().GetCounter("net.requests.malformed")
          .Increment();
      server_->Send(conn, RenderErrorLine("", parsed.status()) + "\n");
      return;
    }
    if (parsed.value().kind == svc::RequestKind::kHealth) {
      // Health probes bypass admission entirely — they are how a client
      // finds out *why* it is being shed, so shedding them would be
      // self-defeating. Answered in place, never journaled.
      server_->Send(conn,
                    RenderHealthLine(parsed.value().request.label) + "\n");
      ++outcome_.responses;
      return;
    }
    // Scheduler backpressure composes outward: a full admission queue parks
    // requests here; once the backlog itself is a queue-capacity deep — or
    // the smoothed queue delay has run past --shed-target-ms — further
    // requests are shed with an explicit ResourceExhausted carrying a
    // retry_after_ms hint instead of buffering without bound.
    const resilience::OverloadController::Decision admit = overload_.Admit(
        backlog_.size(), static_cast<std::size_t>(options_.queue_cap),
        scheduler_->OpenBreakerCount());
    if (!admit.admit) {
      ++outcome_.shed;
      obs::MetricsRegistry::Global().GetCounter("net.requests.shed")
          .Increment();
      const std::string reason = admit.reason;
      const std::string message = reason == "backlog_full"
                                      ? "admission queue and backlog full"
                                      : "queue delay over shed target; "
                                        "retry later";
      server_->Send(conn, RenderShedLine(parsed.value().request.label,
                                         Status::ResourceExhausted(message),
                                         admit.retry_after_ms) +
                              "\n");
      if (obs::EventsEnabled()) {
        obs::EmitEvent(obs::EventLevel::kWarn, "svc", "admission_shed",
                       {{"label", parsed.value().request.label},
                        {"reason", reason},
                        {"backlog",
                         static_cast<std::int64_t>(backlog_.size())}});
      }
      return;
    }
    backlog_.push_back(Backlogged{conn, std::move(parsed).value()});
    SubmitBacklog();
  }

  void OnClose(std::uint64_t conn) {
    conn_lines_.erase(conn);
    conn_outstanding_.erase(conn);  // the server forgot the pin with the fd
    // Jobs already admitted for this connection keep running (and keep their
    // journal slot — the WAL narrates admitted work, not deliveries); their
    // responses will be dropped by Send() and counted.
    if (obs::EventsEnabled()) {
      obs::EmitEvent(obs::EventLevel::kInfo, "net", "conn_close",
                     {{"conn", static_cast<std::int64_t>(conn)}});
    }
  }

  void SubmitBacklog() {
    while (!backlog_.empty()) {
      Backlogged& next = backlog_.front();
      Result<svc::JobId> submitted =
          next.spec.backends.empty()
              ? scheduler_->Submit(next.spec.request)
              : scheduler_->SubmitPortfolio(next.spec.request,
                                            next.spec.backends);
      if (!submitted.ok()) {
        if (submitted.status().code() == StatusCode::kResourceExhausted) {
          return;  // queue full: retry after the next completion drains
        }
        // Unknown backend and friends: a per-request error, not a server
        // fault — identical status text to the batch-mode failure.
        server_->Send(next.conn,
                      RenderErrorLine(next.spec.request.label,
                                      submitted.status()) +
                          "\n");
        ++outcome_.failures;
        backlog_.pop_front();
        continue;
      }
      Route route;
      route.conn = next.conn;
      route.label = next.spec.request.label;
      route.admission = next_admission_++;
      outstanding_.emplace(submitted.value(), route);
      // Pin the connection against the idle timeout while it has admitted
      // work in the scheduler: its inbound side may go silent for the whole
      // solve, and idling it out would drop the response it is owed.
      if (++conn_outstanding_[next.conn] == 1) {
        server_->SetIdleExempt(next.conn, true);
      }
      obs::MetricsRegistry::Global()
          .GetGauge("net.requests.outstanding_max")
          .SetMax(static_cast<double>(outstanding_.size()));
      backlog_.pop_front();
    }
  }

  void DrainCompletions() {
    if (outstanding_.empty()) {
      return;
    }
    std::vector<svc::JobId> ids;
    ids.reserve(outstanding_.size());
    for (const auto& [id, route] : outstanding_) {
      ids.push_back(id);
    }
    for (const svc::JobId id : ids) {
      svc::SolveResponse response;
      if (!scheduler_->TryWait(id, &response)) {
        continue;
      }
      const Route route = outstanding_.at(id);
      outstanding_.erase(id);
      if (auto pinned = conn_outstanding_.find(route.conn);
          pinned != conn_outstanding_.end() && --pinned->second == 0) {
        conn_outstanding_.erase(pinned);
        server_->SetIdleExempt(route.conn, false);
      }
      overload_.RecordQueueDelay(response.metrics.queue_seconds * 1e3);
      if (!response.status.ok()) {
        ++outcome_.failures;
      }
      ++outcome_.responses;
      const std::string line =
          svc::RenderResponseLine(route.label, response) + "\n";
      server_->Send(route.conn, line);
      if (journal_ != nullptr) {
        // Journal in admission order, not completion order: park the line
        // in the reorder buffer until every earlier admission has landed.
        journal_lines_.emplace(route.admission, line);
        while (!journal_lines_.empty() &&
               journal_lines_.begin()->first == journal_flushed_) {
          *journal_ << journal_lines_.begin()->second << std::flush;
          journal_lines_.erase(journal_lines_.begin());
          ++journal_flushed_;
        }
      }
    }
  }

  /// The in-band health response ({"type": "health"}): breaker states,
  /// queue/backlog depths, shed counters, and drain status, rendered from
  /// live state at answer time. Schema documented in DESIGN.md section 15.
  std::string RenderHealthLine(const std::string& label) const {
    obs::JsonValue line = obs::JsonValue::Object();
    line.Set("label", label);
    line.Set("status", std::string(StatusCodeName(StatusCode::kOk)));
    line.Set("type", "health");
    line.Set("draining", draining_);
    line.Set("backlog", static_cast<std::int64_t>(backlog_.size()));
    line.Set("outstanding", static_cast<std::int64_t>(outstanding_.size()));
    line.Set("queue_depth",
             static_cast<std::int64_t>(scheduler_->QueueDepth()));
    line.Set("requests", outcome_.requests);
    line.Set("responses", outcome_.responses);
    line.Set("shed", outcome_.shed);
    line.Set("delay_ewma_ms", overload_.delay_ewma_ms());
    line.Set("watchdog_kills", scheduler_->WatchdogKills());
    line.Set("breakers_enabled", scheduler_->breakers_enabled());
    line.Set("open_breakers", scheduler_->OpenBreakerCount());
    obs::JsonValue breakers = obs::JsonValue::Array();
    for (const resilience::BreakerSnapshot& snapshot :
         scheduler_->BreakerSnapshots()) {
      obs::JsonValue entry = obs::JsonValue::Object();
      entry.Set("backend", snapshot.backend);
      entry.Set("state",
                std::string(resilience::BreakerStateName(snapshot.state)));
      entry.Set("consecutive_failures", snapshot.consecutive_failures);
      entry.Set("cooldown_remaining", snapshot.cooldown_remaining);
      entry.Set("opened", snapshot.opened);
      entry.Set("closed", snapshot.closed);
      entry.Set("short_circuits", snapshot.short_circuits);
      entry.Set("probes", snapshot.probes);
      breakers.Append(std::move(entry));
    }
    line.Set("breakers", std::move(breakers));
    return line.Dump();
  }

  struct Backlogged {
    std::uint64_t conn = 0;
    svc::RequestSpec spec;
  };

  const ServeOptions& options_;
  svc::JobScheduler* scheduler_;
  std::ostream* journal_;
  std::unique_ptr<net::Server> server_;
  resilience::OverloadController overload_;
  std::deque<Backlogged> backlog_;
  std::map<svc::JobId, Route> outstanding_;
  std::unordered_map<std::uint64_t, int> conn_lines_;
  /// Admitted-but-unanswered job count per connection; non-zero pins the
  /// connection against the idle timeout (see net::Server::SetIdleExempt).
  std::unordered_map<std::uint64_t, int> conn_outstanding_;
  std::map<std::uint64_t, std::string> journal_lines_;
  std::uint64_t next_admission_ = 0;
  std::uint64_t journal_flushed_ = 0;
  bool draining_ = false;
  SocketOutcome outcome_;
};

/// Writes one OpenMetrics snapshot of the global registry, atomically
/// (tmp file + rename) so a scraper tailing the path never sees a torn
/// exposition.
Status WritePromSnapshot(const std::string& path) {
  const std::string text =
      obs::RenderOpenMetrics(obs::MetricsRegistry::Global().Snapshot());
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot open metrics file: " + tmp);
    }
    out << text;
    if (!out) {
      return Status::Internal("failed writing metrics file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("failed to move metrics file into place: " + path);
  }
  return Status::Ok();
}

/// Background periodic OpenMetrics snapshotter for long serve runs; writes
/// every interval while the batch executes, and the caller writes one final
/// snapshot after the scheduler drains.
class PromSnapshotter {
 public:
  PromSnapshotter(std::string path, int interval_ms)
      : path_(std::move(path)), interval_ms_(interval_ms) {
    if (interval_ms_ > 0) {
      thread_ = std::thread([this] { Loop(); });
    }
  }
  ~PromSnapshotter() {
    if (thread_.joinable()) {
      stop_.store(true, std::memory_order_relaxed);
      thread_.join();
    }
  }

 private:
  void Loop() {
    int slept_ms = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      // Sleep in small slices so shutdown is prompt even with big intervals.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      slept_ms += 5;
      if (slept_ms >= interval_ms_) {
        slept_ms = 0;
        (void)WritePromSnapshot(path_);  // transient IO failures retry next tick
      }
    }
  }

  std::string path_;
  int interval_ms_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

int Main(int argc, char** argv) {
  // Handlers go in before anything else so a signal during startup already
  // takes the graceful path. SIGPIPE is ignored process-wide: a client
  // disconnecting mid-write must surface as EPIPE on that connection's
  // write, never kill the server.
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  net::IgnoreSigpipe();

  const Result<ServeOptions> options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::cerr << options.status() << "\n";
    PrintUsage();
    return 2;
  }
  const bool socket_mode = options.value().listen_port >= 0;

  if (!options.value().fault_spec.empty()) {
    const Status armed =
        resilience::FaultInjector::Global().Configure(
            options.value().fault_spec);
    if (!armed.ok()) {
      std::cerr << armed << "\n";
      PrintUsage();
      return 2;
    }
  }
  if (options.value().max_sim_bytes > 0) {
    SetMaxSimulationBytes(options.value().max_sim_bytes);
  }

  std::unique_ptr<obs::EventSink> events;
  if (!options.value().events.empty()) {
    Result<std::unique_ptr<obs::EventSink>> opened = obs::EventSink::Open(
        options.value().events, options.value().progress_interval_ms);
    if (!opened.ok()) {
      std::cerr << "failed to open event stream " << options.value().events
                << ": " << opened.status() << "\n";
      return 2;
    }
    events = std::move(opened).value();
    obs::EventSink::InstallGlobal(events.get());
  }
  struct SinkUninstaller {
    ~SinkUninstaller() { obs::EventSink::InstallGlobal(nullptr); }
  } uninstaller;

  std::vector<svc::RequestSpec> specs;
  if (!socket_mode) {
    Result<std::vector<svc::RequestSpec>> read =
        ReadJobs(options.value().jobs);
    if (!read.ok()) {
      std::cerr << "failed to read jobs: " << read.status() << "\n";
      return 2;
    }
    specs = std::move(read).value();
  }

  // Journal setup. On --resume the valid prefix of the existing WAL is kept
  // (a torn tail line from a hard crash is truncated away) and the stream
  // reopens right after it; otherwise the journal starts fresh.
  std::vector<JournalEntry> journaled;
  std::unique_ptr<std::ofstream> journal;
  if (!options.value().journal.empty()) {
    if (options.value().resume) {
      Result<std::vector<JournalEntry>> read =
          ReadJournal(options.value().journal);
      if (!read.ok()) {
        std::cerr << "failed to read journal: " << read.status() << "\n";
        return 2;
      }
      journaled = std::move(read).value();
    }
    journal = std::make_unique<std::ofstream>(options.value().journal,
                                              std::ios::trunc);
    if (!*journal) {
      std::cerr << "cannot open journal: " << options.value().journal << "\n";
      return 2;
    }
    for (const JournalEntry& entry : journaled) {
      *journal << entry.line << "\n";
    }
    journal->flush();
  }

  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Reset();

  svc::SolverRegistry registry = svc::MakeBuiltinRegistry();
  svc::JobSchedulerOptions scheduler_options;
  scheduler_options.num_workers = options.value().workers;
  scheduler_options.queue_capacity =
      static_cast<std::size_t>(options.value().queue_cap);
  scheduler_options.enable_cache = options.value().cache;
  scheduler_options.retry.max_retries = options.value().max_retries;
  scheduler_options.slo_latency_ms = options.value().slo_ms;
  scheduler_options.enable_breakers = options.value().breaker_threshold > 0;
  scheduler_options.breaker.failure_threshold =
      options.value().breaker_threshold;
  scheduler_options.breaker.cooldown_consults =
      options.value().breaker_cooldown;
  scheduler_options.watchdog_stall_ms = options.value().watchdog_stall_ms;
  scheduler_options.watchdog_poll_ms = options.value().watchdog_poll_ms;

  if (obs::EventsEnabled()) {
    obs::EmitEvent(obs::EventLevel::kInfo, "svc", "batch_start",
                   {{"jobs", static_cast<std::int64_t>(specs.size())},
                    {"listen", socket_mode},
                    {"workers", options.value().workers},
                    {"queue_cap", options.value().queue_cap},
                    {"cache", options.value().cache},
                    {"resumed", static_cast<std::int64_t>(journaled.size())}});
  }
  Stopwatch watch;
  Result<BatchOutcome> outcome = BatchOutcome{};
  SocketOutcome socket_outcome;
  {
    PromSnapshotter snapshotter(options.value().metrics_prom,
                                options.value().metrics_prom_interval_ms);
    svc::JobScheduler scheduler(&registry, scheduler_options);
    if (socket_mode) {
      SocketFrontEnd front_end(options.value(), &scheduler, journal.get());
      Result<SocketOutcome> ran = front_end.Run();
      if (!ran.ok()) {
        outcome = ran.status();
      } else {
        socket_outcome = std::move(ran).value();
        BatchOutcome as_batch;
        as_batch.failures = static_cast<int>(socket_outcome.failures);
        as_batch.interrupted = socket_outcome.interrupted;
        outcome = as_batch;
      }
    } else {
      outcome = RunBatch(&scheduler, std::move(specs), journal.get(),
                         journaled);
    }
  }
  const double wall_seconds = watch.ElapsedSeconds();
  if (!outcome.ok()) {
    if (obs::EventsEnabled()) {
      obs::EmitEvent(obs::EventLevel::kWarn, "svc", "batch_error",
                     {{"status", outcome.status().ToString()},
                      {"wall_seconds", wall_seconds}});
    }
    std::cerr << "batch failed: " << outcome.status() << "\n";
    return 2;
  }

  auto& metrics = obs::MetricsRegistry::Global();
  const std::int64_t total =
      metrics.GetCounter("svc.jobs.completed").Get() +
      static_cast<std::int64_t>(outcome.value().skipped);
  if (obs::EventsEnabled()) {
    obs::EmitEvent(
        obs::EventLevel::kInfo, "svc", "batch_end",
        {{"jobs", total},
         {"failed", outcome.value().failures},
         {"skipped", outcome.value().skipped},
         {"interrupted", outcome.value().interrupted},
         {"requests", socket_outcome.requests},
         {"responses", socket_outcome.responses},
         {"malformed", socket_outcome.malformed},
         {"shed", socket_outcome.shed},
         {"retries", metrics.GetCounter("svc.retries.scheduled").Get()},
         {"fallbacks", metrics.GetCounter("svc.fallbacks.taken").Get()},
         {"cache_hits", metrics.GetCounter("svc.cache.hits").Get()},
         {"cache_misses", metrics.GetCounter("svc.cache.misses").Get()},
         {"wall_seconds", wall_seconds},
         {"jobs_per_second",
          wall_seconds > 0 ? static_cast<double>(total) / wall_seconds
                           : 0.0}});
  }

  if (!options.value().metrics_prom.empty()) {
    const Status written = WritePromSnapshot(options.value().metrics_prom);
    if (!written.ok()) {
      std::cerr << "failed to write OpenMetrics exposition to "
                << options.value().metrics_prom << ": " << written << "\n";
      return 2;
    }
  }

  if (!options.value().metrics_json.empty()) {
    obs::RunReport report("qplex_serve");
    report.SetMeta("jobs", total);
    report.SetMeta("failed", outcome.value().failures);
    report.SetMeta("skipped", outcome.value().skipped);
    report.SetMeta("interrupted", outcome.value().interrupted);
    report.SetMeta("workers", options.value().workers);
    report.SetMeta("cache", options.value().cache);
    report.SetMeta("wall_seconds", wall_seconds);
    report.Capture();
    const Status written = report.WriteJsonFile(options.value().metrics_json);
    if (!written.ok()) {
      std::cerr << "failed to write metrics report to "
                << options.value().metrics_json << ": " << written << "\n";
      return 2;
    }
  }
  return 0;
}

}  // namespace
}  // namespace qplex

int main(int argc, char** argv) { return qplex::Main(argc, argv); }
