// qplex batch solve service: reads JSONL job requests, executes them through
// the svc::JobScheduler over every registered backend, and streams JSONL
// responses (job_start / job_end events) through the obs event sink.
//
//   qplex_serve --jobs <file|-> [--workers N] [--queue-cap N]
//               [--events <file|->] [--cache on|off]
//               [--metrics-json <file|->] [--metrics-prom <file>]
//               [--metrics-prom-interval-ms N] [--slo-ms X]
//               [--progress-interval-ms N]
//               [--journal <file>] [--resume]
//               [--fault-spec site:rate[:seed]] [--max-sim-bytes N]
//               [--max-retries N]
//
// One JSON object per input line:
//
//   {"id": "j1", "k": 2, "backend": "bs", "seed": 7, "deadline_ms": 500,
//    "graph": {"n": 8, "edges": [[0,1],[1,2]]},      // inline instance, or
//    "input": "graph.col", "format": "dimacs",       // a graph file
//    "backends": ["bs", "sa"],                       // portfolio race
//    "options": {"shots": 50}}                       // backend knobs
//
// `backends` (when present) races the listed backends and overrides
// `backend`. Responses stream to --events (default "-", stdout) as job_end
// lines carrying status, size, members, cache/queue/wall accounting. With
// fixed seeds the solutions are identical for any --workers value; malformed
// request lines fail the batch (exit 2), solver-level job failures are
// reported per job and summarised in batch_end.
//
// Crash safety: --journal appends one timestamp-free JSON line per finished
// job (the WAL), flushed line-by-line, and SIGINT/SIGTERM gracefully stop
// the batch — in-flight jobs are cancelled, the journal is flushed, and
// batch_end carries interrupted:true. Restarting with --resume validates the
// journal prefix against the job file, skips the journaled jobs, and appends
// the rest, so the final journal is byte-identical to an uninterrupted run.
// --fault-spec arms the deterministic fault injector (DESIGN.md section 10).

#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "qplex/qplex.h"

namespace qplex {
namespace {

/// Set by the SIGINT/SIGTERM handler; polled by the batch loop and the
/// cancellation watcher. Async-signal-safe by construction (one store).
volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

struct ServeOptions {
  std::string jobs;  // job file; "-" = stdin
  int workers = 4;
  int queue_cap = 64;
  std::string events = "-";
  bool cache = true;
  std::string metrics_json;
  std::string metrics_prom;         // OpenMetrics exposition path
  int metrics_prom_interval_ms = 0;  // >0 = periodic snapshots during batch
  double slo_ms = 0;                 // >0 = per-job latency objective
  int progress_interval_ms = obs::EventSink::kDefaultProgressIntervalMs;
  std::string journal;       // WAL path; empty = no journaling
  bool resume = false;       // skip jobs already journaled
  std::string fault_spec;    // forwarded to the global FaultInjector
  std::uint64_t max_sim_bytes = 0;  // 0 = keep the default budget
  int max_retries = 2;
};

void PrintUsage() {
  std::cerr << "usage: qplex_serve --jobs <file|-> [--workers <int>] "
               "[--queue-cap <int>]\n"
               "                   [--events <file|->] [--cache on|off]\n"
               "                   [--metrics-json <file|->] "
               "[--metrics-prom <file>]\n"
               "                   [--metrics-prom-interval-ms <int>] "
               "[--slo-ms <float>]\n"
               "                   [--progress-interval-ms <int>]\n"
               "                   [--journal <file>] [--resume]\n"
               "                   [--fault-spec site:rate[:seed]] "
               "[--max-sim-bytes <int>]\n"
               "                   [--max-retries <int>]\n";
}

template <typename T>
Result<T> ParseInt(const std::string& flag, const std::string& value) {
  T parsed{};
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc{} || ptr != end || value.empty()) {
    return Status::InvalidArgument("bad integer for " + flag + ": '" + value +
                                   "'");
  }
  return parsed;
}

Result<double> ParseFloat(const std::string& flag, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) {
      return Status::InvalidArgument("bad number for " + flag + ": '" + value +
                                     "'");
    }
    return parsed;
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad number for " + flag + ": '" + value +
                                   "'");
  }
}

Result<ServeOptions> ParseArgs(int argc, char** argv) {
  ServeOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--jobs") {
      QPLEX_ASSIGN_OR_RETURN(options.jobs, next());
    } else if (arg == "--workers") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.workers, ParseInt<int>(arg, value));
    } else if (arg == "--queue-cap") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.queue_cap, ParseInt<int>(arg, value));
    } else if (arg == "--events") {
      QPLEX_ASSIGN_OR_RETURN(options.events, next());
    } else if (arg == "--cache") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      if (value != "on" && value != "off") {
        return Status::InvalidArgument("--cache must be on or off");
      }
      options.cache = value == "on";
    } else if (arg == "--metrics-json") {
      QPLEX_ASSIGN_OR_RETURN(options.metrics_json, next());
    } else if (arg == "--metrics-prom") {
      QPLEX_ASSIGN_OR_RETURN(options.metrics_prom, next());
    } else if (arg == "--metrics-prom-interval-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.metrics_prom_interval_ms,
                             ParseInt<int>(arg, value));
    } else if (arg == "--slo-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.slo_ms, ParseFloat(arg, value));
    } else if (arg == "--progress-interval-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.progress_interval_ms,
                             ParseInt<int>(arg, value));
    } else if (arg == "--journal") {
      QPLEX_ASSIGN_OR_RETURN(options.journal, next());
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--fault-spec") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      // Repeated flags accumulate into one comma-joined spec.
      if (!options.fault_spec.empty()) {
        options.fault_spec += ",";
      }
      options.fault_spec += value;
    } else if (arg == "--max-sim-bytes") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.max_sim_bytes,
                             ParseInt<std::uint64_t>(arg, value));
      if (options.max_sim_bytes == 0) {
        return Status::InvalidArgument("--max-sim-bytes must be >= 1");
      }
    } else if (arg == "--max-retries") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.max_retries, ParseInt<int>(arg, value));
    } else if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.jobs.empty()) {
    return Status::InvalidArgument("--jobs is required");
  }
  if (options.workers < 1) {
    return Status::InvalidArgument("--workers must be >= 1");
  }
  if (options.queue_cap < 1) {
    return Status::InvalidArgument("--queue-cap must be >= 1");
  }
  if (options.progress_interval_ms < 1) {
    return Status::InvalidArgument("--progress-interval-ms must be >= 1");
  }
  if (options.resume && options.journal.empty()) {
    return Status::InvalidArgument("--resume requires --journal");
  }
  if (options.max_retries < 0) {
    return Status::InvalidArgument("--max-retries must be >= 0");
  }
  if (options.metrics_prom_interval_ms < 0) {
    return Status::InvalidArgument("--metrics-prom-interval-ms must be >= 0");
  }
  if (options.metrics_prom_interval_ms > 0 && options.metrics_prom.empty()) {
    return Status::InvalidArgument(
        "--metrics-prom-interval-ms requires --metrics-prom");
  }
  if (options.slo_ms < 0) {
    return Status::InvalidArgument("--slo-ms must be >= 0");
  }
  return options;
}

/// One parsed request line: the scheduler request plus the racer list.
struct JobSpec {
  svc::SolveRequest request;
  std::vector<std::string> backends;  ///< empty = single request.backend
};

Result<Graph> ParseInlineGraph(const obs::JsonValue& spec, int line_number) {
  const obs::JsonValue* n = spec.Find("n");
  if (n == nullptr || !n->is_int()) {
    return Status::InvalidArgument("graph.n missing at line " +
                                   std::to_string(line_number));
  }
  std::vector<std::pair<Vertex, Vertex>> edges;
  if (const obs::JsonValue* list = spec.Find("edges"); list != nullptr) {
    if (!list->is_array()) {
      return Status::InvalidArgument("graph.edges must be an array at line " +
                                     std::to_string(line_number));
    }
    for (std::size_t i = 0; i < list->size(); ++i) {
      const obs::JsonValue& edge = list->at(i);
      if (!edge.is_array() || edge.size() != 2 || !edge.at(0).is_int() ||
          !edge.at(1).is_int()) {
        return Status::InvalidArgument(
            "graph.edges[" + std::to_string(i) +
            "] must be [u, v] at line " + std::to_string(line_number));
      }
      edges.emplace_back(static_cast<Vertex>(edge.at(0).AsInt()),
                         static_cast<Vertex>(edge.at(1).AsInt()));
    }
  }
  return MakeGraph(static_cast<int>(n->AsInt()), edges);
}

Result<Graph> LoadJobGraph(const obs::JsonValue& line, int line_number) {
  if (const obs::JsonValue* inline_graph = line.Find("graph");
      inline_graph != nullptr) {
    return ParseInlineGraph(*inline_graph, line_number);
  }
  const obs::JsonValue* input = line.Find("input");
  if (input == nullptr || !input->is_string()) {
    return Status::InvalidArgument(
        "request needs \"graph\" or \"input\" at line " +
        std::to_string(line_number));
  }
  std::string format = "dimacs";
  if (const obs::JsonValue* f = line.Find("format"); f != nullptr) {
    if (!f->is_string()) {
      return Status::InvalidArgument("format must be a string at line " +
                                     std::to_string(line_number));
    }
    format = f->AsString();
  }
  if (format == "dimacs") {
    return LoadDimacsFile(input->AsString());
  }
  if (format == "edgelist") {
    return LoadEdgeListFile(input->AsString());
  }
  return Status::InvalidArgument("unknown format '" + format + "' at line " +
                                 std::to_string(line_number));
}

Result<JobSpec> ParseJobLine(const std::string& text, int line_number) {
  QPLEX_ASSIGN_OR_RETURN(obs::JsonValue line, obs::JsonValue::Parse(text));
  if (!line.is_object()) {
    return Status::InvalidArgument("request must be a JSON object at line " +
                                   std::to_string(line_number));
  }
  JobSpec spec;
  QPLEX_ASSIGN_OR_RETURN(spec.request.graph, LoadJobGraph(line, line_number));
  spec.request.label = "line-" + std::to_string(line_number);
  if (const obs::JsonValue* id = line.Find("id"); id != nullptr) {
    spec.request.label =
        id->is_string() ? id->AsString() : std::to_string(id->AsInt());
  }
  if (const obs::JsonValue* k = line.Find("k"); k != nullptr) {
    spec.request.k = static_cast<int>(k->AsInt());
  }
  if (const obs::JsonValue* seed = line.Find("seed"); seed != nullptr) {
    spec.request.seed = static_cast<std::uint64_t>(seed->AsInt());
  }
  if (const obs::JsonValue* deadline = line.Find("deadline_ms");
      deadline != nullptr) {
    spec.request.deadline_seconds = deadline->AsDouble() / 1e3;
  }
  if (const obs::JsonValue* backend = line.Find("backend");
      backend != nullptr) {
    spec.request.backend = backend->AsString();
  }
  if (const obs::JsonValue* backends = line.Find("backends");
      backends != nullptr) {
    if (!backends->is_array() || backends->size() == 0) {
      return Status::InvalidArgument(
          "backends must be a non-empty array at line " +
          std::to_string(line_number));
    }
    for (std::size_t i = 0; i < backends->size(); ++i) {
      spec.backends.push_back(backends->at(i).AsString());
    }
  }
  if (const obs::JsonValue* options = line.Find("options");
      options != nullptr) {
    if (!options->is_object()) {
      return Status::InvalidArgument("options must be an object at line " +
                                     std::to_string(line_number));
    }
    for (const auto& [key, value] : options->members()) {
      if (value.is_string()) {
        spec.request.options[key] = value.AsString();
      } else if (value.is_int()) {
        spec.request.options[key] = std::to_string(value.AsInt());
      } else if (value.is_number()) {
        std::ostringstream formatted;
        formatted << value.AsDouble();
        spec.request.options[key] = formatted.str();
      } else {
        return Status::InvalidArgument("option '" + key +
                                       "' must be a string or number at line " +
                                       std::to_string(line_number));
      }
    }
  }
  return spec;
}

Result<std::vector<JobSpec>> ReadJobs(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      return Status::NotFound("cannot open jobs file: " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  std::vector<JobSpec> specs;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    QPLEX_ASSIGN_OR_RETURN(JobSpec spec, ParseJobLine(line, line_number));
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string MembersToString(const VertexList& members) {
  std::string joined;
  for (Vertex v : members) {
    if (!joined.empty()) {
      joined += " ";
    }
    joined += std::to_string(v);
  }
  return joined;
}

/// One WAL line. Deliberately timestamp- and wall-clock-free so the journal
/// of a resumed batch is byte-identical to an uninterrupted run.
void WriteJournalLine(std::ostream& out, const std::string& label,
                      const svc::SolveResponse& response) {
  obs::JsonValue line = obs::JsonValue::Object();
  line.Set("label", label);
  line.Set("status", std::string(StatusCodeName(response.status.code())));
  line.Set("backend", response.backend);
  line.Set("size", response.solution.size);
  line.Set("members", MembersToString(response.solution.members));
  line.Set("provably_optimal", response.provably_optimal);
  line.Set("attempts", response.attempts);
  line.Set("degraded_from", response.degraded_from);
  line.Set("degradation_reason", response.degradation_reason);
  out << line.Dump() << "\n" << std::flush;
}

struct JournalEntry {
  std::string label;
  std::string status;
  std::string line;  ///< the raw serialized form, without the newline
};

/// Reads the valid prefix of a WAL. A torn tail line (the process died
/// mid-write) is dropped; anything after the first malformed line is
/// discarded with it.
Result<std::vector<JournalEntry>> ReadJournal(const std::string& path) {
  std::vector<JournalEntry> entries;
  std::ifstream in(path);
  if (!in) {
    return entries;  // no journal yet: a fresh run
  }
  std::string text;
  while (std::getline(in, text)) {
    Result<obs::JsonValue> parsed = obs::JsonValue::Parse(text);
    if (!parsed.ok() || !parsed.value().is_object()) {
      break;
    }
    const obs::JsonValue* label = parsed.value().Find("label");
    const obs::JsonValue* status = parsed.value().Find("status");
    if (label == nullptr || !label->is_string() || status == nullptr ||
        !status->is_string()) {
      break;
    }
    entries.push_back(
        JournalEntry{label->AsString(), status->AsString(), text});
  }
  return entries;
}

struct BatchOutcome {
  int failures = 0;   ///< non-OK jobs, journaled replays included
  int skipped = 0;    ///< jobs satisfied from the journal
  bool interrupted = false;
};

/// Executes the whole batch with submission-order Wait()s. Backpressure
/// rejections drain the oldest outstanding job, then back off with
/// decorrelated jitter (recorded in svc.admission.backoff_ms) instead of
/// hot-spinning. `journaled` jobs are skipped; on SIGINT/SIGTERM the loop
/// stops submitting, a watcher cancels everything in flight, and journaling
/// stops so the WAL stays a clean prefix of the uninterrupted run.
Result<BatchOutcome> RunBatch(svc::JobScheduler* scheduler,
                              std::vector<JobSpec> specs,
                              std::ostream* journal,
                              const std::vector<JournalEntry>& journaled) {
  BatchOutcome outcome;
  if (journaled.size() > specs.size()) {
    return Status::InvalidArgument(
        "journal has " + std::to_string(journaled.size()) +
        " entries but the batch only has " + std::to_string(specs.size()) +
        " jobs — wrong journal for this job file?");
  }
  for (std::size_t i = 0; i < journaled.size(); ++i) {
    if (journaled[i].label != specs[i].request.label) {
      return Status::InvalidArgument(
          "journal entry " + std::to_string(i + 1) + " is for job '" +
          journaled[i].label + "' but the job file has '" +
          specs[i].request.label + "' — wrong journal for this job file?");
    }
    if (journaled[i].status != "OK") {
      ++outcome.failures;
    }
    ++outcome.skipped;
    if (obs::EventsEnabled()) {
      obs::EmitEvent(obs::EventLevel::kInfo, "svc", "job_replayed",
                     {{"label", journaled[i].label},
                      {"status", journaled[i].status}});
    }
  }

  std::mutex mutex;
  std::deque<std::pair<svc::JobId, const JobSpec*>> outstanding;
  std::atomic<bool> done{false};
  // On a signal, cancel every in-flight job (repeatedly — cancellation is
  // idempotent and new jobs cannot be submitted once g_signal is set). This
  // runs in a thread because the batch loop itself blocks inside Wait().
  std::thread watcher([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (g_signal != 0) {
        std::lock_guard<std::mutex> lock(mutex);
        for (const auto& [id, spec] : outstanding) {
          scheduler->Cancel(id);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  struct WatcherJoiner {
    std::atomic<bool>& done;
    std::thread& watcher;
    ~WatcherJoiner() {
      done.store(true, std::memory_order_relaxed);
      watcher.join();
    }
  } joiner{done, watcher};

  auto drain_one = [&] {
    svc::JobId id;
    const JobSpec* spec;
    {
      std::lock_guard<std::mutex> lock(mutex);
      std::tie(id, spec) = outstanding.front();
    }
    const svc::SolveResponse response = scheduler->Wait(id);
    {
      std::lock_guard<std::mutex> lock(mutex);
      outstanding.pop_front();
    }
    if (!response.status.ok()) {
      ++outcome.failures;
    }
    // Once a signal landed, responses are from cancelled jobs — don't
    // journal them, so --resume recomputes them with full budgets.
    if (journal != nullptr && g_signal == 0) {
      WriteJournalLine(*journal, spec->request.label, response);
    }
  };

  resilience::BackoffOptions admission_backoff_options;
  admission_backoff_options.base_ms = 0.5;
  admission_backoff_options.cap_ms = 20;
  admission_backoff_options.seed = 0xad715510;
  resilience::Backoff admission_backoff(admission_backoff_options);

  for (std::size_t i = journaled.size(); i < specs.size(); ++i) {
    JobSpec& spec = specs[i];
    if (g_signal != 0) {
      outcome.interrupted = true;
      break;
    }
    while (true) {
      Result<svc::JobId> submitted =
          spec.backends.empty()
              ? scheduler->Submit(spec.request)
              : scheduler->SubmitPortfolio(spec.request, spec.backends);
      if (submitted.ok()) {
        std::lock_guard<std::mutex> lock(mutex);
        outstanding.emplace_back(submitted.value(), &spec);
        admission_backoff.Reset();
        break;
      }
      if (submitted.status().code() != StatusCode::kResourceExhausted) {
        return submitted.status();
      }
      bool empty;
      {
        std::lock_guard<std::mutex> lock(mutex);
        empty = outstanding.empty();
      }
      if (empty) {
        // Queue smaller than one job's racer count: a config error, not
        // transient backpressure.
        return submitted.status();
      }
      drain_one();
      if (g_signal != 0) {
        break;  // re-checked at the top of the outer loop
      }
      const double delay_ms = admission_backoff.NextDelayMs();
      obs::MetricsRegistry::Global()
          .GetHistogram("svc.admission.backoff_ms")
          .Record(delay_ms);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
  }
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (outstanding.empty()) {
        break;
      }
    }
    drain_one();
  }
  if (g_signal != 0) {
    outcome.interrupted = true;
  }
  if (journal != nullptr) {
    journal->flush();
  }
  return outcome;
}

/// Writes one OpenMetrics snapshot of the global registry, atomically
/// (tmp file + rename) so a scraper tailing the path never sees a torn
/// exposition.
Status WritePromSnapshot(const std::string& path) {
  const std::string text =
      obs::RenderOpenMetrics(obs::MetricsRegistry::Global().Snapshot());
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot open metrics file: " + tmp);
    }
    out << text;
    if (!out) {
      return Status::Internal("failed writing metrics file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("failed to move metrics file into place: " + path);
  }
  return Status::Ok();
}

/// Background periodic OpenMetrics snapshotter for long serve runs; writes
/// every interval while the batch executes, and the caller writes one final
/// snapshot after the scheduler drains.
class PromSnapshotter {
 public:
  PromSnapshotter(std::string path, int interval_ms)
      : path_(std::move(path)), interval_ms_(interval_ms) {
    if (interval_ms_ > 0) {
      thread_ = std::thread([this] { Loop(); });
    }
  }
  ~PromSnapshotter() {
    if (thread_.joinable()) {
      stop_.store(true, std::memory_order_relaxed);
      thread_.join();
    }
  }

 private:
  void Loop() {
    int slept_ms = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      // Sleep in small slices so shutdown is prompt even with big intervals.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      slept_ms += 5;
      if (slept_ms >= interval_ms_) {
        slept_ms = 0;
        (void)WritePromSnapshot(path_);  // transient IO failures retry next tick
      }
    }
  }

  std::string path_;
  int interval_ms_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

int Main(int argc, char** argv) {
  // Handlers go in before anything else so a signal during startup already
  // takes the graceful path.
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  const Result<ServeOptions> options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::cerr << options.status() << "\n";
    PrintUsage();
    return 2;
  }

  if (!options.value().fault_spec.empty()) {
    const Status armed =
        resilience::FaultInjector::Global().Configure(
            options.value().fault_spec);
    if (!armed.ok()) {
      std::cerr << armed << "\n";
      PrintUsage();
      return 2;
    }
  }
  if (options.value().max_sim_bytes > 0) {
    SetMaxSimulationBytes(options.value().max_sim_bytes);
  }

  std::unique_ptr<obs::EventSink> events;
  if (!options.value().events.empty()) {
    Result<std::unique_ptr<obs::EventSink>> opened = obs::EventSink::Open(
        options.value().events, options.value().progress_interval_ms);
    if (!opened.ok()) {
      std::cerr << "failed to open event stream " << options.value().events
                << ": " << opened.status() << "\n";
      return 2;
    }
    events = std::move(opened).value();
    obs::EventSink::InstallGlobal(events.get());
  }
  struct SinkUninstaller {
    ~SinkUninstaller() { obs::EventSink::InstallGlobal(nullptr); }
  } uninstaller;

  const Result<std::vector<JobSpec>> specs = ReadJobs(options.value().jobs);
  if (!specs.ok()) {
    std::cerr << "failed to read jobs: " << specs.status() << "\n";
    return 2;
  }

  // Journal setup. On --resume the valid prefix of the existing WAL is kept
  // (a torn tail line from a hard crash is truncated away) and the stream
  // reopens right after it; otherwise the journal starts fresh.
  std::vector<JournalEntry> journaled;
  std::unique_ptr<std::ofstream> journal;
  if (!options.value().journal.empty()) {
    if (options.value().resume) {
      Result<std::vector<JournalEntry>> read =
          ReadJournal(options.value().journal);
      if (!read.ok()) {
        std::cerr << "failed to read journal: " << read.status() << "\n";
        return 2;
      }
      journaled = std::move(read).value();
    }
    journal = std::make_unique<std::ofstream>(options.value().journal,
                                              std::ios::trunc);
    if (!*journal) {
      std::cerr << "cannot open journal: " << options.value().journal << "\n";
      return 2;
    }
    for (const JournalEntry& entry : journaled) {
      *journal << entry.line << "\n";
    }
    journal->flush();
  }

  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Reset();

  svc::SolverRegistry registry = svc::MakeBuiltinRegistry();
  svc::JobSchedulerOptions scheduler_options;
  scheduler_options.num_workers = options.value().workers;
  scheduler_options.queue_capacity =
      static_cast<std::size_t>(options.value().queue_cap);
  scheduler_options.enable_cache = options.value().cache;
  scheduler_options.retry.max_retries = options.value().max_retries;
  scheduler_options.slo_latency_ms = options.value().slo_ms;

  if (obs::EventsEnabled()) {
    obs::EmitEvent(obs::EventLevel::kInfo, "svc", "batch_start",
                   {{"jobs", static_cast<std::int64_t>(specs.value().size())},
                    {"workers", options.value().workers},
                    {"queue_cap", options.value().queue_cap},
                    {"cache", options.value().cache},
                    {"resumed", static_cast<std::int64_t>(journaled.size())}});
  }
  Stopwatch watch;
  Result<BatchOutcome> outcome = BatchOutcome{};
  {
    PromSnapshotter snapshotter(options.value().metrics_prom,
                                options.value().metrics_prom_interval_ms);
    svc::JobScheduler scheduler(&registry, scheduler_options);
    outcome = RunBatch(&scheduler, std::move(specs).value(), journal.get(),
                       journaled);
  }
  const double wall_seconds = watch.ElapsedSeconds();
  if (!outcome.ok()) {
    if (obs::EventsEnabled()) {
      obs::EmitEvent(obs::EventLevel::kWarn, "svc", "batch_error",
                     {{"status", outcome.status().ToString()},
                      {"wall_seconds", wall_seconds}});
    }
    std::cerr << "batch failed: " << outcome.status() << "\n";
    return 2;
  }

  auto& metrics = obs::MetricsRegistry::Global();
  const std::int64_t total =
      metrics.GetCounter("svc.jobs.completed").Get() +
      static_cast<std::int64_t>(outcome.value().skipped);
  if (obs::EventsEnabled()) {
    obs::EmitEvent(
        obs::EventLevel::kInfo, "svc", "batch_end",
        {{"jobs", total},
         {"failed", outcome.value().failures},
         {"skipped", outcome.value().skipped},
         {"interrupted", outcome.value().interrupted},
         {"retries", metrics.GetCounter("svc.retries.scheduled").Get()},
         {"fallbacks", metrics.GetCounter("svc.fallbacks.taken").Get()},
         {"cache_hits", metrics.GetCounter("svc.cache.hits").Get()},
         {"cache_misses", metrics.GetCounter("svc.cache.misses").Get()},
         {"wall_seconds", wall_seconds},
         {"jobs_per_second",
          wall_seconds > 0 ? static_cast<double>(total) / wall_seconds
                           : 0.0}});
  }

  if (!options.value().metrics_prom.empty()) {
    const Status written = WritePromSnapshot(options.value().metrics_prom);
    if (!written.ok()) {
      std::cerr << "failed to write OpenMetrics exposition to "
                << options.value().metrics_prom << ": " << written << "\n";
      return 2;
    }
  }

  if (!options.value().metrics_json.empty()) {
    obs::RunReport report("qplex_serve");
    report.SetMeta("jobs", total);
    report.SetMeta("failed", outcome.value().failures);
    report.SetMeta("skipped", outcome.value().skipped);
    report.SetMeta("interrupted", outcome.value().interrupted);
    report.SetMeta("workers", options.value().workers);
    report.SetMeta("cache", options.value().cache);
    report.SetMeta("wall_seconds", wall_seconds);
    report.Capture();
    const Status written = report.WriteJsonFile(options.value().metrics_json);
    if (!written.ok()) {
      std::cerr << "failed to write metrics report to "
                << options.value().metrics_json << ": " << written << "\n";
      return 2;
    }
  }
  return 0;
}

}  // namespace
}  // namespace qplex

int main(int argc, char** argv) { return qplex::Main(argc, argv); }
