// qplex_benchdiff: compares two bench run reports (or two directories of
// BENCH_*.json reports) metric by metric and fails on regressions.
//
//   qplex_benchdiff --baseline <file|dir> --candidate <file|dir>
//                   [--config rules.json] [--format markdown|ascii] [--all]
//
// Reports are flattened to scalar metrics (counters, gauges, histogram
// count/sum/mean/min/max/p50/p90/p99, series points/first/last, trace span
// count/total_seconds, numeric meta) and aligned by name. Each metric is
// judged by the first matching rule ('*' globs, first match wins):
//
//   --config rules first, e.g. {"rules": [{"match": "*.oracle_calls",
//                                          "action": "near",
//                                          "rel_tolerance": 0.01}]}
//   then the built-in timing rule (*seconds* / *wall* / *micros* / *nanos* /
//     *elapsed* / *_time* -> warn at 25% relative drift, never fails),
//   then the fallback: integer metrics must match exactly, float metrics
//     within 1e-6 relative.
//
// Actions: "exact" (bit-equal), "near" (fail past rel_tolerance), "warn"
// (report past rel_tolerance but keep exit 0), "ignore" (skip entirely). A
// metric present on only one side fails unless its rule is warn/ignore.
//
// Exit status: 0 clean (warnings allowed), 1 regression, 2 usage/IO error.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/table.h"
#include "obs/json.h"

namespace qplex {
namespace {

using obs::JsonValue;

struct DiffOptions {
  std::string baseline;
  std::string candidate;
  std::string config;  // optional rules file
  std::string format = "markdown";
  bool show_all = false;
};

/// One flattened scalar metric. Integer-ness is tracked so the fallback rule
/// can demand exactness for counts while tolerating float rounding.
struct MetricValue {
  double value = 0;
  std::int64_t int_value = 0;
  bool is_int = false;

  static MetricValue FromJson(const JsonValue& json) {
    MetricValue metric;
    if (json.is_int()) {
      metric.is_int = true;
      metric.int_value = json.AsInt();
    }
    metric.value = json.AsDouble();
    return metric;
  }
};

using MetricMap = std::map<std::string, MetricValue>;

enum class RuleAction : std::uint8_t { kExact, kNear, kWarn, kIgnore };

struct Rule {
  std::string match;
  RuleAction action = RuleAction::kNear;
  double rel_tolerance = 1e-6;
};

/// Glob match supporting '*' (any run, including empty); everything else is
/// literal. Iterative star-backtracking, no recursion.
bool GlobMatch(std::string_view pattern, std::string_view text) {
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Flattens one trace node into "trace.<path>.count" / ".total_seconds",
/// recursing through children. The synthetic root span itself is skipped.
void FlattenTrace(const JsonValue& node, const std::string& prefix,
                  MetricMap* out) {
  const JsonValue* name = node.Find("name");
  const bool is_root = prefix.empty();
  std::string path = prefix;
  if (!is_root && name != nullptr && name->is_string()) {
    path += name->AsString();
    const JsonValue* count = node.Find("count");
    if (count != nullptr && count->is_number()) {
      (*out)[path + ".count"] = MetricValue::FromJson(*count);
    }
    const JsonValue* seconds = node.Find("total_seconds");
    if (seconds != nullptr && seconds->is_number()) {
      (*out)[path + ".total_seconds"] = MetricValue::FromJson(*seconds);
    }
    path += ".";
  } else if (is_root) {
    path = "trace.";
  }
  const JsonValue* children = node.Find("children");
  if (children != nullptr && children->is_array()) {
    for (std::size_t i = 0; i < children->size(); ++i) {
      FlattenTrace(children->at(i), path, out);
    }
  }
}

/// Flattens a run-report JSON document into name -> scalar metrics. `stem`
/// prefixes every name ("Fig_8/...") so directory diffs stay unambiguous.
Result<MetricMap> FlattenReport(const JsonValue& report,
                                const std::string& stem) {
  if (!report.is_object()) {
    return Status::InvalidArgument("report is not a JSON object");
  }
  const std::string prefix = stem.empty() ? "" : stem + "/";
  MetricMap metrics;
  if (const JsonValue* meta = report.Find("meta");
      meta != nullptr && meta->is_object()) {
    for (const auto& [key, value] : meta->members()) {
      if (value.is_number()) {
        metrics[prefix + "meta." + key] = MetricValue::FromJson(value);
      }
    }
  }
  if (const JsonValue* counters = report.Find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [key, value] : counters->members()) {
      metrics[prefix + key] = MetricValue::FromJson(value);
    }
  }
  if (const JsonValue* gauges = report.Find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [key, value] : gauges->members()) {
      metrics[prefix + key] = MetricValue::FromJson(value);
    }
  }
  if (const JsonValue* histograms = report.Find("histograms");
      histograms != nullptr && histograms->is_object()) {
    for (const auto& [key, histogram] : histograms->members()) {
      for (const char* field :
           {"count", "sum", "mean", "min", "max", "p50", "p90", "p99"}) {
        const JsonValue* value = histogram.Find(field);
        if (value != nullptr && value->is_number()) {
          metrics[prefix + key + "." + field] = MetricValue::FromJson(*value);
        }
      }
    }
  }
  if (const JsonValue* series = report.Find("series");
      series != nullptr && series->is_object()) {
    for (const auto& [key, points] : series->members()) {
      if (!points.is_array()) {
        continue;
      }
      metrics[prefix + key + ".points"] =
          MetricValue::FromJson(static_cast<std::int64_t>(points.size()));
      if (points.size() > 0) {
        metrics[prefix + key + ".first"] = MetricValue::FromJson(points.at(0));
        metrics[prefix + key + ".last"] =
            MetricValue::FromJson(points.at(points.size() - 1));
      }
    }
  }
  if (const JsonValue* trace = report.Find("trace");
      trace != nullptr && trace->is_object()) {
    MetricMap trace_metrics;
    FlattenTrace(*trace, "", &trace_metrics);
    for (auto& [key, value] : trace_metrics) {
      metrics[prefix + key] = value;
    }
  }
  return metrics;
}

Result<MetricMap> LoadReportFile(const std::string& path,
                                 const std::string& stem) {
  QPLEX_ASSIGN_OR_RETURN(std::string text, ReadTextFile(path));
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("cannot parse " + path + ": " +
                                   parsed.status().message());
  }
  return FlattenReport(parsed.value(), stem);
}

/// Loads one side of the diff: a single report file (unprefixed metrics) or
/// a directory of BENCH_*.json reports (metrics prefixed by file stem).
Result<MetricMap> LoadSide(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.starts_with("BENCH_") && name.ends_with(".json")) {
        files.push_back(entry.path().string());
      }
    }
    if (ec) {
      return Status::Internal("cannot list directory " + path + ": " +
                              ec.message());
    }
    if (files.empty()) {
      return Status::NotFound("no BENCH_*.json reports in " + path);
    }
    std::sort(files.begin(), files.end());
    MetricMap merged;
    for (const std::string& file : files) {
      const std::string stem =
          std::filesystem::path(file).stem().string().substr(6);
      QPLEX_ASSIGN_OR_RETURN(MetricMap metrics, LoadReportFile(file, stem));
      merged.insert(metrics.begin(), metrics.end());
    }
    return merged;
  }
  return LoadReportFile(path, "");
}

Result<RuleAction> ParseAction(const std::string& name) {
  if (name == "exact") return RuleAction::kExact;
  if (name == "near") return RuleAction::kNear;
  if (name == "warn") return RuleAction::kWarn;
  if (name == "ignore") return RuleAction::kIgnore;
  return Status::InvalidArgument("unknown rule action: " + name);
}

Result<std::vector<Rule>> LoadRules(const std::string& path) {
  QPLEX_ASSIGN_OR_RETURN(std::string text, ReadTextFile(path));
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("cannot parse " + path + ": " +
                                   parsed.status().message());
  }
  const JsonValue* rules_json = parsed.value().Find("rules");
  if (rules_json == nullptr || !rules_json->is_array()) {
    return Status::InvalidArgument(path + ": expected {\"rules\": [...]}");
  }
  std::vector<Rule> rules;
  for (std::size_t i = 0; i < rules_json->size(); ++i) {
    const JsonValue& entry = rules_json->at(i);
    const JsonValue* match = entry.Find("match");
    const JsonValue* action = entry.Find("action");
    if (match == nullptr || !match->is_string() || action == nullptr ||
        !action->is_string()) {
      return Status::InvalidArgument(
          path + ": each rule needs string \"match\" and \"action\"");
    }
    Rule rule;
    rule.match = match->AsString();
    QPLEX_ASSIGN_OR_RETURN(rule.action, ParseAction(action->AsString()));
    rule.rel_tolerance = rule.action == RuleAction::kWarn ? 0.25 : 1e-6;
    if (const JsonValue* tolerance = entry.Find("rel_tolerance");
        tolerance != nullptr && tolerance->is_number()) {
      rule.rel_tolerance = tolerance->AsDouble();
    }
    rules.push_back(rule);
  }
  return rules;
}

/// Timing metrics drift with the machine, so their built-in rule warns
/// instead of failing.
const std::vector<Rule>& TimingRules() {
  static const std::vector<Rule> rules = {
      {"*seconds*", RuleAction::kWarn, 0.25},
      {"*wall*", RuleAction::kWarn, 0.25},
      {"*micros*", RuleAction::kWarn, 0.25},
      {"*nanos*", RuleAction::kWarn, 0.25},
      {"*elapsed*", RuleAction::kWarn, 0.25},
      {"*_time*", RuleAction::kWarn, 0.25},
  };
  return rules;
}

/// Resolves the rule for `name`: config rules, then timing rules, then the
/// exact-int / near-float fallback.
Rule ResolveRule(const std::vector<Rule>& config_rules, const std::string& name,
                 bool is_int) {
  for (const Rule& rule : config_rules) {
    if (GlobMatch(rule.match, name)) {
      return rule;
    }
  }
  for (const Rule& rule : TimingRules()) {
    if (GlobMatch(rule.match, name)) {
      return rule;
    }
  }
  Rule fallback;
  fallback.match = "*";
  fallback.action = is_int ? RuleAction::kExact : RuleAction::kNear;
  return fallback;
}

enum class RowStatus : std::uint8_t { kOk, kWarn, kFail, kMissing };

struct DiffRow {
  std::string name;
  std::string baseline;
  std::string candidate;
  std::string delta;
  std::string rel;
  RowStatus status = RowStatus::kOk;
};

std::string FormatMetric(const MetricValue& metric) {
  if (metric.is_int) {
    return std::to_string(metric.int_value);
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", metric.value);
  return buffer;
}

std::string StatusName(RowStatus status) {
  switch (status) {
    case RowStatus::kOk:
      return "ok";
    case RowStatus::kWarn:
      return "warn";
    case RowStatus::kFail:
      return "FAIL";
    case RowStatus::kMissing:
      return "MISSING";
  }
  return "?";
}

/// Compares one aligned metric pair under `rule`.
DiffRow CompareMetric(const std::string& name, const MetricValue& baseline,
                      const MetricValue& candidate, const Rule& rule) {
  DiffRow row;
  row.name = name;
  row.baseline = FormatMetric(baseline);
  row.candidate = FormatMetric(candidate);
  const double delta = candidate.value - baseline.value;
  const double denom =
      std::max(std::abs(baseline.value), std::abs(candidate.value));
  const double rel = denom > 0 ? std::abs(delta) / denom : 0;
  if (baseline.is_int && candidate.is_int) {
    row.delta = std::to_string(candidate.int_value - baseline.int_value);
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%+.6g", delta);
    row.delta = buffer;
  }
  {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%+.2f%%",
                  100 * (candidate.value >= baseline.value ? rel : -rel));
    row.rel = buffer;
  }
  bool within = true;
  switch (rule.action) {
    case RuleAction::kExact:
      within = baseline.is_int && candidate.is_int
                   ? baseline.int_value == candidate.int_value
                   : baseline.value == candidate.value;
      break;
    case RuleAction::kNear:
    case RuleAction::kWarn:
      within = rel <= rule.rel_tolerance;
      break;
    case RuleAction::kIgnore:
      break;
  }
  if (!within) {
    row.status =
        rule.action == RuleAction::kWarn ? RowStatus::kWarn : RowStatus::kFail;
  }
  return row;
}

struct DiffResult {
  std::vector<DiffRow> rows;
  int compared = 0;
  int ok = 0;
  int warnings = 0;
  int failures = 0;
  int missing = 0;
  int ignored = 0;
};

DiffResult Diff(const MetricMap& baseline, const MetricMap& candidate,
                const std::vector<Rule>& config_rules) {
  DiffResult result;
  auto record_missing = [&](const std::string& name, const MetricValue& value,
                            bool in_baseline) {
    const Rule rule = ResolveRule(config_rules, name, value.is_int);
    if (rule.action == RuleAction::kIgnore) {
      ++result.ignored;
      return;
    }
    DiffRow row;
    row.name = name;
    row.baseline = in_baseline ? FormatMetric(value) : "-";
    row.candidate = in_baseline ? "-" : FormatMetric(value);
    row.delta = "-";
    row.rel = "-";
    row.status = rule.action == RuleAction::kWarn ? RowStatus::kWarn
                                                  : RowStatus::kMissing;
    if (row.status == RowStatus::kMissing) {
      ++result.missing;
    } else {
      ++result.warnings;
    }
    result.rows.push_back(row);
  };

  for (const auto& [name, base_value] : baseline) {
    const auto it = candidate.find(name);
    if (it == candidate.end()) {
      record_missing(name, base_value, /*in_baseline=*/true);
      continue;
    }
    const Rule rule = ResolveRule(config_rules, name, base_value.is_int);
    if (rule.action == RuleAction::kIgnore) {
      ++result.ignored;
      continue;
    }
    ++result.compared;
    DiffRow row = CompareMetric(name, base_value, it->second, rule);
    switch (row.status) {
      case RowStatus::kOk:
        ++result.ok;
        break;
      case RowStatus::kWarn:
        ++result.warnings;
        break;
      default:
        ++result.failures;
        break;
    }
    result.rows.push_back(row);
  }
  for (const auto& [name, cand_value] : candidate) {
    if (baseline.find(name) == baseline.end()) {
      record_missing(name, cand_value, /*in_baseline=*/false);
    }
  }
  return result;
}

std::string RenderMarkdown(const DiffResult& result, bool show_all) {
  std::ostringstream out;
  out << "| metric | baseline | candidate | delta | rel | status |\n"
      << "|---|---|---|---|---|---|\n";
  int shown = 0;
  for (const DiffRow& row : result.rows) {
    if (!show_all && row.status == RowStatus::kOk) {
      continue;
    }
    out << "| " << row.name << " | " << row.baseline << " | " << row.candidate
        << " | " << row.delta << " | " << row.rel << " | "
        << StatusName(row.status) << " |\n";
    ++shown;
  }
  if (shown == 0) {
    out << "| (all " << result.compared << " metrics within tolerance) | | | "
        << "| | ok |\n";
  }
  return out.str();
}

std::string RenderAscii(const DiffResult& result, bool show_all) {
  AsciiTable table({"metric", "baseline", "candidate", "delta", "rel",
                    "status"});
  for (const DiffRow& row : result.rows) {
    if (!show_all && row.status == RowStatus::kOk) {
      continue;
    }
    table.AddRow({row.name, row.baseline, row.candidate, row.delta, row.rel,
                  StatusName(row.status)});
  }
  if (table.num_rows() == 0) {
    table.AddRow({"(all " + std::to_string(result.compared) +
                      " metrics within tolerance)",
                  "", "", "", "", "ok"});
  }
  return table.ToString();
}

void PrintUsage() {
  std::cerr << "usage: qplex_benchdiff --baseline <file|dir> "
               "--candidate <file|dir>\n"
               "                       [--config rules.json] "
               "[--format markdown|ascii] [--all]\n";
}

Result<DiffOptions> ParseArgs(int argc, char** argv) {
  DiffOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--baseline") {
      QPLEX_ASSIGN_OR_RETURN(options.baseline, next());
    } else if (arg == "--candidate") {
      QPLEX_ASSIGN_OR_RETURN(options.candidate, next());
    } else if (arg == "--config") {
      QPLEX_ASSIGN_OR_RETURN(options.config, next());
    } else if (arg == "--format") {
      QPLEX_ASSIGN_OR_RETURN(options.format, next());
    } else if (arg == "--all") {
      options.show_all = true;
    } else if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.baseline.empty() || options.candidate.empty()) {
    return Status::InvalidArgument("--baseline and --candidate are required");
  }
  if (options.format != "markdown" && options.format != "ascii") {
    return Status::InvalidArgument("--format must be markdown or ascii");
  }
  return options;
}

int Main(int argc, char** argv) {
  const Result<DiffOptions> options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::cerr << options.status() << "\n";
    PrintUsage();
    return 2;
  }
  std::vector<Rule> config_rules;
  if (!options.value().config.empty()) {
    Result<std::vector<Rule>> loaded = LoadRules(options.value().config);
    if (!loaded.ok()) {
      std::cerr << loaded.status() << "\n";
      return 2;
    }
    config_rules = std::move(loaded).value();
  }
  const Result<MetricMap> baseline = LoadSide(options.value().baseline);
  if (!baseline.ok()) {
    std::cerr << "baseline: " << baseline.status() << "\n";
    return 2;
  }
  const Result<MetricMap> candidate = LoadSide(options.value().candidate);
  if (!candidate.ok()) {
    std::cerr << "candidate: " << candidate.status() << "\n";
    return 2;
  }

  const DiffResult result =
      Diff(baseline.value(), candidate.value(), config_rules);
  std::cout << "benchdiff: " << options.value().baseline << " vs "
            << options.value().candidate << "\n\n";
  std::cout << (options.value().format == "markdown"
                    ? RenderMarkdown(result, options.value().show_all)
                    : RenderAscii(result, options.value().show_all));
  std::cout << "\nsummary: " << result.compared << " compared, " << result.ok
            << " ok, " << result.warnings << " warned, " << result.failures
            << " failed, " << result.missing << " missing, " << result.ignored
            << " ignored\n";
  return result.failures > 0 || result.missing > 0 ? 1 : 0;
}

}  // namespace
}  // namespace qplex

int main(int argc, char** argv) { return qplex::Main(argc, argv); }
