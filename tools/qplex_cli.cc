// qplex command-line solver: finds the maximum k-plex of a graph given in
// DIMACS or edge-list format, with a selectable solver backend.
//
//   qplex_cli --input graph.col [--format dimacs|edgelist] [--k 2]
//             [--algorithm bs|enum|qmkp|qamkp|milp] [--seed 1]
//
// With --input - the graph is read from stdin.

#include <iostream>
#include <sstream>
#include <string>

#include "qplex/qplex.h"

namespace qplex {
namespace {

struct CliOptions {
  std::string input;
  std::string format = "dimacs";
  std::string algorithm = "bs";
  int k = 2;
  std::uint64_t seed = 1;
};

void PrintUsage() {
  std::cerr << "usage: qplex_cli --input <file|-> [--format dimacs|edgelist]\n"
               "                 [--k <int>] [--algorithm "
               "bs|enum|qmkp|qamkp|milp] [--seed <int>]\n";
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--input") {
      QPLEX_ASSIGN_OR_RETURN(options.input, next());
    } else if (arg == "--format") {
      QPLEX_ASSIGN_OR_RETURN(options.format, next());
    } else if (arg == "--algorithm") {
      QPLEX_ASSIGN_OR_RETURN(options.algorithm, next());
    } else if (arg == "--k") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      options.k = std::stoi(value);
    } else if (arg == "--seed") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      options.seed = std::stoull(value);
    } else if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.input.empty()) {
    return Status::InvalidArgument("--input is required");
  }
  return options;
}

Result<Graph> LoadGraph(const CliOptions& options) {
  std::string text;
  if (options.input == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else if (options.format == "dimacs") {
    return LoadDimacsFile(options.input);
  } else {
    return LoadEdgeListFile(options.input);
  }
  return options.format == "dimacs" ? ParseDimacs(text) : ParseEdgeList(text);
}

Result<MkpSolution> Solve(const CliOptions& options, const Graph& graph) {
  if (options.algorithm == "bs") {
    BsSolver solver;
    return solver.Solve(graph, options.k);
  }
  if (options.algorithm == "enum") {
    return SolveMkpByEnumeration(graph, options.k);
  }
  if (options.algorithm == "qmkp") {
    QtkpOptions qtkp;
    qtkp.backend = graph.num_vertices() <= 10 ? OracleBackend::kCircuit
                                              : OracleBackend::kPredicate;
    qtkp.seed = options.seed;
    QPLEX_ASSIGN_OR_RETURN(QmkpResult result,
                           RunQmkp(graph, options.k, qtkp));
    MkpSolution solution;
    solution.members = result.best_plex;
    solution.size = result.best_size;
    solution.mask = result.best_mask;
    return solution;
  }
  if (options.algorithm == "qamkp") {
    QPLEX_ASSIGN_OR_RETURN(MkpQubo qubo, BuildMkpQubo(graph, options.k));
    HybridSolverOptions hybrid;
    hybrid.seed = options.seed;
    hybrid.refine = [&qubo](QuboSample* sample) { qubo.ImproveSample(sample); };
    QPLEX_ASSIGN_OR_RETURN(AnnealResult annealed,
                           HybridSolver(hybrid).Run(qubo.model));
    MkpSolution solution;
    solution.members = qubo.RepairToPlex(annealed.best_sample);
    solution.size = static_cast<int>(solution.members.size());
    return solution;
  }
  if (options.algorithm == "milp") {
    QPLEX_ASSIGN_OR_RETURN(MkpQubo qubo, BuildMkpQubo(graph, options.k));
    const LinearizedQubo linearized = LinearizeQubo(qubo.model);
    MilpSolverOptions milp_options;
    milp_options.time_limit_seconds = 60;
    milp_options.incumbent_heuristic =
        MakeQuboRoundingHeuristic(qubo.model, linearized);
    QPLEX_ASSIGN_OR_RETURN(MilpSolution milp,
                           MilpSolver(milp_options).Solve(linearized.milp));
    if (!milp.feasible) {
      return Status::Internal("MILP produced no feasible point");
    }
    const QuboSample sample = ExtractSample(linearized, milp.x);
    MkpSolution solution;
    solution.members = qubo.RepairToPlex(sample);
    solution.size = static_cast<int>(solution.members.size());
    return solution;
  }
  return Status::InvalidArgument("unknown algorithm: " + options.algorithm);
}

int Main(int argc, char** argv) {
  const Result<CliOptions> options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::cerr << options.status() << "\n";
    PrintUsage();
    return 2;
  }
  const Result<Graph> graph = LoadGraph(options.value());
  if (!graph.ok()) {
    std::cerr << "failed to load graph: " << graph.status() << "\n";
    return 1;
  }
  std::cerr << "loaded " << graph.value().ToString() << ", solving k="
            << options.value().k << " via " << options.value().algorithm
            << "\n";
  const Result<MkpSolution> solution = Solve(options.value(), graph.value());
  if (!solution.ok()) {
    std::cerr << "solver failed: " << solution.status() << "\n";
    return 1;
  }
  std::cout << "size " << solution.value().size << "\nmembers";
  for (Vertex v : solution.value().members) {
    std::cout << " " << v;
  }
  std::cout << "\n";
  return 0;
}

}  // namespace
}  // namespace qplex

int main(int argc, char** argv) { return qplex::Main(argc, argv); }
