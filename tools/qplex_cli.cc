// qplex command-line solver: finds the maximum k-plex of a graph given in
// DIMACS or edge-list format, with a selectable solver backend.
//
//   qplex_cli --input graph.col [--format dimacs|edgelist] [--k 2]
//             [--algorithm bs|enum|qmkp|qamkp|milp] [--seed 1]
//             [--threads N] [--metrics-json <file|->] [--metrics-prom <file>]
//             [--verbose-trace]
//             [--events <file|->] [--progress-interval-ms N]
//
// With --input - the graph is read from stdin. --metrics-json writes a
// structured run report (counters, histograms, trace tree) after solving;
// --metrics-prom writes the same registry as OpenMetrics text exposition;
// --verbose-trace prints the nested span timings to stderr. --events streams
// structured JSONL events (run lifecycle + rate-limited solver progress
// heartbeats) while the solve is running; --progress-interval-ms sets the
// heartbeat spacing (default 250, must be >= 1). --threads parallelizes the
// state-vector kernels of the quantum solvers (qmkp); results are
// bit-identical for any thread count.

#include <charconv>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "qplex/qplex.h"

namespace qplex {
namespace {

struct CliOptions {
  std::string input;
  std::string format = "dimacs";
  std::string algorithm = "bs";
  int k = 2;
  int threads = 1;
  std::uint64_t seed = 1;
  std::string metrics_json;  // empty = no report; "-" = stdout
  std::string metrics_prom;  // empty = no OpenMetrics exposition
  bool verbose_trace = false;
  std::string events;  // empty = no event stream; "-" = stdout
  int progress_interval_ms = obs::EventSink::kDefaultProgressIntervalMs;
  std::string fault_spec;           // arms the deterministic fault injector
  std::uint64_t max_sim_bytes = 0;  // 0 = keep the default 4 GiB budget
};

void PrintUsage() {
  std::cerr << "usage: qplex_cli --input <file|-> [--format dimacs|edgelist]\n"
               "                 [--k <int>] [--algorithm "
               "bs|enum|qmkp|qamkp|milp] [--seed <int>]\n"
               "                 [--threads <int>] [--metrics-json <file|->] "
               "[--metrics-prom <file>]\n"
               "                 [--verbose-trace]\n"
               "                 [--events <file|->] "
               "[--progress-interval-ms <int>]\n"
               "                 [--fault-spec site:rate[:seed]] "
               "[--max-sim-bytes <int>]\n";
}

/// Strict whole-string integer parse into `T`; rejects trailing junk,
/// overflow, and empty input with InvalidArgument instead of throwing.
template <typename T>
Result<T> ParseInt(const std::string& flag, const std::string& value) {
  T parsed{};
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc{} || ptr != end || value.empty()) {
    return Status::InvalidArgument("bad integer for " + flag + ": '" + value +
                                   "'");
  }
  return parsed;
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--input") {
      QPLEX_ASSIGN_OR_RETURN(options.input, next());
    } else if (arg == "--format") {
      QPLEX_ASSIGN_OR_RETURN(options.format, next());
    } else if (arg == "--algorithm") {
      QPLEX_ASSIGN_OR_RETURN(options.algorithm, next());
    } else if (arg == "--k") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.k, ParseInt<int>(arg, value));
    } else if (arg == "--seed") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.seed, ParseInt<std::uint64_t>(arg, value));
    } else if (arg == "--threads") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.threads, ParseInt<int>(arg, value));
    } else if (arg == "--metrics-json") {
      QPLEX_ASSIGN_OR_RETURN(options.metrics_json, next());
    } else if (arg == "--metrics-prom") {
      QPLEX_ASSIGN_OR_RETURN(options.metrics_prom, next());
    } else if (arg == "--verbose-trace") {
      options.verbose_trace = true;
    } else if (arg == "--events") {
      QPLEX_ASSIGN_OR_RETURN(options.events, next());
    } else if (arg == "--progress-interval-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.progress_interval_ms,
                             ParseInt<int>(arg, value));
    } else if (arg == "--fault-spec") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      if (!options.fault_spec.empty()) {
        options.fault_spec += ",";
      }
      options.fault_spec += value;
    } else if (arg == "--max-sim-bytes") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.max_sim_bytes,
                             ParseInt<std::uint64_t>(arg, value));
      if (options.max_sim_bytes == 0) {
        return Status::InvalidArgument("--max-sim-bytes must be >= 1");
      }
    } else if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.input.empty()) {
    return Status::InvalidArgument("--input is required");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("--k must be >= 1");
  }
  if (options.threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  if (options.progress_interval_ms < 1) {
    return Status::InvalidArgument("--progress-interval-ms must be >= 1");
  }
  return options;
}

Result<Graph> LoadGraph(const CliOptions& options) {
  std::string text;
  if (options.input == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else if (options.format == "dimacs") {
    return LoadDimacsFile(options.input);
  } else {
    return LoadEdgeListFile(options.input);
  }
  return options.format == "dimacs" ? ParseDimacs(text) : ParseEdgeList(text);
}

Result<MkpSolution> Solve(const CliOptions& options, const Graph& graph) {
  // Direct CLI solves run outside any request scope, so the incumbent events
  // carry no trace/path; qplex_obs --convergence lists them as "(direct)".
  if (options.algorithm == "bs") {
    BsSolverOptions bs_options;
    obs::IncumbentReporter reporter("bs");
    if (reporter.enabled()) {
      bs_options.on_incumbent = [&reporter](const MkpSolution& best,
                                            const BsSolverStats& stats) {
        reporter.Report(best.size, stats.branch_nodes);
      };
      bs_options.on_bound = [&reporter](double bound,
                                        const BsSolverStats& stats) {
        reporter.ReportBound(bound, stats.branch_nodes);
      };
    }
    BsSolver solver(bs_options);
    return solver.Solve(graph, options.k);
  }
  if (options.algorithm == "enum") {
    EnumerationControl control;
    obs::IncumbentReporter reporter("enum");
    if (reporter.enabled()) {
      control.on_incumbent = [&reporter](const MkpSolution& best,
                                         std::uint64_t masks_scanned) {
        reporter.Report(best.size, static_cast<std::int64_t>(masks_scanned));
      };
    }
    return SolveMkpByEnumeration(graph, options.k, control);
  }
  if (options.algorithm == "qmkp") {
    QtkpOptions qtkp;
    qtkp.backend = graph.num_vertices() <= 10 ? OracleBackend::kCircuit
                                              : OracleBackend::kPredicate;
    qtkp.seed = options.seed;
    qtkp.threads = options.threads;
    obs::IncumbentReporter reporter("qmkp");
    QmkpProgressCallback on_progress;
    if (reporter.enabled()) {
      on_progress = [&reporter](const QmkpProbe& /*probe*/,
                                const QmkpResult& so_far) {
        reporter.Report(so_far.best_size, so_far.total_oracle_calls);
      };
    }
    QPLEX_ASSIGN_OR_RETURN(QmkpResult result,
                           RunQmkp(graph, options.k, qtkp, on_progress));
    MkpSolution solution;
    solution.members = result.best_plex;
    solution.size = result.best_size;
    solution.mask = result.best_mask;
    return solution;
  }
  if (options.algorithm == "qamkp") {
    QPLEX_ASSIGN_OR_RETURN(MkpQubo qubo, BuildMkpQubo(graph, options.k));
    HybridSolverOptions hybrid;
    hybrid.seed = options.seed;
    hybrid.refine = [&qubo](QuboSample* sample) { qubo.ImproveSample(sample); };
    obs::IncumbentReporter reporter("hybrid");
    if (reporter.enabled()) {
      hybrid.hooks.on_new_best = [&reporter, &qubo](const QuboSample& sample,
                                                    double energy,
                                                    std::int64_t sweeps) {
        reporter.Report(static_cast<int>(qubo.RepairToPlex(sample).size()),
                        sweeps, energy);
      };
    }
    QPLEX_ASSIGN_OR_RETURN(AnnealResult annealed,
                           HybridSolver(hybrid).Run(qubo.model));
    MkpSolution solution;
    solution.members = qubo.RepairToPlex(annealed.best_sample);
    solution.size = static_cast<int>(solution.members.size());
    return solution;
  }
  if (options.algorithm == "milp") {
    QPLEX_ASSIGN_OR_RETURN(MkpQubo qubo, BuildMkpQubo(graph, options.k));
    const LinearizedQubo linearized = LinearizeQubo(qubo.model);
    MilpSolverOptions milp_options;
    milp_options.time_limit_seconds = 60;
    milp_options.incumbent_heuristic =
        MakeQuboRoundingHeuristic(qubo.model, linearized);
    obs::IncumbentReporter reporter("milp");
    if (reporter.enabled()) {
      milp_options.on_incumbent = [&reporter, &qubo, &linearized](
                                      const std::vector<double>& x,
                                      double objective, std::int64_t nodes) {
        const QuboSample sample = ExtractSample(linearized, x);
        reporter.Report(static_cast<int>(qubo.RepairToPlex(sample).size()),
                        nodes, objective);
      };
      milp_options.on_bound = [&reporter](double bound, std::int64_t nodes) {
        // Objective lower bound -> plex-size upper bound (energy of a size-s
        // plex is -s); see the milp service adapter for the derivation.
        reporter.ReportBound(std::floor(-bound + 1e-6), nodes);
      };
    }
    QPLEX_ASSIGN_OR_RETURN(MilpSolution milp,
                           MilpSolver(milp_options).Solve(linearized.milp));
    if (!milp.feasible) {
      return Status::Internal("MILP produced no feasible point");
    }
    const QuboSample sample = ExtractSample(linearized, milp.x);
    MkpSolution solution;
    solution.members = qubo.RepairToPlex(sample);
    solution.size = static_cast<int>(solution.members.size());
    return solution;
  }
  return Status::InvalidArgument("unknown algorithm: " + options.algorithm);
}

/// Builds the structured run report after a solve; meta fields capture the
/// invocation, the instance, and the headline result.
obs::RunReport BuildReport(const CliOptions& options, const Graph& graph,
                           const MkpSolution& solution, double wall_seconds) {
  obs::RunReport report("qplex_cli");
  report.SetMeta("input", options.input);
  report.SetMeta("format", options.format);
  report.SetMeta("algorithm", options.algorithm);
  report.SetMeta("k", options.k);
  report.SetMeta("seed", static_cast<std::int64_t>(options.seed));
  report.SetMeta("threads", options.threads);
  report.SetMeta("num_vertices", graph.num_vertices());
  report.SetMeta("num_edges", graph.num_edges());
  report.SetMeta("solution_size", solution.size);
  report.SetMeta("wall_seconds", wall_seconds);
  report.Capture();
  return report;
}

int Main(int argc, char** argv) {
  const Result<CliOptions> options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::cerr << options.status() << "\n";
    PrintUsage();
    return 2;
  }
  if (!options.value().fault_spec.empty()) {
    const Status armed = resilience::FaultInjector::Global().Configure(
        options.value().fault_spec);
    if (!armed.ok()) {
      std::cerr << armed << "\n";
      PrintUsage();
      return 2;
    }
  }
  if (options.value().max_sim_bytes > 0) {
    SetMaxSimulationBytes(options.value().max_sim_bytes);
  }
  const Result<Graph> graph = LoadGraph(options.value());
  if (!graph.ok()) {
    std::cerr << "failed to load graph: " << graph.status() << "\n";
    return 1;
  }
  std::cerr << "loaded " << graph.value().ToString() << ", solving k="
            << options.value().k << " via " << options.value().algorithm
            << "\n";

  // Structured JSONL event stream: opened before the solve so every solver
  // heartbeat lands in it, uninstalled before exit (RAII keeps the error
  // paths honest).
  std::unique_ptr<obs::EventSink> events;
  if (!options.value().events.empty()) {
    Result<std::unique_ptr<obs::EventSink>> opened = obs::EventSink::Open(
        options.value().events, options.value().progress_interval_ms);
    if (!opened.ok()) {
      std::cerr << "failed to open event stream " << options.value().events
                << ": " << opened.status() << "\n";
      return 1;
    }
    events = std::move(opened).value();
    obs::EventSink::InstallGlobal(events.get());
  }
  struct SinkUninstaller {
    ~SinkUninstaller() { obs::EventSink::InstallGlobal(nullptr); }
  } uninstaller;

  // Start metric collection from a clean slate so the report describes this
  // solve only, not process history.
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer::Global().Reset();
  // Every lifecycle emission sits behind EventsEnabled() so a run without
  // --events never assembles the payload fields at all.
  if (obs::EventsEnabled()) {
    obs::EmitEvent(obs::EventLevel::kInfo, "cli", "run_start",
                   {{"input", options.value().input},
                    {"algorithm", options.value().algorithm},
                    {"k", options.value().k},
                    {"seed", static_cast<std::int64_t>(options.value().seed)},
                    {"num_vertices", graph.value().num_vertices()},
                    {"num_edges", graph.value().num_edges()}});
  }
  Stopwatch watch;
  const Result<MkpSolution> solution = Solve(options.value(), graph.value());
  const double wall_seconds = watch.ElapsedSeconds();
  if (!solution.ok()) {
    if (obs::EventsEnabled()) {
      obs::EmitEvent(obs::EventLevel::kWarn, "cli", "run_error",
                     {{"status", solution.status().ToString()},
                      {"wall_seconds", wall_seconds}});
    }
    std::cerr << "solver failed: " << solution.status() << "\n";
    return 1;
  }
  if (obs::EventsEnabled()) {
    obs::EmitEvent(obs::EventLevel::kInfo, "cli", "run_end",
                   {{"solution_size", solution.value().size},
                    {"wall_seconds", wall_seconds}});
  }
  std::cout << "size " << solution.value().size << "\nmembers";
  for (Vertex v : solution.value().members) {
    std::cout << " " << v;
  }
  std::cout << "\n";

  if (!options.value().metrics_json.empty() || options.value().verbose_trace) {
    const obs::RunReport report = BuildReport(
        options.value(), graph.value(), solution.value(), wall_seconds);
    if (options.value().verbose_trace) {
      std::cerr << report.ToPrettyString();
    }
    if (!options.value().metrics_json.empty()) {
      const Status written =
          report.WriteJsonFile(options.value().metrics_json);
      if (!written.ok()) {
        // The solution was already printed above: a reporting failure names
        // the offending path and flips the exit code, but never eats the
        // solver result.
        std::cerr << "failed to write metrics report to "
                  << options.value().metrics_json << ": " << written << "\n";
        return 1;
      }
      if (options.value().metrics_json != "-") {
        std::cerr << "metrics report written to "
                  << options.value().metrics_json << "\n";
      }
    }
  }
  if (!options.value().metrics_prom.empty()) {
    const std::string text =
        obs::RenderOpenMetrics(obs::MetricsRegistry::Global().Snapshot());
    std::ofstream out(options.value().metrics_prom, std::ios::trunc);
    if (!out || !(out << text)) {
      std::cerr << "failed to write OpenMetrics exposition to "
                << options.value().metrics_prom << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace qplex

int main(int argc, char** argv) { return qplex::Main(argc, argv); }
