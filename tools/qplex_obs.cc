// qplex offline observability analyzer: ingests a --events JSONL stream (and
// optionally the matching WAL journal + an OpenMetrics exposition) and emits
// derived views of one run:
//
//   qplex_obs --events <file> [--journal <file>]
//             [--trace-tree <file|->] [--folded <file|->]
//             [--latency <file|->] [--slo <file|-> --slo-ms <float>]
//             [--convergence <file|->] [--convergence-timing]
//             [--health <file|->]
//             [--check-metrics <file>] [--fail-on-orphans]
//
//   --trace-tree     reconstructed span tree per job (trace/span/parent ids
//                    from the scheduler's request-scoped tracing)
//   --folded         flamegraph-folded stacks (path;path;... count), ready
//                    for flamegraph.pl / speedscope
//   --latency        per-backend latency percentiles (exact order stats)
//   --slo            SLO compliance report against --slo-ms
//   --convergence    anytime-convergence report: per-job incumbent timelines
//                    (size vs deterministic work), primal-bound gap closure,
//                    and portfolio race summaries, reconstructed from the
//                    incumbent/bound/job events alone
//   --convergence-timing adds wall-clock columns and the seq-ordered race
//                    lead-change line to --convergence (off by default: the
//                    default report is byte-stable across reruns)
//   --health         health-subsystem summary: breaker transition counts per
//                    backend and edge, watchdog kills per backend, admission
//                    sheds per reason — counts only, so two same-seed
//                    single-worker chaos runs render byte-identically
//   --check-metrics  validates an OpenMetrics exposition with the in-repo
//                    checker (TYPE declarations, charset, cumulative
//                    buckets, # EOF)
//   --journal        cross-checks the WAL against the event stream: every
//                    journaled job must appear as a job_end or job_replayed
//   --fail-on-orphans exits 1 when any span's parent is missing from its
//                    trace (a broken trace-context propagation)
//
// Tree, folded and (default) convergence outputs carry counts only — no
// wall-clock — so two same-seed runs produce byte-identical files and CI can
// diff them.
//
// Every run also validates the stream itself: incumbent timelines must
// improve strictly and monotonically, bound timelines must tighten, seq
// stamps must not repeat (each EmitLocked line carries a process-wide
// monotonic "seq"; duplicates mean two sinks clobbered each other), and the
// health events must be consistent — breaker transitions replay as a legal
// walk of the state machine (no open->closed without a half_open probe) and
// no watchdog kill is sequenced after its job's job_end.
//
// Exit codes: 0 ok, 1 validation failure (orphans/malformed metrics/journal
// mismatch/incumbent or seq violations), 2 usage error, 3 unreadable or
// unwritable input/output (missing events file, bad journal path, ...).

#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "qplex/qplex.h"

namespace qplex {
namespace {

struct ObsOptions {
  std::string events;
  std::string journal;
  std::string trace_tree;
  std::string folded;
  std::string latency;
  std::string slo;
  double slo_ms = 0;
  std::string convergence;
  bool convergence_timing = false;
  std::string health;
  std::string check_metrics;
  bool fail_on_orphans = false;
};

void PrintUsage() {
  std::cerr << "usage: qplex_obs --events <file> [--journal <file>]\n"
               "                 [--trace-tree <file|->] [--folded <file|->]\n"
               "                 [--latency <file|->] "
               "[--slo <file|-> --slo-ms <float>]\n"
               "                 [--convergence <file|->] "
               "[--convergence-timing]\n"
               "                 [--health <file|->]\n"
               "                 [--check-metrics <file>] "
               "[--fail-on-orphans]\n";
}

Result<double> ParseFloat(const std::string& flag, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) {
      return Status::InvalidArgument("bad number for " + flag + ": '" + value +
                                     "'");
    }
    return parsed;
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad number for " + flag + ": '" + value +
                                   "'");
  }
}

Result<ObsOptions> ParseArgs(int argc, char** argv) {
  ObsOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--events") {
      QPLEX_ASSIGN_OR_RETURN(options.events, next());
    } else if (arg == "--journal") {
      QPLEX_ASSIGN_OR_RETURN(options.journal, next());
    } else if (arg == "--trace-tree") {
      QPLEX_ASSIGN_OR_RETURN(options.trace_tree, next());
    } else if (arg == "--folded") {
      QPLEX_ASSIGN_OR_RETURN(options.folded, next());
    } else if (arg == "--latency") {
      QPLEX_ASSIGN_OR_RETURN(options.latency, next());
    } else if (arg == "--slo") {
      QPLEX_ASSIGN_OR_RETURN(options.slo, next());
    } else if (arg == "--slo-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.slo_ms, ParseFloat(arg, value));
    } else if (arg == "--convergence") {
      QPLEX_ASSIGN_OR_RETURN(options.convergence, next());
    } else if (arg == "--convergence-timing") {
      options.convergence_timing = true;
    } else if (arg == "--health") {
      QPLEX_ASSIGN_OR_RETURN(options.health, next());
    } else if (arg == "--check-metrics") {
      QPLEX_ASSIGN_OR_RETURN(options.check_metrics, next());
    } else if (arg == "--fail-on-orphans") {
      options.fail_on_orphans = true;
    } else if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.events.empty()) {
    return Status::InvalidArgument("--events is required");
  }
  if (!options.slo.empty() && options.slo_ms <= 0) {
    return Status::InvalidArgument("--slo requires --slo-ms > 0");
  }
  return options;
}

Status WriteOutput(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return Status::Ok();
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out || !(out << text)) {
    return Status::InvalidArgument("cannot write output file: " + path);
  }
  return Status::Ok();
}

/// Journal cross-check: every journaled label must be accounted for in the
/// event stream, either as a completed job_end or a job_replayed line.
Result<std::vector<std::string>> JournalMismatches(
    const std::string& path, const obs::EventLog& log) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open journal: " + path);
  }
  std::set<std::string> seen;
  for (const obs::JobRecord& job : log.jobs) {
    seen.insert(job.label);
  }
  for (const std::string& label : log.replayed_labels) {
    seen.insert(label);
  }
  std::vector<std::string> missing;
  std::string text;
  while (std::getline(in, text)) {
    auto parsed = obs::JsonValue::Parse(text);
    if (!parsed.ok() || !parsed.value().is_object()) {
      break;  // torn tail: the valid-prefix rule, same as --resume
    }
    const obs::JsonValue* label = parsed.value().Find("label");
    if (label == nullptr || !label->is_string()) {
      break;
    }
    if (seen.find(label->AsString()) == seen.end()) {
      missing.push_back(label->AsString());
    }
  }
  return missing;
}

int Main(int argc, char** argv) {
  const Result<ObsOptions> options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::cerr << options.status() << "\n";
    PrintUsage();
    return 2;
  }
  const ObsOptions& opts = options.value();

  Result<obs::EventLog> loaded = obs::LoadEventLog(opts.events);
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n"
              << "qplex_obs: cannot analyze '" << opts.events
              << "' — pass the --events JSONL produced by a run with "
                 "QPLEX_EVENTS set (or qplex_serve --events)\n";
    return 3;
  }
  const obs::EventLog& log = loaded.value();
  const std::vector<obs::TraceSummary> forest = obs::BuildTraceForest(log);
  const std::size_t orphans = obs::CountOrphans(forest);

  if (!opts.trace_tree.empty()) {
    const Status written =
        WriteOutput(opts.trace_tree, obs::FormatTraceForest(forest));
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 3;
    }
  }
  if (!opts.folded.empty()) {
    const Status written =
        WriteOutput(opts.folded, obs::FormatFoldedStacks(forest));
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 3;
    }
  }
  if (!opts.latency.empty()) {
    const Status written =
        WriteOutput(opts.latency, obs::FormatLatencyReport(log));
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 3;
    }
  }
  if (!opts.slo.empty()) {
    const Status written =
        WriteOutput(opts.slo, obs::FormatSloReport(log, opts.slo_ms));
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 3;
    }
  }
  if (!opts.convergence.empty()) {
    obs::ConvergenceOptions convergence_options;
    convergence_options.include_timing = opts.convergence_timing;
    const Status written = WriteOutput(
        opts.convergence,
        obs::FormatConvergenceReport(log, convergence_options));
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 3;
    }
  }

  if (!opts.health.empty()) {
    const Status written =
        WriteOutput(opts.health, obs::FormatHealthReport(log));
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 3;
    }
  }

  int failures = 0;
  const Status health_checked = obs::ValidateHealthEvents(log);
  if (!health_checked.ok()) {
    std::cerr << "health check FAILED: " << health_checked.message() << "\n";
    ++failures;
  }
  const std::vector<std::string> incumbent_violations =
      obs::ValidateIncumbents(log);
  if (!incumbent_violations.empty()) {
    std::cerr << "incumbent check FAILED: " << incumbent_violations.size()
              << " violation(s):\n";
    for (const std::string& violation : incumbent_violations) {
      std::cerr << "  " << violation << "\n";
    }
    ++failures;
  }
  if (log.seq_duplicates > 0) {
    std::cerr << "seq check FAILED: " << log.seq_duplicates
              << " duplicate seq stamp(s) — two event sinks clobbered each "
                 "other's lines\n";
    ++failures;
  }
  if (!opts.check_metrics.empty()) {
    std::ifstream in(opts.check_metrics);
    if (!in) {
      std::cerr << "cannot open metrics file: " << opts.check_metrics << "\n";
      return 3;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const Status checked = obs::CheckOpenMetrics(buffer.str());
    if (!checked.ok()) {
      std::cerr << "openmetrics check FAILED: " << checked.message() << "\n";
      ++failures;
    } else {
      std::cerr << "openmetrics check ok: " << opts.check_metrics << "\n";
    }
  }
  if (!opts.journal.empty()) {
    Result<std::vector<std::string>> missing =
        JournalMismatches(opts.journal, log);
    if (!missing.ok()) {
      std::cerr << missing.status() << "\n";
      return 3;
    }
    if (!missing.value().empty()) {
      std::cerr << "journal check FAILED: " << missing.value().size()
                << " journaled job(s) missing from the event stream:";
      for (const std::string& label : missing.value()) {
        std::cerr << " " << label;
      }
      std::cerr << "\n";
      ++failures;
    } else {
      std::cerr << "journal check ok: " << opts.journal << "\n";
    }
  }
  if (orphans > 0) {
    std::cerr << "orphan spans: " << orphans << "\n";
    if (opts.fail_on_orphans) {
      ++failures;
    }
  }

  std::cerr << "events=" << log.lines << " malformed=" << log.malformed
            << " traces=" << forest.size() << " jobs=" << log.jobs.size()
            << " replayed=" << log.replayed_labels.size()
            << " retries=" << log.retries << " fallbacks=" << log.fallbacks
            << " orphans=" << orphans << " incumbents=" << log.incumbents.size()
            << " bounds=" << log.bounds.size()
            << " breaker_transitions=" << log.breaker_transitions.size()
            << " watchdog_kills=" << log.watchdog_kills.size()
            << " sheds=" << log.sheds.size()
            << " seq_missing=" << log.seq_missing
            << " seq_gaps=" << log.seq_gaps << "\n";
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace qplex

int main(int argc, char** argv) { return qplex::Main(argc, argv); }
