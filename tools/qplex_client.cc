// Blocking loopback client for qplex_serve --listen: sends JSONL request
// lines, collects one JSON response line per request, and (optionally)
// records or replays connection scripts for the determinism contract.
//
//   qplex_client --port <int> (--requests <file|-> | --replay <script>)
//                [--mode lockstep|pipeline] [--connections <int>]
//                [--out <file|->] [--out-dir <dir>]
//                [--record <script>] [--disconnect-after <int>]
//                [--request-timeout-ms <int>]
//
// --request-timeout-ms bounds the wait for each individual response
// (--timeout-ms is accepted as an alias). On a timeout the client exits 3
// (vs 1 for other connection failures, 2 for usage errors) and reports how
// many requests each failed connection had sent and how many responses it
// had received — the responses that did arrive are already in --out, so a
// partially-hung server still yields its partial results.
//
// Modes:
//   lockstep  one request in flight per connection: send a line, wait for
//             its response, repeat. The default, and the deterministic one.
//   pipeline  each connection writes all of its requests first, then reads
//             all of the responses — exercises the server's frame splitter
//             (many lines per read) and write coalescing.
//
// --connections N opens N concurrent connections (threads) and deals the
// request lines round-robin across them, so a multi-client test gets
// disjoint labels per connection. Responses land in --out-dir/conn-<i>.jsonl
// per connection, or interleave into --out (stdout by default).
//
// Determinism contract (DESIGN.md section 14): --record <script> tightens
// lockstep mode to ONE request in flight across ALL connections (a global
// turnstile) and appends each request line to the script in that global
// order. Because the server admits requests in arrival order and journals in
// admission order, the script order IS the journal order. Replaying it —
// `qplex_client --replay script` (single connection, lockstep) — therefore
// reproduces a byte-identical --journal WAL on a fresh server.
//
// --disconnect-after N closes the connection abruptly after sending N
// requests without reading the remaining responses — chaos input for the
// server's dropped-response path (exit stays 0; the disconnect is the test).

#include <cstring>
#include <deque>
#include <fcntl.h>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <poll.h>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "net/io.h"

namespace qplex {
namespace {

struct ClientOptions {
  int port = -1;
  std::string requests;  // request lines; "-" = stdin
  std::string replay;    // recorded script to replay (single connection)
  std::string record;    // script to write (forces global lockstep)
  std::string mode = "lockstep";
  int connections = 1;
  std::string out = "-";  // single response stream ("-" = stdout)
  std::string out_dir;    // per-connection response files
  int disconnect_after = -1;  // sends before an abrupt close; -1 = never
  int timeout_ms = 30000;     // per-response receive timeout
                              // (--request-timeout-ms / --timeout-ms)
};

void PrintUsage() {
  std::cerr
      << "usage: qplex_client --port <int> (--requests <file|-> | "
         "--replay <script>)\n"
         "                    [--mode lockstep|pipeline] "
         "[--connections <int>]\n"
         "                    [--out <file|->] [--out-dir <dir>]\n"
         "                    [--record <script>] "
         "[--disconnect-after <int>]\n"
         "                    [--request-timeout-ms <int>]\n";
}

Result<int> ParseIntFlag(const std::string& flag, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const int parsed = std::stoi(value, &consumed);
    if (consumed != value.size()) {
      return Status::InvalidArgument("bad integer for " + flag + ": '" +
                                     value + "'");
    }
    return parsed;
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad integer for " + flag + ": '" + value +
                                   "'");
  }
}

Result<ClientOptions> ParseArgs(int argc, char** argv) {
  ClientOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--port") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.port, ParseIntFlag(arg, value));
    } else if (arg == "--requests") {
      QPLEX_ASSIGN_OR_RETURN(options.requests, next());
    } else if (arg == "--replay") {
      QPLEX_ASSIGN_OR_RETURN(options.replay, next());
    } else if (arg == "--record") {
      QPLEX_ASSIGN_OR_RETURN(options.record, next());
    } else if (arg == "--mode") {
      QPLEX_ASSIGN_OR_RETURN(options.mode, next());
      if (options.mode != "lockstep" && options.mode != "pipeline") {
        return Status::InvalidArgument("--mode must be lockstep or pipeline");
      }
    } else if (arg == "--connections") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.connections, ParseIntFlag(arg, value));
    } else if (arg == "--out") {
      QPLEX_ASSIGN_OR_RETURN(options.out, next());
    } else if (arg == "--out-dir") {
      QPLEX_ASSIGN_OR_RETURN(options.out_dir, next());
    } else if (arg == "--disconnect-after") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.disconnect_after,
                             ParseIntFlag(arg, value));
    } else if (arg == "--request-timeout-ms" || arg == "--timeout-ms") {
      QPLEX_ASSIGN_OR_RETURN(std::string value, next());
      QPLEX_ASSIGN_OR_RETURN(options.timeout_ms, ParseIntFlag(arg, value));
    } else if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.port < 1 || options.port > 65535) {
    return Status::InvalidArgument("--port must be in [1, 65535]");
  }
  if (options.requests.empty() == options.replay.empty()) {
    return Status::InvalidArgument(
        "exactly one of --requests and --replay is required");
  }
  if (!options.replay.empty()) {
    // Replay IS the deterministic run: one connection, one in flight.
    if (options.connections != 1 || options.mode != "lockstep" ||
        !options.record.empty()) {
      return Status::InvalidArgument(
          "--replay implies a single lockstep connection and cannot "
          "re-record");
    }
    options.requests = options.replay;
  }
  if (!options.record.empty() && options.mode != "lockstep") {
    return Status::InvalidArgument(
        "--record requires --mode lockstep (the script must be a total "
        "admission order)");
  }
  if (options.connections < 1) {
    return Status::InvalidArgument("--connections must be >= 1");
  }
  if (options.connections > 1 && options.out_dir.empty()) {
    return Status::InvalidArgument("--connections > 1 requires --out-dir");
  }
  if (options.timeout_ms < 1) {
    return Status::InvalidArgument("--request-timeout-ms must be >= 1");
  }
  return options;
}

/// EINTR-safe whole-file slurp (stdin for "-").
Result<std::string> SlurpFile(const std::string& path) {
  int fd = 0;
  if (path != "-") {
    do {
      fd = ::open(path.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      return Status::NotFound("cannot open file: " + path);
    }
  }
  std::string text;
  char buffer[64 * 1024];
  while (true) {
    const net::IoResult got = net::ReadFd(fd, buffer, sizeof(buffer));
    if (got.state == net::IoState::kClosed) {
      break;
    }
    if (got.state != net::IoState::kOk) {
      if (path != "-") {
        net::CloseFd(fd);
      }
      return Status::Internal("read failed on " + path);
    }
    text.append(buffer, got.bytes);
  }
  if (path != "-") {
    net::CloseFd(fd);
  }
  return text;
}

/// Loads request lines, skipping blanks and '#' comments — the same skip
/// rule the server applies, so lockstep accounting (one response per sent
/// line) stays balanced.
Result<std::vector<std::string>> LoadRequestLines(const std::string& path) {
  QPLEX_ASSIGN_OR_RETURN(const std::string text, SlurpFile(path));
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    lines.push_back(line);
  }
  return lines;
}

/// Writes `line` + '\n' fully to the (blocking) socket.
Status SendLine(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const net::IoResult wrote =
        net::WriteFd(fd, framed.data() + sent, framed.size() - sent);
    if (wrote.state == net::IoState::kClosed) {
      return Status::Internal("server closed the connection mid-request");
    }
    if (wrote.state == net::IoState::kError) {
      return Status::Internal("socket write failed: " +
                              std::string(std::strerror(wrote.errno_value)));
    }
    sent += wrote.bytes;
  }
  return Status::Ok();
}

/// Reads complete response lines off one connection. Lines already buffered
/// in `splitter` are served first; otherwise the socket is polled with a
/// fresh `timeout_ms` budget per line.
class ResponseReader {
 public:
  ResponseReader(int fd, int timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}

  Result<std::string> NextLine() {
    while (true) {
      std::string line;
      if (splitter_.Next(&line)) {
        return line;
      }
      if (closed_) {
        return Status::Internal(
            "server closed the connection before all responses arrived");
      }
      pollfd waiter{};
      waiter.fd = fd_;
      waiter.events = POLLIN;
      const int ready = net::PollFds(&waiter, 1, timeout_ms_);
      if (ready < 0) {
        return Status::Internal("poll failed: " +
                                std::string(std::strerror(errno)));
      }
      if (ready == 0) {
        return Status::DeadlineExceeded(
            "timed out waiting for a response after " +
            std::to_string(timeout_ms_) + " ms");
      }
      char buffer[16 * 1024];
      const net::IoResult got = net::ReadFd(fd_, buffer, sizeof(buffer));
      if (got.state == net::IoState::kClosed) {
        closed_ = true;
        continue;  // drain any complete lines already buffered, then error
      }
      if (got.state == net::IoState::kError) {
        return Status::Internal("socket read failed: " +
                                std::string(std::strerror(got.errno_value)));
      }
      if (got.state == net::IoState::kOk) {
        QPLEX_RETURN_IF_ERROR(
            splitter_.Feed(std::string_view(buffer, got.bytes)));
      }
    }
  }

 private:
  int fd_;
  int timeout_ms_;
  net::FrameSplitter splitter_;
  bool closed_ = false;
};

/// Serializes record-mode exchanges: while a script is being recorded, only
/// one request may be in flight across every connection, and completed
/// request lines append to the script inside the same critical section.
struct Recorder {
  std::mutex mutex;
  std::ofstream script;
};

struct ConnectionTask {
  int index = 0;
  std::vector<std::string> lines;
  Status status = Status::Ok();
  std::size_t sent = 0;      ///< request lines written before stopping
  std::size_t received = 0;  ///< response lines landed in --out
};

void RunConnection(const ClientOptions& options, ConnectionTask* task,
                   Recorder* recorder, std::ostream* out) {
  Result<int> connected = net::ConnectLoopback(options.port);
  if (!connected.ok()) {
    task->status = connected.status();
    return;
  }
  const int fd = connected.value();
  ResponseReader reader(fd, options.timeout_ms);
  std::size_t sent = 0;
  Status status = Status::Ok();

  if (options.mode == "pipeline") {
    for (const std::string& line : task->lines) {
      if (options.disconnect_after >= 0 &&
          sent >= static_cast<std::size_t>(options.disconnect_after)) {
        break;
      }
      status = SendLine(fd, line);
      if (!status.ok()) {
        break;
      }
      ++sent;
    }
    const bool disconnected =
        options.disconnect_after >= 0 && sent < task->lines.size();
    if (status.ok() && !disconnected) {
      for (std::size_t i = 0; i < sent; ++i) {
        Result<std::string> response = reader.NextLine();
        if (!response.ok()) {
          status = response.status();
          break;
        }
        *out << response.value() << "\n";
        ++task->received;
      }
    }
  } else {
    for (const std::string& line : task->lines) {
      if (options.disconnect_after >= 0 &&
          sent >= static_cast<std::size_t>(options.disconnect_after)) {
        break;
      }
      std::unique_lock<std::mutex> turnstile;
      if (recorder != nullptr) {
        turnstile = std::unique_lock<std::mutex>(recorder->mutex);
      }
      status = SendLine(fd, line);
      if (!status.ok()) {
        break;
      }
      ++sent;
      Result<std::string> response = reader.NextLine();
      if (!response.ok()) {
        status = response.status();
        break;
      }
      if (recorder != nullptr) {
        recorder->script << line << "\n" << std::flush;
      }
      *out << response.value() << "\n";
      ++task->received;
    }
  }
  net::CloseFd(fd);
  out->flush();
  task->sent = sent;
  task->status = status;
}

int Main(int argc, char** argv) {
  net::IgnoreSigpipe();  // a server hangup must be a Status, not a signal
  const Result<ClientOptions> parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    PrintUsage();
    return 2;
  }
  const ClientOptions& options = parsed.value();

  Result<std::vector<std::string>> lines = LoadRequestLines(options.requests);
  if (!lines.ok()) {
    std::cerr << "failed to read requests: " << lines.status() << "\n";
    return 2;
  }

  // Deal the request lines round-robin across the connections, preserving
  // relative order within each.
  std::vector<ConnectionTask> tasks(options.connections);
  for (int i = 0; i < options.connections; ++i) {
    tasks[i].index = i;
  }
  for (std::size_t i = 0; i < lines.value().size(); ++i) {
    tasks[i % tasks.size()].lines.push_back(lines.value()[i]);
  }

  std::unique_ptr<Recorder> recorder;
  if (!options.record.empty()) {
    recorder = std::make_unique<Recorder>();
    recorder->script.open(options.record, std::ios::trunc);
    if (!recorder->script) {
      std::cerr << "cannot open record script: " << options.record << "\n";
      return 2;
    }
  }

  std::vector<std::unique_ptr<std::ofstream>> files;
  std::vector<std::ostream*> outs(tasks.size(), nullptr);
  if (!options.out_dir.empty()) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      auto file = std::make_unique<std::ofstream>(
          options.out_dir + "/conn-" + std::to_string(i) + ".jsonl",
          std::ios::trunc);
      if (!*file) {
        std::cerr << "cannot open response file in " << options.out_dir
                  << "\n";
        return 2;
      }
      outs[i] = file.get();
      files.push_back(std::move(file));
    }
  } else if (options.out == "-") {
    outs[0] = &std::cout;
  } else {
    auto file = std::make_unique<std::ofstream>(options.out, std::ios::trunc);
    if (!*file) {
      std::cerr << "cannot open response file: " << options.out << "\n";
      return 2;
    }
    outs[0] = file.get();
    files.push_back(std::move(file));
  }

  if (tasks.size() == 1) {
    RunConnection(options, &tasks[0], recorder.get(), outs[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      threads.emplace_back([&, i] {
        RunConnection(options, &tasks[i], recorder.get(), outs[i]);
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  // Partial-results report: a failed connection says how far it got — the
  // responses it did receive are already flushed to --out, so the caller
  // keeps them. A timeout gets its own exit code (3) so scripts can tell a
  // hung server from a hangup.
  int failures = 0;
  bool timed_out = false;
  for (const ConnectionTask& task : tasks) {
    if (task.status.ok()) {
      continue;
    }
    ++failures;
    if (task.status.code() == StatusCode::kDeadlineExceeded) {
      timed_out = true;
    }
    std::cerr << "conn-" << task.index << ": " << task.status << "\n";
    std::cerr << "conn-" << task.index << ": partial results: sent "
              << task.sent << "/" << task.lines.size() << " request(s), "
              << "received " << task.received << " response(s)\n";
  }
  if (failures == 0) {
    return 0;
  }
  return timed_out ? 3 : 1;
}

}  // namespace
}  // namespace qplex

int main(int argc, char** argv) { return qplex::Main(argc, argv); }
