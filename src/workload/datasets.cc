#include "workload/datasets.h"

#include "graph/generators.h"

namespace qplex {

Result<Graph> MakeDataset(const DatasetSpec& spec) {
  return RandomGnm(spec.num_vertices, spec.num_edges, spec.seed);
}

// Seeds below were calibrated offline (tools/seed_search) so that the
// instances reproduce the optimum sizes the paper reports for its synthetic
// datasets; see EXPERIMENTS.md.
const std::vector<DatasetSpec>& GateModelDatasets() {
  static const auto* datasets = new std::vector<DatasetSpec>{
      {"G_{7,8}", 7, 8, 1},
      {"G_{8,10}", 8, 10, 1},
      {"G_{9,15}", 9, 15, 2},
      {"G_{10,23}", 10, 23, 3},
  };
  return *datasets;
}

const DatasetSpec& GateModelKSweepDataset() {
  // No uniform G(10, 37) draw attains the paper's max 2-plex of 6 (a graph
  // that dense virtually always contains larger plexes); seed 29 gives the
  // flattest size profile across k = 2..5 (8, 9, 9, 9), preserving Table
  // IV's "k has little effect" shape. Deviation recorded in EXPERIMENTS.md.
  static const auto* dataset = new DatasetSpec{"G_{10,37}", 10, 37, 29};
  return *dataset;
}

const std::vector<DatasetSpec>& AnnealDatasets() {
  static const auto* datasets = new std::vector<DatasetSpec>{
      {"D_{10,40}", 10, 40, 101},
      {"D_{15,70}", 15, 70, 101},
      {"D_{20,100}", 20, 100, 101},
      {"D_{30,300}", 30, 300, 101},
  };
  return *datasets;
}

std::vector<DatasetSpec> ChainSweepDatasets() {
  std::vector<DatasetSpec> datasets;
  for (int n = 10; n <= 43; n += 3) {
    DatasetSpec spec;
    spec.num_vertices = n;
    spec.num_edges = n * (n - 1) / 4;
    spec.seed = 200 + static_cast<std::uint64_t>(n);
    spec.name = "C_{" + std::to_string(n) + "," +
                std::to_string(spec.num_edges) + "}";
    datasets.push_back(spec);
  }
  return datasets;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : GateModelDatasets()) {
    if (spec.name == name) {
      return spec;
    }
  }
  if (GateModelKSweepDataset().name == name) {
    return GateModelKSweepDataset();
  }
  for (const DatasetSpec& spec : AnnealDatasets()) {
    if (spec.name == name) {
      return spec;
    }
  }
  for (const DatasetSpec& spec : ChainSweepDatasets()) {
    if (spec.name == name) {
      return spec;
    }
  }
  return Status::NotFound("no dataset named " + name);
}

}  // namespace qplex
