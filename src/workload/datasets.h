#ifndef QPLEX_WORKLOAD_DATASETS_H_
#define QPLEX_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace qplex {

/// A named synthetic dataset G_{n,m} / D_{n,m} from the paper's evaluation.
/// Every instance is a deterministic seeded G(n, m) draw, so each run of the
/// harnesses regenerates byte-identical graphs.
struct DatasetSpec {
  std::string name;
  int num_vertices = 0;
  int num_edges = 0;
  std::uint64_t seed = 0;
};

/// Materializes the graph of a spec.
Result<Graph> MakeDataset(const DatasetSpec& spec);

/// The gate-model evaluation datasets of Table III: G_{7,8}, G_{8,10},
/// G_{9,15}, G_{10,23}. Seeds are calibrated so the maximum 2-plex sizes
/// match the paper's reported 4, 4, 5, 6.
const std::vector<DatasetSpec>& GateModelDatasets();

/// The k-sweep dataset of Table IV: G_{10,37} (max k-plex sizes 6,6,6,7 for
/// k = 2..5 in the paper; seed calibrated accordingly).
const DatasetSpec& GateModelKSweepDataset();

/// The annealing evaluation datasets of Tables VI-VIII and Figs. 10-11:
/// D_{10,40}, D_{15,70}, D_{20,100}, D_{30,300}.
const std::vector<DatasetSpec>& AnnealDatasets();

/// The chain-statistics sweep of Fig. 12: n = 10..43 at half density
/// (m = n(n-1)/4), which reproduces the paper's variable counts
/// (~40 at n=10 up to ~258 at n=43).
std::vector<DatasetSpec> ChainSweepDatasets();

/// Looks a dataset up by name across all registries above.
Result<DatasetSpec> FindDataset(const std::string& name);

}  // namespace qplex

#endif  // QPLEX_WORKLOAD_DATASETS_H_
