#include "anneal/hybrid_solver.h"

#include <algorithm>
#include <cmath>

#include "anneal/simulated_annealer.h"
#include "common/stopwatch.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex {

int SteepestDescent(const QuboModel& model, QuboSample* sample) {
  QPLEX_CHECK(sample != nullptr &&
              static_cast<int>(sample->size()) == model.num_variables())
      << "sample arity mismatch";
  int flips = 0;
  for (;;) {
    int best_var = -1;
    double best_delta = -1e-12;  // strict improvement only
    for (int i = 0; i < model.num_variables(); ++i) {
      const double delta = model.FlipDelta(*sample, i);
      if (delta < best_delta) {
        best_delta = delta;
        best_var = i;
      }
    }
    if (best_var < 0) {
      return flips;
    }
    (*sample)[best_var] ^= 1;
    ++flips;
  }
}

Result<AnnealResult> HybridSolver::Run(const QuboModel& model) const {
  if (options_.min_runtime_micros <= 0 || options_.sweeps_per_restart < 1) {
    return Status::InvalidArgument("bad hybrid solver options");
  }
  obs::TraceSpan span("anneal.hybrid");
  obs::ProgressHeartbeat heartbeat("anneal.hybrid");
  const Deadline deadline = options_.time_limit_seconds > 0
                                ? Deadline::After(options_.time_limit_seconds)
                                : Deadline::Infinite();
  Stopwatch watch;
  AnnealResult result;
  Rng rng(options_.seed);
  std::int64_t polish_flips = 0;
  std::int64_t basin_hops = 0;

  SimulatedAnnealerOptions sa_options;
  sa_options.sweeps_per_shot = options_.sweeps_per_restart;
  sa_options.shots = 1;
  sa_options.beta_final = 8.0;
  sa_options.micros_per_sweep = options_.micros_per_sweep;
  sa_options.cancel = options_.cancel;

  while (result.modeled_micros < options_.min_runtime_micros &&
         result.shots < options_.max_restarts) {
    if (StopRequested(deadline, options_.cancel)) {
      result.completed = false;
      break;
    }
    // Inner restarts inherit whatever wall-clock budget remains, so expiry is
    // detected at SA sweep granularity rather than between restarts.
    if (options_.time_limit_seconds > 0) {
      sa_options.time_limit_seconds =
          std::max(deadline.RemainingSeconds(), 1e-9);
    }
    sa_options.seed = rng.Next();
    SimulatedAnnealer annealer(sa_options);
    QPLEX_ASSIGN_OR_RETURN(AnnealResult restart, annealer.Run(model));
    if (!restart.completed) {
      result.completed = false;
    }
    QuboSample polished = restart.best_sample;
    int flips = SteepestDescent(model, &polished);
    if (options_.refine) {
      options_.refine(&polished);
      flips += SteepestDescent(model, &polished);
    }
    polish_flips += flips;
    result.sweeps += restart.sweeps + flips;  // polish counted as sweeps
    result.modeled_micros +=
        restart.modeled_micros + flips * options_.micros_per_sweep;
    ++result.shots;
    anneal_internal::RecordSample(model, polished, result.modeled_micros,
                                  &result, &heartbeat, &options_.hooks);
    if (!result.completed) {
      break;  // budget exhausted mid-restart; keep the polished incumbent
    }

    // Basin hopping around the incumbent: perturb a few bits of the best
    // sample and re-polish. This is the "classical supercomputing" half of
    // the hybrid service's portfolio.
    QuboSample hop = result.best_sample;
    const int kicks = 2 + static_cast<int>(rng.UniformInt(3));
    for (int kick = 0; kick < kicks; ++kick) {
      hop[rng.UniformInt(static_cast<std::uint64_t>(hop.size()))] ^= 1;
    }
    int hop_flips = SteepestDescent(model, &hop);
    if (options_.refine) {
      options_.refine(&hop);
      hop_flips += SteepestDescent(model, &hop);
    }
    polish_flips += hop_flips;
    ++basin_hops;
    result.sweeps += hop_flips;
    result.modeled_micros += hop_flips * options_.micros_per_sweep;
    anneal_internal::RecordSample(model, hop, result.modeled_micros, &result,
                                  &heartbeat, &options_.hooks);
  }
  // The service returns no earlier than its runtime floor.
  result.modeled_micros =
      std::max(result.modeled_micros, options_.min_runtime_micros);
  if (!result.trace.empty()) {
    result.trace.back().budget_micros = result.modeled_micros;
  }
  result.wall_seconds = watch.ElapsedSeconds();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("anneal.hybrid.runs").Increment();
  registry.GetCounter("anneal.hybrid.restarts").Add(result.shots);
  registry.GetCounter("anneal.hybrid.basin_hops").Add(basin_hops);
  registry.GetCounter("anneal.hybrid.polish_flips").Add(polish_flips);
  registry.GetGauge("anneal.hybrid.best_energy").SetMin(result.best_energy);
  return result;
}

}  // namespace qplex
