#include "anneal/simulated_annealer.h"

#include <cmath>

#include "common/stopwatch.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex {

Result<AnnealResult> SimulatedAnnealer::Run(const QuboModel& model) const {
  if (options_.shots < 1 || options_.sweeps_per_shot < 1) {
    return Status::InvalidArgument("shots and sweeps must be positive");
  }
  if (options_.beta_initial <= 0 ||
      options_.beta_final < options_.beta_initial) {
    return Status::InvalidArgument("need 0 < beta_initial <= beta_final");
  }
  obs::TraceSpan span("anneal.sa");
  obs::ProgressHeartbeat heartbeat("anneal.sa");
  const int n = model.num_variables();
  const Deadline deadline = options_.time_limit_seconds > 0
                                ? Deadline::After(options_.time_limit_seconds)
                                : Deadline::Infinite();
  Stopwatch watch;
  AnnealResult result;
  Rng rng(options_.seed);
  std::int64_t moves_accepted = 0;  // flushed to the registry once at the end

  // Geometric beta ladder shared by every shot.
  std::vector<double> betas(options_.sweeps_per_shot);
  const double ratio =
      options_.sweeps_per_shot == 1
          ? 1.0
          : std::pow(options_.beta_final / options_.beta_initial,
                     1.0 / (options_.sweeps_per_shot - 1));
  double beta = options_.beta_initial;
  for (int s = 0; s < options_.sweeps_per_shot; ++s) {
    betas[s] = beta;
    beta *= ratio;
  }

  for (int shot = 0; shot < options_.shots && result.completed; ++shot) {
    QuboSample sample = anneal_internal::RandomSample(n, rng);
    for (int sweep = 0; sweep < options_.sweeps_per_shot; ++sweep) {
      if (StopRequested(deadline, options_.cancel)) {
        result.completed = false;
        break;
      }
      const double b = betas[sweep];
      for (int i = 0; i < n; ++i) {
        const double delta = model.FlipDelta(sample, i);
        if (delta <= 0 || rng.UniformDouble() < std::exp(-b * delta)) {
          sample[i] ^= 1;
          ++moves_accepted;
        }
      }
      ++result.sweeps;
    }
    ++result.shots;
    result.modeled_micros +=
        options_.micros_per_sweep * options_.sweeps_per_shot;
    anneal_internal::RecordSample(model, sample, result.modeled_micros,
                                  &result, &heartbeat, &options_.hooks);
  }
  result.wall_seconds = watch.ElapsedSeconds();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("anneal.sa.runs").Increment();
  registry.GetCounter("anneal.sa.shots").Add(result.shots);
  registry.GetCounter("anneal.sa.sweeps").Add(result.sweeps);
  registry.GetCounter("anneal.sa.moves_proposed")
      .Add(result.sweeps * static_cast<std::int64_t>(n));
  registry.GetCounter("anneal.sa.moves_accepted").Add(moves_accepted);
  registry.GetGauge("anneal.sa.best_energy").SetMin(result.best_energy);
  return result;
}

}  // namespace qplex
