#ifndef QPLEX_ANNEAL_ANNEALER_H_
#define QPLEX_ANNEAL_ANNEALER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/events.h"
#include "qubo/qubo_model.h"

namespace qplex {

/// One point on an anytime cost curve: best energy seen after spending
/// `budget_micros` of modeled annealer time.
struct CostTracePoint {
  double budget_micros = 0;
  double energy = 0;
};

/// Common result type of every annealing-style solver.
struct AnnealResult {
  QuboSample best_sample;
  double best_energy = 0;
  /// False when the run stopped early (deadline expired or cancellation
  /// requested) and the result is the incumbent at that point, not the full
  /// budget's outcome.
  bool completed = true;
  /// Total shots (independent anneals) performed.
  int shots = 0;
  /// Monte Carlo sweeps executed in total.
  std::int64_t sweeps = 0;
  /// Modeled annealer time consumed (shots x per-shot annealing time).
  double modeled_micros = 0;
  /// Wall-clock seconds the simulation itself took.
  double wall_seconds = 0;
  /// Anytime curve: best energy after each shot's worth of modeled time.
  std::vector<CostTracePoint> trace;
};

/// Observer callbacks shared by every annealing-style solver. All optional;
/// invoked synchronously on the annealing thread.
struct AnnealHooks {
  /// Fires whenever the run's best energy strictly improves, with the sweep
  /// count spent so far — the deterministic work axis of the anytime curve.
  /// Service adapters repair the sample to a k-plex here and feed the
  /// incumbent timeline.
  std::function<void(const QuboSample& sample, double energy,
                     std::int64_t sweeps)>
      on_new_best;
};

/// Shared base utilities for the annealers.
namespace anneal_internal {

/// Updates `result` with a candidate sample; appends a trace point at
/// `budget_micros`. When `heartbeat` is non-null and due, also emits a
/// progress event (best energy, shots, modeled budget) into the global
/// event stream — the live view of the anytime cost curve. When `hooks` is
/// non-null, a strict best-energy improvement fires hooks->on_new_best.
void RecordSample(const QuboModel& model, const QuboSample& sample,
                  double budget_micros, AnnealResult* result,
                  obs::ProgressHeartbeat* heartbeat = nullptr,
                  const AnnealHooks* hooks = nullptr);

/// A deterministic random initial sample.
QuboSample RandomSample(int num_variables, Rng& rng);

}  // namespace anneal_internal

}  // namespace qplex

#endif  // QPLEX_ANNEAL_ANNEALER_H_
