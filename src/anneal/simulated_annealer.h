#ifndef QPLEX_ANNEAL_SIMULATED_ANNEALER_H_
#define QPLEX_ANNEAL_SIMULATED_ANNEALER_H_

#include <cstdint>

#include "anneal/annealer.h"
#include "common/cancel.h"

namespace qplex {

/// Classical simulated annealing over a QUBO — the paper's "SA" baseline.
/// Runtime is controlled exactly as in the paper: a fixed number of sweeps
/// per shot and a shot count (Section V, comparison setup: "we fix the number
/// of sweeps to 2 and vary s").
struct SimulatedAnnealerOptions {
  int sweeps_per_shot = 2;
  int shots = 100;
  /// Inverse-temperature schedule: beta rises geometrically from beta_initial
  /// to beta_final across the sweeps of one shot.
  double beta_initial = 0.1;
  double beta_final = 5.0;
  /// Modeled time one sweep costs, for the anytime curves (micros).
  double micros_per_sweep = 1.0;
  /// Wall-clock budget; <= 0 is unlimited. Checked every sweep, so a 1 ms
  /// deadline stops the run promptly; the incumbent is returned with
  /// `AnnealResult::completed == false`.
  double time_limit_seconds = 0;
  /// Optional cooperative cancellation (service portfolio races); polled
  /// together with the deadline. May be null.
  const CancelToken* cancel = nullptr;
  std::uint64_t seed = 1;
  /// Observer callbacks (best-energy improvements); all optional.
  AnnealHooks hooks;
};

class SimulatedAnnealer {
 public:
  explicit SimulatedAnnealer(SimulatedAnnealerOptions options = {})
      : options_(options) {}

  /// Minimizes `model`; every shot starts from a fresh random sample.
  Result<AnnealResult> Run(const QuboModel& model) const;

 private:
  SimulatedAnnealerOptions options_;
};

}  // namespace qplex

#endif  // QPLEX_ANNEAL_SIMULATED_ANNEALER_H_
