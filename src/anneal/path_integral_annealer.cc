#include "anneal/path_integral_annealer.h"

#include <cmath>
#include <vector>

#include "common/stopwatch.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex {

Result<AnnealResult> PathIntegralAnnealer::Run(const QuboModel& model) const {
  if (options_.replicas < 2) {
    return Status::InvalidArgument("need at least 2 Trotter replicas");
  }
  if (options_.shots < 1) {
    return Status::InvalidArgument("shots must be positive");
  }
  if (options_.annealing_time_micros <= 0 || options_.sweeps_per_micro <= 0) {
    return Status::InvalidArgument("annealing time must be positive");
  }
  if (options_.beta <= 0 || options_.gamma_initial <= 0 ||
      options_.gamma_final <= 0 ||
      options_.gamma_final > options_.gamma_initial) {
    return Status::InvalidArgument("bad beta/gamma schedule");
  }

  const IsingModel ising = model.ToIsing();
  const int n = model.num_variables();
  const int P = options_.replicas;
  // Annealing time converts to sweeps only up to the device's saturation
  // point; the remainder of a long shot burns budget without improving it.
  const double effective_micros =
      std::min(options_.annealing_time_micros, options_.saturation_micros);
  const int sweeps_per_shot = std::max(
      1, static_cast<int>(
             std::lround(effective_micros * options_.sweeps_per_micro)));

  // Per-site coupling lists for O(deg) flip deltas.
  std::vector<std::vector<std::pair<int, double>>> neighbors(n);
  for (const auto& [key, weight] : ising.couplings) {
    neighbors[key.first].emplace_back(key.second, weight);
    neighbors[key.second].emplace_back(key.first, weight);
  }

  obs::TraceSpan span("anneal.sqa");
  obs::ProgressHeartbeat heartbeat("anneal.sqa");
  const Deadline deadline = options_.time_limit_seconds > 0
                                ? Deadline::After(options_.time_limit_seconds)
                                : Deadline::Infinite();
  Stopwatch watch;
  AnnealResult result;
  Rng rng(options_.seed);
  std::int64_t flips_accepted = 0;

  std::vector<std::vector<std::int8_t>> spins(
      P, std::vector<std::int8_t>(n, 1));

  for (int shot = 0; shot < options_.shots && result.completed; ++shot) {
    // Fresh random configuration for every replica.
    for (int p = 0; p < P; ++p) {
      for (int i = 0; i < n; ++i) {
        spins[p][i] = (rng.Next() & 1) ? 1 : -1;
      }
    }

    for (int sweep = 0; sweep < sweeps_per_shot; ++sweep) {
      if (StopRequested(deadline, options_.cancel)) {
        result.completed = false;
        break;
      }
      // Linear transverse-field decay within the shot.
      const double progress =
          sweeps_per_shot == 1
              ? 1.0
              : static_cast<double>(sweep) / (sweeps_per_shot - 1);
      const double gamma = options_.gamma_initial +
                           progress * (options_.gamma_final -
                                       options_.gamma_initial);
      // Ferromagnetic inter-replica coupling J_perp > 0 (stronger as the
      // transverse field decays, freezing the replicas together).
      const double j_perp =
          -0.5 / options_.beta *
          std::log(std::tanh(options_.beta * gamma / P));

      for (int p = 0; p < P; ++p) {
        const int prev = (p + P - 1) % P;
        const int next = (p + 1) % P;
        for (int i = 0; i < n; ++i) {
          // Classical part of the flip delta (divided by P: each replica
          // carries 1/P of the classical Hamiltonian).
          double local_field = ising.fields[i];
          for (const auto& [j, weight] : neighbors[i]) {
            local_field += weight * spins[p][j];
          }
          const double delta_classical =
              -2.0 * spins[p][i] * local_field / P;
          // Quantum part: alignment with the neighbouring replicas.
          const double delta_quantum =
              2.0 * j_perp * spins[p][i] *
              (spins[prev][i] + spins[next][i]);
          const double delta = delta_classical + delta_quantum;
          if (delta <= 0 ||
              rng.UniformDouble() < std::exp(-options_.beta * delta)) {
            spins[p][i] = static_cast<std::int8_t>(-spins[p][i]);
            ++flips_accepted;
          }
        }
      }
      ++result.sweeps;
    }

    // Read out the best replica of this shot.
    ++result.shots;
    result.modeled_micros += options_.annealing_time_micros;
    QuboSample sample(n);
    double best_shot_energy = 0;
    QuboSample best_shot_sample;
    for (int p = 0; p < P; ++p) {
      for (int i = 0; i < n; ++i) {
        sample[i] = spins[p][i] > 0 ? 1 : 0;
      }
      const double energy = model.Evaluate(sample);
      if (best_shot_sample.empty() || energy < best_shot_energy) {
        best_shot_energy = energy;
        best_shot_sample = sample;
      }
    }
    anneal_internal::RecordSample(model, best_shot_sample,
                                  result.modeled_micros, &result, &heartbeat,
                                  &options_.hooks);
  }
  result.wall_seconds = watch.ElapsedSeconds();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("anneal.sqa.runs").Increment();
  registry.GetCounter("anneal.sqa.shots").Add(result.shots);
  registry.GetCounter("anneal.sqa.sweeps").Add(result.sweeps);
  registry.GetCounter("anneal.sqa.moves_proposed")
      .Add(result.sweeps * static_cast<std::int64_t>(n) * P);
  registry.GetCounter("anneal.sqa.moves_accepted").Add(flips_accepted);
  registry.GetGauge("anneal.sqa.best_energy").SetMin(result.best_energy);
  return result;
}

}  // namespace qplex
