#ifndef QPLEX_ANNEAL_HYBRID_SOLVER_H_
#define QPLEX_ANNEAL_HYBRID_SOLVER_H_

#include <cstdint>
#include <functional>

#include "anneal/annealer.h"
#include "common/cancel.h"

namespace qplex {

/// Stand-in for the D-Wave Hybrid BQM service ("haMKP"): a classical
/// portfolio — multi-restart simulated annealing at an aggressive sweep
/// budget followed by steepest-descent polishing — run under a minimum
/// runtime contract. Like the paper's hybrid solver, it virtually always
/// returns a (near-)optimal sample after its runtime floor (Fig. 10/11 show
/// it as a single star at the optimum).
struct HybridSolverOptions {
  /// The service's runtime floor; the paper's haMKP requires >= 3 s. We model
  /// it in annealer micros so it lands on the same axis as qaMKP/SA.
  double min_runtime_micros = 3.0e6;
  /// Modeled micros one sweep accounts for (shared with SA's accounting).
  double micros_per_sweep = 1.0;
  int sweeps_per_restart = 64;
  /// Optional domain refinement applied to every candidate before recording
  /// (e.g. MkpQubo::ImproveSample). Models the problem-aware classical
  /// post-processing inside hybrid annealing services.
  std::function<void(QuboSample*)> refine;
  /// Bounded portfolio size: the datacenter service parallelizes its
  /// restarts, so locally we run at most this many and report the result at
  /// the contract time (modeled_micros is clamped up to the floor).
  int max_restarts = 64;
  /// Wall-clock budget; <= 0 is unlimited. Threaded into every inner SA
  /// restart, so expiry is detected at sweep granularity; the incumbent is
  /// returned with `completed == false`.
  double time_limit_seconds = 0;
  /// Optional cooperative cancellation; polled with the deadline.
  const CancelToken* cancel = nullptr;
  std::uint64_t seed = 1;
  /// Observer callbacks, fired on the hybrid portfolio's own best-energy
  /// improvements (inner SA restarts stay silent: each restarts from scratch
  /// and would reset the anytime curve). All optional.
  AnnealHooks hooks;
};

class HybridSolver {
 public:
  explicit HybridSolver(HybridSolverOptions options = {})
      : options_(options) {}

  /// Minimizes `model`, spending at least min_runtime_micros of modeled time
  /// across SA restarts + local polishing.
  Result<AnnealResult> Run(const QuboModel& model) const;

 private:
  HybridSolverOptions options_;
};

/// Deterministic steepest-descent polish: flips the best-improving variable
/// until no flip improves. Returns the number of flips applied.
int SteepestDescent(const QuboModel& model, QuboSample* sample);

}  // namespace qplex

#endif  // QPLEX_ANNEAL_HYBRID_SOLVER_H_
