#ifndef QPLEX_ANNEAL_PATH_INTEGRAL_ANNEALER_H_
#define QPLEX_ANNEAL_PATH_INTEGRAL_ANNEALER_H_

#include <cstdint>

#include "anneal/annealer.h"
#include "common/cancel.h"

namespace qplex {

/// Simulated quantum annealing (path-integral Monte Carlo over Trotter
/// replicas with a decaying transverse field) — qplex's stand-in for the
/// D-Wave Advantage QPU that runs qaMKP in the paper. The knobs mirror the
/// physical device's interface: an annealing time per shot (Delta-t) and a
/// shot count s, with total modeled runtime t = Delta-t * s (Section V,
/// "Annealing time of qaMKP").
struct PathIntegralAnnealerOptions {
  /// Trotter replicas approximating the quantum system.
  int replicas = 16;
  /// Inverse temperature of the path-integral ensemble.
  double beta = 2.0;
  /// Transverse-field schedule per shot: Gamma falls linearly from initial
  /// to final across the shot's sweeps (the device's annealing schedule).
  double gamma_initial = 3.0;
  double gamma_final = 0.05;
  /// Annealing time per shot in microseconds (the paper's Delta-t).
  double annealing_time_micros = 1.0;
  /// How many Monte Carlo sweeps one microsecond of annealing maps to; the
  /// calibration constant of the substitution, documented in EXPERIMENTS.md.
  double sweeps_per_micro = 8.0;
  /// Device saturation: single-shot quality on physical annealers stops
  /// improving beyond a short annealing time at these problem sizes (the
  /// paper's Table VI finding — 1 us anneals already saturate); annealing
  /// time past this point consumes budget without adding sweeps. Set to a
  /// huge value to disable the effect.
  double saturation_micros = 2.0;
  int shots = 100;
  /// Wall-clock budget; <= 0 is unlimited. Checked every Trotter sweep; on
  /// expiry the incumbent is returned with `completed == false`.
  double time_limit_seconds = 0;
  /// Optional cooperative cancellation; polled with the deadline.
  const CancelToken* cancel = nullptr;
  std::uint64_t seed = 1;
  /// Observer callbacks (best-energy improvements); all optional.
  AnnealHooks hooks;
};

class PathIntegralAnnealer {
 public:
  explicit PathIntegralAnnealer(PathIntegralAnnealerOptions options = {})
      : options_(options) {}

  /// Minimizes `model`. Each shot anneals `replicas` coupled copies and
  /// reports the best replica; the anytime trace advances by Delta-t per
  /// shot.
  Result<AnnealResult> Run(const QuboModel& model) const;

 private:
  PathIntegralAnnealerOptions options_;
};

}  // namespace qplex

#endif  // QPLEX_ANNEAL_PATH_INTEGRAL_ANNEALER_H_
