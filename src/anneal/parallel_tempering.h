#ifndef QPLEX_ANNEAL_PARALLEL_TEMPERING_H_
#define QPLEX_ANNEAL_PARALLEL_TEMPERING_H_

#include <cstdint>

#include "anneal/annealer.h"
#include "common/cancel.h"

namespace qplex {

/// Parallel tempering (replica exchange) over a QUBO: several Metropolis
/// chains at a geometric ladder of temperatures, with periodic
/// configuration swaps between adjacent temperatures. A stronger classical
/// sampler than plain SA on rugged landscapes like the slack-encoded qaMKP
/// objective; used as an ablation baseline.
struct ParallelTemperingOptions {
  int num_replicas = 8;
  double beta_min = 0.05;
  double beta_max = 8.0;
  /// Sweeps between replica-exchange rounds.
  int sweeps_per_round = 4;
  int rounds = 64;
  /// Modeled micros one sweep accounts for (for the anytime trace).
  double micros_per_sweep = 1.0;
  /// Wall-clock budget; <= 0 is unlimited. Checked every replica sweep; on
  /// expiry the incumbent is returned with `completed == false`.
  double time_limit_seconds = 0;
  /// Optional cooperative cancellation; polled with the deadline.
  const CancelToken* cancel = nullptr;
  std::uint64_t seed = 1;
  /// Observer callbacks (best-energy improvements); all optional.
  AnnealHooks hooks;
};

class ParallelTempering {
 public:
  explicit ParallelTempering(ParallelTemperingOptions options = {})
      : options_(options) {}

  Result<AnnealResult> Run(const QuboModel& model) const;

 private:
  ParallelTemperingOptions options_;
};

}  // namespace qplex

#endif  // QPLEX_ANNEAL_PARALLEL_TEMPERING_H_
