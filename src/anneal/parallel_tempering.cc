#include "anneal/parallel_tempering.h"

#include <cmath>
#include <vector>

#include "common/stopwatch.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex {

Result<AnnealResult> ParallelTempering::Run(const QuboModel& model) const {
  if (options_.num_replicas < 2) {
    return Status::InvalidArgument("need at least 2 replicas");
  }
  if (options_.beta_min <= 0 || options_.beta_max < options_.beta_min) {
    return Status::InvalidArgument("need 0 < beta_min <= beta_max");
  }
  if (options_.sweeps_per_round < 1 || options_.rounds < 1) {
    return Status::InvalidArgument("sweeps and rounds must be positive");
  }

  obs::TraceSpan span("anneal.pt");
  obs::ProgressHeartbeat heartbeat("anneal.pt");
  const int n = model.num_variables();
  const int R = options_.num_replicas;
  const Deadline deadline = options_.time_limit_seconds > 0
                                ? Deadline::After(options_.time_limit_seconds)
                                : Deadline::Infinite();
  Stopwatch watch;
  AnnealResult result;
  Rng rng(options_.seed);
  std::int64_t moves_accepted = 0;
  std::int64_t swaps_accepted = 0;

  // Geometric beta ladder: replica 0 hottest, R-1 coldest.
  std::vector<double> betas(R);
  const double ratio =
      std::pow(options_.beta_max / options_.beta_min, 1.0 / (R - 1));
  betas[0] = options_.beta_min;
  for (int r = 1; r < R; ++r) {
    betas[r] = betas[r - 1] * ratio;
  }

  std::vector<QuboSample> replicas;
  std::vector<double> energies;
  replicas.reserve(R);
  for (int r = 0; r < R; ++r) {
    replicas.push_back(anneal_internal::RandomSample(n, rng));
    energies.push_back(model.Evaluate(replicas.back()));
  }

  for (int round = 0; round < options_.rounds && result.completed; ++round) {
    // Metropolis sweeps per replica at its own temperature.
    for (int r = 0; r < R && result.completed; ++r) {
      for (int sweep = 0; sweep < options_.sweeps_per_round; ++sweep) {
        if (StopRequested(deadline, options_.cancel)) {
          result.completed = false;
          break;
        }
        for (int i = 0; i < n; ++i) {
          const double delta = model.FlipDelta(replicas[r], i);
          if (delta <= 0 ||
              rng.UniformDouble() < std::exp(-betas[r] * delta)) {
            replicas[r][i] ^= 1;
            energies[r] += delta;
            ++moves_accepted;
          }
        }
        ++result.sweeps;
      }
    }
    // Replica-exchange: swap adjacent temperatures with the Metropolis
    // acceptance exp((beta_a - beta_b)(E_a - E_b)).
    for (int r = 0; r + 1 < R; ++r) {
      const double log_accept =
          (betas[r] - betas[r + 1]) * (energies[r] - energies[r + 1]);
      if (log_accept >= 0 || rng.UniformDouble() < std::exp(log_accept)) {
        std::swap(replicas[r], replicas[r + 1]);
        std::swap(energies[r], energies[r + 1]);
        ++swaps_accepted;
      }
    }
    result.modeled_micros +=
        options_.micros_per_sweep * options_.sweeps_per_round * R;
    // Record the coldest replica (and implicitly the global best).
    anneal_internal::RecordSample(model, replicas[R - 1],
                                  result.modeled_micros, &result, &heartbeat,
                                  &options_.hooks);
  }
  result.shots = options_.rounds;
  result.wall_seconds = watch.ElapsedSeconds();
  if (obs::EventsEnabled()) {
    // Final replica ladder: one event with the per-replica beta/energy
    // vectors, so the convergence view can show where each temperature
    // ended up and how mobile the ladder was (swap acceptance).
    obs::JsonValue beta_array = obs::JsonValue::Array();
    obs::JsonValue energy_array = obs::JsonValue::Array();
    for (int r = 0; r < R; ++r) {
      beta_array.Append(betas[r]);
      energy_array.Append(energies[r]);
    }
    obs::EmitEvent(obs::EventLevel::kInfo, "anneal.pt", "replicas",
                   {{"trace", std::string(obs::CurrentTraceToken())},
                    {"betas", std::move(beta_array)},
                    {"energies", std::move(energy_array)},
                    {"rounds", options_.rounds},
                    {"swaps_accepted", swaps_accepted},
                    {"completed", result.completed}});
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("anneal.pt.runs").Increment();
  registry.GetCounter("anneal.pt.rounds").Add(options_.rounds);
  registry.GetCounter("anneal.pt.sweeps").Add(result.sweeps);
  registry.GetCounter("anneal.pt.moves_proposed")
      .Add(result.sweeps * static_cast<std::int64_t>(n));
  registry.GetCounter("anneal.pt.moves_accepted").Add(moves_accepted);
  registry.GetCounter("anneal.pt.swap_attempts")
      .Add(static_cast<std::int64_t>(options_.rounds) * (R - 1));
  registry.GetCounter("anneal.pt.swaps_accepted").Add(swaps_accepted);
  registry.GetGauge("anneal.pt.best_energy").SetMin(result.best_energy);
  return result;
}

}  // namespace qplex
