#include "anneal/annealer.h"

#include "obs/metrics.h"

namespace qplex {
namespace anneal_internal {

void RecordSample(const QuboModel& model, const QuboSample& sample,
                  double budget_micros, AnnealResult* result,
                  obs::ProgressHeartbeat* heartbeat, const AnnealHooks* hooks) {
  const double energy = model.Evaluate(sample);
  if (result->best_sample.empty() || energy < result->best_energy) {
    result->best_energy = energy;
    result->best_sample = sample;
    if (hooks != nullptr && hooks->on_new_best) {
      hooks->on_new_best(sample, energy, result->sweeps);
    }
  }
  result->trace.push_back(CostTracePoint{budget_micros, result->best_energy});
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("anneal.samples").Increment();
  if (heartbeat != nullptr && heartbeat->Due()) {
    heartbeat->Emit({{"best_energy", result->best_energy},
                     {"shots", result->shots},
                     {"sweeps", result->sweeps},
                     {"modeled_micros", result->modeled_micros}});
  }
}

QuboSample RandomSample(int num_variables, Rng& rng) {
  QuboSample sample(num_variables);
  for (int i = 0; i < num_variables; ++i) {
    sample[i] = static_cast<std::uint8_t>(rng.Next() & 1);
  }
  return sample;
}

}  // namespace anneal_internal
}  // namespace qplex
