#ifndef QPLEX_SVC_REGISTRY_H_
#define QPLEX_SVC_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "svc/solver.h"

namespace qplex::svc {

/// Name -> Solver mapping. Registration happens at service construction;
/// afterwards the registry is read-only and safe to share across scheduler
/// worker threads.
class SolverRegistry {
 public:
  SolverRegistry() = default;

  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;
  SolverRegistry(SolverRegistry&&) = default;
  SolverRegistry& operator=(SolverRegistry&&) = default;

  /// Registers `solver` under solver->name(). Duplicate names are an
  /// InvalidArgument (two backends silently shadowing each other is a
  /// configuration bug).
  Status Register(std::unique_ptr<Solver> solver);

  /// The solver registered under `name`, or nullptr.
  const Solver* Get(std::string_view name) const;

  /// Sorted backend names.
  std::vector<std::string> Names() const;

  /// Declares that jobs for `name` degrade to `fallback` when `name` fails
  /// with kResourceExhausted (e.g. a state-vector register over the memory
  /// budget). Both backends must already be registered; chains may be linked
  /// (a→b→c) but the scheduler guards against cycles.
  Status SetFallback(std::string_view name, std::string_view fallback);

  /// The fallback registered for `name`, or nullptr when it has none.
  const std::string* Fallback(std::string_view name) const;

  /// The full degradation chain starting at (and excluding) `name`, in hop
  /// order. Cycle-guarded: a linked chain that loops back onto a visited
  /// backend is truncated at the repeat, matching the scheduler's walk.
  std::vector<std::string> FallbackChain(std::string_view name) const;

 private:
  std::map<std::string, std::unique_ptr<Solver>, std::less<>> solvers_;
  std::map<std::string, std::string, std::less<>> fallbacks_;
};

/// Registers every built-in backend adapter:
///   bs      branch-and-search (exact; proves optimality when it completes)
///   enum    exhaustive enumeration (exact, n <= 30)
///   grasp   randomized greedy + local search
///   qtkp    one Grover threshold probe (options: threshold, oracle, threads)
///   qmkp    Grover binary search over the threshold
///   sa      simulated annealing over the qaMKP QUBO
///   pt      parallel tempering over the QUBO
///   pia     path-integral (simulated quantum) annealing over the QUBO
///   hybrid  SA portfolio + domain refinement (the haMKP stand-in)
///   milp    McCormick linearization + branch & bound (proves optimality)
Status RegisterBuiltinBackends(SolverRegistry* registry);

/// A registry pre-loaded with the built-in backends.
SolverRegistry MakeBuiltinRegistry();

}  // namespace qplex::svc

#endif  // QPLEX_SVC_REGISTRY_H_
