#include "svc/cache.h"

#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "resilience/fault_injection.h"

namespace qplex::svc {

InstanceCache::InstanceCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<SolveResponse> InstanceCache::Lookup(const std::string& key) {
  Stopwatch watch;
  std::lock_guard<std::mutex> lock(mutex_);
  auto& registry = obs::MetricsRegistry::Global();
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    registry.GetCounter("svc.cache.misses").Increment();
    registry.GetHistogram("svc.phase.cache_lookup_wall_ms")
        .Record(watch.ElapsedMillis());
    return std::nullopt;
  }
  recency_.splice(recency_.begin(), recency_, it->second.recency);
  registry.GetCounter("svc.cache.hits").Increment();
  registry.GetHistogram("svc.phase.cache_lookup_wall_ms")
      .Record(watch.ElapsedMillis());
  return it->second.response;
}

void InstanceCache::Insert(const std::string& key,
                           const SolveResponse& response) {
  // A dropped insert is the safe failure mode: the cache stays consistent and
  // the job's own response is unaffected — later lookups just miss.
  if (resilience::FaultFires(resilience::FaultSite::kCacheInsert)) {
    obs::MetricsRegistry::Global()
        .GetCounter("svc.cache.dropped_inserts")
        .Increment();
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto& registry = obs::MetricsRegistry::Global();
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.response = response;
    recency_.splice(recency_.begin(), recency_, it->second.recency);
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(recency_.back());
    recency_.pop_back();
    registry.GetCounter("svc.cache.evictions").Increment();
  }
  recency_.push_front(key);
  entries_.emplace(key, Entry{response, recency_.begin()});
  registry.GetCounter("svc.cache.insertions").Increment();
}

std::size_t InstanceCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace qplex::svc
