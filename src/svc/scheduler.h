#ifndef QPLEX_SVC_SCHEDULER_H_
#define QPLEX_SVC_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "common/cancel.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "resilience/breaker.h"
#include "resilience/retry.h"
#include "svc/cache.h"
#include "svc/registry.h"
#include "svc/solver.h"

namespace qplex::svc {

/// Retry policy applied by the scheduler to transient failures
/// (kInternal: a backend threw or flaked). See DESIGN.md section 10 for the
/// full failure taxonomy.
struct RetryOptions {
  /// Per-job retry budget beyond the first attempt; shared by portfolio
  /// racers. 0 disables retries.
  int max_retries = 2;
  /// Decorrelated-jitter backoff between attempts. The delay sequence is a
  /// pure function of (backoff_seed, job id, slot, attempt), so retry
  /// schedules are deterministic and safe to assert on.
  double backoff_base_ms = 1.0;
  double backoff_cap_ms = 100.0;
  std::uint64_t backoff_seed = 0x7e57ab1e;
};

/// Scheduler configuration.
struct JobSchedulerOptions {
  /// Worker threads executing jobs (>= 1). Solvers that parallelize
  /// internally (qmkp --threads) degrade gracefully: nested ParallelFor
  /// calls inside a pool task run inline, so worker x solver threads never
  /// oversubscribe.
  int num_workers = 4;
  /// Admission bound on queued backend executions (a portfolio job occupies
  /// one slot per racer). Submissions beyond it are rejected with
  /// kResourceExhausted — backpressure, not unbounded buffering. Retry
  /// re-enqueues bypass the bound: an admitted job may always finish.
  std::size_t queue_capacity = 64;
  /// Result cache toggle and size.
  bool enable_cache = true;
  std::size_t cache_capacity = 256;
  RetryOptions retry;
  /// Latency objective per job in milliseconds; 0 disables SLO accounting.
  /// When set, every completed job ticks svc.slo.ok or svc.slo.breaches
  /// (admission-to-merge latency vs the objective) and the objective itself
  /// is published as the svc.slo.objective_ms gauge.
  double slo_latency_ms = 0;
  /// Per-backend circuit breakers (DESIGN.md section 15). Off by default so
  /// library users and historical baselines keep exact semantics; the serve
  /// front-ends enable them with --breaker-threshold. When enabled, every
  /// backend execution consults its breaker first: an open breaker
  /// short-circuits the execution with kResourceExhausted, which the
  /// degradable-failure path turns into a fallback-chain walk — so a serially
  /// failing backend is skipped across requests, not rediscovered by each
  /// one.
  bool enable_breakers = false;
  resilience::BreakerOptions breaker;
  /// Wedged-job watchdog stall budget in milliseconds; 0 disables. Progress
  /// is measured on a work axis — CancelToken heartbeat polls from the
  /// running backend — so a backend that computes without polling for longer
  /// than the budget is cancelled (attempt-scoped; the job survives),
  /// classified degradable, and falls back well before the job deadline.
  double watchdog_stall_ms = 0;
  /// Watchdog scan cadence in milliseconds (>= 1 when the watchdog is on).
  double watchdog_poll_ms = 5;
};

using JobId = std::int64_t;

/// Bounded multi-threaded job scheduler over a SolverRegistry, built on the
/// shared ThreadPool primitive. Lifecycle of a job:
///
///   Submit/SubmitPortfolio  -> queued (deadline clock starts NOW)
///   worker picks it up      -> cache lookup, then backend execution with
///                              the remaining budget + the job's CancelToken
///   last racer finishes     -> responses merged, waiters woken, job_end
///                              event emitted
///
/// Portfolio jobs race several backends on the same instance; as soon as one
/// racer returns a *provably optimal* answer the job's CancelToken fires and
/// the remaining racers stop at their next poll. The merged winner is chosen
/// by a deterministic rule — (provably optimal, size, backend list position)
/// — so the reported *size* is reproducible; the member set follows the
/// winning racer and may legitimately differ between timing-dependent races
/// when several backends tie (see DESIGN.md section 9).
///
/// Every execution records svc.* metrics (queue wait, wall time, per-backend
/// job/failure counters, cache hit/miss) and runs under an "svc.job" trace
/// span.
///
/// Resilience (DESIGN.md section 10): backend executions run behind a
/// catch-all exception barrier (a throwing backend becomes a per-job
/// Internal status). Transient failures are retried with decorrelated-jitter
/// backoff on a different worker, up to the per-job retry budget;
/// kResourceExhausted walks the registry fallback chain (qtkp→bs, qmkp→bs,
/// milp→grasp) and surfaces the degradation trail in the response.
///
/// Health (DESIGN.md section 15): with enable_breakers, per-backend circuit
/// breakers remember failures across jobs and short-circuit a serially
/// failing backend straight onto its fallback chain; with a watchdog stall
/// budget, a wedged execution (no CancelToken heartbeat) is cancelled
/// attempt-scoped and degrades the same way.
class JobScheduler {
 public:
  /// `registry` must outlive the scheduler.
  explicit JobScheduler(const SolverRegistry* registry,
                        JobSchedulerOptions options = {});

  /// Drains queued jobs, then stops the workers. Jobs not Wait()ed on are
  /// still executed (their responses are discarded).
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a single-backend job. Fails with kResourceExhausted when the
  /// queue is at capacity (callers retry after draining) and
  /// kInvalidArgument for an unknown backend or empty portfolio.
  Result<JobId> Submit(SolveRequest request);

  /// Enqueues one job racing every backend in `backends` (request.backend is
  /// ignored). All racers share the job's deadline and CancelToken.
  Result<JobId> SubmitPortfolio(SolveRequest request,
                                std::vector<std::string> backends);

  /// Blocks until the job completes and consumes its response; a second Wait
  /// on the same id returns kInvalidArgument.
  SolveResponse Wait(JobId id);

  /// Non-blocking completion probe for event-loop callers (the socket serve
  /// loop multiplexes many jobs on one thread and can never block in Wait).
  /// When the job has finished, consumes its response exactly like Wait()
  /// and returns true; returns false while it is still queued or running.
  /// An unknown or already-consumed id returns true with an InvalidArgument
  /// response.
  bool TryWait(JobId id, SolveResponse* response);

  /// Requests cooperative cancellation; the job still completes through
  /// Wait() with its incumbent.
  void Cancel(JobId id);

  /// Queued backend executions not yet picked up (diagnostic).
  std::size_t QueueDepth() const;

  /// Snapshots of every circuit breaker consulted so far (empty when
  /// breakers are disabled), sorted by backend name; feeds the serve health
  /// response.
  std::vector<resilience::BreakerSnapshot> BreakerSnapshots() const;

  /// Breakers currently open (0 when disabled).
  int OpenBreakerCount() const;

  /// Backend executions cancelled by the wedged-job watchdog so far.
  std::int64_t WatchdogKills() const;

  int num_workers() const { return options_.num_workers; }
  bool cache_enabled() const { return cache_ != nullptr; }
  bool breakers_enabled() const { return breakers_ != nullptr; }

 private:
  struct Job {
    JobId id = 0;
    SolveRequest request;
    std::vector<std::string> backends;
    Deadline deadline = Deadline::Infinite();
    Stopwatch submitted;
    CancelToken cancel;
    /// Shared per-job retry budget, decremented as retries are scheduled.
    std::atomic<int> retries_left{0};

    std::mutex mutex;
    std::condition_variable done_cv;
    int remaining = 0;
    bool started = false;
    bool done = false;
    /// Set by the first Wait() under `mutex`; a second Wait is an error.
    bool consumed = false;
    std::vector<SolveResponse> responses;
    SolveResponse merged;
    /// Filled by MergeResponses: the winning racer's plex size minus the best
    /// losing racer's (0 for single-backend jobs). Deterministic because the
    /// merge rule is; surfaced on the job_end event for race analytics.
    int winner_margin = 0;
  };

  struct SubTask {
    std::shared_ptr<Job> job;
    int slot = 0;      ///< index into job->backends
    int attempt = 1;   ///< 1 on first execution, +1 per retry
    /// Worker that failed the previous attempt; the retry prefers any other
    /// worker (best-effort: with one worker, or when only excluded tasks are
    /// queued, the excluded worker still takes it — no idling, no deadlock).
    int excluded_worker = -1;
  };

  /// One backend execution watched by the wedged-job watchdog. Registered
  /// for exactly the duration of the GuardedSolve call; the watchdog thread
  /// cancels `attempt_cancel` (never the job token) when the heartbeat stops
  /// advancing for the stall budget.
  struct WatchEntry {
    JobId job_id = 0;
    std::string label;
    std::string backend;
    int attempt = 1;
    CancelToken* attempt_cancel = nullptr;
    std::uint64_t last_polls = 0;
    double stalled_ms = 0;
    bool killed = false;
  };

  /// Outcome of one guarded, breaker-consulted, watchdog-monitored backend
  /// execution.
  struct Execution {
    Result<SolveOutcome> outcome = Status::Internal("unreached");
    bool watchdog_killed = false;
    bool short_circuited = false;  ///< breaker open: backend never ran
  };

  Result<JobId> Enqueue(SolveRequest request,
                        std::vector<std::string> backends);
  void WorkerLoop(int worker);
  void Execute(const SubTask& task, int worker);
  /// Runs one backend (cache-aware); never blocks on other jobs.
  SolveResponse RunBackend(Job& job, const std::string& backend, int attempt);
  /// Consults the backend's circuit breaker, runs GuardedSolve under an
  /// attempt-scoped CancelToken registered with the watchdog, converts a
  /// watchdog kill into a degradable kResourceExhausted, and records the
  /// outcome back into the breaker. The shared entry point for first
  /// executions and fallback hops.
  Execution ExecuteGuarded(Job& job, const std::string& backend, int attempt);
  /// Executes one backend behind the catch-all exception barrier (plus the
  /// solver_throw/solver_slow/solver_stall fault-injection sites): a
  /// throwing backend becomes Status::Internal naming the backend and
  /// what(), never a process death.
  Result<SolveOutcome> GuardedSolve(Job& job, const std::string& backend,
                                    CancelToken& attempt_cancel);
  /// Watchdog bookkeeping: returns 0 when the watchdog is disabled.
  std::uint64_t RegisterWatch(Job& job, const std::string& backend,
                              int attempt, CancelToken* attempt_cancel);
  /// Removes the entry and reports whether the watchdog killed it.
  bool UnregisterWatch(std::uint64_t watch_id);
  void WatchdogLoop();
  /// Walks the registry fallback chain after `backend` failed with
  /// kResourceExhausted; fills the degradation trail in `response`.
  SolveResponse RunFallbackChain(Job& job, const std::string& backend,
                                 SolveResponse response, Status original);
  /// True when `status` is transient, budget remains, and the job deadline
  /// has not expired; consumes one unit of the job's retry budget.
  bool ConsumeRetryBudget(const Status& status, Job& job);
  /// Records metrics/events, sleeps the deterministic backoff delay, and
  /// re-enqueues the task for a different worker.
  void ScheduleRetry(const SubTask& task, int worker, const Status& failure);
  /// Deterministic portfolio merge; called with job.mutex held after the
  /// last racer finished.
  static void MergeResponses(Job* job);

  const SolverRegistry* registry_;
  JobSchedulerOptions options_;
  std::unique_ptr<InstanceCache> cache_;
  std::unique_ptr<resilience::BreakerBoard> breakers_;

  ThreadPool pool_;
  /// Runs pool_.Run with one long-lived WorkerLoop task per worker; joined
  /// on shutdown.
  std::thread dispatcher_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<SubTask> queue_;
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_;
  JobId next_id_ = 1;
  bool shutdown_ = false;

  /// Watchdog state. watch_mutex_ guards watches_; the watchdog thread emits
  /// its kill event and cancels the attempt token while holding it, so a
  /// kill event always precedes the killed job's job_end in the stream.
  std::thread watchdog_thread_;
  std::atomic<bool> watchdog_stop_{false};
  mutable std::mutex watch_mutex_;
  std::map<std::uint64_t, WatchEntry> watches_;
  std::uint64_t next_watch_id_ = 1;
  std::atomic<std::int64_t> watchdog_kills_{0};
};

}  // namespace qplex::svc

#endif  // QPLEX_SVC_SCHEDULER_H_
