#ifndef QPLEX_SVC_SCHEDULER_H_
#define QPLEX_SVC_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "svc/cache.h"
#include "svc/registry.h"
#include "svc/solver.h"

namespace qplex::svc {

/// Scheduler configuration.
struct JobSchedulerOptions {
  /// Worker threads executing jobs (>= 1). Solvers that parallelize
  /// internally (qmkp --threads) degrade gracefully: nested ParallelFor
  /// calls inside a pool task run inline, so worker x solver threads never
  /// oversubscribe.
  int num_workers = 4;
  /// Admission bound on queued backend executions (a portfolio job occupies
  /// one slot per racer). Submissions beyond it are rejected with
  /// kResourceExhausted — backpressure, not unbounded buffering.
  std::size_t queue_capacity = 64;
  /// Result cache toggle and size.
  bool enable_cache = true;
  std::size_t cache_capacity = 256;
};

using JobId = std::int64_t;

/// Bounded multi-threaded job scheduler over a SolverRegistry, built on the
/// shared ThreadPool primitive. Lifecycle of a job:
///
///   Submit/SubmitPortfolio  -> queued (deadline clock starts NOW)
///   worker picks it up      -> cache lookup, then backend execution with
///                              the remaining budget + the job's CancelToken
///   last racer finishes     -> responses merged, waiters woken, job_end
///                              event emitted
///
/// Portfolio jobs race several backends on the same instance; as soon as one
/// racer returns a *provably optimal* answer the job's CancelToken fires and
/// the remaining racers stop at their next poll. The merged winner is chosen
/// by a deterministic rule — (provably optimal, size, backend list position)
/// — so the reported *size* is reproducible; the member set follows the
/// winning racer and may legitimately differ between timing-dependent races
/// when several backends tie (see DESIGN.md section 9).
///
/// Every execution records svc.* metrics (queue wait, wall time, per-backend
/// job/failure counters, cache hit/miss) and runs under an "svc.job" trace
/// span.
class JobScheduler {
 public:
  /// `registry` must outlive the scheduler.
  explicit JobScheduler(const SolverRegistry* registry,
                        JobSchedulerOptions options = {});

  /// Drains queued jobs, then stops the workers. Jobs not Wait()ed on are
  /// still executed (their responses are discarded).
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a single-backend job. Fails with kResourceExhausted when the
  /// queue is at capacity (callers retry after draining) and
  /// kInvalidArgument for an unknown backend or empty portfolio.
  Result<JobId> Submit(SolveRequest request);

  /// Enqueues one job racing every backend in `backends` (request.backend is
  /// ignored). All racers share the job's deadline and CancelToken.
  Result<JobId> SubmitPortfolio(SolveRequest request,
                                std::vector<std::string> backends);

  /// Blocks until the job completes and consumes its response; a second Wait
  /// on the same id returns kInvalidArgument.
  SolveResponse Wait(JobId id);

  /// Requests cooperative cancellation; the job still completes through
  /// Wait() with its incumbent.
  void Cancel(JobId id);

  /// Queued backend executions not yet picked up (diagnostic).
  std::size_t QueueDepth() const;

  int num_workers() const { return options_.num_workers; }
  bool cache_enabled() const { return cache_ != nullptr; }

 private:
  struct Job {
    JobId id = 0;
    SolveRequest request;
    std::vector<std::string> backends;
    Deadline deadline = Deadline::Infinite();
    Stopwatch submitted;
    CancelToken cancel;

    std::mutex mutex;
    std::condition_variable done_cv;
    int remaining = 0;
    bool started = false;
    bool done = false;
    std::vector<SolveResponse> responses;
    SolveResponse merged;
  };

  struct SubTask {
    std::shared_ptr<Job> job;
    int slot = 0;  ///< index into job->backends
  };

  Result<JobId> Enqueue(SolveRequest request,
                        std::vector<std::string> backends);
  void WorkerLoop();
  void Execute(const SubTask& task);
  /// Runs one backend (cache-aware); never blocks on other jobs.
  SolveResponse RunBackend(Job& job, const std::string& backend);
  /// Deterministic portfolio merge; called with job.mutex held after the
  /// last racer finished.
  static void MergeResponses(Job* job);

  const SolverRegistry* registry_;
  JobSchedulerOptions options_;
  std::unique_ptr<InstanceCache> cache_;

  ThreadPool pool_;
  /// Runs pool_.Run with one long-lived WorkerLoop task per worker; joined
  /// on shutdown.
  std::thread dispatcher_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<SubTask> queue_;
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_;
  JobId next_id_ = 1;
  bool shutdown_ = false;
};

}  // namespace qplex::svc

#endif  // QPLEX_SVC_SCHEDULER_H_
