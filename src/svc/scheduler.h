#ifndef QPLEX_SVC_SCHEDULER_H_
#define QPLEX_SVC_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "common/cancel.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "resilience/retry.h"
#include "svc/cache.h"
#include "svc/registry.h"
#include "svc/solver.h"

namespace qplex::svc {

/// Retry policy applied by the scheduler to transient failures
/// (kInternal: a backend threw or flaked). See DESIGN.md section 10 for the
/// full failure taxonomy.
struct RetryOptions {
  /// Per-job retry budget beyond the first attempt; shared by portfolio
  /// racers. 0 disables retries.
  int max_retries = 2;
  /// Decorrelated-jitter backoff between attempts. The delay sequence is a
  /// pure function of (backoff_seed, job id, slot, attempt), so retry
  /// schedules are deterministic and safe to assert on.
  double backoff_base_ms = 1.0;
  double backoff_cap_ms = 100.0;
  std::uint64_t backoff_seed = 0x7e57ab1e;
};

/// Scheduler configuration.
struct JobSchedulerOptions {
  /// Worker threads executing jobs (>= 1). Solvers that parallelize
  /// internally (qmkp --threads) degrade gracefully: nested ParallelFor
  /// calls inside a pool task run inline, so worker x solver threads never
  /// oversubscribe.
  int num_workers = 4;
  /// Admission bound on queued backend executions (a portfolio job occupies
  /// one slot per racer). Submissions beyond it are rejected with
  /// kResourceExhausted — backpressure, not unbounded buffering. Retry
  /// re-enqueues bypass the bound: an admitted job may always finish.
  std::size_t queue_capacity = 64;
  /// Result cache toggle and size.
  bool enable_cache = true;
  std::size_t cache_capacity = 256;
  RetryOptions retry;
  /// Latency objective per job in milliseconds; 0 disables SLO accounting.
  /// When set, every completed job ticks svc.slo.ok or svc.slo.breaches
  /// (admission-to-merge latency vs the objective) and the objective itself
  /// is published as the svc.slo.objective_ms gauge.
  double slo_latency_ms = 0;
};

using JobId = std::int64_t;

/// Bounded multi-threaded job scheduler over a SolverRegistry, built on the
/// shared ThreadPool primitive. Lifecycle of a job:
///
///   Submit/SubmitPortfolio  -> queued (deadline clock starts NOW)
///   worker picks it up      -> cache lookup, then backend execution with
///                              the remaining budget + the job's CancelToken
///   last racer finishes     -> responses merged, waiters woken, job_end
///                              event emitted
///
/// Portfolio jobs race several backends on the same instance; as soon as one
/// racer returns a *provably optimal* answer the job's CancelToken fires and
/// the remaining racers stop at their next poll. The merged winner is chosen
/// by a deterministic rule — (provably optimal, size, backend list position)
/// — so the reported *size* is reproducible; the member set follows the
/// winning racer and may legitimately differ between timing-dependent races
/// when several backends tie (see DESIGN.md section 9).
///
/// Every execution records svc.* metrics (queue wait, wall time, per-backend
/// job/failure counters, cache hit/miss) and runs under an "svc.job" trace
/// span.
///
/// Resilience (DESIGN.md section 10): backend executions run behind a
/// catch-all exception barrier (a throwing backend becomes a per-job
/// Internal status). Transient failures are retried with decorrelated-jitter
/// backoff on a different worker, up to the per-job retry budget;
/// kResourceExhausted walks the registry fallback chain (qtkp→bs, qmkp→bs,
/// milp→grasp) and surfaces the degradation trail in the response.
class JobScheduler {
 public:
  /// `registry` must outlive the scheduler.
  explicit JobScheduler(const SolverRegistry* registry,
                        JobSchedulerOptions options = {});

  /// Drains queued jobs, then stops the workers. Jobs not Wait()ed on are
  /// still executed (their responses are discarded).
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a single-backend job. Fails with kResourceExhausted when the
  /// queue is at capacity (callers retry after draining) and
  /// kInvalidArgument for an unknown backend or empty portfolio.
  Result<JobId> Submit(SolveRequest request);

  /// Enqueues one job racing every backend in `backends` (request.backend is
  /// ignored). All racers share the job's deadline and CancelToken.
  Result<JobId> SubmitPortfolio(SolveRequest request,
                                std::vector<std::string> backends);

  /// Blocks until the job completes and consumes its response; a second Wait
  /// on the same id returns kInvalidArgument.
  SolveResponse Wait(JobId id);

  /// Non-blocking completion probe for event-loop callers (the socket serve
  /// loop multiplexes many jobs on one thread and can never block in Wait).
  /// When the job has finished, consumes its response exactly like Wait()
  /// and returns true; returns false while it is still queued or running.
  /// An unknown or already-consumed id returns true with an InvalidArgument
  /// response.
  bool TryWait(JobId id, SolveResponse* response);

  /// Requests cooperative cancellation; the job still completes through
  /// Wait() with its incumbent.
  void Cancel(JobId id);

  /// Queued backend executions not yet picked up (diagnostic).
  std::size_t QueueDepth() const;

  int num_workers() const { return options_.num_workers; }
  bool cache_enabled() const { return cache_ != nullptr; }

 private:
  struct Job {
    JobId id = 0;
    SolveRequest request;
    std::vector<std::string> backends;
    Deadline deadline = Deadline::Infinite();
    Stopwatch submitted;
    CancelToken cancel;
    /// Shared per-job retry budget, decremented as retries are scheduled.
    std::atomic<int> retries_left{0};

    std::mutex mutex;
    std::condition_variable done_cv;
    int remaining = 0;
    bool started = false;
    bool done = false;
    /// Set by the first Wait() under `mutex`; a second Wait is an error.
    bool consumed = false;
    std::vector<SolveResponse> responses;
    SolveResponse merged;
    /// Filled by MergeResponses: the winning racer's plex size minus the best
    /// losing racer's (0 for single-backend jobs). Deterministic because the
    /// merge rule is; surfaced on the job_end event for race analytics.
    int winner_margin = 0;
  };

  struct SubTask {
    std::shared_ptr<Job> job;
    int slot = 0;      ///< index into job->backends
    int attempt = 1;   ///< 1 on first execution, +1 per retry
    /// Worker that failed the previous attempt; the retry prefers any other
    /// worker (best-effort: with one worker, or when only excluded tasks are
    /// queued, the excluded worker still takes it — no idling, no deadlock).
    int excluded_worker = -1;
  };

  Result<JobId> Enqueue(SolveRequest request,
                        std::vector<std::string> backends);
  void WorkerLoop(int worker);
  void Execute(const SubTask& task, int worker);
  /// Runs one backend (cache-aware); never blocks on other jobs.
  SolveResponse RunBackend(Job& job, const std::string& backend, int attempt);
  /// Executes one backend behind the catch-all exception barrier (plus the
  /// solver_throw/solver_slow fault-injection sites): a throwing backend
  /// becomes Status::Internal naming the backend and what(), never a
  /// process death.
  Result<SolveOutcome> GuardedSolve(Job& job, const std::string& backend);
  /// Walks the registry fallback chain after `backend` failed with
  /// kResourceExhausted; fills the degradation trail in `response`.
  SolveResponse RunFallbackChain(Job& job, const std::string& backend,
                                 SolveResponse response, Status original);
  /// True when `status` is transient, budget remains, and the job deadline
  /// has not expired; consumes one unit of the job's retry budget.
  bool ConsumeRetryBudget(const Status& status, Job& job);
  /// Records metrics/events, sleeps the deterministic backoff delay, and
  /// re-enqueues the task for a different worker.
  void ScheduleRetry(const SubTask& task, int worker, const Status& failure);
  /// Deterministic portfolio merge; called with job.mutex held after the
  /// last racer finished.
  static void MergeResponses(Job* job);

  const SolverRegistry* registry_;
  JobSchedulerOptions options_;
  std::unique_ptr<InstanceCache> cache_;

  ThreadPool pool_;
  /// Runs pool_.Run with one long-lived WorkerLoop task per worker; joined
  /// on shutdown.
  std::thread dispatcher_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<SubTask> queue_;
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_;
  JobId next_id_ = 1;
  bool shutdown_ = false;
};

}  // namespace qplex::svc

#endif  // QPLEX_SVC_SCHEDULER_H_
