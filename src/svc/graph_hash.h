#ifndef QPLEX_SVC_GRAPH_HASH_H_
#define QPLEX_SVC_GRAPH_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "graph/graph.h"
#include "svc/solver.h"

namespace qplex::svc {

/// Canonical *labelled* graph hash: a 64-bit FNV-1a digest of the vertex
/// count followed by the sorted, deduplicated, (min, max)-normalized edge
/// list. Two graphs hash identically iff they have the same vertex count and
/// the same edge *set*, regardless of the order edges were added or which
/// text format they were parsed from.
///
/// Deliberately NOT isomorphism-invariant: relabeling vertices changes the
/// hash. Canonical labelling is graph-isomorphism-hard, and the result cache
/// must anyway distinguish relabelings because solvers report solutions in
/// the caller's vertex ids.
std::uint64_t CanonicalGraphHash(const Graph& graph);

/// The instance-cache key for running `backend` on `request`: the canonical
/// graph hash plus every request field that can change the answer
/// (k, seed, backend, and the full options map). The deadline is excluded —
/// a cached completed answer is valid under any budget.
std::string CacheKey(const SolveRequest& request, std::string_view backend);

}  // namespace qplex::svc

#endif  // QPLEX_SVC_GRAPH_HASH_H_
