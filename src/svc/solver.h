#ifndef QPLEX_SVC_SOLVER_H_
#define QPLEX_SVC_SOLVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "classical/exact.h"
#include "common/cancel.h"
#include "common/status.h"
#include "graph/graph.h"

namespace qplex::svc {

/// One solve job as submitted to the service layer: an instance, a backend
/// name, and the execution envelope (budget, seed, backend knobs). The graph
/// is held by value so a request outlives whatever parsed it and can be
/// executed on any worker thread.
struct SolveRequest {
  Graph graph;
  int k = 2;
  /// Registry name of the backend ("bs", "enum", "grasp", "qmkp", "qtkp",
  /// "sa", "pt", "pia", "hybrid", "milp").
  std::string backend = "bs";
  std::uint64_t seed = 1;
  /// Wall-clock budget measured from *submission* (queue wait counts against
  /// it); <= 0 means unlimited.
  double deadline_seconds = 0;
  /// Backend-specific knobs as string key/values (e.g. {"shots", "50"});
  /// parsed by the adapters with OptionInt/OptionDouble below. Part of the
  /// cache key, so two requests differing only in options never collide.
  std::map<std::string, std::string> options;
  /// Caller-chosen job label, carried into events and trace spans.
  std::string label;
};

/// What a backend adapter reports back to the scheduler.
struct SolveOutcome {
  MkpSolution solution;
  /// False when the run stopped on the deadline or a cancellation and
  /// `solution` is the incumbent at that point.
  bool completed = true;
  /// True when the backend *proved* optimality (exact search ran to
  /// completion / MILP closed the gap). Portfolio mode uses this to cancel
  /// the remaining racers.
  bool provably_optimal = false;
};

/// Execution envelope handed to a backend by the scheduler.
struct SolveContext {
  /// Remaining wall budget in seconds at dispatch time; <= 0 is unlimited.
  double budget_seconds = 0;
  /// Cooperative cancellation shared by every racer of a job; may be null.
  const CancelToken* cancel = nullptr;
};

/// Per-job accounting the scheduler fills in.
struct SolveMetrics {
  double wall_seconds = 0;   ///< backend execution time (0 on a cache hit)
  double queue_seconds = 0;  ///< submission -> dispatch wait
  bool cache_hit = false;
};

/// The service-level answer for one job.
struct SolveResponse {
  Status status;  ///< Ok, kDeadlineExceeded (incumbent attached), or an error
  MkpSolution solution;
  bool provably_optimal = false;
  /// The backend that produced `solution` (the winning racer in portfolio
  /// mode, or the fallback that absorbed a degraded execution).
  std::string backend;
  /// Scheduler executions of this slot, including the final one: 1 when the
  /// first attempt settled, 1 + retries otherwise.
  int attempts = 1;
  /// Degradation trail: when the requested backend failed with
  /// kResourceExhausted and a registry fallback produced the answer,
  /// `degraded_from` names the originally requested backend and
  /// `degradation_reason` carries its failure. Empty otherwise.
  std::string degraded_from;
  std::string degradation_reason;
  SolveMetrics metrics;
};

/// A uniform solver backend. Implementations must be stateless and
/// re-entrant: the scheduler invokes one instance from many worker threads
/// concurrently, so any per-run state lives inside Solve().
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry name; stable, lowercase.
  virtual std::string_view name() const = 0;

  /// Runs the backend on `request.graph` / `request.k`. Honors
  /// `context.budget_seconds` and `context.cancel` cooperatively: on expiry
  /// the adapter returns the incumbent with `completed == false` rather than
  /// an error. Hard failures (bad options, unsupported instance) return a
  /// non-OK status.
  virtual Result<SolveOutcome> Solve(const SolveRequest& request,
                                     const SolveContext& context) const = 0;
};

/// Option-map accessors shared by the backend adapters: missing keys yield
/// `fallback`; present-but-malformed values are an InvalidArgument naming the
/// key (a typo'd option must fail the job, not silently run defaults).
Result<int> OptionInt(const SolveRequest& request, std::string_view key,
                      int fallback);
Result<double> OptionDouble(const SolveRequest& request, std::string_view key,
                            double fallback);
Result<std::string> OptionString(const SolveRequest& request,
                                 std::string_view key, std::string fallback);

}  // namespace qplex::svc

#endif  // QPLEX_SVC_SOLVER_H_
