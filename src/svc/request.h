#ifndef QPLEX_SVC_REQUEST_H_
#define QPLEX_SVC_REQUEST_H_

/// \file
/// The JSONL request wire format shared by every qplex_serve ingress path.
/// ParseRequestLine is the single entry point: the stdin/file batch mode and
/// the --listen socket mode both hand raw request lines here, so a malformed
/// line produces the identical error text no matter how it arrived.
///
/// One JSON object per line:
///
///   {"id": "j1", "k": 2, "backend": "bs", "seed": 7, "deadline_ms": 500,
///    "graph": {"n": 8, "edges": [[0,1],[1,2]]},      // inline instance, or
///    "input": "graph.col", "format": "dimacs",       // a graph file
///    "backends": ["bs", "sa"],                       // portfolio race
///    "options": {"shots": 50}}                       // backend knobs

#include <string>
#include <vector>

#include "common/status.h"
#include "svc/solver.h"

namespace qplex::svc {

/// What a request line asks for. Solve lines carry a graph and run through
/// the scheduler; health lines ({"type": "health", "id": ...}) are answered
/// in place by the socket front-end with breaker/queue/shed state and are
/// rejected in batch mode, whose journal byte-identity contract
/// (record/replay, --resume) has no room for load-dependent lines.
enum class RequestKind { kSolve, kHealth };

/// One parsed request line: the scheduler request plus the racer list.
struct RequestSpec {
  RequestKind kind = RequestKind::kSolve;
  SolveRequest request;
  std::vector<std::string> backends;  ///< empty = single request.backend
};

/// Parses one request line. `line_number` is woven into every error message
/// (batch mode counts file lines; socket mode counts lines per connection),
/// so both modes reject a malformed line with the same text for the same
/// position. Blank lines and '#' comments are the *caller's* concern — this
/// function expects a non-empty candidate request.
Result<RequestSpec> ParseRequestLine(const std::string& text, int line_number);

/// Solution members as the space-joined vertex list used by journal lines,
/// job_end events, and socket responses.
std::string MembersToString(const VertexList& members);

/// Serializes a response for the wire/journal: a single timestamp-free JSON
/// object (no trailing newline). `label` is the client's request id. The
/// same renderer feeds the WAL journal and the socket responses so a
/// replayed connection script journals byte-identically.
std::string RenderResponseLine(const std::string& label,
                               const SolveResponse& response);

}  // namespace qplex::svc

#endif  // QPLEX_SVC_REQUEST_H_
