#include "svc/request.h"

#include <sstream>
#include <utility>

#include "graph/graph.h"
#include "graph/io.h"
#include "obs/json.h"

namespace qplex::svc {
namespace {

Result<Graph> ParseInlineGraph(const obs::JsonValue& spec, int line_number) {
  const obs::JsonValue* n = spec.Find("n");
  if (n == nullptr || !n->is_int()) {
    return Status::InvalidArgument("graph.n missing at line " +
                                   std::to_string(line_number));
  }
  std::vector<std::pair<Vertex, Vertex>> edges;
  if (const obs::JsonValue* list = spec.Find("edges"); list != nullptr) {
    if (!list->is_array()) {
      return Status::InvalidArgument("graph.edges must be an array at line " +
                                     std::to_string(line_number));
    }
    for (std::size_t i = 0; i < list->size(); ++i) {
      const obs::JsonValue& edge = list->at(i);
      if (!edge.is_array() || edge.size() != 2 || !edge.at(0).is_int() ||
          !edge.at(1).is_int()) {
        return Status::InvalidArgument(
            "graph.edges[" + std::to_string(i) +
            "] must be [u, v] at line " + std::to_string(line_number));
      }
      edges.emplace_back(static_cast<Vertex>(edge.at(0).AsInt()),
                         static_cast<Vertex>(edge.at(1).AsInt()));
    }
  }
  return MakeGraph(static_cast<int>(n->AsInt()), edges);
}

Result<Graph> LoadRequestGraph(const obs::JsonValue& line, int line_number) {
  if (const obs::JsonValue* inline_graph = line.Find("graph");
      inline_graph != nullptr) {
    return ParseInlineGraph(*inline_graph, line_number);
  }
  const obs::JsonValue* input = line.Find("input");
  if (input == nullptr || !input->is_string()) {
    return Status::InvalidArgument(
        "request needs \"graph\" or \"input\" at line " +
        std::to_string(line_number));
  }
  std::string format = "dimacs";
  if (const obs::JsonValue* f = line.Find("format"); f != nullptr) {
    if (!f->is_string()) {
      return Status::InvalidArgument("format must be a string at line " +
                                     std::to_string(line_number));
    }
    format = f->AsString();
  }
  if (format == "dimacs") {
    return LoadDimacsFile(input->AsString());
  }
  if (format == "edgelist") {
    return LoadEdgeListFile(input->AsString());
  }
  return Status::InvalidArgument("unknown format '" + format + "' at line " +
                                 std::to_string(line_number));
}

}  // namespace

Result<RequestSpec> ParseRequestLine(const std::string& text,
                                     int line_number) {
  QPLEX_ASSIGN_OR_RETURN(obs::JsonValue line, obs::JsonValue::Parse(text));
  if (!line.is_object()) {
    return Status::InvalidArgument("request must be a JSON object at line " +
                                   std::to_string(line_number));
  }
  RequestSpec spec;
  spec.request.label = "line-" + std::to_string(line_number);
  if (const obs::JsonValue* id = line.Find("id"); id != nullptr) {
    spec.request.label =
        id->is_string() ? id->AsString() : std::to_string(id->AsInt());
  }
  if (const obs::JsonValue* type = line.Find("type"); type != nullptr) {
    if (!type->is_string()) {
      return Status::InvalidArgument("type must be a string at line " +
                                     std::to_string(line_number));
    }
    const std::string& name = type->AsString();
    if (name == "health") {
      // Health probes carry no instance; everything else on the line is
      // ignored so clients can tag them freely.
      spec.kind = RequestKind::kHealth;
      return spec;
    }
    if (name != "solve") {
      return Status::InvalidArgument("unknown request type '" + name +
                                     "' at line " +
                                     std::to_string(line_number));
    }
  }
  QPLEX_ASSIGN_OR_RETURN(spec.request.graph,
                         LoadRequestGraph(line, line_number));
  if (const obs::JsonValue* k = line.Find("k"); k != nullptr) {
    spec.request.k = static_cast<int>(k->AsInt());
  }
  if (const obs::JsonValue* seed = line.Find("seed"); seed != nullptr) {
    spec.request.seed = static_cast<std::uint64_t>(seed->AsInt());
  }
  if (const obs::JsonValue* deadline = line.Find("deadline_ms");
      deadline != nullptr) {
    spec.request.deadline_seconds = deadline->AsDouble() / 1e3;
  }
  if (const obs::JsonValue* backend = line.Find("backend");
      backend != nullptr) {
    spec.request.backend = backend->AsString();
  }
  if (const obs::JsonValue* backends = line.Find("backends");
      backends != nullptr) {
    if (!backends->is_array() || backends->size() == 0) {
      return Status::InvalidArgument(
          "backends must be a non-empty array at line " +
          std::to_string(line_number));
    }
    for (std::size_t i = 0; i < backends->size(); ++i) {
      spec.backends.push_back(backends->at(i).AsString());
    }
  }
  if (const obs::JsonValue* options = line.Find("options");
      options != nullptr) {
    if (!options->is_object()) {
      return Status::InvalidArgument("options must be an object at line " +
                                     std::to_string(line_number));
    }
    for (const auto& [key, value] : options->members()) {
      if (value.is_string()) {
        spec.request.options[key] = value.AsString();
      } else if (value.is_int()) {
        spec.request.options[key] = std::to_string(value.AsInt());
      } else if (value.is_number()) {
        std::ostringstream formatted;
        formatted << value.AsDouble();
        spec.request.options[key] = formatted.str();
      } else {
        return Status::InvalidArgument("option '" + key +
                                       "' must be a string or number at line " +
                                       std::to_string(line_number));
      }
    }
  }
  return spec;
}

std::string MembersToString(const VertexList& members) {
  std::string joined;
  for (Vertex v : members) {
    if (!joined.empty()) {
      joined += " ";
    }
    joined += std::to_string(v);
  }
  return joined;
}

std::string RenderResponseLine(const std::string& label,
                               const SolveResponse& response) {
  obs::JsonValue line = obs::JsonValue::Object();
  line.Set("label", label);
  line.Set("status", std::string(StatusCodeName(response.status.code())));
  line.Set("backend", response.backend);
  line.Set("size", response.solution.size);
  line.Set("members", MembersToString(response.solution.members));
  line.Set("provably_optimal", response.provably_optimal);
  line.Set("attempts", response.attempts);
  line.Set("degraded_from", response.degraded_from);
  line.Set("degradation_reason", response.degradation_reason);
  return line.Dump();
}

}  // namespace qplex::svc
