#include "svc/registry.h"

#include <algorithm>
#include <utility>

#include "common/status.h"

namespace qplex::svc {

Status SolverRegistry::Register(std::unique_ptr<Solver> solver) {
  QPLEX_CHECK(solver != nullptr) << "null solver registration";
  std::string name(solver->name());
  const auto [it, inserted] = solvers_.emplace(std::move(name),
                                               std::move(solver));
  if (!inserted) {
    return Status::InvalidArgument("backend already registered: " + it->first);
  }
  return Status::Ok();
}

const Solver* SolverRegistry::Get(std::string_view name) const {
  const auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : it->second.get();
}

Status SolverRegistry::SetFallback(std::string_view name,
                                   std::string_view fallback) {
  if (Get(name) == nullptr) {
    return Status::InvalidArgument("fallback source not registered: " +
                                   std::string(name));
  }
  if (Get(fallback) == nullptr) {
    return Status::InvalidArgument("fallback target not registered: " +
                                   std::string(fallback));
  }
  if (name == fallback) {
    return Status::InvalidArgument("backend cannot fall back to itself: " +
                                   std::string(name));
  }
  fallbacks_.insert_or_assign(std::string(name), std::string(fallback));
  return Status::Ok();
}

const std::string* SolverRegistry::Fallback(std::string_view name) const {
  const auto it = fallbacks_.find(name);
  return it == fallbacks_.end() ? nullptr : &it->second;
}

std::vector<std::string> SolverRegistry::FallbackChain(
    std::string_view name) const {
  std::vector<std::string> chain;
  std::string current(name);
  while (true) {
    const std::string* next = Fallback(current);
    if (next == nullptr) {
      break;
    }
    if (*next == name ||
        std::find(chain.begin(), chain.end(), *next) != chain.end()) {
      break;  // configured chains may link into a cycle; stop at the repeat
    }
    chain.push_back(*next);
    current = *next;
  }
  return chain;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const auto& [name, solver] : solvers_) {
    names.push_back(name);
  }
  return names;
}

SolverRegistry MakeBuiltinRegistry() {
  SolverRegistry registry;
  const Status status = RegisterBuiltinBackends(&registry);
  QPLEX_CHECK(status.ok()) << status.ToString();
  return registry;
}

}  // namespace qplex::svc
