#include "svc/registry.h"

#include <utility>

#include "common/status.h"

namespace qplex::svc {

Status SolverRegistry::Register(std::unique_ptr<Solver> solver) {
  QPLEX_CHECK(solver != nullptr) << "null solver registration";
  std::string name(solver->name());
  const auto [it, inserted] = solvers_.emplace(std::move(name),
                                               std::move(solver));
  if (!inserted) {
    return Status::InvalidArgument("backend already registered: " + it->first);
  }
  return Status::Ok();
}

const Solver* SolverRegistry::Get(std::string_view name) const {
  const auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const auto& [name, solver] : solvers_) {
    names.push_back(name);
  }
  return names;
}

SolverRegistry MakeBuiltinRegistry() {
  SolverRegistry registry;
  const Status status = RegisterBuiltinBackends(&registry);
  QPLEX_CHECK(status.ok()) << status.ToString();
  return registry;
}

}  // namespace qplex::svc
