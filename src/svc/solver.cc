#include "svc/solver.h"

#include <charconv>

namespace qplex::svc {
namespace {

template <typename T>
Result<T> ParseNumber(std::string_view key, const std::string& value) {
  T parsed{};
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc{} || ptr != end || value.empty()) {
    return Status::InvalidArgument("bad value for option '" +
                                   std::string(key) + "': '" + value + "'");
  }
  return parsed;
}

}  // namespace

Result<int> OptionInt(const SolveRequest& request, std::string_view key,
                      int fallback) {
  const auto it = request.options.find(std::string(key));
  if (it == request.options.end()) {
    return fallback;
  }
  return ParseNumber<int>(key, it->second);
}

Result<double> OptionDouble(const SolveRequest& request, std::string_view key,
                            double fallback) {
  const auto it = request.options.find(std::string(key));
  if (it == request.options.end()) {
    return fallback;
  }
  return ParseNumber<double>(key, it->second);
}

Result<std::string> OptionString(const SolveRequest& request,
                                 std::string_view key, std::string fallback) {
  const auto it = request.options.find(std::string(key));
  if (it == request.options.end()) {
    return fallback;
  }
  return it->second;
}

}  // namespace qplex::svc
