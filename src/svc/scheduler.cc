#include "svc/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "obs/trace.h"
#include "resilience/fault_injection.h"
#include "svc/graph_hash.h"

namespace qplex::svc {
namespace {

/// Joins backend names for event payloads ("bs+enum+sa").
std::string JoinBackends(const std::vector<std::string>& backends) {
  std::string joined;
  for (const std::string& name : backends) {
    if (!joined.empty()) {
      joined += "+";
    }
    joined += name;
  }
  return joined;
}

std::string MembersToString(const VertexList& members) {
  std::string joined;
  for (Vertex v : members) {
    if (!joined.empty()) {
      joined += " ";
    }
    joined += std::to_string(v);
  }
  return joined;
}

}  // namespace

JobScheduler::JobScheduler(const SolverRegistry* registry,
                           JobSchedulerOptions options)
    : registry_(registry),
      options_(options),
      pool_(std::max(1, options.num_workers)) {
  QPLEX_CHECK(registry_ != nullptr) << "scheduler needs a registry";
  options_.num_workers = std::max(1, options_.num_workers);
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  if (options_.enable_cache) {
    cache_ = std::make_unique<InstanceCache>(options_.cache_capacity);
  }
  if (options_.enable_breakers && options_.breaker.failure_threshold > 0) {
    breakers_ = std::make_unique<resilience::BreakerBoard>(options_.breaker);
  }
  if (options_.watchdog_stall_ms > 0) {
    options_.watchdog_poll_ms = std::max(1.0, options_.watchdog_poll_ms);
    obs::MetricsRegistry::Global()
        .GetGauge("svc.watchdog.stall_budget_ms")
        .Set(options_.watchdog_stall_ms);
    watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  }
  // One long-lived WorkerLoop task per worker, hosted on the shared
  // ThreadPool primitive. The dispatcher thread exists only to be the
  // batch's blocking caller; it participates in the batch like any worker.
  dispatcher_ = std::thread([this] {
    pool_.Run(options_.num_workers,
              [this](int worker) { WorkerLoop(worker); });
  });
}

JobScheduler::~JobScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  }
  // The watchdog outlives the workers so a wedged execution can still be
  // released during drain; by this point every watch entry is unregistered.
  watchdog_stop_.store(true, std::memory_order_relaxed);
  if (watchdog_thread_.joinable()) {
    watchdog_thread_.join();
  }
}

Result<JobId> JobScheduler::Submit(SolveRequest request) {
  std::vector<std::string> backends{request.backend};
  return Enqueue(std::move(request), std::move(backends));
}

Result<JobId> JobScheduler::SubmitPortfolio(SolveRequest request,
                                            std::vector<std::string> backends) {
  return Enqueue(std::move(request), std::move(backends));
}

Result<JobId> JobScheduler::Enqueue(SolveRequest request,
                                    std::vector<std::string> backends) {
  auto& registry = obs::MetricsRegistry::Global();
  if (backends.empty()) {
    return Status::InvalidArgument("job needs at least one backend");
  }
  for (const std::string& name : backends) {
    if (registry_->Get(name) == nullptr) {
      return Status::InvalidArgument("unknown backend: " + name);
    }
  }
  auto job = std::make_shared<Job>();
  const std::size_t num_racers = backends.size();
  job->request = std::move(request);
  job->backends = std::move(backends);
  // The deadline clock starts at submission, so queue wait counts against
  // the caller's budget — a job stuck behind a full queue times out rather
  // than running arbitrarily late.
  job->deadline = job->request.deadline_seconds > 0
                      ? Deadline::After(job->request.deadline_seconds)
                      : Deadline::Infinite();
  job->remaining = static_cast<int>(num_racers);
  job->retries_left.store(options_.retry.max_retries,
                          std::memory_order_relaxed);
  job->responses.resize(num_racers);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return Status::FailedPrecondition("scheduler is shutting down");
    }
    if (queue_.size() + num_racers > options_.queue_capacity) {
      registry.GetCounter("svc.jobs.rejected").Increment();
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) + "/" +
          std::to_string(options_.queue_capacity) + "); retry after a Wait");
    }
    job->id = next_id_++;
    jobs_.emplace(job->id, job);
    for (std::size_t slot = 0; slot < num_racers; ++slot) {
      queue_.push_back(SubTask{job, static_cast<int>(slot)});
    }
  }
  work_cv_.notify_all();
  registry.GetCounter("svc.jobs.submitted").Increment();
  if (num_racers > 1) {
    registry.GetCounter("svc.portfolio.jobs").Increment();
  }
  return job->id;
}

SolveResponse JobScheduler::Wait(JobId id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      SolveResponse response;
      response.status = Status::InvalidArgument(
          "unknown or already-consumed job id " + std::to_string(id));
      return response;
    }
    job = it->second;
  }
  SolveResponse merged;
  {
    // The job stays in jobs_ until the wait completes so that Cancel() keeps
    // working on a job that is being waited on — qplex_serve's signal
    // handler cancels in-flight jobs exactly while the batch loop blocks
    // here.
    std::unique_lock<std::mutex> lock(job->mutex);
    if (job->consumed) {
      SolveResponse response;
      response.status = Status::InvalidArgument(
          "unknown or already-consumed job id " + std::to_string(id));
      return response;
    }
    job->consumed = true;
    job->done_cv.wait(lock, [&] { return job->done; });
    merged = std::move(job->merged);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(id);
  }
  return merged;
}

bool JobScheduler::TryWait(JobId id, SolveResponse* response) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      response->status = Status::InvalidArgument(
          "unknown or already-consumed job id " + std::to_string(id));
      return true;
    }
    job = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (!job->done) {
      return false;
    }
    if (job->consumed) {
      response->status = Status::InvalidArgument(
          "unknown or already-consumed job id " + std::to_string(id));
      return true;
    }
    job->consumed = true;
    *response = std::move(job->merged);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(id);
  }
  return true;
}

void JobScheduler::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it != jobs_.end()) {
    it->second->cancel.Cancel();
  }
}

std::size_t JobScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<resilience::BreakerSnapshot> JobScheduler::BreakerSnapshots()
    const {
  if (breakers_ == nullptr) {
    return {};
  }
  return breakers_->Snapshots();
}

int JobScheduler::OpenBreakerCount() const {
  if (breakers_ == nullptr) {
    return 0;
  }
  return breakers_->OpenCount();
}

std::int64_t JobScheduler::WatchdogKills() const {
  return watchdog_kills_.load(std::memory_order_relaxed);
}

std::uint64_t JobScheduler::RegisterWatch(Job& job, const std::string& backend,
                                          int attempt,
                                          CancelToken* attempt_cancel) {
  if (options_.watchdog_stall_ms <= 0) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(watch_mutex_);
  const std::uint64_t id = next_watch_id_++;
  WatchEntry& entry = watches_[id];
  entry.job_id = job.id;
  entry.label = job.request.label;
  entry.backend = backend;
  entry.attempt = attempt;
  entry.attempt_cancel = attempt_cancel;
  entry.last_polls = attempt_cancel->polls();
  return id;
}

bool JobScheduler::UnregisterWatch(std::uint64_t watch_id) {
  if (watch_id == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(watch_mutex_);
  const auto it = watches_.find(watch_id);
  if (it == watches_.end()) {
    return false;
  }
  const bool killed = it->second.killed;
  watches_.erase(it);
  return killed;
}

void JobScheduler::WatchdogLoop() {
  auto& registry = obs::MetricsRegistry::Global();
  Stopwatch since_scan;
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(options_.watchdog_poll_ms));
    const double elapsed_ms = since_scan.ElapsedMillis();
    since_scan.Restart();
    std::lock_guard<std::mutex> lock(watch_mutex_);
    for (auto& [id, entry] : watches_) {
      if (entry.killed) {
        continue;
      }
      const std::uint64_t polls = entry.attempt_cancel->polls();
      if (polls != entry.last_polls) {
        entry.last_polls = polls;
        entry.stalled_ms = 0;
        continue;
      }
      entry.stalled_ms += elapsed_ms;
      if (entry.stalled_ms < options_.watchdog_stall_ms) {
        continue;
      }
      entry.killed = true;
      watchdog_kills_.fetch_add(1, std::memory_order_relaxed);
      registry.GetCounter("svc.watchdog.kills").Increment();
      registry.GetCounter("svc.watchdog." + entry.backend + ".kills")
          .Increment();
      if (obs::EventsEnabled()) {
        registry.GetCounter("svc.events.payloads_built").Increment();
        // Emitted before Cancel() below, while the wedged execution is still
        // blocked: the kill event therefore always precedes the job's
        // job_end, the ordering qplex_obs validates. Fields are configured
        // budgets and counts only — nothing wall-clock-derived — so
        // single-worker chaos runs replay byte-identically.
        obs::EmitEvent(
            obs::EventLevel::kWarn, "svc", "watchdog_kill",
            {{"trace",
              obs::IdHex(obs::DeriveTraceId(entry.label, entry.job_id))},
             {"job", static_cast<std::int64_t>(entry.job_id)},
             {"backend", entry.backend},
             {"attempt", entry.attempt},
             {"stall_budget_ms", options_.watchdog_stall_ms},
             {"heartbeats", static_cast<std::int64_t>(polls)}});
      }
      entry.attempt_cancel->Cancel();
    }
  }
}

void JobScheduler::WorkerLoop(int worker) {
  while (true) {
    SubTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown requested and the queue is drained
      }
      // A retry prefers a worker other than the one that just failed it;
      // when every queued task excludes this worker, take the front anyway
      // (an excluded task must never be stranded behind an idle worker).
      auto it = std::find_if(
          queue_.begin(), queue_.end(),
          [&](const SubTask& t) { return t.excluded_worker != worker; });
      if (it == queue_.end()) {
        it = queue_.begin();
      }
      task = *it;
      queue_.erase(it);
    }
    Execute(task, worker);
  }
}

void JobScheduler::Execute(const SubTask& task, int worker) {
  Job& job = *task.job;
  const std::string& backend = job.backends[task.slot];
  auto& registry = obs::MetricsRegistry::Global();

  bool emit_start = false;
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    if (!job.started) {
      job.started = true;
      emit_start = true;
    }
  }
  // One trace per job, derived (not allocated) so every racer/attempt/worker
  // recomputes the same id without shared state.
  const std::uint64_t trace_id = obs::DeriveTraceId(job.request.label, job.id);
  if (emit_start && obs::EventsEnabled()) {
    registry.GetCounter("svc.events.payloads_built").Increment();
    obs::EmitEvent(obs::EventLevel::kInfo, "svc", "job_start",
                   {{"trace", obs::IdHex(trace_id)},
                    {"job", static_cast<std::int64_t>(job.id)},
                    {"label", job.request.label},
                    {"backends", JoinBackends(job.backends)},
                    {"k", job.request.k},
                    {"num_vertices", job.request.graph.num_vertices()}});
  }

  SolveResponse response;
  {
    // Request scope for this racer execution. The collector is declared
    // first so the racer scope records itself into it before it flushes;
    // with no sink installed neither is constructed and the whole block
    // costs two null checks.
    std::optional<obs::SpanCollector> collector;
    std::optional<obs::RequestScope> racer_scope;
    if (obs::EventsEnabled()) {
      collector.emplace();
      racer_scope.emplace(
          obs::ChildSpan(obs::RootSpan(trace_id, "job"), "racer", backend),
          &*collector);
    }
    {
      std::optional<obs::RequestScope> attempt_scope;
      if (racer_scope.has_value()) {
        attempt_scope.emplace(obs::ChildSpan(
            racer_scope->context(), "attempt", std::to_string(task.attempt)));
      }
      Stopwatch attempt_watch;
      response = RunBackend(job, backend, task.attempt);
      registry.GetHistogram("svc.phase.attempt_wall_ms")
          .Record(attempt_watch.ElapsedMillis());
    }
    response.attempts = task.attempt;

    if (resilience::ClassifyFailure(response.status.code()) ==
            resilience::FailureClass::kTransient &&
        ConsumeRetryBudget(response.status, job)) {
      ScheduleRetry(task, worker, response.status);
      return;  // the slot completes on a later attempt
    }
  }

  bool last = false;
  const bool events = obs::EventsEnabled();
  SolveResponse merged_copy;
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    job.responses[task.slot] = std::move(response);
    if (job.responses[task.slot].provably_optimal && job.backends.size() > 1) {
      // An exact racer finished: the remaining racers can only re-derive the
      // same optimum, so stop paying for them.
      job.cancel.Cancel();
    }
    last = --job.remaining == 0;
    if (last) {
      MergeResponses(&job);
      job.done = true;
      if (events) {
        // The copy feeds only the job_end payload; with no sink installed it
        // would be a full SolveResponse (member list included) built for
        // nothing.
        merged_copy = job.merged;
      }
    }
  }
  if (!last) {
    return;
  }
  // Account and emit BEFORE waking waiters: a waiter may capture the metrics
  // registry (or emit batch_end) the moment Wait() returns, and the final
  // job's counter tick and job_end event must already be visible then.
  registry.GetCounter("svc.jobs.completed").Increment();
  const double latency_ms = job.submitted.ElapsedMillis();
  registry.GetHistogram("svc.job_latency_wall_ms").Record(latency_ms);
  if (options_.slo_latency_ms > 0) {
    registry.GetGauge("svc.slo.objective_ms").Set(options_.slo_latency_ms);
    registry
        .GetCounter(latency_ms <= options_.slo_latency_ms ? "svc.slo.ok"
                                                          : "svc.slo.breaches")
        .Increment();
  }
  if (events) {
    registry.GetCounter("svc.events.payloads_built").Increment();
    obs::EmitEvent(
        obs::EventLevel::kInfo, "svc", "job_end",
        {{"trace", obs::IdHex(trace_id)},
         {"job", static_cast<std::int64_t>(job.id)},
         {"label", job.request.label},
         {"backend", merged_copy.backend},
         {"status", std::string(StatusCodeName(merged_copy.status.code()))},
         {"size", merged_copy.solution.size},
         {"members", MembersToString(merged_copy.solution.members)},
         {"provably_optimal", merged_copy.provably_optimal},
         {"cache_hit", merged_copy.metrics.cache_hit},
         {"attempts", merged_copy.attempts},
         {"degraded_from", merged_copy.degraded_from},
         {"degradation_reason", merged_copy.degradation_reason},
         {"racers", static_cast<int>(job.backends.size())},
         {"winner_margin", job.winner_margin},
         {"queue_seconds", merged_copy.metrics.queue_seconds},
         {"wall_seconds", merged_copy.metrics.wall_seconds}});
    // The root span closes the trace: emitted once, by whichever racer
    // finished last.
    obs::EmitSpanEvent(obs::RootSpan(trace_id, "job"), 1, latency_ms);
  }
  job.done_cv.notify_all();
}

SolveResponse JobScheduler::RunBackend(Job& job, const std::string& backend,
                                       int attempt) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::TraceSpan span("svc.job");

  // Non-null exactly when Execute opened the attempt scope (events on); the
  // phase spans below hang off it so the whole attempt reconstructs as one
  // subtree. Note Current() is now the span the TraceSpan above bridged in.
  const obs::SpanContext* attempt_span = obs::RequestScope::Current();
  obs::SpanCollector* collector = obs::RequestScope::CurrentCollector();

  SolveResponse response;
  response.backend = backend;
  response.metrics.queue_seconds = job.submitted.ElapsedSeconds();
  if (attempt == 1) {
    // Admission accounting happens once per slot; retries are continuations
    // of the same admission, not new jobs.
    registry.GetHistogram("svc.queue_wait_seconds")
        .Record(response.metrics.queue_seconds);
    registry.GetHistogram("svc.phase.queue_wait_wall_ms")
        .Record(response.metrics.queue_seconds * 1e3);
    registry.GetCounter("svc.backend." + backend + ".jobs").Increment();
    if (collector != nullptr && attempt_span != nullptr) {
      // The wait already happened (between Enqueue and now), so the span is
      // recorded directly instead of scoped.
      collector->Record(obs::ChildSpan(*attempt_span, "queue"),
                        response.metrics.queue_seconds * 1e3);
    }
  }

  std::string key;
  if (cache_ != nullptr) {
    key = CacheKey(job.request, backend);
    if (attempt == 1) {
      Stopwatch lookup_watch;
      std::optional<SolveResponse> cached = cache_->Lookup(key);
      if (collector != nullptr && attempt_span != nullptr) {
        collector->Record(obs::ChildSpan(*attempt_span, "cache"),
                          lookup_watch.ElapsedMillis());
      }
      if (cached.has_value()) {
        const double queue_seconds = response.metrics.queue_seconds;
        response = *std::move(cached);
        response.metrics.queue_seconds = queue_seconds;
        response.metrics.wall_seconds = 0;
        response.metrics.cache_hit = true;
        return response;
      }
    }
  }

  if (StopRequested(job.deadline, &job.cancel)) {
    response.status = Status::DeadlineExceeded(
        "job budget exhausted before backend " + backend + " started");
    registry.GetCounter("svc.deadline_hits").Increment();
    return response;
  }

  Stopwatch watch;
  Execution execution;
  {
    std::optional<obs::RequestScope> solve_scope;
    if (attempt_span != nullptr) {
      solve_scope.emplace(obs::ChildSpan(*attempt_span, "solve"));
    }
    execution = ExecuteGuarded(job, backend, attempt);
  }
  Result<SolveOutcome>& outcome = execution.outcome;
  response.metrics.wall_seconds = watch.ElapsedSeconds();
  registry.GetHistogram("svc.job_wall_seconds")
      .Record(response.metrics.wall_seconds);

  if (!outcome.ok()) {
    if (!execution.short_circuited) {
      // A breaker short-circuit never ran the backend, so it is not a
      // backend failure — the breaker's own counters account for it.
      registry.GetCounter("svc.backend." + backend + ".failures").Increment();
    }
    if (resilience::ClassifyFailure(outcome.status().code()) ==
        resilience::FailureClass::kDegradable) {
      return RunFallbackChain(job, backend, std::move(response),
                              outcome.status());
    }
    response.status = outcome.status();
    return response;
  }
  SolveOutcome& result = outcome.value();
  response.solution = std::move(result.solution);
  response.provably_optimal = result.provably_optimal;
  if (!result.completed) {
    response.status = Status::DeadlineExceeded(
        "backend " + backend +
        " stopped early (deadline or cancellation); incumbent attached");
    registry.GetCounter("svc.deadline_hits").Increment();
  } else if (cache_ != nullptr) {
    // Only completed OK answers are worth replaying; truncated incumbents
    // would poison later, better-budgeted requests.
    cache_->Insert(key, response);
  }
  return response;
}

JobScheduler::Execution JobScheduler::ExecuteGuarded(Job& job,
                                                     const std::string& backend,
                                                     int attempt) {
  Execution execution;
  resilience::CircuitBreaker* breaker =
      breakers_ != nullptr ? breakers_->Get(backend) : nullptr;
  if (breaker != nullptr &&
      breaker->Consult() ==
          resilience::CircuitBreaker::Decision::kShortCircuit) {
    execution.short_circuited = true;
    execution.outcome = Status::ResourceExhausted(
        "circuit breaker open for backend " + backend +
        "; skipping execution");
    return execution;
  }
  // Attempt-scoped cancellation chained under the job token: the watchdog
  // cancels just this execution (fallback still runs with the job's
  // remaining budget), while portfolio/job-level Cancel() reaches the
  // backend through the parent link.
  CancelToken attempt_cancel;
  attempt_cancel.LinkParent(&job.cancel);
  const std::uint64_t watch_id =
      RegisterWatch(job, backend, attempt, &attempt_cancel);
  execution.outcome = GuardedSolve(job, backend, attempt_cancel);
  execution.watchdog_killed = UnregisterWatch(watch_id);
  if (execution.watchdog_killed) {
    // Degradable by design: kResourceExhausted sends the caller down the
    // fallback chain. The message carries only the configured budget, so
    // journal bytes stay deterministic.
    execution.outcome = Status::ResourceExhausted(
        "watchdog cancelled backend " + backend +
        ": no heartbeat progress within " +
        std::to_string(static_cast<long long>(options_.watchdog_stall_ms)) +
        " ms stall budget");
  }
  if (breaker != nullptr) {
    if (execution.watchdog_killed) {
      // A wedge is a backend-health failure even though its status code
      // (kResourceExhausted) would not normally count.
      breaker->RecordFailure();
    } else if (execution.outcome.ok()) {
      breaker->RecordSuccess();
    } else if (resilience::BreakerCountsFailure(
                   execution.outcome.status().code())) {
      breaker->RecordFailure();
    } else {
      breaker->RecordNeutral();
    }
  }
  return execution;
}

Result<SolveOutcome> JobScheduler::GuardedSolve(Job& job,
                                                const std::string& backend,
                                                CancelToken& attempt_cancel) {
  auto& registry = obs::MetricsRegistry::Global();
  try {
    if (resilience::FaultFires(resilience::FaultSite::kSolverThrow)) {
      throw std::runtime_error("injected fault: solver_throw");
    }
    if (resilience::FaultFires(resilience::FaultSite::kSolverSlow)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    if (resilience::FaultFires(resilience::FaultSite::kSolverStall)) {
      // Deterministic wedge: hold the execution without one heartbeat until
      // the watchdog (or a job-level cancel / the deadline) releases it.
      // Direct Cancelled() reads keep the poll counter frozen — in virtual
      // time this backend has stopped making progress, however briefly the
      // wall-clock wait lasts.
      while (!attempt_cancel.Cancelled() && !job.deadline.Expired()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      SolveOutcome stalled;
      stalled.completed = false;
      return stalled;
    }
    SolveContext context;
    const double remaining = job.deadline.RemainingSeconds();
    context.budget_seconds =
        std::isinf(remaining) ? 0 : std::max(remaining, 1e-9);
    context.cancel = &attempt_cancel;
    return registry_->Get(backend)->Solve(job.request, context);
  } catch (const std::exception& e) {
    registry.GetCounter("svc.backend." + backend + ".exceptions").Increment();
    return Status::Internal("backend " + backend +
                            " threw: " + std::string(e.what()));
  } catch (...) {
    registry.GetCounter("svc.backend." + backend + ".exceptions").Increment();
    return Status::Internal("backend " + backend +
                            " threw a non-standard exception");
  }
}

SolveResponse JobScheduler::RunFallbackChain(Job& job,
                                             const std::string& backend,
                                             SolveResponse response,
                                             Status original) {
  auto& registry = obs::MetricsRegistry::Global();
  // The chain hangs off whatever span is innermost at entry (the attempt
  // subtree), so degraded executions stay inside the job's trace.
  const obs::SpanContext* parent_span = obs::RequestScope::Current();
  const std::string reason = original.ToString();
  std::vector<std::string> visited{backend};
  std::string current = backend;
  Status last = std::move(original);
  while (true) {
    const std::string* next = registry_->Fallback(current);
    if (next == nullptr ||
        std::find(visited.begin(), visited.end(), *next) != visited.end()) {
      break;  // end of chain (or a configuration cycle): surface the failure
    }
    current = *next;
    visited.push_back(current);
    registry.GetCounter("svc.fallbacks.taken").Increment();
    if (obs::EventsEnabled()) {
      registry.GetCounter("svc.events.payloads_built").Increment();
      obs::EmitEvent(obs::EventLevel::kWarn, "svc", "job_fallback",
                     {{"trace", obs::IdHex(obs::DeriveTraceId(
                                    job.request.label, job.id))},
                      {"job", static_cast<std::int64_t>(job.id)},
                      {"from", backend},
                      {"to", current},
                      {"reason", reason}});
    }
    if (StopRequested(job.deadline, &job.cancel)) {
      last = Status::DeadlineExceeded(
          "job budget exhausted before fallback " + current + " started");
      registry.GetCounter("svc.deadline_hits").Increment();
      break;
    }
    Stopwatch watch;
    Execution execution;
    {
      std::optional<obs::RequestScope> hop_scope;
      std::optional<obs::RequestScope> solve_scope;
      if (parent_span != nullptr) {
        hop_scope.emplace(obs::ChildSpan(*parent_span, "fallback", current));
        solve_scope.emplace(obs::ChildSpan(hop_scope->context(), "solve"));
      }
      execution = ExecuteGuarded(job, current, 1);
    }
    Result<SolveOutcome>& outcome = execution.outcome;
    response.metrics.wall_seconds += watch.ElapsedSeconds();
    registry.GetHistogram("svc.phase.fallback_wall_ms")
        .Record(watch.ElapsedMillis());
    if (!outcome.ok()) {
      last = outcome.status();
      if (!execution.short_circuited) {
        registry.GetCounter("svc.backend." + current + ".failures")
            .Increment();
      }
      if (resilience::ClassifyFailure(last.code()) ==
          resilience::FailureClass::kDegradable) {
        // Also taken when this hop's breaker is open or its execution was
        // watchdog-killed: keep walking toward a healthy backend.
        continue;
      }
      break;
    }
    SolveOutcome& result = outcome.value();
    response.backend = current;
    response.degraded_from = backend;
    response.degradation_reason = reason;
    response.solution = std::move(result.solution);
    response.provably_optimal = result.provably_optimal;
    if (!result.completed) {
      response.status = Status::DeadlineExceeded(
          "backend " + current +
          " stopped early (deadline or cancellation); incumbent attached");
      registry.GetCounter("svc.deadline_hits").Increment();
    } else {
      response.status = Status::Ok();
    }
    // Degraded answers are never cached: the cache key names the requested
    // backend, and a future request with a bigger budget deserves the real
    // thing.
    return response;
  }
  response.status = std::move(last);
  return response;
}

bool JobScheduler::ConsumeRetryBudget(const Status& status, Job& job) {
  auto& registry = obs::MetricsRegistry::Global();
  if (StopRequested(job.deadline, &job.cancel)) {
    return false;  // no budget left to retry into
  }
  if (job.retries_left.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    registry.GetCounter("svc.retries.exhausted").Increment();
    return false;
  }
  (void)status;
  return true;
}

void JobScheduler::ScheduleRetry(const SubTask& task, int worker,
                                 const Status& failure) {
  Job& job = *task.job;
  const std::string& backend = job.backends[task.slot];
  auto& registry = obs::MetricsRegistry::Global();

  // The delay is a pure function of (seed, job, slot, attempt): replay the
  // deterministic backoff sequence up to this attempt. Recording the
  // *computed* delay (not a measured sleep) keeps the histogram exactly
  // reproducible for the bench gate.
  resilience::BackoffOptions backoff_options;
  backoff_options.base_ms = options_.retry.backoff_base_ms;
  backoff_options.cap_ms = options_.retry.backoff_cap_ms;
  backoff_options.seed = options_.retry.backoff_seed ^
                         (static_cast<std::uint64_t>(job.id) *
                          0x9e3779b97f4a7c15ULL) ^
                         static_cast<std::uint64_t>(task.slot);
  const double delay_ms =
      resilience::Backoff::DelayAtAttempt(backoff_options, task.attempt);

  registry.GetCounter("svc.retries.scheduled").Increment();
  registry.GetCounter("svc.backend." + backend + ".retries").Increment();
  registry.GetHistogram("svc.retries.backoff_ms").Record(delay_ms);
  registry.GetHistogram("svc.phase.backoff_ms").Record(delay_ms);
  if (obs::SpanCollector* collector = obs::RequestScope::CurrentCollector()) {
    // Current() is the racer scope here (the attempt scope closed before the
    // retry decision), so backoffs sit between attempt subtrees. The span's
    // duration is the computed delay, matching the histograms.
    if (const obs::SpanContext* racer = obs::RequestScope::Current()) {
      collector->Record(
          obs::ChildSpan(*racer, "backoff", std::to_string(task.attempt)),
          delay_ms);
    }
  }
  if (obs::EventsEnabled()) {
    registry.GetCounter("svc.events.payloads_built").Increment();
    obs::EmitEvent(obs::EventLevel::kWarn, "svc", "job_retry",
                   {{"trace", obs::IdHex(obs::DeriveTraceId(job.request.label,
                                                            job.id))},
                    {"job", static_cast<std::int64_t>(job.id)},
                    {"backend", backend},
                    {"attempt", task.attempt},
                    {"backoff_ms", delay_ms},
                    {"status", std::string(StatusCodeName(failure.code()))}});
  }

  const double remaining_ms = job.deadline.RemainingSeconds() * 1e3;
  const double sleep_ms =
      std::isinf(remaining_ms) ? delay_ms
                               : std::min(delay_ms, std::max(remaining_ms, 0.0));
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(SubTask{task.job, task.slot, task.attempt + 1, worker});
  }
  work_cv_.notify_all();
}

void JobScheduler::MergeResponses(Job* job) {
  // Winner rule, deterministic given the per-slot responses:
  //   1. proven-optimal OK answers first,
  //   2. then larger plexes (a deadline incumbent can still win on size),
  //   3. then OK status over truncated status,
  //   4. then earliest position in the submitted backend list.
  const auto rank = [](const SolveResponse& r, int slot) {
    return std::make_tuple(r.status.ok() && r.provably_optimal,
                           r.solution.size, r.status.ok(), -slot);
  };
  int best = 0;
  for (int slot = 1; slot < static_cast<int>(job->responses.size()); ++slot) {
    if (rank(job->responses[slot], slot) > rank(job->responses[best], best)) {
      best = slot;
    }
  }
  job->winner_margin = 0;
  if (job->responses.size() > 1) {
    int best_other = 0;
    for (int slot = 0; slot < static_cast<int>(job->responses.size());
         ++slot) {
      if (slot != best) {
        best_other = std::max(best_other, job->responses[slot].solution.size);
      }
    }
    job->winner_margin = job->responses[best].solution.size - best_other;
  }
  job->merged = std::move(job->responses[best]);
}

}  // namespace qplex::svc
