#include "svc/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/fault_injection.h"
#include "svc/graph_hash.h"

namespace qplex::svc {
namespace {

/// Joins backend names for event payloads ("bs+enum+sa").
std::string JoinBackends(const std::vector<std::string>& backends) {
  std::string joined;
  for (const std::string& name : backends) {
    if (!joined.empty()) {
      joined += "+";
    }
    joined += name;
  }
  return joined;
}

std::string MembersToString(const VertexList& members) {
  std::string joined;
  for (Vertex v : members) {
    if (!joined.empty()) {
      joined += " ";
    }
    joined += std::to_string(v);
  }
  return joined;
}

}  // namespace

JobScheduler::JobScheduler(const SolverRegistry* registry,
                           JobSchedulerOptions options)
    : registry_(registry),
      options_(options),
      pool_(std::max(1, options.num_workers)) {
  QPLEX_CHECK(registry_ != nullptr) << "scheduler needs a registry";
  options_.num_workers = std::max(1, options_.num_workers);
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  if (options_.enable_cache) {
    cache_ = std::make_unique<InstanceCache>(options_.cache_capacity);
  }
  // One long-lived WorkerLoop task per worker, hosted on the shared
  // ThreadPool primitive. The dispatcher thread exists only to be the
  // batch's blocking caller; it participates in the batch like any worker.
  dispatcher_ = std::thread([this] {
    pool_.Run(options_.num_workers,
              [this](int worker) { WorkerLoop(worker); });
  });
}

JobScheduler::~JobScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  }
}

Result<JobId> JobScheduler::Submit(SolveRequest request) {
  std::vector<std::string> backends{request.backend};
  return Enqueue(std::move(request), std::move(backends));
}

Result<JobId> JobScheduler::SubmitPortfolio(SolveRequest request,
                                            std::vector<std::string> backends) {
  return Enqueue(std::move(request), std::move(backends));
}

Result<JobId> JobScheduler::Enqueue(SolveRequest request,
                                    std::vector<std::string> backends) {
  auto& registry = obs::MetricsRegistry::Global();
  if (backends.empty()) {
    return Status::InvalidArgument("job needs at least one backend");
  }
  for (const std::string& name : backends) {
    if (registry_->Get(name) == nullptr) {
      return Status::InvalidArgument("unknown backend: " + name);
    }
  }
  auto job = std::make_shared<Job>();
  const std::size_t num_racers = backends.size();
  job->request = std::move(request);
  job->backends = std::move(backends);
  // The deadline clock starts at submission, so queue wait counts against
  // the caller's budget — a job stuck behind a full queue times out rather
  // than running arbitrarily late.
  job->deadline = job->request.deadline_seconds > 0
                      ? Deadline::After(job->request.deadline_seconds)
                      : Deadline::Infinite();
  job->remaining = static_cast<int>(num_racers);
  job->retries_left.store(options_.retry.max_retries,
                          std::memory_order_relaxed);
  job->responses.resize(num_racers);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return Status::FailedPrecondition("scheduler is shutting down");
    }
    if (queue_.size() + num_racers > options_.queue_capacity) {
      registry.GetCounter("svc.jobs.rejected").Increment();
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) + "/" +
          std::to_string(options_.queue_capacity) + "); retry after a Wait");
    }
    job->id = next_id_++;
    jobs_.emplace(job->id, job);
    for (std::size_t slot = 0; slot < num_racers; ++slot) {
      queue_.push_back(SubTask{job, static_cast<int>(slot)});
    }
  }
  work_cv_.notify_all();
  registry.GetCounter("svc.jobs.submitted").Increment();
  if (num_racers > 1) {
    registry.GetCounter("svc.portfolio.jobs").Increment();
  }
  return job->id;
}

SolveResponse JobScheduler::Wait(JobId id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      SolveResponse response;
      response.status = Status::InvalidArgument(
          "unknown or already-consumed job id " + std::to_string(id));
      return response;
    }
    job = it->second;
  }
  SolveResponse merged;
  {
    // The job stays in jobs_ until the wait completes so that Cancel() keeps
    // working on a job that is being waited on — qplex_serve's signal
    // handler cancels in-flight jobs exactly while the batch loop blocks
    // here.
    std::unique_lock<std::mutex> lock(job->mutex);
    if (job->consumed) {
      SolveResponse response;
      response.status = Status::InvalidArgument(
          "unknown or already-consumed job id " + std::to_string(id));
      return response;
    }
    job->consumed = true;
    job->done_cv.wait(lock, [&] { return job->done; });
    merged = std::move(job->merged);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(id);
  }
  return merged;
}

void JobScheduler::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it != jobs_.end()) {
    it->second->cancel.Cancel();
  }
}

std::size_t JobScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void JobScheduler::WorkerLoop(int worker) {
  while (true) {
    SubTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown requested and the queue is drained
      }
      // A retry prefers a worker other than the one that just failed it;
      // when every queued task excludes this worker, take the front anyway
      // (an excluded task must never be stranded behind an idle worker).
      auto it = std::find_if(
          queue_.begin(), queue_.end(),
          [&](const SubTask& t) { return t.excluded_worker != worker; });
      if (it == queue_.end()) {
        it = queue_.begin();
      }
      task = *it;
      queue_.erase(it);
    }
    Execute(task, worker);
  }
}

void JobScheduler::Execute(const SubTask& task, int worker) {
  Job& job = *task.job;
  const std::string& backend = job.backends[task.slot];

  bool emit_start = false;
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    if (!job.started) {
      job.started = true;
      emit_start = true;
    }
  }
  if (emit_start && obs::EventsEnabled()) {
    obs::EmitEvent(obs::EventLevel::kInfo, "svc", "job_start",
                   {{"job", static_cast<std::int64_t>(job.id)},
                    {"label", job.request.label},
                    {"backends", JoinBackends(job.backends)},
                    {"k", job.request.k},
                    {"num_vertices", job.request.graph.num_vertices()}});
  }

  SolveResponse response = RunBackend(job, backend, task.attempt);
  response.attempts = task.attempt;

  if (resilience::ClassifyFailure(response.status.code()) ==
          resilience::FailureClass::kTransient &&
      ConsumeRetryBudget(response.status, job)) {
    ScheduleRetry(task, worker, response.status);
    return;  // the slot completes on a later attempt
  }

  bool last = false;
  SolveResponse merged_copy;
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    job.responses[task.slot] = std::move(response);
    if (job.responses[task.slot].provably_optimal && job.backends.size() > 1) {
      // An exact racer finished: the remaining racers can only re-derive the
      // same optimum, so stop paying for them.
      job.cancel.Cancel();
    }
    last = --job.remaining == 0;
    if (last) {
      MergeResponses(&job);
      job.done = true;
      merged_copy = job.merged;
    }
  }
  if (!last) {
    return;
  }
  // Account and emit BEFORE waking waiters: a waiter may capture the metrics
  // registry (or emit batch_end) the moment Wait() returns, and the final
  // job's counter tick and job_end event must already be visible then.
  obs::MetricsRegistry::Global().GetCounter("svc.jobs.completed").Increment();
  if (obs::EventsEnabled()) {
    obs::EmitEvent(
        obs::EventLevel::kInfo, "svc", "job_end",
        {{"job", static_cast<std::int64_t>(job.id)},
         {"label", job.request.label},
         {"backend", merged_copy.backend},
         {"status", std::string(StatusCodeName(merged_copy.status.code()))},
         {"size", merged_copy.solution.size},
         {"members", MembersToString(merged_copy.solution.members)},
         {"provably_optimal", merged_copy.provably_optimal},
         {"cache_hit", merged_copy.metrics.cache_hit},
         {"attempts", merged_copy.attempts},
         {"degraded_from", merged_copy.degraded_from},
         {"degradation_reason", merged_copy.degradation_reason},
         {"queue_seconds", merged_copy.metrics.queue_seconds},
         {"wall_seconds", merged_copy.metrics.wall_seconds}});
  }
  job.done_cv.notify_all();
}

SolveResponse JobScheduler::RunBackend(Job& job, const std::string& backend,
                                       int attempt) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::TraceSpan span("svc.job");

  SolveResponse response;
  response.backend = backend;
  response.metrics.queue_seconds = job.submitted.ElapsedSeconds();
  if (attempt == 1) {
    // Admission accounting happens once per slot; retries are continuations
    // of the same admission, not new jobs.
    registry.GetHistogram("svc.queue_wait_seconds")
        .Record(response.metrics.queue_seconds);
    registry.GetCounter("svc.backend." + backend + ".jobs").Increment();
  }

  std::string key;
  if (cache_ != nullptr) {
    key = CacheKey(job.request, backend);
    if (attempt == 1) {
      if (std::optional<SolveResponse> cached = cache_->Lookup(key)) {
        const double queue_seconds = response.metrics.queue_seconds;
        response = *std::move(cached);
        response.metrics.queue_seconds = queue_seconds;
        response.metrics.wall_seconds = 0;
        response.metrics.cache_hit = true;
        return response;
      }
    }
  }

  if (StopRequested(job.deadline, &job.cancel)) {
    response.status = Status::DeadlineExceeded(
        "job budget exhausted before backend " + backend + " started");
    registry.GetCounter("svc.deadline_hits").Increment();
    return response;
  }

  Stopwatch watch;
  Result<SolveOutcome> outcome = GuardedSolve(job, backend);
  response.metrics.wall_seconds = watch.ElapsedSeconds();
  registry.GetHistogram("svc.job_wall_seconds")
      .Record(response.metrics.wall_seconds);

  if (!outcome.ok()) {
    registry.GetCounter("svc.backend." + backend + ".failures").Increment();
    if (resilience::ClassifyFailure(outcome.status().code()) ==
        resilience::FailureClass::kDegradable) {
      return RunFallbackChain(job, backend, std::move(response),
                              outcome.status());
    }
    response.status = outcome.status();
    return response;
  }
  SolveOutcome& result = outcome.value();
  response.solution = std::move(result.solution);
  response.provably_optimal = result.provably_optimal;
  if (!result.completed) {
    response.status = Status::DeadlineExceeded(
        "backend " + backend +
        " stopped early (deadline or cancellation); incumbent attached");
    registry.GetCounter("svc.deadline_hits").Increment();
  } else if (cache_ != nullptr) {
    // Only completed OK answers are worth replaying; truncated incumbents
    // would poison later, better-budgeted requests.
    cache_->Insert(key, response);
  }
  return response;
}

Result<SolveOutcome> JobScheduler::GuardedSolve(Job& job,
                                                const std::string& backend) {
  auto& registry = obs::MetricsRegistry::Global();
  try {
    if (resilience::FaultFires(resilience::FaultSite::kSolverThrow)) {
      throw std::runtime_error("injected fault: solver_throw");
    }
    if (resilience::FaultFires(resilience::FaultSite::kSolverSlow)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    SolveContext context;
    const double remaining = job.deadline.RemainingSeconds();
    context.budget_seconds =
        std::isinf(remaining) ? 0 : std::max(remaining, 1e-9);
    context.cancel = &job.cancel;
    return registry_->Get(backend)->Solve(job.request, context);
  } catch (const std::exception& e) {
    registry.GetCounter("svc.backend." + backend + ".exceptions").Increment();
    return Status::Internal("backend " + backend +
                            " threw: " + std::string(e.what()));
  } catch (...) {
    registry.GetCounter("svc.backend." + backend + ".exceptions").Increment();
    return Status::Internal("backend " + backend +
                            " threw a non-standard exception");
  }
}

SolveResponse JobScheduler::RunFallbackChain(Job& job,
                                             const std::string& backend,
                                             SolveResponse response,
                                             Status original) {
  auto& registry = obs::MetricsRegistry::Global();
  const std::string reason = original.ToString();
  std::vector<std::string> visited{backend};
  std::string current = backend;
  Status last = std::move(original);
  while (true) {
    const std::string* next = registry_->Fallback(current);
    if (next == nullptr ||
        std::find(visited.begin(), visited.end(), *next) != visited.end()) {
      break;  // end of chain (or a configuration cycle): surface the failure
    }
    current = *next;
    visited.push_back(current);
    registry.GetCounter("svc.fallbacks.taken").Increment();
    if (obs::EventsEnabled()) {
      obs::EmitEvent(obs::EventLevel::kWarn, "svc", "job_fallback",
                     {{"job", static_cast<std::int64_t>(job.id)},
                      {"from", backend},
                      {"to", current},
                      {"reason", reason}});
    }
    if (StopRequested(job.deadline, &job.cancel)) {
      last = Status::DeadlineExceeded(
          "job budget exhausted before fallback " + current + " started");
      registry.GetCounter("svc.deadline_hits").Increment();
      break;
    }
    Stopwatch watch;
    Result<SolveOutcome> outcome = GuardedSolve(job, current);
    response.metrics.wall_seconds += watch.ElapsedSeconds();
    if (!outcome.ok()) {
      last = outcome.status();
      registry.GetCounter("svc.backend." + current + ".failures").Increment();
      if (resilience::ClassifyFailure(last.code()) ==
          resilience::FailureClass::kDegradable) {
        continue;  // the fallback is also over budget: keep walking
      }
      break;
    }
    SolveOutcome& result = outcome.value();
    response.backend = current;
    response.degraded_from = backend;
    response.degradation_reason = reason;
    response.solution = std::move(result.solution);
    response.provably_optimal = result.provably_optimal;
    if (!result.completed) {
      response.status = Status::DeadlineExceeded(
          "backend " + current +
          " stopped early (deadline or cancellation); incumbent attached");
      registry.GetCounter("svc.deadline_hits").Increment();
    } else {
      response.status = Status::Ok();
    }
    // Degraded answers are never cached: the cache key names the requested
    // backend, and a future request with a bigger budget deserves the real
    // thing.
    return response;
  }
  response.status = std::move(last);
  return response;
}

bool JobScheduler::ConsumeRetryBudget(const Status& status, Job& job) {
  auto& registry = obs::MetricsRegistry::Global();
  if (StopRequested(job.deadline, &job.cancel)) {
    return false;  // no budget left to retry into
  }
  if (job.retries_left.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    registry.GetCounter("svc.retries.exhausted").Increment();
    return false;
  }
  (void)status;
  return true;
}

void JobScheduler::ScheduleRetry(const SubTask& task, int worker,
                                 const Status& failure) {
  Job& job = *task.job;
  const std::string& backend = job.backends[task.slot];
  auto& registry = obs::MetricsRegistry::Global();

  // The delay is a pure function of (seed, job, slot, attempt): replay the
  // deterministic backoff sequence up to this attempt. Recording the
  // *computed* delay (not a measured sleep) keeps the histogram exactly
  // reproducible for the bench gate.
  resilience::BackoffOptions backoff_options;
  backoff_options.base_ms = options_.retry.backoff_base_ms;
  backoff_options.cap_ms = options_.retry.backoff_cap_ms;
  backoff_options.seed = options_.retry.backoff_seed ^
                         (static_cast<std::uint64_t>(job.id) *
                          0x9e3779b97f4a7c15ULL) ^
                         static_cast<std::uint64_t>(task.slot);
  resilience::Backoff backoff(backoff_options);
  double delay_ms = 0;
  for (int i = 0; i < task.attempt; ++i) {
    delay_ms = backoff.NextDelayMs();
  }

  registry.GetCounter("svc.retries.scheduled").Increment();
  registry.GetCounter("svc.backend." + backend + ".retries").Increment();
  registry.GetHistogram("svc.retries.backoff_ms").Record(delay_ms);
  if (obs::EventsEnabled()) {
    obs::EmitEvent(obs::EventLevel::kWarn, "svc", "job_retry",
                   {{"job", static_cast<std::int64_t>(job.id)},
                    {"backend", backend},
                    {"attempt", task.attempt},
                    {"backoff_ms", delay_ms},
                    {"status", std::string(StatusCodeName(failure.code()))}});
  }

  const double remaining_ms = job.deadline.RemainingSeconds() * 1e3;
  const double sleep_ms =
      std::isinf(remaining_ms) ? delay_ms
                               : std::min(delay_ms, std::max(remaining_ms, 0.0));
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(SubTask{task.job, task.slot, task.attempt + 1, worker});
  }
  work_cv_.notify_all();
}

void JobScheduler::MergeResponses(Job* job) {
  // Winner rule, deterministic given the per-slot responses:
  //   1. proven-optimal OK answers first,
  //   2. then larger plexes (a deadline incumbent can still win on size),
  //   3. then OK status over truncated status,
  //   4. then earliest position in the submitted backend list.
  const auto rank = [](const SolveResponse& r, int slot) {
    return std::make_tuple(r.status.ok() && r.provably_optimal,
                           r.solution.size, r.status.ok(), -slot);
  };
  int best = 0;
  for (int slot = 1; slot < static_cast<int>(job->responses.size()); ++slot) {
    if (rank(job->responses[slot], slot) > rank(job->responses[best], best)) {
      best = slot;
    }
  }
  job->merged = std::move(job->responses[best]);
}

}  // namespace qplex::svc
