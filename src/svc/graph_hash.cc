#include "svc/graph_hash.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace qplex::svc {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void MixUint64(std::uint64_t value, std::uint64_t* hash) {
  for (int byte = 0; byte < 8; ++byte) {
    *hash ^= (value >> (8 * byte)) & 0xFF;
    *hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t CanonicalGraphHash(const Graph& graph) {
  std::vector<std::pair<Vertex, Vertex>> edges = graph.Edges();
  for (auto& [u, v] : edges) {
    if (u > v) {
      std::swap(u, v);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::uint64_t hash = kFnvOffset;
  MixUint64(static_cast<std::uint64_t>(graph.num_vertices()), &hash);
  for (const auto& [u, v] : edges) {
    MixUint64((static_cast<std::uint64_t>(u) << 32) |
                  static_cast<std::uint32_t>(v),
              &hash);
  }
  return hash;
}

std::string CacheKey(const SolveRequest& request, std::string_view backend) {
  std::string key;
  key += "g=" + std::to_string(CanonicalGraphHash(request.graph));
  key += ";k=" + std::to_string(request.k);
  key += ";seed=" + std::to_string(request.seed);
  key += ";backend=";
  key += backend;
  // request.options is a std::map, so iteration order (and therefore the
  // fingerprint) is independent of insertion order.
  for (const auto& [name, value] : request.options) {
    key += ";" + name + "=" + value;
  }
  return key;
}

}  // namespace qplex::svc
