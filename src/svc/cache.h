#ifndef QPLEX_SVC_CACHE_H_
#define QPLEX_SVC_CACHE_H_

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "svc/solver.h"

namespace qplex::svc {

/// Thread-safe LRU cache of completed solve responses, keyed by
/// svc::CacheKey (canonical graph hash + k + seed + backend + options).
/// Every Lookup/Insert bumps the svc.cache.{hits,misses,insertions,
/// evictions} counters in the global metrics registry, so cache
/// effectiveness shows up in run reports without extra plumbing.
///
/// Only responses worth replaying belong here: the scheduler inserts a
/// response iff its status is OK and the backend ran to completion
/// (deadline-truncated incumbents are *not* cached — a later caller with a
/// bigger budget deserves a real run).
class InstanceCache {
 public:
  explicit InstanceCache(std::size_t capacity = 256);

  InstanceCache(const InstanceCache&) = delete;
  InstanceCache& operator=(const InstanceCache&) = delete;

  /// Returns the cached response (most-recently-used position refreshed) or
  /// nullopt. Counts a hit or a miss.
  std::optional<SolveResponse> Lookup(const std::string& key);

  /// Stores `response` under `key`, evicting the least-recently-used entry
  /// when full. Re-inserting an existing key refreshes its value and
  /// recency.
  void Insert(const std::string& key, const SolveResponse& response);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    SolveResponse response;
    std::list<std::string>::iterator recency;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<std::string> recency_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace qplex::svc

#endif  // QPLEX_SVC_CACHE_H_
