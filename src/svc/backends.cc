// Adapters wrapping every qplex solver family behind the svc::Solver
// contract. Each adapter is stateless: the underlying solver object is
// constructed inside Solve(), so one registered instance can serve many
// scheduler workers concurrently.
//
// Deadline semantics: adapters translate the scheduler's remaining budget
// into the backend's native time-limit knob and thread the shared
// CancelToken through, then report `completed = false` when the backend
// stopped early. Mapping incompletion to a kDeadlineExceeded *status* is the
// scheduler's job, not the adapters'.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "anneal/hybrid_solver.h"
#include "anneal/parallel_tempering.h"
#include "anneal/path_integral_annealer.h"
#include "anneal/simulated_annealer.h"
#include "classical/bs_solver.h"
#include "classical/exact.h"
#include "classical/grasp.h"
#include "grover/qmkp.h"
#include "grover/qtkp.h"
#include "milp/milp_solver.h"
#include "milp/qubo_linearization.h"
#include "obs/incumbent.h"
#include "qubo/mkp_qubo.h"
#include "svc/registry.h"

namespace qplex::svc {
namespace {

/// Builds an MkpSolution from a member list (mask filled when it fits).
MkpSolution SolutionFromMembers(VertexList members) {
  MkpSolution solution;
  std::sort(members.begin(), members.end());
  solution.size = static_cast<int>(members.size());
  solution.members = std::move(members);
  FillSolutionMask(solution);
  return solution;
}

class BsBackend : public Solver {
 public:
  std::string_view name() const override { return "bs"; }

  Result<SolveOutcome> Solve(const SolveRequest& request,
                             const SolveContext& context) const override {
    BsSolverOptions options;
    options.time_limit_seconds = context.budget_seconds;
    options.cancel = context.cancel;
    QPLEX_ASSIGN_OR_RETURN(const int use_reduction,
                           OptionInt(request, "use_reduction", 1));
    options.use_reduction = use_reduction != 0;
    obs::IncumbentReporter reporter(name());
    if (reporter.enabled()) {
      options.on_incumbent = [&reporter](const MkpSolution& best,
                                         const BsSolverStats& stats) {
        reporter.Report(best.size, stats.branch_nodes);
      };
      options.on_bound = [&reporter](double bound,
                                     const BsSolverStats& stats) {
        reporter.ReportBound(bound, stats.branch_nodes);
      };
    }
    BsSolver solver(options);
    QPLEX_ASSIGN_OR_RETURN(MkpSolution solution,
                           solver.Solve(request.graph, request.k));
    SolveOutcome outcome;
    outcome.solution = std::move(solution);
    outcome.completed = solver.stats().completed;
    outcome.provably_optimal = outcome.completed;
    return outcome;
  }
};

class EnumBackend : public Solver {
 public:
  std::string_view name() const override { return "enum"; }

  Result<SolveOutcome> Solve(const SolveRequest& request,
                             const SolveContext& context) const override {
    bool completed = true;
    EnumerationControl control;
    control.time_limit_seconds = context.budget_seconds;
    control.cancel = context.cancel;
    control.completed = &completed;
    obs::IncumbentReporter reporter(name());
    if (reporter.enabled()) {
      control.on_incumbent = [&reporter](const MkpSolution& best,
                                         std::uint64_t masks_scanned) {
        reporter.Report(best.size, static_cast<std::int64_t>(masks_scanned));
      };
    }
    QPLEX_ASSIGN_OR_RETURN(
        MkpSolution solution,
        SolveMkpByEnumeration(request.graph, request.k, control));
    SolveOutcome outcome;
    outcome.solution = std::move(solution);
    outcome.completed = completed;
    outcome.provably_optimal = completed;
    return outcome;
  }
};

class GraspBackend : public Solver {
 public:
  std::string_view name() const override { return "grasp"; }

  Result<SolveOutcome> Solve(const SolveRequest& request,
                             const SolveContext& context) const override {
    GraspOptions options;
    QPLEX_ASSIGN_OR_RETURN(options.iterations,
                           OptionInt(request, "iterations", 64));
    QPLEX_ASSIGN_OR_RETURN(options.alpha, OptionDouble(request, "alpha", 0.3));
    options.time_limit_seconds = context.budget_seconds;
    options.cancel = context.cancel;
    options.seed = request.seed;
    obs::IncumbentReporter reporter(name());
    if (reporter.enabled()) {
      options.on_incumbent = [&reporter](const MkpSolution& best,
                                         int iteration) {
        reporter.Report(best.size, iteration);
      };
    }
    GraspSolver solver(options);
    QPLEX_ASSIGN_OR_RETURN(MkpSolution solution,
                           solver.Solve(request.graph, request.k));
    SolveOutcome outcome;
    outcome.solution = std::move(solution);
    outcome.completed = solver.stats().completed;
    return outcome;
  }
};

Result<QtkpOptions> BuildQtkpOptions(const SolveRequest& request) {
  QtkpOptions options;
  // The faithful circuit backend is exponential in gate count; past ~10
  // vertices the provably-identical predicate backend keeps service jobs
  // tractable (same policy as qplex_cli).
  QPLEX_ASSIGN_OR_RETURN(
      std::string oracle,
      OptionString(request, "oracle",
                   request.graph.num_vertices() <= 10 ? "circuit"
                                                      : "predicate"));
  if (oracle == "circuit") {
    options.backend = OracleBackend::kCircuit;
  } else if (oracle == "predicate") {
    options.backend = OracleBackend::kPredicate;
  } else {
    return Status::InvalidArgument("bad value for option 'oracle': '" +
                                   oracle + "'");
  }
  QPLEX_ASSIGN_OR_RETURN(options.threads, OptionInt(request, "threads", 1));
  options.seed = request.seed;
  return options;
}

/// One Grover threshold probe: find a k-plex of size >= `threshold`.
class QtkpBackend : public Solver {
 public:
  std::string_view name() const override { return "qtkp"; }

  Result<SolveOutcome> Solve(const SolveRequest& request,
                             const SolveContext& /*context*/) const override {
    QPLEX_ASSIGN_OR_RETURN(QtkpOptions options, BuildQtkpOptions(request));
    QPLEX_ASSIGN_OR_RETURN(const int threshold,
                           OptionInt(request, "threshold", request.k));
    obs::IncumbentReporter reporter(name());
    QPLEX_ASSIGN_OR_RETURN(
        QtkpResult result,
        RunQtkp(request.graph, request.k, threshold, options));
    SolveOutcome outcome;
    if (result.found) {
      // qTKP is one-shot: a single verified measurement, so its anytime
      // timeline is the single point at the total oracle-call cost.
      reporter.Report(static_cast<int>(result.plex.size()),
                      result.oracle_calls);
      outcome.solution = SolutionFromMembers(result.plex);
    }
    return outcome;
  }
};

class QmkpBackend : public Solver {
 public:
  std::string_view name() const override { return "qmkp"; }

  Result<SolveOutcome> Solve(const SolveRequest& request,
                             const SolveContext& /*context*/) const override {
    QPLEX_ASSIGN_OR_RETURN(QtkpOptions options, BuildQtkpOptions(request));
    obs::IncumbentReporter reporter(name());
    QmkpProgressCallback on_progress;
    if (reporter.enabled()) {
      // The reporter drops non-improving probes, so the timeline is exactly
      // the binary search's verified best-size staircase.
      on_progress = [&reporter](const QmkpProbe& /*probe*/,
                                const QmkpResult& so_far) {
        reporter.Report(so_far.best_size, so_far.total_oracle_calls);
      };
    }
    QPLEX_ASSIGN_OR_RETURN(
        QmkpResult result,
        RunQmkp(request.graph, request.k, options, on_progress));
    SolveOutcome outcome;
    outcome.solution = SolutionFromMembers(result.best_plex);
    // The binary search always completes, but its answer carries the bounded
    // Grover error probability — never report it as *proven* optimal.
    return outcome;
  }
};

/// Shared tail of the QUBO-based backends: build the qaMKP QUBO, run an
/// annealer over it, repair the best sample to a k-plex.
template <typename Runner>
Result<SolveOutcome> RunQuboBackend(const SolveRequest& request,
                                    const Runner& runner) {
  QPLEX_ASSIGN_OR_RETURN(MkpQubo qubo, BuildMkpQubo(request.graph, request.k));
  QPLEX_ASSIGN_OR_RETURN(AnnealResult result, runner(qubo));
  SolveOutcome outcome;
  outcome.solution = SolutionFromMembers(qubo.RepairToPlex(result.best_sample));
  outcome.completed = result.completed;
  return outcome;
}

/// Incumbent hook shared by the annealing backends: repair each new-best
/// QUBO sample to a k-plex and report its size with the sweep count as the
/// deterministic work unit and the raw energy riding along as `value`. The
/// reporter filters repairs that do not grow the plex, so energy jitter
/// never produces a non-monotone timeline.
AnnealHooks MakeAnnealReporterHooks(obs::IncumbentReporter* reporter,
                                    const MkpQubo* qubo) {
  AnnealHooks hooks;
  hooks.on_new_best = [reporter, qubo](const QuboSample& sample, double energy,
                                       std::int64_t sweeps) {
    reporter->Report(static_cast<int>(qubo->RepairToPlex(sample).size()),
                     sweeps, energy);
  };
  return hooks;
}

class SaBackend : public Solver {
 public:
  std::string_view name() const override { return "sa"; }

  Result<SolveOutcome> Solve(const SolveRequest& request,
                             const SolveContext& context) const override {
    SimulatedAnnealerOptions options;
    QPLEX_ASSIGN_OR_RETURN(options.shots, OptionInt(request, "shots", 100));
    QPLEX_ASSIGN_OR_RETURN(options.sweeps_per_shot,
                           OptionInt(request, "sweeps", 2));
    options.time_limit_seconds = context.budget_seconds;
    options.cancel = context.cancel;
    options.seed = request.seed;
    obs::IncumbentReporter reporter(name());
    return RunQuboBackend(request, [&](const MkpQubo& qubo) {
      if (reporter.enabled()) {
        options.hooks = MakeAnnealReporterHooks(&reporter, &qubo);
      }
      return SimulatedAnnealer(options).Run(qubo.model);
    });
  }
};

class PtBackend : public Solver {
 public:
  std::string_view name() const override { return "pt"; }

  Result<SolveOutcome> Solve(const SolveRequest& request,
                             const SolveContext& context) const override {
    ParallelTemperingOptions options;
    QPLEX_ASSIGN_OR_RETURN(options.rounds, OptionInt(request, "rounds", 64));
    QPLEX_ASSIGN_OR_RETURN(options.num_replicas,
                           OptionInt(request, "replicas", 8));
    options.time_limit_seconds = context.budget_seconds;
    options.cancel = context.cancel;
    options.seed = request.seed;
    obs::IncumbentReporter reporter(name());
    return RunQuboBackend(request, [&](const MkpQubo& qubo) {
      if (reporter.enabled()) {
        options.hooks = MakeAnnealReporterHooks(&reporter, &qubo);
      }
      return ParallelTempering(options).Run(qubo.model);
    });
  }
};

class PiaBackend : public Solver {
 public:
  std::string_view name() const override { return "pia"; }

  Result<SolveOutcome> Solve(const SolveRequest& request,
                             const SolveContext& context) const override {
    PathIntegralAnnealerOptions options;
    QPLEX_ASSIGN_OR_RETURN(options.shots, OptionInt(request, "shots", 100));
    QPLEX_ASSIGN_OR_RETURN(options.replicas,
                           OptionInt(request, "replicas", 16));
    options.time_limit_seconds = context.budget_seconds;
    options.cancel = context.cancel;
    options.seed = request.seed;
    obs::IncumbentReporter reporter(name());
    return RunQuboBackend(request, [&](const MkpQubo& qubo) {
      if (reporter.enabled()) {
        options.hooks = MakeAnnealReporterHooks(&reporter, &qubo);
      }
      return PathIntegralAnnealer(options).Run(qubo.model);
    });
  }
};

class HybridBackend : public Solver {
 public:
  std::string_view name() const override { return "hybrid"; }

  Result<SolveOutcome> Solve(const SolveRequest& request,
                             const SolveContext& context) const override {
    HybridSolverOptions options;
    QPLEX_ASSIGN_OR_RETURN(options.max_restarts,
                           OptionInt(request, "restarts", 64));
    options.time_limit_seconds = context.budget_seconds;
    options.cancel = context.cancel;
    options.seed = request.seed;
    obs::IncumbentReporter reporter(name());
    return RunQuboBackend(request, [&](const MkpQubo& qubo) {
      options.refine = [&qubo](QuboSample* sample) {
        qubo.ImproveSample(sample);
      };
      if (reporter.enabled()) {
        options.hooks = MakeAnnealReporterHooks(&reporter, &qubo);
      }
      return HybridSolver(options).Run(qubo.model);
    });
  }
};

class MilpBackend : public Solver {
 public:
  std::string_view name() const override { return "milp"; }

  Result<SolveOutcome> Solve(const SolveRequest& request,
                             const SolveContext& context) const override {
    QPLEX_ASSIGN_OR_RETURN(MkpQubo qubo,
                           BuildMkpQubo(request.graph, request.k));
    const LinearizedQubo linearized = LinearizeQubo(qubo.model);
    MilpSolverOptions options;
    // Unlike the anytime solvers, B&B without a limit can run for hours on a
    // hard instance; an unbudgeted service job still gets a 60 s default.
    QPLEX_ASSIGN_OR_RETURN(const double fallback_limit,
                           OptionDouble(request, "time_limit", 60));
    options.time_limit_seconds =
        context.budget_seconds > 0 ? context.budget_seconds : fallback_limit;
    options.cancel = context.cancel;
    options.incumbent_heuristic =
        MakeQuboRoundingHeuristic(qubo.model, linearized);
    obs::IncumbentReporter reporter(name());
    if (reporter.enabled()) {
      options.on_incumbent = [&reporter, &qubo, &linearized](
                                 const std::vector<double>& x,
                                 double objective, std::int64_t nodes) {
        const QuboSample sample = ExtractSample(linearized, x);
        reporter.Report(static_cast<int>(qubo.RepairToPlex(sample).size()),
                        nodes, objective);
      };
      options.on_bound = [&reporter](double bound, std::int64_t nodes) {
        // The MILP minimizes the QUBO energy and a feasible size-s plex has
        // energy exactly -s, so a proven lower bound L on the objective is a
        // plex-size upper bound of -L. B&B lower bounds only tighten upward,
        // which keeps the reported size bound non-increasing.
        reporter.ReportBound(std::floor(-bound + 1e-6), nodes);
      };
    }
    QPLEX_ASSIGN_OR_RETURN(MilpSolution milp,
                           MilpSolver(options).Solve(linearized.milp));
    if (!milp.feasible) {
      return Status::Internal("MILP produced no feasible point");
    }
    const QuboSample sample = ExtractSample(linearized, milp.x);
    SolveOutcome outcome;
    outcome.solution = SolutionFromMembers(qubo.RepairToPlex(sample));
    outcome.completed = milp.optimal;
    outcome.provably_optimal = milp.optimal;
    return outcome;
  }
};

}  // namespace

Status RegisterBuiltinBackends(SolverRegistry* registry) {
  QPLEX_RETURN_IF_ERROR(registry->Register(std::make_unique<BsBackend>()));
  QPLEX_RETURN_IF_ERROR(registry->Register(std::make_unique<EnumBackend>()));
  QPLEX_RETURN_IF_ERROR(registry->Register(std::make_unique<GraspBackend>()));
  QPLEX_RETURN_IF_ERROR(registry->Register(std::make_unique<QtkpBackend>()));
  QPLEX_RETURN_IF_ERROR(registry->Register(std::make_unique<QmkpBackend>()));
  QPLEX_RETURN_IF_ERROR(registry->Register(std::make_unique<SaBackend>()));
  QPLEX_RETURN_IF_ERROR(registry->Register(std::make_unique<PtBackend>()));
  QPLEX_RETURN_IF_ERROR(registry->Register(std::make_unique<PiaBackend>()));
  QPLEX_RETURN_IF_ERROR(registry->Register(std::make_unique<HybridBackend>()));
  QPLEX_RETURN_IF_ERROR(registry->Register(std::make_unique<MilpBackend>()));
  // Degradation chains: when the quantum simulators blow the amplitude
  // memory budget they fall back to exact branch-and-search, and the MILP
  // backend (whose B&B node table can also exhaust its budget) degrades to
  // the GRASP heuristic.
  QPLEX_RETURN_IF_ERROR(registry->SetFallback("qtkp", "bs"));
  QPLEX_RETURN_IF_ERROR(registry->SetFallback("qmkp", "bs"));
  QPLEX_RETURN_IF_ERROR(registry->SetFallback("milp", "grasp"));
  return Status::Ok();
}

}  // namespace qplex::svc
