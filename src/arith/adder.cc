#include "arith/adder.h"

namespace qplex {

int BitWidthFor(std::uint64_t max_value) {
  int width = 1;
  while ((max_value >> width) != 0) {
    ++width;
  }
  return width;
}

void AppendFullAdder(Circuit* circuit, const FullAdderWires& wires) {
  // Boxes A-E of the paper's Fig. 7, in order.
  circuit->Append(MakeCCX(wires.x, wires.y, wires.and_xy));       // A
  circuit->Append(MakeCX(wires.x, wires.y));                      // B
  circuit->Append(MakeCCX(wires.y, wires.carry_in, wires.carry_out));  // C
  circuit->Append(MakeCX(wires.y, wires.carry_in));               // D
  circuit->Append(MakeCX(wires.and_xy, wires.carry_out));         // E
}

AdderResult AppendRippleCarryAdder(Circuit* circuit,
                                   const std::vector<int>& x_wires,
                                   const std::vector<int>& y_wires) {
  QPLEX_CHECK(x_wires.size() == y_wires.size())
      << "adder operands must have equal width";
  const int width = static_cast<int>(x_wires.size());
  QPLEX_CHECK(width >= 1) << "adder needs at least one bit";

  // One fresh carry-in wire per position (bit 0's carry-in starts |0>), plus
  // one AND ancilla per full adder. Each full adder writes the position's sum
  // into its carry-in wire and its carry into the next position's carry-in.
  const QubitRange carries = circuit->AllocateAncilla("add.carry", width + 1);
  const QubitRange ands = circuit->AllocateAncilla("add.and", width);

  AdderResult result;
  result.sum_wires.reserve(width + 1);
  for (int i = 0; i < width; ++i) {
    FullAdderWires wires;
    wires.x = x_wires[i];
    wires.y = y_wires[i];
    wires.carry_in = carries[i];
    wires.and_xy = ands[i];
    wires.carry_out = carries[i + 1];
    AppendFullAdder(circuit, wires);
    result.sum_wires.push_back(carries[i]);
  }
  result.sum_wires.push_back(carries[width]);
  return result;
}

void AppendControlledIncrement(Circuit* circuit,
                               const std::vector<Control>& controls,
                               const QubitRange& target) {
  QPLEX_CHECK(target.width >= 1) << "increment target must be non-empty";
  // To add 1, flip bit j iff all lower bits are 1 (a carry propagates up to
  // it). Applying from the most significant bit down lets every gate read the
  // *pre-increment* values of the lower bits.
  for (int j = target.width - 1; j >= 0; --j) {
    std::vector<Control> wires = controls;
    for (int low = 0; low < j; ++low) {
      wires.push_back(Control{target[low], true});
    }
    circuit->Append(MakeMCX(std::move(wires), target[j]));
  }
}

void AppendControlledIncrement(Circuit* circuit,
                               const std::vector<int>& controls,
                               const QubitRange& target) {
  std::vector<Control> wires;
  wires.reserve(controls.size());
  for (int q : controls) {
    wires.push_back(Control{q, true});
  }
  AppendControlledIncrement(circuit, wires, target);
}

}  // namespace qplex
