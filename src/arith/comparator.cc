#include "arith/comparator.h"

#include "arith/adder.h"

namespace qplex {

void AppendLessEqual(Circuit* circuit, const std::vector<int>& x_wires,
                     const std::vector<int>& y_wires, int output) {
  QPLEX_CHECK(x_wires.size() == y_wires.size())
      << "comparator operands must have equal width";
  const int width = static_cast<int>(x_wires.size());
  QPLEX_CHECK(width >= 1) << "comparator needs at least one bit";

  const QubitRange less = circuit->AllocateAncilla("cmp.lt", width);
  const QubitRange equal = circuit->AllocateAncilla("cmp.eq", width);
  const QubitRange terms = circuit->AllocateAncilla("cmp.term", width + 1);

  // Box A (Fig. 10): lt_i = NOT(x_i) AND y_i.
  for (int i = 0; i < width; ++i) {
    circuit->Append(MakeMCX(
        std::vector<Control>{Control{x_wires[i], false},
                             Control{y_wires[i], true}},
        less[i]));
  }
  // Box B: eq_i = NOT(x_i XOR y_i).
  for (int i = 0; i < width; ++i) {
    circuit->Append(MakeCX(x_wires[i], equal[i]));
    circuit->Append(MakeCX(y_wires[i], equal[i]));
    circuit->Append(MakeX(equal[i]));
  }
  // Box C: one conjunction term per disjunct of Eq. 5. Scanning from the MSB
  // (index width-1 in little-endian wires): term_j = eq over all higher bits
  // AND lt at bit j; the final term requires equality everywhere.
  for (int j = width - 1; j >= 0; --j) {
    std::vector<int> controls;
    for (int high = width - 1; high > j; --high) {
      controls.push_back(equal[high]);
    }
    controls.push_back(less[j]);
    circuit->Append(MakeMCX(std::move(controls), terms[width - 1 - j]));
  }
  {
    std::vector<int> controls;
    for (int i = width - 1; i >= 0; --i) {
      controls.push_back(equal[i]);
    }
    circuit->Append(MakeMCX(std::move(controls), terms[width]));
  }
  // Box D: the disjuncts are mutually exclusive (they pin the position of the
  // first differing bit), so OR == XOR and a CNOT chain suffices.
  for (int t = 0; t <= width; ++t) {
    circuit->Append(MakeCX(terms[t], output));
  }
}

std::vector<int> AllocateConstantRegister(Circuit* circuit,
                                          std::uint64_t constant, int width,
                                          const char* hint) {
  QPLEX_CHECK(width >= 1 && width <= 64) << "bad constant width " << width;
  QPLEX_CHECK(width == 64 || (constant >> width) == 0)
      << "constant " << constant << " does not fit in " << width << " bits";
  const QubitRange reg = circuit->AllocateAncilla(hint, width);
  std::vector<int> wires;
  wires.reserve(width);
  for (int i = 0; i < width; ++i) {
    if ((constant >> i) & 1) {
      circuit->Append(MakeX(reg[i]));
    }
    wires.push_back(reg[i]);
  }
  return wires;
}

void AppendLessEqualConst(Circuit* circuit, const std::vector<int>& x_wires,
                          std::uint64_t constant, int output) {
  const std::vector<int> constant_wires = AllocateConstantRegister(
      circuit, constant, static_cast<int>(x_wires.size()), "cmp.const");
  AppendLessEqual(circuit, x_wires, constant_wires, output);
}

void AppendGreaterEqualConst(Circuit* circuit, const std::vector<int>& x_wires,
                             std::uint64_t constant, int output) {
  const std::vector<int> constant_wires = AllocateConstantRegister(
      circuit, constant, static_cast<int>(x_wires.size()), "cmp.const");
  AppendLessEqual(circuit, constant_wires, x_wires, output);
}

}  // namespace qplex
