#include "arith/popcount.h"

#include "arith/adder.h"

namespace qplex {

void AppendPopCount(Circuit* circuit, const std::vector<int>& inputs,
                    const QubitRange& counter) {
  for (int wire : inputs) {
    AppendControlledIncrement(circuit, std::vector<int>{wire}, counter);
  }
}

}  // namespace qplex
