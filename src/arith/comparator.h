#ifndef QPLEX_ARITH_COMPARATOR_H_
#define QPLEX_ARITH_COMPARATOR_H_

#include <cstdint>
#include <vector>

#include "quantum/circuit.h"

namespace qplex {

/// Reversible unsigned comparison following the paper's Eq. 5/6 and Fig. 10:
/// scan from the most significant bit; x <= y iff the first differing bit has
/// x_i < y_i, or no bit differs. The disjuncts are mutually exclusive, so the
/// final OR is realised as a CNOT chain.

/// Appends a circuit computing [x <= y] into `output` (a fresh |0> wire).
/// `x_wires`/`y_wires` are little-endian and equal width; both inputs are
/// preserved. Ancillas (per-bit less-than, per-bit equality, per-position
/// conjunction terms) are allocated internally and left dirty — the oracle
/// uncomputes them with the global U^dagger.
void AppendLessEqual(Circuit* circuit, const std::vector<int>& x_wires,
                     const std::vector<int>& y_wires, int output);

/// Appends a comparison of a register against a compile-time constant:
/// [x <= constant] into `output`. Loads the constant into a fresh register
/// with X gates (the |k-1> input register of the paper's Fig. 9).
void AppendLessEqualConst(Circuit* circuit, const std::vector<int>& x_wires,
                          std::uint64_t constant, int output);

/// Appends [x >= constant] into `output`, i.e. [constant <= x] — the size
/// >= T check of the paper's Fig. 11.
void AppendGreaterEqualConst(Circuit* circuit, const std::vector<int>& x_wires,
                             std::uint64_t constant, int output);

/// Returns the wires of a fresh register loaded with `constant`
/// (little-endian, `width` bits).
std::vector<int> AllocateConstantRegister(Circuit* circuit,
                                          std::uint64_t constant, int width,
                                          const char* hint);

}  // namespace qplex

#endif  // QPLEX_ARITH_COMPARATOR_H_
