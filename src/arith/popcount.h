#ifndef QPLEX_ARITH_POPCOUNT_H_
#define QPLEX_ARITH_POPCOUNT_H_

#include <vector>

#include "quantum/circuit.h"

namespace qplex {

/// Appends a population-count accumulator: for every wire in `inputs`, adds
/// its value into the little-endian `counter` register via a controlled
/// increment. This realises the paper's control-a degree/size counting gates
/// (Fig. 6 box B and Fig. 11 box A). The counter must be wide enough to hold
/// |inputs| (see BitWidthFor); on overflow the count wraps, so callers size
/// the register from the true maximum.
void AppendPopCount(Circuit* circuit, const std::vector<int>& inputs,
                    const QubitRange& counter);

}  // namespace qplex

#endif  // QPLEX_ARITH_POPCOUNT_H_
