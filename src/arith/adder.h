#ifndef QPLEX_ARITH_ADDER_H_
#define QPLEX_ARITH_ADDER_H_

#include <cstdint>
#include <vector>

#include "quantum/circuit.h"

namespace qplex {

/// Reversible integer arithmetic, built exactly the way the paper assembles
/// its degree-counting oracle stage: a one-qubit full adder (Fig. 7) chained
/// into a multi-qubit ripple-carry adder (Fig. 8), plus the compact
/// controlled-increment counter the production oracle uses.

/// Number of bits needed to store values 0..max_value (at least 1).
int BitWidthFor(std::uint64_t max_value);

/// Wire roles of one full-adder block (paper Fig. 7).
struct FullAdderWires {
  int x;        ///< input x (preserved)
  int y;        ///< input y; LEFT DIRTY as x XOR y
  int carry_in; ///< input carry; overwritten with sum = x ^ y ^ c_in
  int and_xy;   ///< fresh |0>; left dirty as x AND y
  int carry_out;///< fresh |0>; receives the carry bit
};

/// Appends the paper's 5-gate full adder (boxes A-E of Fig. 7):
///   A: CCX(x, y -> and_xy)         and_xy := x AND y
///   B: CX(x -> y)                  y := x XOR y
///   C: CCX(y, carry_in -> carry_out)
///   D: CX(y -> carry_in)           carry_in := sum
///   E: CX(and_xy -> carry_out)     carry_out := (x AND y) XOR (c_in AND (x XOR y))
void AppendFullAdder(Circuit* circuit, const FullAdderWires& wires);

/// Result of a ripple-carry addition x + y.
struct AdderResult {
  /// Wires holding the sum bits, little-endian; width + 1 entries
  /// (the top entry is the final carry / overflow bit).
  std::vector<int> sum_wires;
};

/// Appends a ripple-carry adder computing x + y (both `width` bits,
/// little-endian wire lists) following the paper's Fig. 8 cascade of full
/// adders. Input x wires are preserved; y wires are left dirty (x XOR y);
/// fresh ancillas are allocated internally. The sum appears on the returned
/// wires.
AdderResult AppendRippleCarryAdder(Circuit* circuit,
                                   const std::vector<int>& x_wires,
                                   const std::vector<int>& y_wires);

/// Appends a controlled increment: when every listed control fires, adds 1
/// (mod 2^width) to the little-endian register `target`. This is the compact
/// accumulator the production oracle uses for degree counting; it needs no
/// ancillas (MCX cascade from the top bit down).
void AppendControlledIncrement(Circuit* circuit,
                               const std::vector<Control>& controls,
                               const QubitRange& target);

/// Convenience overload with all-positive controls.
void AppendControlledIncrement(Circuit* circuit,
                               const std::vector<int>& controls,
                               const QubitRange& target);

}  // namespace qplex

#endif  // QPLEX_ARITH_ADDER_H_
