#ifndef QPLEX_GROVER_QTKP_H_
#define QPLEX_GROVER_QTKP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "oracle/mkp_oracle.h"

namespace qplex {

/// How qTKP's marked set is obtained.
enum class OracleBackend {
  /// Execute the literal constructed oracle circuit per basis state
  /// (faithful; what the experiments use at paper scale).
  kCircuit,
  /// Evaluate the semantic k-plex predicate directly (identical results —
  /// proven by tests — but much faster; used for wide parameter sweeps).
  kPredicate,
};

/// Options shared by qTKP and qMKP.
struct QtkpOptions {
  OracleBackend backend = OracleBackend::kCircuit;
  MkpOracleOptions oracle;
  /// Minimum measurement attempts per search; each failed measurement is
  /// detected by the classical verification step and the search is re-run
  /// (the "run c times" error-reduction of Section V-A).
  int max_attempts = 3;
  /// With M known the per-attempt failure probability is known exactly, so
  /// qTKP keeps retrying until the residual misclassification probability
  /// drops below this target (capped at 64 attempts). Retries are cheap:
  /// over-rotated probes (large M) use very few Grover iterations.
  double target_error = 1e-6;
  /// When true, use the Boyer–Brassard–Høyer–Tapp schedule for unknown M
  /// instead of quantum counting + the optimal iteration count. The attempt
  /// budget on this path is 8 * max_attempts random-iteration probes.
  bool use_bbht = false;
  /// Threads used by the state-vector kernels (diffusion, oracle kickback,
  /// measurement CDF). Affects wall-clock only: amplitudes, measurements and
  /// every counter are bit-identical for any thread count.
  int threads = 1;
  std::uint64_t seed = 0x9b1ec5d1ce4e5b9ULL;
};

/// Outcome of one qTKP run (Algorithm 2).
struct QtkpResult {
  /// Whether a verified k-plex of size >= T was measured.
  bool found = false;
  /// The measured subset (only meaningful when found).
  std::uint64_t mask = 0;
  VertexList plex;

  /// Number of marked states M (known exactly in simulation; the paper
  /// estimates it with quantum counting).
  std::int64_t num_solutions = 0;
  /// Grover iterations per attempt.
  int iterations = 0;
  /// Attempts actually used.
  int attempts = 0;
  /// Attempts that would have been allowed (the failure-probability bound is
  /// error_probability ^ attempt_budget).
  int attempt_budget = 0;
  /// Exact probability that a single attempt fails to measure a solution.
  double error_probability = 0.0;

  /// Oracle invocations across all attempts (iterations summed).
  std::int64_t oracle_calls = 0;
  /// Modeled quantum gate cost: per iteration, oracle circuit cost plus the
  /// diffusion operator; plus the initial Hadamard layer per attempt.
  std::int64_t gate_cost = 0;
  /// Stage-level costs of one oracle call.
  OracleCostReport oracle_costs;
};

/// Runs qTKP: finds a k-plex of size at least `threshold` in `graph`, or
/// reports found=false. Requires n <= StateVectorSimulator::kMaxQubits.
Result<QtkpResult> RunQtkp(const Graph& graph, int k, int threshold,
                           const QtkpOptions& options);

}  // namespace qplex

#endif  // QPLEX_GROVER_QTKP_H_
