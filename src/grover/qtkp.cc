#include "grover/qtkp.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/rng.h"
#include "graph/kplex.h"
#include "grover/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quantum/statevector.h"

namespace qplex {
namespace {

/// Computes the marked set (all k-plexes of size >= T) with the requested
/// backend, together with the per-call oracle cost model.
struct OracleEvaluation {
  std::vector<std::uint64_t> marked;
  std::int64_t oracle_cost = 0;
  OracleCostReport costs;
};

Result<OracleEvaluation> EvaluateOracle(const Graph& graph, int k,
                                        int threshold,
                                        const QtkpOptions& options) {
  obs::TraceSpan span("qtkp.oracle_eval");
  OracleEvaluation eval;
  // The circuit is always built: even the predicate backend reports the
  // faithful hardware cost model of one oracle call.
  QPLEX_ASSIGN_OR_RETURN(MkpOracle oracle,
                         MkpOracle::Build(graph, k, threshold, options.oracle));
  eval.oracle_cost = oracle.circuit().TotalCost();
  eval.costs = oracle.CostReport();
  const int n = graph.num_vertices();
  const std::uint64_t space = std::uint64_t{1} << n;
  switch (options.backend) {
    case OracleBackend::kCircuit:
      eval.marked = oracle.MarkedStates();
      break;
    case OracleBackend::kPredicate: {
      const auto adjacency = AdjacencyMasks(graph);
      for (std::uint64_t mask = 0; mask < space; ++mask) {
        if (__builtin_popcountll(mask) >= threshold &&
            IsKPlexMask(adjacency, mask, k)) {
          eval.marked.push_back(mask);
        }
      }
      break;
    }
  }
  return eval;
}

/// Flushes one finished qTKP search into the global registry on scope exit
/// (the search has several success/failure return paths). Runs after
/// `return result;` has moved the result out, so it may only read scalar
/// fields (which the defaulted move leaves intact), never `plex`.
struct QtkpMetricsScope {
  const QtkpResult& result;

  ~QtkpMetricsScope() {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("qtkp.searches").Increment();
    registry.GetCounter("qtkp.attempts").Add(result.attempts);
    registry.GetCounter("qtkp.oracle_calls").Add(result.oracle_calls);
    registry.GetCounter("qtkp.gate_cost").Add(result.gate_cost);
    if (result.found) {
      registry.GetCounter("qtkp.found").Increment();
    }
    registry.GetHistogram("qtkp.iterations_per_attempt")
        .Record(static_cast<double>(result.iterations));
    registry.GetGauge("qtkp.error_probability").Set(result.error_probability);
  }
};

}  // namespace

Result<QtkpResult> RunQtkp(const Graph& graph, int k, int threshold,
                           const QtkpOptions& options) {
  obs::TraceSpan span("qtkp");
  const int n = graph.num_vertices();
  if (n < 1 || n > StateVectorSimulator::kMaxQubits) {
    return Status::InvalidArgument("qTKP simulation requires 1 <= n <= " +
                                   std::to_string(
                                       StateVectorSimulator::kMaxQubits));
  }
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (options.threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  QPLEX_RETURN_IF_ERROR(CheckSimulationBudget(n));
  QPLEX_ASSIGN_OR_RETURN(OracleEvaluation eval,
                         EvaluateOracle(graph, k, threshold, options));

  QtkpResult result;
  result.num_solutions = static_cast<std::int64_t>(eval.marked.size());
  result.oracle_costs = eval.costs;
  QtkpMetricsScope metrics_scope{result};
  obs::TraceSpan search_span("qtkp.grover_search");

  const auto adjacency = AdjacencyMasks(graph);
  Rng rng(options.seed);
  GroverSimulation grover(n, eval.marked, options.threads);
  const std::int64_t iteration_cost = eval.oracle_cost + DiffusionCost(n);

  if (options.use_bbht) {
    // Boyer–Brassard–Høyer–Tapp: for unknown M, draw the iteration count
    // uniformly from a geometrically growing window. Expected oracle calls
    // stay O(sqrt(N / M)).
    double window = 1.0;
    const double max_window = std::sqrt(std::pow(2.0, n));
    // The budget must be reported even on this path: qMKP's overall error
    // accounting raises the per-attempt failure probability to it, and a
    // zero budget would claim certain failure (x^0 = 1) for every probe.
    result.attempt_budget = options.max_attempts * 8;
    for (int attempt = 0; attempt < result.attempt_budget; ++attempt) {
      const int iterations = static_cast<int>(
          rng.UniformInt(static_cast<std::uint64_t>(std::ceil(window))));
      grover.Reset();
      grover.Run(iterations);
      ++result.attempts;
      result.oracle_calls += iterations;
      result.gate_cost += n + iterations * iteration_cost;
      // Exact failure probability of this attempt's random rotation; the
      // last value stands in as the per-attempt error of the whole search
      // (mirrors the known-M path, where it is constant across attempts).
      result.error_probability = 1.0 - grover.SuccessProbability();
      const std::uint64_t sample = grover.Measure(rng);
      if (__builtin_popcountll(sample) >= threshold &&
          IsKPlexMask(adjacency, sample, k)) {
        result.found = true;
        result.mask = sample;
        result.plex = MaskToBitset(n, sample).ToList();
        result.iterations = iterations;
        return result;
      }
      window = std::min(window * 1.2, max_window);
    }
    return result;  // found == false
  }

  // Known-M schedule (quantum counting gives M; in simulation it is exact).
  result.iterations = OptimalGroverIterations(n, result.num_solutions);
  // Retry budget: enough verified attempts to push the residual failure
  // probability below target_error (the paper's "run c times" argument).
  int attempt_budget = options.max_attempts;
  if (result.num_solutions > 0) {
    const double single_error = 1.0 - TheoreticalSuccessProbability(
                                          n, result.num_solutions,
                                          result.iterations);
    if (single_error > 0 && options.target_error > 0) {
      const int needed = static_cast<int>(std::ceil(
          std::log(options.target_error) / std::log(single_error)));
      // At least max_attempts, and capped at 64 — unless the caller asked
      // for more than 64, which raises the cap (std::clamp requires
      // lo <= hi, so clamping to a fixed 64 is UB for max_attempts > 64).
      attempt_budget =
          std::clamp(needed, options.max_attempts,
                     std::max(options.max_attempts, 64));
    }
  }
  result.attempt_budget = attempt_budget;
  for (int attempt = 0; attempt < attempt_budget; ++attempt) {
    grover.Reset();
    grover.Run(result.iterations);
    ++result.attempts;
    result.oracle_calls += result.iterations;
    result.gate_cost += n + result.iterations * iteration_cost;
    result.error_probability = 1.0 - grover.SuccessProbability();
    const std::uint64_t sample = grover.Measure(rng);
    // Classical verification of the measured subset (cheap) — a failed
    // verification triggers a re-run.
    if (__builtin_popcountll(sample) >= threshold &&
        IsKPlexMask(adjacency, sample, k)) {
      result.found = true;
      result.mask = sample;
      result.plex = MaskToBitset(n, sample).ToList();
      return result;
    }
  }
  return result;  // found == false (either M == 0 or all attempts failed)
}

}  // namespace qplex
