#include "grover/qmkp.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex {

Result<QmkpResult> RunQmkp(const Graph& graph, int k,
                           const QtkpOptions& options,
                           const QmkpProgressCallback& on_progress) {
  obs::TraceSpan span("qmkp");
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("qmkp.runs").Increment();
  obs::Series& threshold_trajectory =
      registry.GetSeries("qmkp.threshold_trajectory");
  obs::Series& best_size_trajectory =
      registry.GetSeries("qmkp.best_size_trajectory");
  obs::Series& success_trajectory =
      registry.GetSeries("qmkp.success_probability_trajectory");
  Stopwatch watch;

  const int n = graph.num_vertices();
  QmkpResult result;
  if (n == 0) {
    return result;
  }

  double success_product = 1.0;
  QtkpOptions probe_options = options;

  int low = 1;
  int high = n;
  int probe_index = 0;
  while (low <= high) {
    const int mid = low + (high - low) / 2;
    threshold_trajectory.Append(mid);
    // Decorrelate the probes' measurement randomness.
    probe_options.seed = options.seed + 0x9e3779b97f4a7c15ULL *
                                            static_cast<std::uint64_t>(
                                                ++probe_index);
    QPLEX_ASSIGN_OR_RETURN(QtkpResult probe_result,
                           RunQtkp(graph, k, mid, probe_options));

    QmkpProbe probe;
    probe.threshold = mid;
    probe.feasible = probe_result.found;
    probe.found_size = probe_result.found
                           ? static_cast<int>(probe_result.plex.size())
                           : 0;
    probe.oracle_calls = probe_result.oracle_calls;
    probe.gate_cost = probe_result.gate_cost;
    probe.error_probability = probe_result.error_probability;

    result.total_oracle_calls += probe.oracle_calls;
    result.total_gate_cost += probe.gate_cost;

    registry.GetCounter("qmkp.probes").Increment();
    registry.GetCounter("qmkp.oracle_calls").Add(probe.oracle_calls);
    registry.GetCounter("qmkp.gate_cost").Add(probe.gate_cost);

    if (probe_result.found) {
      registry.GetCounter("qmkp.probes_feasible").Increment();
      // A verified measurement can exceed the probed threshold (the oracle
      // marks *all* plexes of size >= T); exploit it.
      if (probe.found_size > result.best_size) {
        result.best_size = probe.found_size;
        result.best_mask = probe_result.mask;
        result.best_plex = probe_result.plex;
      }
      if (result.first_result_size == 0) {
        result.first_result_gate_cost = result.total_gate_cost;
        result.first_result_size = probe.found_size;
        // The paper's progressiveness claim: when the first verified plex
        // arrived, both in modeled gate cost and in wall-clock time.
        registry.GetGauge("qmkp.first_result_seconds")
            .Set(watch.ElapsedSeconds());
        registry.GetGauge("qmkp.first_result_gate_cost")
            .Set(static_cast<double>(result.first_result_gate_cost));
        registry.GetGauge("qmkp.first_result_size")
            .Set(result.first_result_size);
      }
      // Overall failure accounting: this probe would have been misclassified
      // only if all of its allowed attempts had failed.
      success_product *=
          1.0 - std::pow(probe.error_probability,
                         static_cast<double>(probe_result.attempt_budget));
      low = std::max(mid, result.best_size) + 1;
    } else {
      high = mid - 1;
    }
    result.probes.push_back(probe);
    best_size_trajectory.Append(result.best_size);
    success_trajectory.Append(1.0 - probe.error_probability);
    // Probes are O(log n) per run, so every one is worth a line: this is the
    // live view of the paper's progressive-search claim.
    if (obs::EventsEnabled()) {
      obs::EmitEvent(
          obs::EventLevel::kInfo, "qmkp", "probe",
          {{"threshold", probe.threshold},
           {"feasible", probe.feasible},
           {"found_size", probe.found_size},
           {"best_size", result.best_size},
           {"success_probability", 1.0 - probe.error_probability},
           {"total_oracle_calls", result.total_oracle_calls},
           {"total_gate_cost", result.total_gate_cost},
           {"elapsed_ms", watch.ElapsedMillis()}});
    }
    if (on_progress) {
      on_progress(probe, result);
    }
  }
  result.error_probability = 1.0 - success_product;
  registry.GetGauge("qmkp.best_size").Set(result.best_size);
  registry.GetGauge("qmkp.error_probability").Set(result.error_probability);
  return result;
}

Result<QmkpResult> RunQMaxClique(const Graph& graph,
                                 const QtkpOptions& options) {
  return RunQmkp(graph, /*k=*/1, options);
}

}  // namespace qplex
