#include "grover/counting.h"

#include <cmath>
#include <complex>

namespace qplex {
namespace {

using Complex = std::complex<double>;

/// Applies one Grover operator G = D * O to `block` (dimension 2^n):
/// phase-flip the marked states, then invert about the mean.
void ApplyGrover(const std::vector<bool>& is_marked,
                 std::vector<Complex>* block) {
  Complex sum{0.0, 0.0};
  for (std::size_t i = 0; i < block->size(); ++i) {
    if (is_marked[i]) {
      (*block)[i] = -(*block)[i];
    }
    sum += (*block)[i];
  }
  const Complex twice_mean = sum * (2.0 / static_cast<double>(block->size()));
  for (auto& amp : *block) {
    amp = twice_mean - amp;
  }
}

}  // namespace

Result<QuantumCountingResult> RunQuantumCounting(
    int num_search_qubits, const std::vector<std::uint64_t>& marked,
    const QuantumCountingOptions& options, Rng& rng) {
  if (num_search_qubits < 1 || num_search_qubits > 20) {
    return Status::InvalidArgument("search register must have 1..20 qubits");
  }
  if (options.counting_qubits < 1 || options.counting_qubits > 14) {
    return Status::InvalidArgument("counting register must have 1..14 qubits");
  }
  const std::size_t search_dim = std::size_t{1} << num_search_qubits;
  const std::size_t count_dim = std::size_t{1} << options.counting_qubits;

  std::vector<bool> is_marked(search_dim, false);
  for (std::uint64_t basis : marked) {
    if (basis >= search_dim) {
      return Status::InvalidArgument("marked state outside search register");
    }
    is_marked[basis] = true;
  }

  // Joint state after the controlled-G ladder: counting-register basis b
  // tags the branch whose search register carries G^b |uniform>. Building
  // the blocks sequentially needs exactly 2^t - 1 G applications.
  const double amplitude =
      1.0 / std::sqrt(static_cast<double>(search_dim) *
                      static_cast<double>(count_dim));
  std::vector<std::vector<Complex>> blocks(
      count_dim, std::vector<Complex>(search_dim));
  for (std::size_t s = 0; s < search_dim; ++s) {
    blocks[0][s] = Complex{amplitude, 0.0};
  }
  for (std::size_t b = 1; b < count_dim; ++b) {
    blocks[b] = blocks[b - 1];
    ApplyGrover(is_marked, &blocks[b]);
  }

  // Inverse QFT over the counting register: for every search basis s,
  // out_k(s) = (1/sqrt(2^t)) * sum_b exp(-2*pi*i*k*b / 2^t) in_b(s).
  // Measurement only needs the counting register's marginal distribution.
  std::vector<double> distribution(count_dim, 0.0);
  const double norm = 1.0 / std::sqrt(static_cast<double>(count_dim));
  for (std::size_t k = 0; k < count_dim; ++k) {
    double probability = 0.0;
    for (std::size_t s = 0; s < search_dim; ++s) {
      Complex out{0.0, 0.0};
      for (std::size_t b = 0; b < count_dim; ++b) {
        const double angle = -2.0 * M_PI * static_cast<double>(k) *
                             static_cast<double>(b) /
                             static_cast<double>(count_dim);
        out += blocks[b][s] * Complex{std::cos(angle), std::sin(angle)};
      }
      probability += std::norm(out * norm);
    }
    distribution[k] = probability;
  }

  // Measure once.
  double u = rng.UniformDouble();
  std::size_t outcome = count_dim - 1;
  for (std::size_t k = 0; k < count_dim; ++k) {
    u -= distribution[k];
    if (u <= 0) {
      outcome = k;
      break;
    }
  }

  QuantumCountingResult result;
  result.measured_phase_index = outcome;
  result.grover_applications = static_cast<std::int64_t>(count_dim) - 1;
  const double theta =
      M_PI * static_cast<double>(outcome) / static_cast<double>(count_dim);
  result.raw_estimate =
      static_cast<double>(search_dim) * std::sin(theta) * std::sin(theta);
  result.estimated_count =
      static_cast<std::int64_t>(std::llround(result.raw_estimate));
  return result;
}

}  // namespace qplex
