#ifndef QPLEX_GROVER_FULL_CIRCUIT_H_
#define QPLEX_GROVER_FULL_CIRCUIT_H_

#include "common/status.h"
#include "graph/graph.h"
#include "oracle/mkp_oracle.h"
#include "quantum/circuit.h"

namespace qplex {

/// The complete, self-contained qTKP circuit of the paper's Fig. 12:
///
///   H on every vertex qubit; X,H on the oracle qubit (|O> = |->)   [A]
///   repeat `iterations` times:
///     U_check, oracle flip, U_check^dagger                          [B]
///     diffusion on the vertex register (H^n X^n C^{n-1}Z X^n H^n)   [C]
///
/// The result is exportable via quantum/qasm.h and runnable on external
/// gate-model toolchains; within qplex the same semantics are simulated by
/// the basis-simulator + phase-kickback pipeline (grover/engine.h), which is
/// exact because the oracle body is classical and ancilla-clean.
struct FullQtkpCircuit {
  Circuit circuit;
  int num_vertex_qubits = 0;
  int oracle_wire = 0;
  int iterations = 0;
};

Result<FullQtkpCircuit> BuildFullQtkpCircuit(
    const Graph& graph, int k, int threshold, int iterations,
    const MkpOracleOptions& options = {});

}  // namespace qplex

#endif  // QPLEX_GROVER_FULL_CIRCUIT_H_
