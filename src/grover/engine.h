#ifndef QPLEX_GROVER_ENGINE_H_
#define QPLEX_GROVER_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/events.h"
#include "quantum/statevector.h"

namespace qplex {

/// Optimal Grover iteration count floor(pi/4 * sqrt(N / M)) for N = 2^n and
/// M marked states (Algorithm 1, step 4). Returns 0 when M == 0 or M >= N.
int OptimalGroverIterations(int num_qubits, std::int64_t num_marked);

/// Exact success probability sin^2((2*I + 1) * theta) with
/// theta = asin(sqrt(M / N)) after I iterations — the theory the simulated
/// amplitudes are tested against.
double TheoreticalSuccessProbability(int num_qubits, std::int64_t num_marked,
                                     int iterations);

/// Gate-cost model of one diffusion operator on n qubits: H^n, X^n, an
/// (n-1)-controlled Z, X^n, H^n.
std::int64_t DiffusionCost(int num_qubits);

/// Exact amplitude-level simulation of Grover's search over the n-qubit
/// vertex register. The oracle enters as a phase flip on the precomputed
/// marked set (the |O> = |-> kickback); amplitudes match a full-width
/// simulation of the literal circuit exactly, because the oracle's compute /
/// uncompute stages are classical and ancilla-clean (verified in tests).
class GroverSimulation {
 public:
  /// `num_threads` is forwarded to the underlying state-vector simulator;
  /// it changes wall-clock only, never amplitudes (see common/parallel.h).
  GroverSimulation(int num_qubits, std::vector<std::uint64_t> marked,
                   int num_threads = 1);

  int num_qubits() const { return simulator_.num_qubits(); }
  const std::vector<std::uint64_t>& marked() const { return marked_; }
  std::int64_t num_marked() const {
    return static_cast<std::int64_t>(marked_.size());
  }

  /// Returns to the uniform superposition (Algorithm 1, step 1).
  void Reset();

  /// One Grover iteration: phase oracle + diffusion.
  void Step();
  /// Runs `count` iterations.
  void Run(int count);

  int steps() const { return steps_; }

  /// Probability mass currently on the marked states.
  double SuccessProbability() const;
  /// Full measurement distribution (for the Fig. 8 style amplitude plots).
  std::vector<double> Probabilities() const { return simulator_.Probabilities(); }

  /// Measures once (collapse simulated classically).
  std::uint64_t Measure(Rng& rng) const { return simulator_.SampleOne(rng); }
  /// Draws `shots` measurement outcomes; returns counts per basis state.
  std::vector<int> Sample(Rng& rng, int shots) const {
    return simulator_.Sample(rng, shots);
  }

 private:
  StateVectorSimulator simulator_;
  std::vector<std::uint64_t> marked_;
  std::vector<bool> is_marked_;
  int steps_ = 0;
  /// Live progress for long iteration runs; throttle state spans Reset()s so
  /// repeated attempts on one simulation share one heartbeat cadence.
  obs::ProgressHeartbeat heartbeat_{"grover"};
};

}  // namespace qplex

#endif  // QPLEX_GROVER_ENGINE_H_
