#include "grover/full_circuit.h"

namespace qplex {
namespace {

/// Appends the diffusion operator on the first `n` wires (the vertex
/// register): reflection about the uniform superposition realised as
/// H^n, X^n, C^{n-1}Z, X^n, H^n.
void AppendDiffusion(Circuit* circuit, int n) {
  for (int q = 0; q < n; ++q) {
    circuit->Append(MakeH(q));
  }
  for (int q = 0; q < n; ++q) {
    circuit->Append(MakeX(q));
  }
  if (n == 1) {
    circuit->Append(MakeZ(0));
  } else {
    std::vector<int> controls;
    for (int q = 0; q + 1 < n; ++q) {
      controls.push_back(q);
    }
    circuit->Append(MakeMCZ(std::move(controls), n - 1));
  }
  for (int q = 0; q < n; ++q) {
    circuit->Append(MakeX(q));
  }
  for (int q = 0; q < n; ++q) {
    circuit->Append(MakeH(q));
  }
}

}  // namespace

Result<FullQtkpCircuit> BuildFullQtkpCircuit(const Graph& graph, int k,
                                             int threshold, int iterations,
                                             const MkpOracleOptions& options) {
  if (iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  QPLEX_ASSIGN_OR_RETURN(MkpOracle oracle,
                         MkpOracle::Build(graph, k, threshold, options));

  FullQtkpCircuit full;
  full.num_vertex_qubits = graph.num_vertices();
  full.oracle_wire = oracle.oracle_wire();
  full.iterations = iterations;
  full.circuit = oracle.circuit();  // iteration 1's oracle, with registers

  // One oracle pass worth of gates, for the later iterations.
  const std::vector<Gate> oracle_gates = full.circuit.gates();

  // Prologue (prepended, so it runs first): uniform superposition over the
  // vertex register and |O> = (|0> - |1>)/sqrt(2) for the phase kickback.
  std::vector<Gate> prologue;
  for (int q = 0; q < full.num_vertex_qubits; ++q) {
    prologue.push_back(MakeH(q));
  }
  prologue.push_back(MakeX(full.oracle_wire));
  prologue.push_back(MakeH(full.oracle_wire));
  full.circuit.PrependGates(prologue);

  full.circuit.BeginStage("diffusion");
  AppendDiffusion(&full.circuit, full.num_vertex_qubits);

  for (int iteration = 1; iteration < iterations; ++iteration) {
    full.circuit.BeginStage("oracle_repeat");
    for (const Gate& gate : oracle_gates) {
      full.circuit.Append(gate);
    }
    full.circuit.BeginStage("diffusion");
    AppendDiffusion(&full.circuit, full.num_vertex_qubits);
  }
  return full;
}

}  // namespace qplex
