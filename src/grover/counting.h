#ifndef QPLEX_GROVER_COUNTING_H_
#define QPLEX_GROVER_COUNTING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace qplex {

/// Quantum counting (Brassard, Høyer & Tapp 1998) — the subroutine the paper
/// invokes to estimate the number of marked states M before choosing the
/// Grover iteration count. Phase estimation over the Grover operator G: a
/// t-qubit counting register controls G^{2^j} applications on the search
/// register; an inverse QFT on the counting register concentrates on the
/// phase theta with sin^2(theta) = M/N.
struct QuantumCountingOptions {
  /// Width of the counting register; the estimate's resolution is
  /// O(sqrt(M*N))/2^t marked states.
  int counting_qubits = 8;
  std::uint64_t seed = 1;
};

struct QuantumCountingResult {
  /// The measured counting-register value y in [0, 2^t).
  std::uint64_t measured_phase_index = 0;
  /// The resulting estimate of M (rounded to the nearest integer).
  std::int64_t estimated_count = 0;
  /// The continuous estimate before rounding.
  double raw_estimate = 0;
  /// Grover-operator applications consumed: 2^t - 1.
  std::int64_t grover_applications = 0;
};

/// Simulates the full counting circuit exactly: the joint state of the
/// counting register and the n-qubit search register is evolved through the
/// controlled-G ladder and the inverse QFT, then the counting register is
/// measured once. The search register's marked set is given explicitly
/// (computed by the oracle circuit, as everywhere else in qplex).
Result<QuantumCountingResult> RunQuantumCounting(
    int num_search_qubits, const std::vector<std::uint64_t>& marked,
    const QuantumCountingOptions& options, Rng& rng);

}  // namespace qplex

#endif  // QPLEX_GROVER_COUNTING_H_
