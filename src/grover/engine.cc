#include "grover/engine.h"

#include <cmath>

#include "obs/metrics.h"

namespace qplex {

int OptimalGroverIterations(int num_qubits, std::int64_t num_marked) {
  QPLEX_CHECK(num_qubits >= 1 && num_qubits <= 62) << "bad qubit count";
  QPLEX_CHECK(num_marked >= 0) << "negative marked count";
  const double n_states = std::pow(2.0, num_qubits);
  if (num_marked <= 0 || static_cast<double>(num_marked) >= n_states) {
    return 0;
  }
  return static_cast<int>(std::floor(
      (M_PI / 4.0) * std::sqrt(n_states / static_cast<double>(num_marked))));
}

double TheoreticalSuccessProbability(int num_qubits, std::int64_t num_marked,
                                     int iterations) {
  const double n_states = std::pow(2.0, num_qubits);
  if (num_marked <= 0) {
    return 0.0;
  }
  if (static_cast<double>(num_marked) >= n_states) {
    return 1.0;
  }
  const double theta =
      std::asin(std::sqrt(static_cast<double>(num_marked) / n_states));
  const double amplitude = std::sin((2.0 * iterations + 1.0) * theta);
  return amplitude * amplitude;
}

std::int64_t DiffusionCost(int num_qubits) {
  // H^n + X^n + C^{n-1}Z (cost n) + X^n + H^n.
  return 4LL * num_qubits + num_qubits;
}

GroverSimulation::GroverSimulation(int num_qubits,
                                   std::vector<std::uint64_t> marked,
                                   int num_threads)
    : simulator_(num_qubits, num_threads), marked_(std::move(marked)) {
  is_marked_.assign(simulator_.dimension(), false);
  for (std::uint64_t basis : marked_) {
    QPLEX_CHECK(basis < simulator_.dimension())
        << "marked state " << basis << " outside register";
    is_marked_[basis] = true;
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("grover.simulations").Increment();
  registry.GetGauge("grover.diffusion_cost").Set(
      static_cast<double>(DiffusionCost(num_qubits)));
  Reset();
}

void GroverSimulation::Reset() {
  simulator_.PrepareUniform();
  steps_ = 0;
}

void GroverSimulation::Step() {
  simulator_.ApplyPhaseOracle(marked_);
  simulator_.ApplyDiffusion();
  ++steps_;
}

void GroverSimulation::Run(int count) {
  QPLEX_CHECK(count >= 0) << "negative iteration count";
  for (int i = 0; i < count; ++i) {
    Step();
    // Due() is an atomic load when no event stream is installed; one Grover
    // step is a full state-vector pass, so the poll is free by comparison.
    if (heartbeat_.Due()) {
      heartbeat_.Emit({{"iterations", steps_},
                       {"success_probability", SuccessProbability()}});
    }
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("grover.iterations").Add(count);
  registry.GetCounter("grover.runs").Increment();
  registry.GetHistogram("grover.success_probability")
      .Record(SuccessProbability());
}

double GroverSimulation::SuccessProbability() const {
  double total = 0.0;
  for (std::uint64_t basis : marked_) {
    total += simulator_.Probability(basis);
  }
  return total;
}

}  // namespace qplex
