#ifndef QPLEX_GROVER_QMKP_H_
#define QPLEX_GROVER_QMKP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "grover/qtkp.h"

namespace qplex {

/// One binary-search probe of qMKP.
struct QmkpProbe {
  int threshold = 0;        ///< T passed to qTKP
  bool feasible = false;    ///< did qTKP return a verified plex?
  int found_size = 0;       ///< size of the plex it returned (0 if none)
  std::int64_t oracle_calls = 0;
  std::int64_t gate_cost = 0;
  double error_probability = 0.0;  ///< single-attempt failure probability
};

/// Outcome of qMKP (Algorithm 3): binary search over T driving qTKP.
struct QmkpResult {
  /// The best (largest) verified k-plex found.
  std::uint64_t best_mask = 0;
  VertexList best_plex;
  int best_size = 0;

  std::vector<QmkpProbe> probes;
  std::int64_t total_oracle_calls = 0;
  std::int64_t total_gate_cost = 0;

  /// Cost spent up to and including the first probe that produced a feasible
  /// solution, and that solution's size — the paper's progressiveness metrics
  /// (first-result time / first-result size in Tables III-IV).
  std::int64_t first_result_gate_cost = 0;
  int first_result_size = 0;

  /// Upper bound on the probability that any feasible probe was misclassified
  /// across its attempts (the algorithm's overall failure probability).
  double error_probability = 0.0;
};

/// Observer invoked after every probe; gives the progressive behaviour of
/// Section III-G ("Progression").
using QmkpProgressCallback =
    std::function<void(const QmkpProbe& probe, const QmkpResult& so_far)>;

/// Runs qMKP: binary search on T in [1, n] calling qTKP, returning the
/// maximum k-plex. The empty result (best_size == 0) only occurs for n == 0;
/// any single vertex is a k-plex.
Result<QmkpResult> RunQmkp(const Graph& graph, int k,
                           const QtkpOptions& options,
                           const QmkpProgressCallback& on_progress = nullptr);

/// The maximum-clique adaptation the paper highlights: a clique is a 1-plex.
Result<QmkpResult> RunQMaxClique(const Graph& graph,
                                 const QtkpOptions& options);

}  // namespace qplex

#endif  // QPLEX_GROVER_QMKP_H_
