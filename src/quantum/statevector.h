#ifndef QPLEX_QUANTUM_STATEVECTOR_H_
#define QPLEX_QUANTUM_STATEVECTOR_H_

#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "quantum/circuit.h"

namespace qplex {

/// Process-wide amplitude-memory budget for state-vector simulation
/// (default 4 GiB). Engines that are about to allocate a 2^n register call
/// CheckSimulationBudget(n) first and surface kResourceExhausted as a value
/// instead of dying in std::bad_alloc — the service layer turns that into a
/// fallback down the backend chain. Setting 0 restores the default.
std::uint64_t MaxSimulationBytes();
void SetMaxSimulationBytes(std::uint64_t bytes);

/// Bytes a 2^n amplitude register occupies (16 bytes per complex<double>).
std::uint64_t SimulationBytes(int num_qubits);

/// Ok when a 2^n register fits the budget, kResourceExhausted otherwise.
/// Also hosts the `alloc` fault-injection site.
Status CheckSimulationBudget(int num_qubits);

/// Dense state-vector simulator for small registers (the n vertex qubits of
/// the gate-based algorithms). Basis index bit i is qubit i (little-endian),
/// matching the subset-mask convention in graph/kplex.h.
///
/// The wide oracle ancillas never appear here: the oracle acts as a phase
/// flip on the vertex register (the |O> = |-> kickback of the paper), with
/// the marked set computed by running the literal oracle circuit through
/// BasisStateSimulator once per basis state.
///
/// Gate application precomputes one (control_mask, control_value) pair per
/// gate, so firing is a single mask compare per basis state instead of a
/// per-control loop, and every O(2^n) kernel (gates, diffusion, phase
/// oracle, probabilities, sampling CDF) runs over `num_threads` threads with
/// fixed chunk boundaries and ordered reduction combines — amplitudes are
/// bit-identical at 1 thread and at N threads (see common/parallel.h).
class StateVectorSimulator {
 public:
  /// At most kMaxQubits qubits (2^26 amplitudes = 1 GiB of doubles); the
  /// constructor CHECKs the bound.
  static constexpr int kMaxQubits = 26;

  explicit StateVectorSimulator(int num_qubits, int num_threads = 1);

  int num_qubits() const { return num_qubits_; }
  std::uint64_t dimension() const { return std::uint64_t{1} << num_qubits_; }

  /// Worker threads used by the O(2^n) kernels; results never depend on it.
  int num_threads() const { return num_threads_; }
  void set_num_threads(int num_threads);

  /// Resets to |0...0>.
  void Reset();
  /// Resets to the uniform superposition H^{\otimes n}|0>.
  void PrepareUniform();

  const std::vector<std::complex<double>>& amplitudes() const {
    return amplitudes_;
  }
  std::complex<double> amplitude(std::uint64_t basis) const {
    QPLEX_CHECK(basis < dimension()) << "basis index out of range";
    return amplitudes_[basis];
  }

  /// Single-qubit and controlled gates.
  void ApplyX(int qubit);
  void ApplyH(int qubit);
  void ApplyZ(int qubit);
  void ApplyGate(const Gate& gate);
  /// Runs a whole (small) circuit.
  void RunCircuit(const Circuit& circuit);

  /// Multiplies the amplitude of every basis state satisfying `marked` by -1
  /// (the oracle's phase kickback). The predicate is called concurrently
  /// from multiple threads when num_threads > 1, so it must be thread-safe
  /// (pure functions of the basis index are).
  void ApplyPhaseOracle(const std::function<bool(std::uint64_t)>& marked);
  void ApplyPhaseOracle(const std::vector<std::uint64_t>& marked_states);

  /// Grover diffusion: reflection about the uniform superposition,
  /// amp <- 2*mean - amp.
  void ApplyDiffusion();

  /// Probability of measuring `basis`.
  double Probability(std::uint64_t basis) const;
  /// Full measurement distribution (2^n entries).
  std::vector<double> Probabilities() const;
  /// Sum of probabilities over states satisfying `predicate`. Like the
  /// phase-oracle predicate, called concurrently when num_threads > 1.
  double SuccessProbability(
      const std::function<bool(std::uint64_t)>& predicate) const;
  /// Sum over all basis states; ~1 up to rounding (used as a sanity check).
  double TotalProbability() const;

  /// Draws `shots` independent measurements; returns counts per basis state.
  std::vector<int> Sample(Rng& rng, int shots) const;
  /// Draws one measurement outcome.
  std::uint64_t SampleOne(Rng& rng) const;

 private:
  /// Cumulative probability distribution over basis states (the shared
  /// backbone of Sample and SampleOne): cdf[i] = sum_{j <= i} |amp_j|^2,
  /// built with deterministic per-chunk prefix sums.
  std::vector<double> BuildCdf() const;

  int num_qubits_;
  int num_threads_;
  std::vector<std::complex<double>> amplitudes_;
};

}  // namespace qplex

#endif  // QPLEX_QUANTUM_STATEVECTOR_H_
