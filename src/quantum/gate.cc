#include "quantum/gate.h"

#include <sstream>

namespace qplex {

const char* GateKindName(GateKind kind) {
  switch (kind) {
    case GateKind::kX:
      return "X";
    case GateKind::kH:
      return "H";
    case GateKind::kZ:
      return "Z";
  }
  return "?";
}

std::string Gate::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < controls.size(); ++i) {
    out << "C";
  }
  out << GateKindName(kind) << "(";
  for (std::size_t i = 0; i < controls.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    if (!controls[i].positive) {
      out << "!";
    }
    out << controls[i].qubit;
  }
  if (!controls.empty()) {
    out << " -> ";
  }
  out << target << ")";
  return out.str();
}

Gate MakeX(int target) { return Gate{GateKind::kX, target, {}, 0}; }
Gate MakeH(int target) { return Gate{GateKind::kH, target, {}, 0}; }
Gate MakeZ(int target) { return Gate{GateKind::kZ, target, {}, 0}; }

Gate MakeCX(int control, int target) {
  return Gate{GateKind::kX, target, {Control{control, true}}, 0};
}

Gate MakeCCX(int control_a, int control_b, int target) {
  return Gate{GateKind::kX,
              target,
              {Control{control_a, true}, Control{control_b, true}},
              0};
}

Gate MakeMCX(std::vector<int> controls, int target) {
  std::vector<Control> wires;
  wires.reserve(controls.size());
  for (int q : controls) {
    wires.push_back(Control{q, true});
  }
  return Gate{GateKind::kX, target, std::move(wires), 0};
}

Gate MakeMCX(std::vector<Control> controls, int target) {
  return Gate{GateKind::kX, target, std::move(controls), 0};
}

Gate MakeMCZ(std::vector<int> controls, int target) {
  std::vector<Control> wires;
  wires.reserve(controls.size());
  for (int q : controls) {
    wires.push_back(Control{q, true});
  }
  return Gate{GateKind::kZ, target, std::move(wires), 0};
}

}  // namespace qplex
