#ifndef QPLEX_QUANTUM_BASIS_SIM_H_
#define QPLEX_QUANTUM_BASIS_SIM_H_

#include <cstdint>

#include "common/status.h"
#include "quantum/bitstring.h"
#include "quantum/circuit.h"

namespace qplex {

/// Executes classical reversible circuits (X with arbitrary controls; Z gates
/// are phase-only and tracked separately) on a single computational-basis
/// state. This is how qplex runs the paper's literal oracle circuits, whose
/// width is O(n^2 log n) qubits — far beyond dense state-vector simulation
/// but trivial one basis state at a time.
class BasisStateSimulator {
 public:
  /// Creates a simulator over `circuit.num_qubits()` wires, all |0>.
  explicit BasisStateSimulator(int num_qubits) : state_(num_qubits) {}

  /// Read/write access to the classical state between runs.
  const BitString& state() const { return state_; }
  BitString* mutable_state() { return &state_; }

  /// Accumulated phase parity from Z-type gates: the state has amplitude
  /// (-1)^phase_parity. Grover oracles built as MCZ gates surface here.
  bool phase_parity() const { return phase_parity_; }
  void reset_phase() { phase_parity_ = false; }

  /// Applies one gate. Returns FailedPrecondition for H gates — a Hadamard
  /// takes a basis state out of the computational basis.
  Status Apply(const Gate& gate);

  /// Runs every gate of `circuit` in order.
  Status Run(const Circuit& circuit);

  /// Convenience: zeroes the state, stores `input` into wires
  /// [0, input.size()), runs the circuit, and returns the final state.
  static Result<BitString> Execute(const Circuit& circuit,
                                   const BitString& input);

  /// True when every control of `gate` matches its polarity in `state`.
  static bool ControlsFire(const Gate& gate, const BitString& state);

 private:
  BitString state_;
  bool phase_parity_ = false;
};

}  // namespace qplex

#endif  // QPLEX_QUANTUM_BASIS_SIM_H_
