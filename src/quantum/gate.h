#ifndef QPLEX_QUANTUM_GATE_H_
#define QPLEX_QUANTUM_GATE_H_

#include <string>
#include <vector>

namespace qplex {

/// A control wire of a controlled gate. `positive` controls (filled dot in
/// circuit diagrams) fire on |1>, negative controls (hollow dot) on |0>.
struct Control {
  int qubit = 0;
  bool positive = true;

  friend bool operator==(const Control& a, const Control& b) {
    return a.qubit == b.qubit && a.positive == b.positive;
  }
};

/// The base operations the qplex circuits use. X with controls subsumes
/// CNOT / Toffoli / C^kNOT; Z with controls gives the multi-controlled phase
/// flip used by the Grover diffusion operator.
enum class GateKind {
  kX,  ///< Pauli-X (classical reversible, self-inverse)
  kH,  ///< Hadamard (self-inverse)
  kZ,  ///< Pauli-Z phase flip (self-inverse)
};

const char* GateKindName(GateKind kind);

/// One gate: `kind` applied to `target`, fired only when every control
/// matches its polarity. All supported gates are involutions, so a circuit's
/// inverse is simply its gate list reversed.
struct Gate {
  GateKind kind = GateKind::kX;
  int target = 0;
  std::vector<Control> controls;
  /// Stage tag for cost accounting (index into Circuit::stage_names()).
  int stage = 0;

  /// True when the gate maps computational-basis states to computational-
  /// basis states (up to phase) — everything except H. The MKP oracle is
  /// built exclusively from classical gates, which is what lets the basis
  /// simulator execute it on one bit-string at a time.
  bool IsClassical() const { return kind != GateKind::kH; }

  /// A crude execution-cost proxy: 1 + number of controls. Multi-controlled
  /// gates decompose into Θ(#controls) two-qubit gates on real hardware.
  int Cost() const { return 1 + static_cast<int>(controls.size()); }

  /// "CCX(2,5 -> 9)" style rendering; negative controls are prefixed with '!'.
  std::string ToString() const;

  friend bool operator==(const Gate& a, const Gate& b) {
    return a.kind == b.kind && a.target == b.target && a.controls == b.controls;
  }
};

/// Convenience constructors.
Gate MakeX(int target);
Gate MakeH(int target);
Gate MakeZ(int target);
Gate MakeCX(int control, int target);
Gate MakeCCX(int control_a, int control_b, int target);
/// Multi-controlled X, all positive controls.
Gate MakeMCX(std::vector<int> controls, int target);
/// Multi-controlled X with explicit polarities.
Gate MakeMCX(std::vector<Control> controls, int target);
/// Multi-controlled Z, all positive controls.
Gate MakeMCZ(std::vector<int> controls, int target);

}  // namespace qplex

#endif  // QPLEX_QUANTUM_GATE_H_
