#include "quantum/statevector.h"

#include <cmath>

namespace qplex {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

/// True when the control bits of `basis` match the gate's polarities.
bool ControlsFire(const Gate& gate, std::uint64_t basis) {
  for (const Control& control : gate.controls) {
    const bool bit = (basis >> control.qubit) & 1;
    if (bit != control.positive) {
      return false;
    }
  }
  return true;
}

}  // namespace

StateVectorSimulator::StateVectorSimulator(int num_qubits)
    : num_qubits_(num_qubits) {
  QPLEX_CHECK(num_qubits >= 1 && num_qubits <= kMaxQubits)
      << "state-vector simulation supports 1.." << kMaxQubits
      << " qubits, got " << num_qubits;
  amplitudes_.assign(dimension(), {0.0, 0.0});
  amplitudes_[0] = {1.0, 0.0};
}

void StateVectorSimulator::Reset() {
  std::fill(amplitudes_.begin(), amplitudes_.end(),
            std::complex<double>{0.0, 0.0});
  amplitudes_[0] = {1.0, 0.0};
}

void StateVectorSimulator::PrepareUniform() {
  const double amp = 1.0 / std::sqrt(static_cast<double>(dimension()));
  std::fill(amplitudes_.begin(), amplitudes_.end(),
            std::complex<double>{amp, 0.0});
}

void StateVectorSimulator::ApplyX(int qubit) { ApplyGate(MakeX(qubit)); }
void StateVectorSimulator::ApplyH(int qubit) { ApplyGate(MakeH(qubit)); }
void StateVectorSimulator::ApplyZ(int qubit) { ApplyGate(MakeZ(qubit)); }

void StateVectorSimulator::ApplyGate(const Gate& gate) {
  QPLEX_CHECK(gate.target >= 0 && gate.target < num_qubits_)
      << "target " << gate.target << " outside register";
  for (const Control& control : gate.controls) {
    QPLEX_CHECK(control.qubit >= 0 && control.qubit < num_qubits_)
        << "control " << control.qubit << " outside register";
  }
  const std::uint64_t target_bit = std::uint64_t{1} << gate.target;
  const std::uint64_t dim = dimension();
  switch (gate.kind) {
    case GateKind::kX:
      for (std::uint64_t i = 0; i < dim; ++i) {
        if ((i & target_bit) == 0 && ControlsFire(gate, i)) {
          // Controls never include the target, so firing is identical for
          // the pair (i, i | target_bit); swap once per pair.
          std::swap(amplitudes_[i], amplitudes_[i | target_bit]);
        }
      }
      break;
    case GateKind::kZ:
      for (std::uint64_t i = 0; i < dim; ++i) {
        if ((i & target_bit) != 0 && ControlsFire(gate, i)) {
          amplitudes_[i] = -amplitudes_[i];
        }
      }
      break;
    case GateKind::kH:
      for (std::uint64_t i = 0; i < dim; ++i) {
        if ((i & target_bit) == 0 && ControlsFire(gate, i)) {
          const std::complex<double> a = amplitudes_[i];
          const std::complex<double> b = amplitudes_[i | target_bit];
          amplitudes_[i] = (a + b) * kInvSqrt2;
          amplitudes_[i | target_bit] = (a - b) * kInvSqrt2;
        }
      }
      break;
  }
}

void StateVectorSimulator::RunCircuit(const Circuit& circuit) {
  QPLEX_CHECK(circuit.num_qubits() <= num_qubits_)
      << "circuit wider than simulator";
  for (const Gate& gate : circuit.gates()) {
    ApplyGate(gate);
  }
}

void StateVectorSimulator::ApplyPhaseOracle(
    const std::function<bool(std::uint64_t)>& marked) {
  const std::uint64_t dim = dimension();
  for (std::uint64_t i = 0; i < dim; ++i) {
    if (marked(i)) {
      amplitudes_[i] = -amplitudes_[i];
    }
  }
}

void StateVectorSimulator::ApplyPhaseOracle(
    const std::vector<std::uint64_t>& marked_states) {
  for (std::uint64_t basis : marked_states) {
    QPLEX_CHECK(basis < dimension()) << "marked state out of range";
    amplitudes_[basis] = -amplitudes_[basis];
  }
}

void StateVectorSimulator::ApplyDiffusion() {
  std::complex<double> sum{0.0, 0.0};
  for (const auto& amp : amplitudes_) {
    sum += amp;
  }
  const std::complex<double> twice_mean =
      sum * (2.0 / static_cast<double>(dimension()));
  for (auto& amp : amplitudes_) {
    amp = twice_mean - amp;
  }
}

double StateVectorSimulator::Probability(std::uint64_t basis) const {
  QPLEX_CHECK(basis < dimension()) << "basis index out of range";
  return std::norm(amplitudes_[basis]);
}

std::vector<double> StateVectorSimulator::Probabilities() const {
  std::vector<double> probabilities(dimension());
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    probabilities[i] = std::norm(amplitudes_[i]);
  }
  return probabilities;
}

double StateVectorSimulator::SuccessProbability(
    const std::function<bool(std::uint64_t)>& predicate) const {
  double total = 0.0;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    if (predicate(i)) {
      total += std::norm(amplitudes_[i]);
    }
  }
  return total;
}

double StateVectorSimulator::TotalProbability() const {
  double total = 0.0;
  for (const auto& amp : amplitudes_) {
    total += std::norm(amp);
  }
  return total;
}

std::uint64_t StateVectorSimulator::SampleOne(Rng& rng) const {
  double u = rng.UniformDouble() * TotalProbability();
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    u -= std::norm(amplitudes_[i]);
    if (u <= 0) {
      return i;
    }
  }
  return dimension() - 1;
}

std::vector<int> StateVectorSimulator::Sample(Rng& rng, int shots) const {
  QPLEX_CHECK(shots >= 0) << "negative shot count";
  // Build the CDF once; each shot is then a binary search.
  std::vector<double> cdf(dimension());
  double acc = 0.0;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    acc += std::norm(amplitudes_[i]);
    cdf[i] = acc;
  }
  std::vector<int> counts(dimension(), 0);
  for (int s = 0; s < shots; ++s) {
    const double u = rng.UniformDouble() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::uint64_t index =
        it == cdf.end() ? dimension() - 1
                        : static_cast<std::uint64_t>(it - cdf.begin());
    ++counts[index];
  }
  return counts;
}

}  // namespace qplex
