#include "quantum/statevector.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "resilience/fault_injection.h"

namespace qplex {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

constexpr std::uint64_t kDefaultMaxSimulationBytes = std::uint64_t{4} << 30;

std::atomic<std::uint64_t>& SimulationBudget() {
  static std::atomic<std::uint64_t> budget{kDefaultMaxSimulationBytes};
  return budget;
}

/// Per-gate control predicate, folded to one mask compare per basis state:
/// the gate fires on `basis` iff (basis & mask) == value. Computed once per
/// ApplyGate instead of walking the control list for each of the 2^n states.
struct ControlMask {
  std::uint64_t mask = 0;
  std::uint64_t value = 0;
  /// Contradictory controls (the same wire required both |0> and |1>): the
  /// gate can never fire on any basis state.
  bool never_fires = false;

  bool Fires(std::uint64_t basis) const { return (basis & mask) == value; }
};

ControlMask MakeControlMask(const Gate& gate, int num_qubits) {
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  for (const Control& wire : gate.controls) {
    QPLEX_CHECK(wire.qubit >= 0 && wire.qubit < num_qubits)
        << "control " << wire.qubit << " outside register";
    const std::uint64_t bit = std::uint64_t{1} << wire.qubit;
    (wire.positive ? positive : negative) |= bit;
  }
  ControlMask control;
  control.mask = positive | negative;
  control.value = positive;
  control.never_fires = (positive & negative) != 0;
  return control;
}

/// Expands a pair index j in [0, 2^(n-1)) to the basis index with the target
/// bit cleared: the bits of j below the target stay in place, the rest shift
/// up by one. Iterating j enumerates each (i, i | target_bit) pair exactly
/// once, which keeps parallel chunks over j write-disjoint.
inline std::uint64_t PairToBasis(std::uint64_t j, std::uint64_t low_mask) {
  return ((j & ~low_mask) << 1) | (j & low_mask);
}

}  // namespace

std::uint64_t MaxSimulationBytes() {
  return SimulationBudget().load(std::memory_order_relaxed);
}

void SetMaxSimulationBytes(std::uint64_t bytes) {
  SimulationBudget().store(bytes == 0 ? kDefaultMaxSimulationBytes : bytes,
                           std::memory_order_relaxed);
}

std::uint64_t SimulationBytes(int num_qubits) {
  QPLEX_CHECK(num_qubits >= 0 && num_qubits < 60)
      << "qubit count out of range: " << num_qubits;
  return (std::uint64_t{1} << num_qubits) *
         sizeof(std::complex<double>);
}

Status CheckSimulationBudget(int num_qubits) {
  if (resilience::FaultFires(resilience::FaultSite::kAlloc)) {
    return Status::ResourceExhausted(
        "injected fault: alloc (statevector budget check, n=" +
        std::to_string(num_qubits) + ")");
  }
  const std::uint64_t need = SimulationBytes(num_qubits);
  const std::uint64_t budget = MaxSimulationBytes();
  if (need > budget) {
    return Status::ResourceExhausted(
        "state-vector register of " + std::to_string(num_qubits) +
        " qubits needs " + std::to_string(need) +
        " bytes of amplitudes, over the " + std::to_string(budget) +
        "-byte simulation budget");
  }
  return Status::Ok();
}

StateVectorSimulator::StateVectorSimulator(int num_qubits, int num_threads)
    : num_qubits_(num_qubits) {
  QPLEX_CHECK(num_qubits >= 1 && num_qubits <= kMaxQubits)
      << "state-vector simulation supports 1.." << kMaxQubits
      << " qubits, got " << num_qubits;
  set_num_threads(num_threads);
  amplitudes_.assign(dimension(), {0.0, 0.0});
  amplitudes_[0] = {1.0, 0.0};
}

void StateVectorSimulator::set_num_threads(int num_threads) {
  QPLEX_CHECK(num_threads >= 1) << "num_threads must be >= 1";
  num_threads_ = num_threads;
  obs::MetricsRegistry::Global()
      .GetGauge("simulator.threads")
      .Set(static_cast<double>(num_threads_));
}

void StateVectorSimulator::Reset() {
  std::fill(amplitudes_.begin(), amplitudes_.end(),
            std::complex<double>{0.0, 0.0});
  amplitudes_[0] = {1.0, 0.0};
}

void StateVectorSimulator::PrepareUniform() {
  const double amp = 1.0 / std::sqrt(static_cast<double>(dimension()));
  ParallelFor(num_threads_, dimension(),
              [&](std::uint64_t begin, std::uint64_t end) {
                std::fill(amplitudes_.begin() + static_cast<std::ptrdiff_t>(
                                                    begin),
                          amplitudes_.begin() + static_cast<std::ptrdiff_t>(
                                                    end),
                          std::complex<double>{amp, 0.0});
              });
}

void StateVectorSimulator::ApplyX(int qubit) { ApplyGate(MakeX(qubit)); }
void StateVectorSimulator::ApplyH(int qubit) { ApplyGate(MakeH(qubit)); }
void StateVectorSimulator::ApplyZ(int qubit) { ApplyGate(MakeZ(qubit)); }

void StateVectorSimulator::ApplyGate(const Gate& gate) {
  QPLEX_CHECK(gate.target >= 0 && gate.target < num_qubits_)
      << "target " << gate.target << " outside register";
  const ControlMask control = MakeControlMask(gate, num_qubits_);
  const std::uint64_t target_bit = std::uint64_t{1} << gate.target;
  const std::uint64_t low_mask = target_bit - 1;
  const std::uint64_t dim = dimension();
  auto& registry = obs::MetricsRegistry::Global();
  // References stay valid across Reset(), so one lookup per process is safe.
  static obs::Counter& x_applies =
      registry.GetCounter("simulator.gate_applies.x");
  static obs::Counter& z_applies =
      registry.GetCounter("simulator.gate_applies.z");
  static obs::Counter& h_applies =
      registry.GetCounter("simulator.gate_applies.h");
  switch (gate.kind) {
    case GateKind::kX:
      x_applies.Increment();
      if (control.never_fires) {
        break;
      }
      // Pair loop: j enumerates the (i, i | target_bit) pairs, i has the
      // target bit clear, so the old per-pair swap semantics are preserved
      // and chunks never touch each other's amplitudes.
      ParallelFor(num_threads_, dim >> 1,
                  [&](std::uint64_t begin, std::uint64_t end) {
                    for (std::uint64_t j = begin; j < end; ++j) {
                      const std::uint64_t i = PairToBasis(j, low_mask);
                      if (control.Fires(i)) {
                        std::swap(amplitudes_[i], amplitudes_[i | target_bit]);
                      }
                    }
                  });
      break;
    case GateKind::kZ: {
      z_applies.Increment();
      // Z flips the phase where the target bit is set AND the controls fire:
      // one fused mask compare per basis state. (A control on the target
      // wire keeps the old ControlsFire semantics: a positive control is
      // subsumed by the target-bit requirement, a negative one never fires.)
      const std::uint64_t full_mask = control.mask | target_bit;
      const std::uint64_t full_value = control.value | target_bit;
      const bool negative_control_on_target =
          (control.mask & target_bit) != 0 && (control.value & target_bit) == 0;
      if (control.never_fires || negative_control_on_target) {
        break;
      }
      ParallelFor(num_threads_, dim,
                  [&](std::uint64_t begin, std::uint64_t end) {
                    for (std::uint64_t i = begin; i < end; ++i) {
                      if ((i & full_mask) == full_value) {
                        amplitudes_[i] = -amplitudes_[i];
                      }
                    }
                  });
      break;
    }
    case GateKind::kH:
      h_applies.Increment();
      if (control.never_fires) {
        break;
      }
      ParallelFor(num_threads_, dim >> 1,
                  [&](std::uint64_t begin, std::uint64_t end) {
                    for (std::uint64_t j = begin; j < end; ++j) {
                      const std::uint64_t i = PairToBasis(j, low_mask);
                      if (control.Fires(i)) {
                        const std::complex<double> a = amplitudes_[i];
                        const std::complex<double> b =
                            amplitudes_[i | target_bit];
                        amplitudes_[i] = (a + b) * kInvSqrt2;
                        amplitudes_[i | target_bit] = (a - b) * kInvSqrt2;
                      }
                    }
                  });
      break;
  }
}

void StateVectorSimulator::RunCircuit(const Circuit& circuit) {
  QPLEX_CHECK(circuit.num_qubits() <= num_qubits_)
      << "circuit wider than simulator";
  for (const Gate& gate : circuit.gates()) {
    ApplyGate(gate);
  }
}

void StateVectorSimulator::ApplyPhaseOracle(
    const std::function<bool(std::uint64_t)>& marked) {
  static obs::Counter& applies = obs::MetricsRegistry::Global().GetCounter(
      "simulator.phase_oracle_applies");
  applies.Increment();
  ParallelFor(num_threads_, dimension(),
              [&](std::uint64_t begin, std::uint64_t end) {
                for (std::uint64_t i = begin; i < end; ++i) {
                  if (marked(i)) {
                    amplitudes_[i] = -amplitudes_[i];
                  }
                }
              });
}

void StateVectorSimulator::ApplyPhaseOracle(
    const std::vector<std::uint64_t>& marked_states) {
  static obs::Counter& applies = obs::MetricsRegistry::Global().GetCounter(
      "simulator.phase_oracle_applies");
  applies.Increment();
  // O(M) sparse flips: threading would cost more than it saves.
  for (std::uint64_t basis : marked_states) {
    QPLEX_CHECK(basis < dimension()) << "marked state out of range";
    amplitudes_[basis] = -amplitudes_[basis];
  }
}

void StateVectorSimulator::ApplyDiffusion() {
  static obs::Counter& applies = obs::MetricsRegistry::Global().GetCounter(
      "simulator.diffusion_applies");
  applies.Increment();
  const std::complex<double> sum = ParallelReduce(
      num_threads_, dimension(), std::complex<double>{0.0, 0.0},
      [&](std::uint64_t begin, std::uint64_t end) {
        std::complex<double> partial{0.0, 0.0};
        for (std::uint64_t i = begin; i < end; ++i) {
          partial += amplitudes_[i];
        }
        return partial;
      },
      [](std::complex<double> a, std::complex<double> b) { return a + b; });
  const std::complex<double> twice_mean =
      sum * (2.0 / static_cast<double>(dimension()));
  ParallelFor(num_threads_, dimension(),
              [&](std::uint64_t begin, std::uint64_t end) {
                for (std::uint64_t i = begin; i < end; ++i) {
                  amplitudes_[i] = twice_mean - amplitudes_[i];
                }
              });
}

double StateVectorSimulator::Probability(std::uint64_t basis) const {
  QPLEX_CHECK(basis < dimension()) << "basis index out of range";
  return std::norm(amplitudes_[basis]);
}

std::vector<double> StateVectorSimulator::Probabilities() const {
  std::vector<double> probabilities(dimension());
  ParallelFor(num_threads_, dimension(),
              [&](std::uint64_t begin, std::uint64_t end) {
                for (std::uint64_t i = begin; i < end; ++i) {
                  probabilities[i] = std::norm(amplitudes_[i]);
                }
              });
  return probabilities;
}

double StateVectorSimulator::SuccessProbability(
    const std::function<bool(std::uint64_t)>& predicate) const {
  return ParallelReduce(
      num_threads_, dimension(), 0.0,
      [&](std::uint64_t begin, std::uint64_t end) {
        double partial = 0.0;
        for (std::uint64_t i = begin; i < end; ++i) {
          if (predicate(i)) {
            partial += std::norm(amplitudes_[i]);
          }
        }
        return partial;
      },
      [](double a, double b) { return a + b; });
}

double StateVectorSimulator::TotalProbability() const {
  return ParallelReduce(
      num_threads_, dimension(), 0.0,
      [&](std::uint64_t begin, std::uint64_t end) {
        double partial = 0.0;
        for (std::uint64_t i = begin; i < end; ++i) {
          partial += std::norm(amplitudes_[i]);
        }
        return partial;
      },
      [](double a, double b) { return a + b; });
}

std::vector<double> StateVectorSimulator::BuildCdf() const {
  const std::uint64_t dim = dimension();
  std::vector<double> cdf(dim);
  const std::uint64_t num_chunks = NumParallelChunks(dim);
  std::vector<double> chunk_totals(num_chunks, 0.0);
  // Pass 1: prefix sums local to each fixed chunk, plus the chunk totals.
  ParallelFor(num_threads_, dim, [&](std::uint64_t begin, std::uint64_t end) {
    double accumulator = 0.0;
    for (std::uint64_t i = begin; i < end; ++i) {
      accumulator += std::norm(amplitudes_[i]);
      cdf[i] = accumulator;
    }
    chunk_totals[begin / kParallelChunkSize] = accumulator;
  });
  // Exclusive scan of the chunk totals, in chunk order (deterministic).
  std::vector<double> chunk_offsets(num_chunks, 0.0);
  double running = 0.0;
  for (std::uint64_t chunk = 0; chunk < num_chunks; ++chunk) {
    chunk_offsets[chunk] = running;
    running += chunk_totals[chunk];
  }
  // Pass 2: shift each chunk by the mass before it. Chunk 0's offset is
  // exactly 0.0, so a single-chunk CDF is bit-identical to a serial scan.
  ParallelFor(num_threads_, dim, [&](std::uint64_t begin, std::uint64_t end) {
    const double offset = chunk_offsets[begin / kParallelChunkSize];
    for (std::uint64_t i = begin; i < end; ++i) {
      cdf[i] += offset;
    }
  });
  return cdf;
}

namespace {

/// Maps a uniform draw u in [0, total) to the first basis index whose
/// cumulative probability reaches u (binary search, O(n) comparisons).
std::uint64_t SampleIndexFromCdf(const std::vector<double>& cdf, double u) {
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return it == cdf.end()
             ? static_cast<std::uint64_t>(cdf.size()) - 1
             : static_cast<std::uint64_t>(it - cdf.begin());
}

}  // namespace

std::uint64_t StateVectorSimulator::SampleOne(Rng& rng) const {
  const std::vector<double> cdf = BuildCdf();
  const double u = rng.UniformDouble() * cdf.back();
  return SampleIndexFromCdf(cdf, u);
}

std::vector<int> StateVectorSimulator::Sample(Rng& rng, int shots) const {
  QPLEX_CHECK(shots >= 0) << "negative shot count";
  // Build the CDF once; each shot is then a binary search.
  const std::vector<double> cdf = BuildCdf();
  const double total = cdf.back();
  std::vector<int> counts(dimension(), 0);
  for (int s = 0; s < shots; ++s) {
    const double u = rng.UniformDouble() * total;
    ++counts[SampleIndexFromCdf(cdf, u)];
  }
  return counts;
}

}  // namespace qplex
