#ifndef QPLEX_QUANTUM_CIRCUIT_H_
#define QPLEX_QUANTUM_CIRCUIT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "quantum/gate.h"

namespace qplex {

/// A contiguous range of qubit wires [start, start + width).
struct QubitRange {
  int start = 0;
  int width = 0;

  int operator[](int i) const {
    QPLEX_CHECK(i >= 0 && i < width) << "register index " << i << " of " << width;
    return start + i;
  }
  int end() const { return start + width; }
};

/// A gate list over named qubit registers. Circuits are built once by the
/// oracle/arithmetic builders and then executed many times by the simulators.
/// Every supported gate is an involution, so Inverted() is just the reversed
/// gate list — exactly the U_check / U_check^dagger structure of the paper's
/// Fig. 12.
class Circuit {
 public:
  Circuit() = default;

  /// Allocates `width` fresh wires under `name` (names must be unique).
  QubitRange AllocateRegister(const std::string& name, int width);
  /// Allocates a single fresh wire.
  int AllocateQubit(const std::string& name);

  /// Allocates a register under an auto-uniquified name "<hint>.<counter>".
  /// Circuit builders use this for ancillas so callers never clash on names.
  QubitRange AllocateAncilla(const std::string& hint, int width);

  /// Looks up a previously allocated register.
  Result<QubitRange> FindRegister(const std::string& name) const;

  int num_qubits() const { return num_qubits_; }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  const std::vector<Gate>& gates() const { return gates_; }

  /// Registers a cost-accounting stage and makes it current; subsequent
  /// Append() calls are tagged with it. Stage 0 ("default") always exists.
  int BeginStage(const std::string& name);
  const std::vector<std::string>& stage_names() const { return stage_names_; }

  /// Appends a gate (tagged with the current stage). Wire indices are
  /// validated against the allocated qubit count.
  void Append(Gate gate);

  /// Appends every gate of `other` (same wire space), preserving gate order
  /// but re-tagging with the current stage.
  void AppendCircuit(const Circuit& other);

  /// Appends the inverse of everything appended since `first_gate` — used to
  /// uncompute ancillas after the oracle flip.
  void AppendInverseOfSuffix(int first_gate);

  /// Appends the inverse of gates [first_gate, last_gate); lets the oracle
  /// builder uncompute U_check while leaving the oracle flip in place.
  void AppendInverseOfRange(int first_gate, int last_gate);

  /// Inserts gates at the FRONT of the circuit (tagged stage 0). Used to
  /// prepend state-preparation layers when composing a full algorithm
  /// circuit around an already-built oracle.
  void PrependGates(const std::vector<Gate>& gates);

  /// Gate count per stage (indexed like stage_names()).
  std::vector<int> GateCountsByStage() const;
  /// Cost (Gate::Cost sum) per stage.
  std::vector<std::int64_t> CostsByStage() const;
  /// Total cost across all gates.
  std::int64_t TotalCost() const;

  /// Number of classical (non-H) gates.
  int NumClassicalGates() const;

  /// Multi-line listing for debugging / golden tests.
  std::string ToString() const;

 private:
  int num_qubits_ = 0;
  int current_stage_ = 0;
  int ancilla_counter_ = 0;
  std::vector<Gate> gates_;
  std::vector<std::string> stage_names_{"default"};
  std::map<std::string, QubitRange> registers_;
};

}  // namespace qplex

#endif  // QPLEX_QUANTUM_CIRCUIT_H_
