#ifndef QPLEX_QUANTUM_BITSTRING_H_
#define QPLEX_QUANTUM_BITSTRING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace qplex {

/// A fixed-width string of classical bits — the computational-basis state of
/// a (possibly very wide) qubit register. The reversible-oracle simulator
/// executes X/CNOT/C^kNOT circuits directly on BitStrings, which is what makes
/// simulating the paper's O(n^2 log n)-qubit oracles tractable.
class BitString {
 public:
  BitString() = default;
  explicit BitString(int num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {
    QPLEX_CHECK(num_bits >= 0) << "negative bit count";
  }

  int size() const { return num_bits_; }

  bool Get(int bit) const {
    QPLEX_CHECK(bit >= 0 && bit < num_bits_) << "bit " << bit << " of " << num_bits_;
    return (words_[static_cast<std::size_t>(bit) >> 6] >> (bit & 63)) & 1;
  }
  void Set(int bit, bool value) {
    QPLEX_CHECK(bit >= 0 && bit < num_bits_) << "bit " << bit << " of " << num_bits_;
    const std::uint64_t mask = std::uint64_t{1} << (bit & 63);
    if (value) {
      words_[static_cast<std::size_t>(bit) >> 6] |= mask;
    } else {
      words_[static_cast<std::size_t>(bit) >> 6] &= ~mask;
    }
  }
  void Flip(int bit) {
    QPLEX_CHECK(bit >= 0 && bit < num_bits_) << "bit " << bit << " of " << num_bits_;
    words_[static_cast<std::size_t>(bit) >> 6] ^= std::uint64_t{1} << (bit & 63);
  }

  /// Number of set bits.
  int PopCount() const;

  /// Writes the low-order `width` bits of `value` into bits
  /// [offset, offset + width).
  void StoreInt(int offset, int width, std::uint64_t value);

  /// Reads bits [offset, offset + width) as an unsigned little-endian integer
  /// (bit `offset` is the least significant). width <= 64.
  std::uint64_t LoadInt(int offset, int width) const;

  /// All-zero check.
  bool IsZero() const;

  /// "b0 b1 b2..." with bit 0 leftmost; for debugging.
  std::string ToString() const;

  friend bool operator==(const BitString& a, const BitString& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  int num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace qplex

#endif  // QPLEX_QUANTUM_BITSTRING_H_
