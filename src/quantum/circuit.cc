#include "quantum/circuit.h"

#include <sstream>

namespace qplex {

QubitRange Circuit::AllocateRegister(const std::string& name, int width) {
  QPLEX_CHECK(width >= 0) << "negative register width";
  QPLEX_CHECK(registers_.find(name) == registers_.end())
      << "duplicate register name: " << name;
  const QubitRange range{num_qubits_, width};
  num_qubits_ += width;
  registers_.emplace(name, range);
  return range;
}

int Circuit::AllocateQubit(const std::string& name) {
  return AllocateRegister(name, 1).start;
}

QubitRange Circuit::AllocateAncilla(const std::string& hint, int width) {
  return AllocateRegister(hint + "." + std::to_string(ancilla_counter_++),
                          width);
}

Result<QubitRange> Circuit::FindRegister(const std::string& name) const {
  const auto it = registers_.find(name);
  if (it == registers_.end()) {
    return Status::NotFound("no register named " + name);
  }
  return it->second;
}

int Circuit::BeginStage(const std::string& name) {
  for (std::size_t i = 0; i < stage_names_.size(); ++i) {
    if (stage_names_[i] == name) {
      current_stage_ = static_cast<int>(i);
      return current_stage_;
    }
  }
  stage_names_.push_back(name);
  current_stage_ = static_cast<int>(stage_names_.size()) - 1;
  return current_stage_;
}

void Circuit::Append(Gate gate) {
  QPLEX_CHECK(gate.target >= 0 && gate.target < num_qubits_)
      << "gate target " << gate.target << " outside " << num_qubits_
      << " wires";
  for (const Control& control : gate.controls) {
    QPLEX_CHECK(control.qubit >= 0 && control.qubit < num_qubits_)
        << "control " << control.qubit << " outside " << num_qubits_
        << " wires";
    QPLEX_CHECK(control.qubit != gate.target)
        << "control and target coincide on qubit " << control.qubit;
  }
  gate.stage = current_stage_;
  gates_.push_back(std::move(gate));
}

void Circuit::AppendCircuit(const Circuit& other) {
  QPLEX_CHECK(other.num_qubits() <= num_qubits_)
      << "appended circuit uses more wires than available";
  for (const Gate& gate : other.gates_) {
    Append(gate);
  }
}

void Circuit::AppendInverseOfSuffix(int first_gate) {
  AppendInverseOfRange(first_gate, num_gates());
}

void Circuit::AppendInverseOfRange(int first_gate, int last_gate) {
  QPLEX_CHECK(first_gate >= 0 && first_gate <= last_gate &&
              last_gate <= num_gates())
      << "bad gate range [" << first_gate << ", " << last_gate << ")";
  // All gate kinds are involutions, so the inverse of g1 g2 ... gk is
  // gk ... g2 g1.
  for (int i = last_gate - 1; i >= first_gate; --i) {
    Append(gates_[i]);
  }
}

void Circuit::PrependGates(const std::vector<Gate>& gates) {
  std::vector<Gate> validated;
  validated.reserve(gates.size());
  for (Gate gate : gates) {
    QPLEX_CHECK(gate.target >= 0 && gate.target < num_qubits_)
        << "prepended gate target " << gate.target << " outside wires";
    gate.stage = 0;
    validated.push_back(std::move(gate));
  }
  gates_.insert(gates_.begin(), validated.begin(), validated.end());
}

std::vector<int> Circuit::GateCountsByStage() const {
  std::vector<int> counts(stage_names_.size(), 0);
  for (const Gate& gate : gates_) {
    ++counts[gate.stage];
  }
  return counts;
}

std::vector<std::int64_t> Circuit::CostsByStage() const {
  std::vector<std::int64_t> costs(stage_names_.size(), 0);
  for (const Gate& gate : gates_) {
    costs[gate.stage] += gate.Cost();
  }
  return costs;
}

std::int64_t Circuit::TotalCost() const {
  std::int64_t total = 0;
  for (const Gate& gate : gates_) {
    total += gate.Cost();
  }
  return total;
}

int Circuit::NumClassicalGates() const {
  int count = 0;
  for (const Gate& gate : gates_) {
    count += gate.IsClassical();
  }
  return count;
}

std::string Circuit::ToString() const {
  std::ostringstream out;
  out << "Circuit(" << num_qubits_ << " qubits, " << num_gates()
      << " gates)\n";
  for (const auto& [name, range] : registers_) {
    out << "  reg " << name << ": [" << range.start << ", " << range.end()
        << ")\n";
  }
  for (const Gate& gate : gates_) {
    out << "  " << gate.ToString() << "  #" << stage_names_[gate.stage]
        << "\n";
  }
  return out.str();
}

}  // namespace qplex
