#include "quantum/bitstring.h"

#include <bit>

namespace qplex {

int BitString::PopCount() const {
  int count = 0;
  for (std::uint64_t word : words_) {
    count += std::popcount(word);
  }
  return count;
}

void BitString::StoreInt(int offset, int width, std::uint64_t value) {
  QPLEX_CHECK(width >= 0 && width <= 64) << "bad width " << width;
  for (int i = 0; i < width; ++i) {
    Set(offset + i, (value >> i) & 1);
  }
}

std::uint64_t BitString::LoadInt(int offset, int width) const {
  QPLEX_CHECK(width >= 0 && width <= 64) << "bad width " << width;
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    value |= static_cast<std::uint64_t>(Get(offset + i)) << i;
  }
  return value;
}

bool BitString::IsZero() const {
  for (std::uint64_t word : words_) {
    if (word != 0) {
      return false;
    }
  }
  return true;
}

std::string BitString::ToString() const {
  std::string out;
  out.reserve(num_bits_);
  for (int i = 0; i < num_bits_; ++i) {
    out.push_back(Get(i) ? '1' : '0');
  }
  return out;
}

}  // namespace qplex
