#include "quantum/basis_sim.h"

namespace qplex {

bool BasisStateSimulator::ControlsFire(const Gate& gate,
                                       const BitString& state) {
  for (const Control& control : gate.controls) {
    if (state.Get(control.qubit) != control.positive) {
      return false;
    }
  }
  return true;
}

Status BasisStateSimulator::Apply(const Gate& gate) {
  switch (gate.kind) {
    case GateKind::kX:
      if (ControlsFire(gate, state_)) {
        state_.Flip(gate.target);
      }
      return Status::Ok();
    case GateKind::kZ:
      // Z contributes a -1 phase when the target is |1> and controls fire.
      if (state_.Get(gate.target) && ControlsFire(gate, state_)) {
        phase_parity_ = !phase_parity_;
      }
      return Status::Ok();
    case GateKind::kH:
      return Status::FailedPrecondition(
          "H gate leaves the computational basis; use StateVectorSimulator");
  }
  return Status::Internal("unknown gate kind");
}

Status BasisStateSimulator::Run(const Circuit& circuit) {
  QPLEX_CHECK(state_.size() >= circuit.num_qubits())
      << "simulator narrower than circuit";
  for (const Gate& gate : circuit.gates()) {
    QPLEX_RETURN_IF_ERROR(Apply(gate));
  }
  return Status::Ok();
}

Result<BitString> BasisStateSimulator::Execute(const Circuit& circuit,
                                               const BitString& input) {
  if (input.size() > circuit.num_qubits()) {
    return Status::InvalidArgument("input wider than circuit");
  }
  BasisStateSimulator sim(circuit.num_qubits());
  for (int i = 0; i < input.size(); ++i) {
    sim.mutable_state()->Set(i, input.Get(i));
  }
  QPLEX_RETURN_IF_ERROR(sim.Run(circuit));
  return sim.state();
}

}  // namespace qplex
