#ifndef QPLEX_QUANTUM_QASM_H_
#define QPLEX_QUANTUM_QASM_H_

#include <string>

#include "common/status.h"
#include "quantum/circuit.h"

namespace qplex {

/// Serializes a circuit to OpenQASM 3, so the constructed oracles can be
/// inspected or executed on external toolchains (Qiskit et al.). Negative
/// controls are lowered to X-conjugation; multi-controlled X/Z beyond two
/// controls are emitted as `ctrl(k) @ x` / `ctrl(k) @ z` gate modifiers.
Result<std::string> ToQasm3(const Circuit& circuit);

/// Convenience: writes ToQasm3 output to `path`.
Status WriteQasm3File(const Circuit& circuit, const std::string& path);

}  // namespace qplex

#endif  // QPLEX_QUANTUM_QASM_H_
