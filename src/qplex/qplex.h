#ifndef QPLEX_QPLEX_H_
#define QPLEX_QPLEX_H_

/// \file
/// Umbrella header for the qplex library — gate-based and annealing-based
/// quantum algorithms for the Maximum k-Plex Problem (reproduction of Li,
/// Cong & Zhou, ICDE 2024), together with every substrate they run on.
///
/// Modules:
///   common/    Status/Result error model, PRNG, stopwatch, table printing
///   obs/       observability: metrics registry, trace spans, JSON run reports
///   graph/     graphs, k-plex predicates, generators, IO, named instances
///   quantum/   circuit IR + basis-state and state-vector simulators
///   arith/     reversible adders / comparators / popcount circuit builders
///   oracle/    the qTKP decision oracle (graph encoding -> degree count ->
///              degree compare -> size check -> uncompute)
///   grover/    Grover engine, qTKP, qMKP, BBHT, qMaxClique
///   qubo/      QUBO model + the qaMKP slack-encoded formulation
///   anneal/    simulated annealing, path-integral (quantum) annealing,
///              hybrid portfolio solver
///   embed/     Chimera / Pegasus-like hardware + minor embedding
///   milp/      dense simplex, branch & bound, McCormick linearization
///   classical/ enumeration ground truth, BS branch-and-search, reductions
///   workload/  the paper's dataset registry
///   resilience/ deterministic fault injection, retry backoff, failure
///              taxonomy
///   svc/       solver service layer: unified backend registry, bounded job
///              scheduler with portfolio racing, retry/fallback resilience,
///              instance result cache
///   net/       poll-based TCP/JSONL serving: EINTR-safe socket wrappers,
///              newline framing, coalescing write buffers, the
///              single-threaded multiplexed server event loop

#include "anneal/hybrid_solver.h"
#include "anneal/parallel_tempering.h"
#include "anneal/path_integral_annealer.h"
#include "anneal/simulated_annealer.h"
#include "arith/adder.h"
#include "arith/comparator.h"
#include "arith/popcount.h"
#include "classical/bs_solver.h"
#include "classical/exact.h"
#include "classical/grasp.h"
#include "classical/reduce.h"
#include "common/cancel.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "embed/hardware.h"
#include "embed/minor_embedding.h"
#include "graph/decomposition.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/instances.h"
#include "graph/io.h"
#include "graph/kplex.h"
#include "embed/clique_template.h"
#include "grover/counting.h"
#include "grover/engine.h"
#include "grover/full_circuit.h"
#include "grover/qmkp.h"
#include "grover/qtkp.h"
#include "milp/milp_solver.h"
#include "obs/analysis.h"
#include "obs/convergence.h"
#include "obs/events.h"
#include "obs/incumbent.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/reqtrace.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "milp/qubo_linearization.h"
#include "milp/simplex.h"
#include "oracle/mkp_oracle.h"
#include "quantum/basis_sim.h"
#include "quantum/bitstring.h"
#include "quantum/circuit.h"
#include "quantum/gate.h"
#include "quantum/qasm.h"
#include "quantum/statevector.h"
#include "qubo/mkp_qubo.h"
#include "qubo/qubo_model.h"
#include "relax/club.h"
#include "relax/club_oracle.h"
#include "resilience/breaker.h"
#include "resilience/fault_injection.h"
#include "resilience/health.h"
#include "resilience/retry.h"
#include "net/frame.h"
#include "net/io.h"
#include "net/server.h"
#include "svc/cache.h"
#include "svc/graph_hash.h"
#include "svc/registry.h"
#include "svc/request.h"
#include "svc/scheduler.h"
#include "svc/solver.h"
#include "workload/datasets.h"

#endif  // QPLEX_QPLEX_H_
