#ifndef QPLEX_CLASSICAL_GRASP_H_
#define QPLEX_CLASSICAL_GRASP_H_

#include <cstdint>

#include "classical/exact.h"
#include "common/status.h"
#include "graph/graph.h"

namespace qplex {

/// GRASP for the maximum k-plex (after Gujjula & Balasundaram; the
/// approximation family the paper's related-work section surveys): each
/// iteration builds a plex with a randomized greedy construction (choose
/// uniformly among the top-alpha fraction of compatible candidates by
/// degree), then improves it with swap-based local search (drop one member,
/// greedily refill). Returns the best plex over all iterations.
struct GraspOptions {
  int iterations = 64;
  /// Candidate-list greediness: 0 = pure greedy, 1 = uniform random.
  double alpha = 0.3;
  std::uint64_t seed = 1;
};

class GraspSolver {
 public:
  explicit GraspSolver(GraspOptions options = {}) : options_(options) {}

  /// Finds a (maximal, not necessarily maximum) k-plex of `graph` (n <= 64).
  Result<MkpSolution> Solve(const Graph& graph, int k) const;

 private:
  GraspOptions options_;
};

}  // namespace qplex

#endif  // QPLEX_CLASSICAL_GRASP_H_
