#ifndef QPLEX_CLASSICAL_GRASP_H_
#define QPLEX_CLASSICAL_GRASP_H_

#include <cstdint>
#include <functional>

#include "classical/exact.h"
#include "common/cancel.h"
#include "common/status.h"
#include "graph/graph.h"

namespace qplex {

/// GRASP for the maximum k-plex (after Gujjula & Balasundaram; the
/// approximation family the paper's related-work section surveys): each
/// iteration builds a plex with a randomized greedy construction (choose
/// uniformly among the top-alpha fraction of compatible candidates by
/// degree), then improves it with swap-based local search (drop one member,
/// greedily refill, breaking degree ties in the refill with the run's RNG so
/// low-index vertices are not systematically favoured). Returns the best
/// plex over all iterations; runs are deterministic per seed. Solves run on
/// the BitGraph kernel engines (graph/bitgraph.h): single-word masks for
/// n <= 64, multi-word rows beyond.
struct GraspOptions {
  int iterations = 64;
  /// Candidate-list greediness: 0 = pure greedy, 1 = uniform random.
  double alpha = 0.3;
  /// Wall-clock budget; <= 0 is unlimited. Checked inside the construction
  /// and local-search loops (not just between iterations), so a millisecond
  /// deadline stops the run promptly; the incumbent is returned with
  /// `stats().completed == false`.
  double time_limit_seconds = 0;
  /// Optional cooperative cancellation; polled with the deadline.
  const CancelToken* cancel = nullptr;
  std::uint64_t seed = 1;
  /// Invoked on every strict best-plex improvement with the 1-based restart
  /// iteration that produced it.
  std::function<void(const MkpSolution& best, int iteration)> on_incumbent;
};

/// Outcome bookkeeping of one GRASP run.
struct GraspStats {
  int iterations_run = 0;
  std::int64_t improvements = 0;  ///< restarts that improved the incumbent
  bool completed = true;  ///< false when the deadline/cancellation fired
};

class GraspSolver {
 public:
  explicit GraspSolver(GraspOptions options = {}) : options_(options) {}

  /// Finds a (maximal, not necessarily maximum) k-plex of `graph` (any n).
  Result<MkpSolution> Solve(const Graph& graph, int k);

  const GraspStats& stats() const { return stats_; }

 private:
  GraspOptions options_;
  GraspStats stats_;
};

}  // namespace qplex

#endif  // QPLEX_CLASSICAL_GRASP_H_
