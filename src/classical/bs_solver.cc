#include "classical/bs_solver.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "classical/reduce.h"
#include "graph/bitgraph.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex {
namespace {

/// Greedy initial lower bound: repeatedly grow a plex from each seed vertex
/// by adding the highest-degree compatible candidate.
template <typename Engine>
MkpSolution GreedyKPlex(const Graph& graph, const Engine& engine, int k) {
  const int n = graph.num_vertices();
  MkpSolution best;
  typename Engine::Set best_set = engine.Empty();
  for (Vertex seed = 0; seed < n; ++seed) {
    typename Engine::Set chosen = engine.Empty();
    Engine::Add(chosen, seed);
    int size = 1;
    bool grew = true;
    while (grew) {
      grew = false;
      Vertex pick = -1;
      int pick_degree = -1;
      for (Vertex v = 0; v < n; ++v) {
        if (Engine::Test(chosen, v) ||
            !CanExtendPlex(engine, chosen, size, v, k)) {
          continue;
        }
        if (graph.Degree(v) > pick_degree) {
          pick = v;
          pick_degree = graph.Degree(v);
        }
      }
      if (pick >= 0) {
        Engine::Add(chosen, pick);
        ++size;
        grew = true;
      }
    }
    if (size > best.size) {
      best.size = size;
      best_set = chosen;
    }
  }
  best.members = Engine::ToList(best_set);
  FillSolutionMask(best);
  return best;
}

template <typename Engine>
MkpSolution RunGreedy(const Graph& graph, int k) {
  Engine engine(graph);
  return GreedyKPlex(graph, engine, k);
}

/// Translates a search-graph solution back to the caller's vertex ids.
MkpSolution MapToOriginal(const MkpSolution& solution,
                          const std::vector<Vertex>* new_to_old) {
  MkpSolution mapped;
  mapped.size = solution.size;
  for (Vertex v : solution.members) {
    mapped.members.push_back(new_to_old != nullptr ? (*new_to_old)[v] : v);
  }
  std::sort(mapped.members.begin(), mapped.members.end());
  FillSolutionMask(mapped);
  return mapped;
}

struct BranchOutcome {
  MkpSolution best;
  bool aborted = false;
};

/// The recursive branch-and-search core, templated over the kernel engine so
/// the same pruning logic runs single-word on small search graphs and
/// multi-word beyond 64 vertices.
template <typename Engine>
class BranchSearcher {
 public:
  using Set = typename Engine::Set;

  BranchSearcher(const Engine& engine, int k, const BsSolverOptions& options,
                 BsSolverStats& stats, Deadline deadline)
      : engine_(engine),
        k_(k),
        options_(options),
        stats_(stats),
        deadline_(deadline) {}

  MkpSolution best;
  std::function<void(const MkpSolution&, const BsSolverStats&)>
      report_incumbent;

  bool aborted() const { return aborted_; }

  void Branch(const Set& chosen, const Set& candidates) {
    if (aborted_) {
      return;
    }
    ++stats_.branch_nodes;
    if ((stats_.branch_nodes & 0x3FF) == 0) {
      if (StopRequested(deadline_, options_.cancel)) {
        aborted_ = true;
        return;
      }
      if (heartbeat_.Due()) {
        heartbeat_.Emit({{"branch_nodes", stats_.branch_nodes},
                         {"best_size", best.size},
                         {"prunes_bound", stats_.prunes_bound},
                         {"prunes_infeasible", stats_.prunes_infeasible}});
      }
    }

    const int size = Engine::Count(chosen);
    if (size > best.size) {
      best.size = size;
      best.members = Engine::ToList(chosen);
      FillSolutionMask(best);
      if (report_incumbent) {
        report_incumbent(best, stats_);
      }
    }

    // Filter candidates: v may join only if P + v is still a k-plex, and a v
    // that fails now can never recover (its deficit only grows as P grows).
    Set filtered = engine_.Empty();
    Engine::ForEach(Engine::AndNot(candidates, chosen), [&](Vertex v) {
      if (CanExtendPlex(engine_, chosen, size, v, k_)) {
        Engine::Add(filtered, v);
      } else {
        ++stats_.prunes_infeasible;
      }
    });

    if (Engine::None(filtered)) {
      return;
    }

    // Size bound.
    int upper = size + Engine::Count(filtered);
    // Degree-support bound: any extension P* satisfies, for every u in P,
    // |P*| <= deg_P(u) + deg_C(u) + k.
    if (options_.use_support_bound) {
      Engine::ForEach(chosen, [&](Vertex u) {
        upper = std::min(upper, engine_.DegreeIn(u, chosen) +
                                    engine_.DegreeIn(u, filtered) + k_);
      });
    }
    if (upper <= best.size) {
      ++stats_.prunes_bound;
      return;
    }

    // Branch on the candidate with the highest connectivity into P + C (the
    // "most constrained first" rule of branch-and-search solvers).
    Vertex pick = -1;
    int pick_score = -1;
    const Set pool = Engine::Or(chosen, filtered);
    Engine::ForEach(filtered, [&](Vertex v) {
      const int score = engine_.DegreeIn(v, pool);
      if (score > pick_score) {
        pick = v;
        pick_score = score;
      }
    });
    Set rest = filtered;
    Engine::Remove(rest, pick);
    Set with_pick = chosen;
    Engine::Add(with_pick, pick);
    Branch(with_pick, rest);
    Branch(chosen, rest);
  }

 private:
  const Engine& engine_;
  int k_;
  const BsSolverOptions& options_;
  BsSolverStats& stats_;
  Deadline deadline_;
  bool aborted_ = false;
  obs::ProgressHeartbeat heartbeat_{"bs"};
};

template <typename Engine>
BranchOutcome RunBranchSearch(
    const Graph& search_graph, int k, int seed_size,
    const BsSolverOptions& options, BsSolverStats& stats, Deadline deadline,
    std::function<void(const MkpSolution&, const BsSolverStats&)>
        report_incumbent) {
  Engine engine(search_graph);
  BranchSearcher<Engine> searcher(engine, k, options, stats, deadline);
  // Seed the bound with the incumbent size (solution members live in
  // different id spaces, so only the size transfers).
  searcher.best.size = seed_size;
  searcher.report_incumbent = std::move(report_incumbent);
  searcher.Branch(engine.Empty(), engine.Full());
  return {std::move(searcher.best), searcher.aborted()};
}

}  // namespace

Result<MkpSolution> BsSolver::Solve(const Graph& graph, int k) {
  const int n = graph.num_vertices();
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  obs::TraceSpan span("bs.solve");
  stats_ = BsSolverStats{};
  Stopwatch watch;

  MkpSolution best;
  if (n == 0) {
    return best;
  }

  best = n <= 64 ? RunGreedy<MaskEngine>(graph, k)
                 : RunGreedy<WideEngine>(graph, k);
  if (options_.on_incumbent && best.size > 0) {
    options_.on_incumbent(best, stats_);
  }
  if (options_.on_bound) {
    // The trivial bound before any pruning: every vertex could be in the plex.
    options_.on_bound(n, stats_);
  }

  // Reduce the graph for "strictly better than the greedy bound" and search
  // the reduced instance; the greedy incumbent survives as the fallback.
  const Graph* search_graph = &graph;
  ReductionResult reduction;
  if (options_.use_reduction) {
    obs::TraceSpan reduce_span("bs.reduce");
    reduction = ReduceForTarget(graph, k, best.size + 1);
    search_graph = &reduction.reduced;
    obs::MetricsRegistry::Global()
        .GetCounter("bs.reduction_removed_vertices")
        .Add(n - reduction.reduced.num_vertices());
    if (options_.on_bound) {
      // Survivors of the reduction bound any plex beating the incumbent.
      options_.on_bound(
          std::max(best.size, reduction.reduced.num_vertices()), stats_);
    }
  }

  const Deadline deadline = options_.time_limit_seconds > 0
                                ? Deadline::After(options_.time_limit_seconds)
                                : Deadline::Infinite();
  const std::vector<Vertex>* new_to_old =
      options_.use_reduction ? &reduction.new_to_old : nullptr;
  std::function<void(const MkpSolution&, const BsSolverStats&)> report;
  if (options_.on_incumbent) {
    report = [this, new_to_old](const MkpSolution& reduced_solution,
                                const BsSolverStats& stats) {
      options_.on_incumbent(MapToOriginal(reduced_solution, new_to_old),
                            stats);
    };
  }

  BranchOutcome outcome;
  if (search_graph->num_vertices() > 0) {
    obs::TraceSpan branch_span("bs.branch");
    outcome = search_graph->num_vertices() <= 64
                  ? RunBranchSearch<MaskEngine>(*search_graph, k, best.size,
                                                options_, stats_, deadline,
                                                std::move(report))
                  : RunBranchSearch<WideEngine>(*search_graph, k, best.size,
                                                options_, stats_, deadline,
                                                std::move(report));
  }

  stats_.elapsed_seconds = watch.ElapsedSeconds();
  stats_.completed = !outcome.aborted;

  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("bs.solves").Increment();
  registry.GetCounter("bs.branch_nodes").Add(stats_.branch_nodes);
  registry.GetCounter("bs.prunes_bound").Add(stats_.prunes_bound);
  registry.GetCounter("bs.prunes_infeasible").Add(stats_.prunes_infeasible);
  if (outcome.aborted) {
    registry.GetCounter("bs.deadline_hits").Increment();
  }

  if (outcome.best.size > best.size && !outcome.best.members.empty()) {
    best = MapToOriginal(outcome.best, new_to_old);
  }

  if (outcome.aborted) {
    // Deadline fired; report the incumbent through stats_ and a soft error.
    return best;
  }
  if (options_.on_bound) {
    // Search exhausted: the incumbent is optimal, so the bound meets it.
    options_.on_bound(best.size, stats_);
  }
  return best;
}

}  // namespace qplex
