#include "classical/bs_solver.h"

#include <algorithm>
#include <bit>

#include "classical/reduce.h"
#include "graph/kplex.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex {
namespace {

/// Greedy initial lower bound: repeatedly grow a plex from each seed vertex
/// by adding the highest-degree compatible candidate.
MkpSolution GreedyKPlex(const Graph& graph,
                        const std::vector<std::uint64_t>& adjacency, int k) {
  const int n = graph.num_vertices();
  MkpSolution best;
  for (Vertex seed = 0; seed < n; ++seed) {
    std::uint64_t chosen = std::uint64_t{1} << seed;
    bool grew = true;
    while (grew) {
      grew = false;
      const int size = std::popcount(chosen);
      Vertex pick = -1;
      int pick_degree = -1;
      for (Vertex v = 0; v < n; ++v) {
        if ((chosen >> v) & 1) {
          continue;
        }
        const std::uint64_t with_v = chosen | (std::uint64_t{1} << v);
        // v addable: v has enough neighbours, and no member becomes deficient.
        if (DegreeInMask(adjacency, v, chosen) < size + 1 - k) {
          continue;
        }
        bool feasible = true;
        std::uint64_t rest = chosen;
        while (rest != 0) {
          const int u = std::countr_zero(rest);
          rest &= rest - 1;
          if (DegreeInMask(adjacency, u, with_v) < size + 1 - k) {
            feasible = false;
            break;
          }
        }
        if (feasible && graph.Degree(v) > pick_degree) {
          pick = v;
          pick_degree = graph.Degree(v);
        }
      }
      if (pick >= 0) {
        chosen |= std::uint64_t{1} << pick;
        grew = true;
      }
    }
    const int size = std::popcount(chosen);
    if (size > best.size) {
      best.size = size;
      best.mask = chosen;
    }
  }
  best.members = MaskToBitset(n, best.mask).ToList();
  return best;
}

}  // namespace

struct BsSolver::SearchContext {
  const Graph* graph = nullptr;
  std::vector<std::uint64_t> adjacency;
  int n = 0;
  int k = 0;
  MkpSolution best;
  Deadline deadline = Deadline::Infinite();
  bool aborted = false;
  const BsSolverOptions* options = nullptr;
  obs::ProgressHeartbeat heartbeat{"bs"};
  /// Maps reduced-graph ids back to the caller's ids before invoking the
  /// user's on_incumbent callback.
  std::function<void(const MkpSolution&, const BsSolverStats&)>
      report_incumbent;
};

void BsSolver::Branch(SearchContext& ctx, std::uint64_t chosen,
                      std::uint64_t candidates) {
  if (ctx.aborted) {
    return;
  }
  ++stats_.branch_nodes;
  if ((stats_.branch_nodes & 0x3FF) == 0) {
    if (StopRequested(ctx.deadline, ctx.options->cancel)) {
      ctx.aborted = true;
      return;
    }
    if (ctx.heartbeat.Due()) {
      ctx.heartbeat.Emit({{"branch_nodes", stats_.branch_nodes},
                          {"best_size", ctx.best.size},
                          {"prunes_bound", stats_.prunes_bound},
                          {"prunes_infeasible", stats_.prunes_infeasible}});
    }
  }

  const int size = std::popcount(chosen);
  if (size > ctx.best.size) {
    ctx.best.size = size;
    ctx.best.mask = chosen;
    ctx.best.members = MaskToBitset(ctx.n, chosen).ToList();
    if (ctx.report_incumbent) {
      ctx.report_incumbent(ctx.best, stats_);
    }
  }

  // Filter candidates: v may join only if P + v is still a k-plex, and a v
  // that fails now can never recover (its deficit only grows as P grows).
  std::uint64_t filtered = 0;
  std::uint64_t scan = candidates & ~chosen;
  while (scan != 0) {
    const int v = std::countr_zero(scan);
    scan &= scan - 1;
    if (DegreeInMask(ctx.adjacency, v, chosen) < size + 1 - ctx.k) {
      ++stats_.prunes_infeasible;
      continue;
    }
    const std::uint64_t with_v = chosen | (std::uint64_t{1} << v);
    bool feasible = true;
    std::uint64_t members = chosen;
    while (members != 0) {
      const int u = std::countr_zero(members);
      members &= members - 1;
      if (DegreeInMask(ctx.adjacency, u, with_v) < size + 1 - ctx.k) {
        feasible = false;
        break;
      }
    }
    if (feasible) {
      filtered |= std::uint64_t{1} << v;
    } else {
      ++stats_.prunes_infeasible;
    }
  }

  if (filtered == 0) {
    return;
  }

  // Size bound.
  int upper = size + std::popcount(filtered);
  // Degree-support bound: any extension P* satisfies, for every u in P,
  // |P*| <= deg_P(u) + deg_C(u) + k.
  if (ctx.options->use_support_bound) {
    std::uint64_t members = chosen;
    while (members != 0) {
      const int u = std::countr_zero(members);
      members &= members - 1;
      upper = std::min(upper, DegreeInMask(ctx.adjacency, u, chosen) +
                                  DegreeInMask(ctx.adjacency, u, filtered) +
                                  ctx.k);
    }
  }
  if (upper <= ctx.best.size) {
    ++stats_.prunes_bound;
    return;
  }

  // Branch on the candidate with the highest connectivity into P + C (the
  // "most constrained first" rule of branch-and-search solvers).
  int pick = -1;
  int pick_score = -1;
  std::uint64_t pool = filtered;
  while (pool != 0) {
    const int v = std::countr_zero(pool);
    pool &= pool - 1;
    const int score = DegreeInMask(ctx.adjacency, v, chosen | filtered);
    if (score > pick_score) {
      pick = v;
      pick_score = score;
    }
  }
  const std::uint64_t pick_bit = std::uint64_t{1} << pick;
  Branch(ctx, chosen | pick_bit, filtered & ~pick_bit);
  Branch(ctx, chosen, filtered & ~pick_bit);
}

Result<MkpSolution> BsSolver::Solve(const Graph& graph, int k) {
  const int n = graph.num_vertices();
  if (n > 64) {
    return Status::InvalidArgument("BsSolver requires n <= 64");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  obs::TraceSpan span("bs.solve");
  stats_ = BsSolverStats{};
  Stopwatch watch;

  MkpSolution best;
  if (n == 0) {
    return best;
  }

  const auto adjacency = AdjacencyMasks(graph);
  best = GreedyKPlex(graph, adjacency, k);
  if (options_.on_incumbent && best.size > 0) {
    options_.on_incumbent(best, stats_);
  }
  if (options_.on_bound) {
    // The trivial bound before any pruning: every vertex could be in the plex.
    options_.on_bound(n, stats_);
  }

  // Reduce the graph for "strictly better than the greedy bound" and search
  // the reduced instance; the greedy incumbent survives as the fallback.
  const Graph* search_graph = &graph;
  ReductionResult reduction;
  if (options_.use_reduction) {
    obs::TraceSpan reduce_span("bs.reduce");
    reduction = ReduceForTarget(graph, k, best.size + 1);
    search_graph = &reduction.reduced;
    obs::MetricsRegistry::Global()
        .GetCounter("bs.reduction_removed_vertices")
        .Add(n - reduction.reduced.num_vertices());
    if (options_.on_bound) {
      // Survivors of the reduction bound any plex beating the incumbent.
      options_.on_bound(
          std::max(best.size, reduction.reduced.num_vertices()), stats_);
    }
  }

  SearchContext ctx;
  ctx.graph = search_graph;
  ctx.n = search_graph->num_vertices();
  ctx.k = k;
  ctx.options = &options_;
  ctx.deadline = options_.time_limit_seconds > 0
                     ? Deadline::After(options_.time_limit_seconds)
                     : Deadline::Infinite();
  if (ctx.n > 0) {
    ctx.adjacency = AdjacencyMasks(*search_graph);
  }
  // Seed the bound with the incumbent size (solution masks live in different
  // id spaces, so only the size transfers).
  ctx.best.size = best.size;
  if (options_.on_incumbent) {
    ctx.report_incumbent = [&](const MkpSolution& reduced_solution,
                               const BsSolverStats& stats) {
      MkpSolution mapped;
      mapped.size = reduced_solution.size;
      for (Vertex v : reduced_solution.members) {
        const Vertex original =
            options_.use_reduction ? reduction.new_to_old[v] : v;
        mapped.members.push_back(original);
        mapped.mask |= std::uint64_t{1} << original;
      }
      std::sort(mapped.members.begin(), mapped.members.end());
      options_.on_incumbent(mapped, stats);
    };
  }

  if (ctx.n > 0) {
    obs::TraceSpan branch_span("bs.branch");
    const std::uint64_t all =
        ctx.n == 64 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << ctx.n) - 1;
    Branch(ctx, 0, all);
  }

  stats_.elapsed_seconds = watch.ElapsedSeconds();
  stats_.completed = !ctx.aborted;

  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("bs.solves").Increment();
  registry.GetCounter("bs.branch_nodes").Add(stats_.branch_nodes);
  registry.GetCounter("bs.prunes_bound").Add(stats_.prunes_bound);
  registry.GetCounter("bs.prunes_infeasible").Add(stats_.prunes_infeasible);
  if (ctx.aborted) {
    registry.GetCounter("bs.deadline_hits").Increment();
  }

  if (ctx.best.size > best.size && !ctx.best.members.empty()) {
    // Map reduced-graph ids back to original ids.
    MkpSolution mapped;
    mapped.size = ctx.best.size;
    for (Vertex v : ctx.best.members) {
      const Vertex original =
          options_.use_reduction ? reduction.new_to_old[v] : v;
      mapped.members.push_back(original);
      mapped.mask |= std::uint64_t{1} << original;
    }
    std::sort(mapped.members.begin(), mapped.members.end());
    best = mapped;
  }

  if (ctx.aborted) {
    // Deadline fired; report the incumbent through stats_ and a soft error.
    return best;
  }
  if (options_.on_bound) {
    // Search exhausted: the incumbent is optimal, so the bound meets it.
    options_.on_bound(best.size, stats_);
  }
  return best;
}

}  // namespace qplex
