#ifndef QPLEX_CLASSICAL_EXACT_H_
#define QPLEX_CLASSICAL_EXACT_H_

#include <cstdint>
#include <functional>

#include "common/cancel.h"
#include "common/status.h"
#include "graph/graph.h"

namespace qplex {

/// A maximum k-plex answer.
struct MkpSolution {
  VertexList members;
  int size = 0;
  std::uint64_t mask = 0;  ///< subset mask (valid when all members are < 64)
};

/// Rebuilds `solution.mask` from `solution.members` (sorted ascending). The
/// mask stays zero when any member id is >= 64 — callers on larger graphs
/// read `members` instead.
void FillSolutionMask(MkpSolution& solution);

/// Optional interruption controls for the enumeration scan. The scan polls
/// every few thousand masks; when interrupted it returns the best subset seen
/// so far (NOT a verified optimum) and sets `*completed` to false.
struct EnumerationControl {
  double time_limit_seconds = 0;  ///< <= 0: unlimited
  const CancelToken* cancel = nullptr;
  bool* completed = nullptr;  ///< written when non-null
  /// Invoked on every strict incumbent improvement with the number of masks
  /// scanned so far (the scan's deterministic work unit).
  std::function<void(const MkpSolution& best, std::uint64_t masks_scanned)>
      on_incumbent;
};

/// Exhaustive maximum k-plex over all 2^n subsets — the ground truth every
/// other solver (classical and quantum) is validated against. Requires
/// n <= 30; O*(2^n).
Result<MkpSolution> SolveMkpByEnumeration(const Graph& graph, int k,
                                          const EnumerationControl& control = {});

/// Exhaustive count of k-plexes with size >= threshold (the Grover M).
/// Polls `control` like SolveMkpByEnumeration; when interrupted it returns
/// the partial count with `*control.completed` set to false
/// (`control.on_incumbent` does not apply to counting and is ignored).
Result<std::int64_t> CountKPlexesOfSize(const Graph& graph, int k,
                                        int threshold,
                                        const EnumerationControl& control = {});

}  // namespace qplex

#endif  // QPLEX_CLASSICAL_EXACT_H_
