#ifndef QPLEX_CLASSICAL_REDUCE_H_
#define QPLEX_CLASSICAL_REDUCE_H_

#include <vector>

#include "graph/graph.h"

namespace qplex {

/// Result of the core–truss co-pruning style reduction.
struct ReductionResult {
  Graph reduced;
  /// old vertex id -> new id, -1 for removed vertices.
  std::vector<Vertex> old_to_new;
  /// new vertex id -> old id.
  std::vector<Vertex> new_to_old;
  int vertices_removed = 0;
  int edges_removed = 0;
};

/// Core–truss co-pruning (after Chang et al. 2022): iterates two safe rules
/// until fixpoint, preserving every k-plex of size >= `target`:
///   * first-order (core):  remove v when deg(v) < target - k
///     (every member of a size->=target k-plex has >= target - k neighbours);
///   * second-order (truss): remove edge (u,v) when |N(u) ∩ N(v)| < target - 2k
///     (two members of such a plex share >= target - 2k common members, all
///     of which are common neighbours when u,v are adjacent — so an edge
///     below the bound can never join two co-members, and dropping it leaves
///     every candidate plex intact).
/// The paper runs qMKP after exactly this reduction to fit larger graphs
/// onto bounded-qubit hardware (Section V-B).
ReductionResult ReduceForTarget(const Graph& graph, int k, int target);

}  // namespace qplex

#endif  // QPLEX_CLASSICAL_REDUCE_H_
