#ifndef QPLEX_CLASSICAL_BS_SOLVER_H_
#define QPLEX_CLASSICAL_BS_SOLVER_H_

#include <cstdint>
#include <functional>

#include "classical/exact.h"
#include "common/cancel.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "graph/graph.h"

namespace qplex {

/// Search statistics of a BS run.
struct BsSolverStats {
  std::int64_t branch_nodes = 0;
  std::int64_t prunes_bound = 0;
  std::int64_t prunes_infeasible = 0;
  double elapsed_seconds = 0;
  bool completed = true;  ///< false when the deadline fired first
};

/// Options for the branch-and-search baseline.
struct BsSolverOptions {
  /// Apply the core/truss reduction (classical::ReduceForTarget) before and
  /// during search whenever the incumbent improves.
  bool use_reduction = true;
  /// Use the degree-support upper bound min_{u in P}(deg_P(u)+deg_C(u))+k.
  bool use_support_bound = true;
  /// Wall-clock budget; the incumbent so far is returned with
  /// `stats().completed == false` if it expires (checked every ~1k branch
  /// nodes, so expiry is detected within milliseconds).
  double time_limit_seconds = 0;  // <= 0 means unlimited
  /// Optional cooperative cancellation (service portfolio races); polled
  /// together with the deadline. May be null.
  const CancelToken* cancel = nullptr;
  /// Invoked whenever the incumbent improves (progressive reporting). The
  /// stats argument carries the deterministic work spent so far (branch
  /// nodes, prune counters) at the moment of the improvement.
  std::function<void(const MkpSolution&, const BsSolverStats&)> on_incumbent;
  /// Invoked whenever the proven upper bound on the maximum k-plex tightens:
  /// once at the trivial bound n, after graph reduction, and at completion
  /// (bound = incumbent size, gap closed).
  std::function<void(double upper_bound, const BsSolverStats&)> on_bound;
};

/// The classical exact baseline the paper compares against ("BS",
/// Xiao et al. 2017): a branch-and-search maximum k-plex solver. This
/// implementation keeps the same algorithmic skeleton — vertex branching on
/// the candidate with the tightest degree slack, candidate filtering against
/// the k-plex invariant, size and degree-support upper bounds, and
/// core/truss-style graph reduction — without the paper's full measure-and-
/// conquer branching rules (those only sharpen the worst-case exponent).
/// The search runs on the BitGraph kernel engines (graph/bitgraph.h): a
/// single-word mask engine when the search graph fits in 64 vertices (the
/// historical fast path, zero-allocation subset ops) and the multi-word
/// engine for arbitrary n. The engine is picked per search graph, so a large
/// instance whose reduction survives with <= 64 vertices still branches on
/// the fast path.
class BsSolver {
 public:
  explicit BsSolver(BsSolverOptions options = {}) : options_(options) {}

  /// Finds a maximum k-plex of `graph` (any n).
  Result<MkpSolution> Solve(const Graph& graph, int k);

  const BsSolverStats& stats() const { return stats_; }

 private:
  BsSolverOptions options_;
  BsSolverStats stats_;
};

}  // namespace qplex

#endif  // QPLEX_CLASSICAL_BS_SOLVER_H_
