#include "classical/grasp.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "graph/kplex.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex {
namespace {

/// All vertices that may individually join `chosen` keeping it a k-plex.
std::vector<Vertex> CompatibleCandidates(
    const std::vector<std::uint64_t>& adjacency, int n, std::uint64_t chosen,
    int k) {
  const int size = std::popcount(chosen);
  std::vector<Vertex> candidates;
  for (Vertex v = 0; v < n; ++v) {
    if ((chosen >> v) & 1) {
      continue;
    }
    if (DegreeInMask(adjacency, v, chosen) < size + 1 - k) {
      continue;
    }
    const std::uint64_t with_v = chosen | (std::uint64_t{1} << v);
    bool feasible = true;
    std::uint64_t rest = chosen;
    while (rest != 0) {
      const int u = std::countr_zero(rest);
      rest &= rest - 1;
      if (DegreeInMask(adjacency, u, with_v) < size + 1 - k) {
        feasible = false;
        break;
      }
    }
    if (feasible) {
      candidates.push_back(v);
    }
  }
  return candidates;
}

/// Pollable stop predicate threaded through the construction and local
/// search loops so service deadlines and portfolio cancellations interrupt
/// GRASP mid-iteration, not just between iterations.
using StopFn = std::function<bool()>;

/// Randomized greedy construction: repeatedly pick uniformly among the
/// top-alpha candidates ranked by degree into (chosen | candidates).
std::uint64_t Construct(const std::vector<std::uint64_t>& adjacency, int n,
                        int k, double alpha, Rng& rng, const StopFn& stop) {
  std::uint64_t chosen = std::uint64_t{1}
                         << rng.UniformInt(static_cast<std::uint64_t>(n));
  for (;;) {
    if (stop()) {
      return chosen;
    }
    std::vector<Vertex> candidates =
        CompatibleCandidates(adjacency, n, chosen, k);
    if (candidates.empty()) {
      return chosen;
    }
    std::sort(candidates.begin(), candidates.end(), [&](Vertex a, Vertex b) {
      return DegreeInMask(adjacency, a, ~std::uint64_t{0}) >
             DegreeInMask(adjacency, b, ~std::uint64_t{0});
    });
    const std::size_t list_size = std::max<std::size_t>(
        1, static_cast<std::size_t>(alpha * candidates.size() + 0.999));
    chosen |= std::uint64_t{1}
              << candidates[rng.UniformInt(
                     static_cast<std::uint64_t>(list_size))];
  }
}

/// Local search: try dropping each member and greedily refilling; accept the
/// first strict improvement, repeat until none.
std::uint64_t LocalSearch(const std::vector<std::uint64_t>& adjacency, int n,
                          int k, std::uint64_t chosen, Rng& rng,
                          const StopFn& stop) {
  bool improved = true;
  while (improved) {
    improved = false;
    std::uint64_t members = chosen;
    while (members != 0) {
      if (stop()) {
        return chosen;
      }
      const int drop = std::countr_zero(members);
      members &= members - 1;
      std::uint64_t trial = chosen & ~(std::uint64_t{1} << drop);
      // Greedy refill (pure greedy: alpha 0 behaviour).
      for (;;) {
        const std::vector<Vertex> candidates =
            CompatibleCandidates(adjacency, n, trial, k);
        if (candidates.empty()) {
          break;
        }
        Vertex best = candidates[0];
        for (Vertex v : candidates) {
          if (DegreeInMask(adjacency, v, ~std::uint64_t{0}) >
              DegreeInMask(adjacency, best, ~std::uint64_t{0})) {
            best = v;
          }
        }
        trial |= std::uint64_t{1} << best;
      }
      if (std::popcount(trial) > std::popcount(chosen)) {
        chosen = trial;
        improved = true;
        break;
      }
    }
  }
  (void)rng;
  return chosen;
}

}  // namespace

Result<MkpSolution> GraspSolver::Solve(const Graph& graph, int k) {
  const int n = graph.num_vertices();
  if (n > 64) {
    return Status::InvalidArgument("GraspSolver requires n <= 64");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options_.iterations < 1 || options_.alpha < 0 || options_.alpha > 1) {
    return Status::InvalidArgument("bad GRASP options");
  }
  stats_ = GraspStats{};
  MkpSolution best;
  if (n == 0) {
    return best;
  }
  obs::TraceSpan span("grasp.solve");
  const auto adjacency = AdjacencyMasks(graph);
  Rng rng(options_.seed);
  const Deadline deadline = options_.time_limit_seconds > 0
                                ? Deadline::After(options_.time_limit_seconds)
                                : Deadline::Infinite();
  const StopFn stop = [this, &deadline] {
    return StopRequested(deadline, options_.cancel);
  };
  for (int iteration = 0; iteration < options_.iterations; ++iteration) {
    if (stop()) {
      stats_.completed = false;
      break;
    }
    std::uint64_t plex = Construct(adjacency, n, k, options_.alpha, rng, stop);
    plex = LocalSearch(adjacency, n, k, plex, rng, stop);
    if (std::popcount(plex) > best.size) {
      best.size = std::popcount(plex);
      best.mask = plex;
      ++stats_.improvements;
      if (options_.on_incumbent) {
        best.members = MaskToBitset(n, best.mask).ToList();
        options_.on_incumbent(best, iteration + 1);
      }
    }
    ++stats_.iterations_run;
  }
  best.members = MaskToBitset(n, best.mask).ToList();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("grasp.solves").Increment();
  registry.GetCounter("grasp.iterations").Add(stats_.iterations_run);
  registry.GetCounter("grasp.improvements").Add(stats_.improvements);
  registry.GetGauge("grasp.best_size").SetMax(best.size);
  if (obs::EventsEnabled()) {
    // End-of-run restart roll-up: how many restarts ran and how many paid off
    // — the GRASP-family convergence signal beyond the incumbent timeline.
    obs::EmitEvent(obs::EventLevel::kInfo, "grasp", "restart_stats",
                   {{"trace", std::string(obs::CurrentTraceToken())},
                    {"iterations_run", stats_.iterations_run},
                    {"improvements", stats_.improvements},
                    {"best_size", best.size},
                    {"completed", stats_.completed}});
  }
  return best;
}

}  // namespace qplex
