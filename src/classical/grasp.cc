#include "classical/grasp.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/bitgraph.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex {
namespace {

/// All vertices that may individually join `chosen` keeping it a k-plex.
template <typename Engine>
std::vector<Vertex> CompatibleCandidates(const Engine& engine,
                                         const typename Engine::Set& chosen,
                                         int k) {
  const int size = Engine::Count(chosen);
  std::vector<Vertex> candidates;
  for (Vertex v = 0; v < engine.n; ++v) {
    if (Engine::Test(chosen, v)) {
      continue;
    }
    if (CanExtendPlex(engine, chosen, size, v, k)) {
      candidates.push_back(v);
    }
  }
  return candidates;
}

/// Pollable stop predicate threaded through the construction and local
/// search loops so service deadlines and portfolio cancellations interrupt
/// GRASP mid-iteration, not just between iterations.
using StopFn = std::function<bool()>;

/// Randomized greedy construction: repeatedly pick uniformly among the
/// top-alpha candidates ranked by degree into (chosen | candidates).
template <typename Engine>
typename Engine::Set Construct(const Engine& engine, int k, double alpha,
                               Rng& rng, const StopFn& stop) {
  typename Engine::Set chosen = engine.Empty();
  Engine::Add(chosen,
              static_cast<Vertex>(
                  rng.UniformInt(static_cast<std::uint64_t>(engine.n))));
  for (;;) {
    if (stop()) {
      return chosen;
    }
    std::vector<Vertex> candidates = CompatibleCandidates(engine, chosen, k);
    if (candidates.empty()) {
      return chosen;
    }
    std::sort(candidates.begin(), candidates.end(), [&](Vertex a, Vertex b) {
      return engine.Degree(a) > engine.Degree(b);
    });
    const std::size_t list_size = std::max<std::size_t>(
        1, static_cast<std::size_t>(alpha * candidates.size() + 0.999));
    Engine::Add(chosen,
                candidates[rng.UniformInt(
                    static_cast<std::uint64_t>(list_size))]);
  }
}

/// Local search: try dropping each member and greedily refilling; accept the
/// first strict improvement, repeat until none. Refill picks a maximum-degree
/// candidate, breaking degree ties with one RNG draw per tied refill step so
/// low-index vertices are not systematically favoured; the RNG is seeded from
/// GraspOptions::seed, so runs stay deterministic per seed.
template <typename Engine>
typename Engine::Set LocalSearch(const Engine& engine, int k,
                                 typename Engine::Set chosen, Rng& rng,
                                 const StopFn& stop) {
  std::vector<Vertex> ties;
  bool improved = true;
  while (improved) {
    improved = false;
    const VertexList members = Engine::ToList(chosen);
    for (Vertex drop : members) {
      if (stop()) {
        return chosen;
      }
      typename Engine::Set trial = chosen;
      Engine::Remove(trial, drop);
      // Greedy refill (pure greedy: alpha 0 behaviour).
      for (;;) {
        const std::vector<Vertex> candidates =
            CompatibleCandidates(engine, trial, k);
        if (candidates.empty()) {
          break;
        }
        int best_degree = -1;
        ties.clear();
        for (Vertex v : candidates) {
          const int degree = engine.Degree(v);
          if (degree > best_degree) {
            best_degree = degree;
            ties.clear();
          }
          if (degree == best_degree) {
            ties.push_back(v);
          }
        }
        const Vertex refill =
            ties.size() == 1
                ? ties.front()
                : ties[rng.UniformInt(static_cast<std::uint64_t>(ties.size()))];
        Engine::Add(trial, refill);
      }
      if (Engine::Count(trial) > Engine::Count(chosen)) {
        chosen = std::move(trial);
        improved = true;
        break;
      }
    }
  }
  return chosen;
}

template <typename Engine>
MkpSolution RunGrasp(const Graph& graph, int k, const GraspOptions& options,
                     GraspStats& stats) {
  Engine engine(graph);
  Rng rng(options.seed);
  const Deadline deadline = options.time_limit_seconds > 0
                                ? Deadline::After(options.time_limit_seconds)
                                : Deadline::Infinite();
  const StopFn stop = [&options, &deadline] {
    return StopRequested(deadline, options.cancel);
  };
  MkpSolution best;
  typename Engine::Set best_set = engine.Empty();
  for (int iteration = 0; iteration < options.iterations; ++iteration) {
    if (stop()) {
      stats.completed = false;
      break;
    }
    typename Engine::Set plex = Construct(engine, k, options.alpha, rng, stop);
    plex = LocalSearch(engine, k, std::move(plex), rng, stop);
    const int size = Engine::Count(plex);
    if (size > best.size) {
      best.size = size;
      best_set = std::move(plex);
      ++stats.improvements;
      if (options.on_incumbent) {
        best.members = Engine::ToList(best_set);
        FillSolutionMask(best);
        options.on_incumbent(best, iteration + 1);
      }
    }
    ++stats.iterations_run;
  }
  best.members = Engine::ToList(best_set);
  FillSolutionMask(best);
  return best;
}

}  // namespace

Result<MkpSolution> GraspSolver::Solve(const Graph& graph, int k) {
  const int n = graph.num_vertices();
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options_.iterations < 1 || options_.alpha < 0 || options_.alpha > 1) {
    return Status::InvalidArgument("bad GRASP options");
  }
  stats_ = GraspStats{};
  MkpSolution best;
  if (n == 0) {
    return best;
  }
  obs::TraceSpan span("grasp.solve");
  best = n <= 64 ? RunGrasp<MaskEngine>(graph, k, options_, stats_)
                 : RunGrasp<WideEngine>(graph, k, options_, stats_);
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("grasp.solves").Increment();
  registry.GetCounter("grasp.iterations").Add(stats_.iterations_run);
  registry.GetCounter("grasp.improvements").Add(stats_.improvements);
  registry.GetGauge("grasp.best_size").SetMax(best.size);
  if (obs::EventsEnabled()) {
    // End-of-run restart roll-up: how many restarts ran and how many paid off
    // — the GRASP-family convergence signal beyond the incumbent timeline.
    obs::EmitEvent(obs::EventLevel::kInfo, "grasp", "restart_stats",
                   {{"trace", std::string(obs::CurrentTraceToken())},
                    {"iterations_run", stats_.iterations_run},
                    {"improvements", stats_.improvements},
                    {"best_size", best.size},
                    {"completed", stats_.completed}});
  }
  return best;
}

}  // namespace qplex
