#include "classical/exact.h"

#include <bit>

#include "graph/kplex.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex {

void FillSolutionMask(MkpSolution& solution) {
  solution.mask = 0;
  if (solution.members.empty() || solution.members.back() >= 64) {
    return;
  }
  for (Vertex v : solution.members) {
    solution.mask |= std::uint64_t{1} << v;
  }
}

Result<MkpSolution> SolveMkpByEnumeration(const Graph& graph, int k,
                                          const EnumerationControl& control) {
  const int n = graph.num_vertices();
  if (n > 30) {
    return Status::InvalidArgument("enumeration limited to n <= 30");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (control.completed != nullptr) {
    *control.completed = true;
  }
  MkpSolution best;
  if (n == 0) {
    return best;
  }
  obs::TraceSpan span("exact.enumerate");
  const Deadline deadline = control.time_limit_seconds > 0
                                ? Deadline::After(control.time_limit_seconds)
                                : Deadline::Infinite();
  const auto adjacency = AdjacencyMasks(graph);
  const std::uint64_t space = std::uint64_t{1} << n;
  std::uint64_t scanned = space;
  for (std::uint64_t mask = 0; mask < space; ++mask) {
    if ((mask & 0xFFF) == 0 && mask != 0 &&
        StopRequested(deadline, control.cancel)) {
      if (control.completed != nullptr) {
        *control.completed = false;
      }
      scanned = mask;
      break;
    }
    const int size = std::popcount(mask);
    if (size > best.size && IsKPlexMask(adjacency, mask, k)) {
      best.size = size;
      best.mask = mask;
      if (control.on_incumbent) {
        best.members = MaskToBitset(n, best.mask).ToList();
        control.on_incumbent(best, mask + 1);
      }
    }
  }
  best.members = MaskToBitset(n, best.mask).ToList();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("exact.enumerations").Increment();
  registry.GetCounter("exact.masks_scanned")
      .Add(static_cast<std::int64_t>(scanned));
  return best;
}

Result<std::int64_t> CountKPlexesOfSize(const Graph& graph, int k,
                                        int threshold,
                                        const EnumerationControl& control) {
  const int n = graph.num_vertices();
  if (n > 30) {
    return Status::InvalidArgument("enumeration limited to n <= 30");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (control.completed != nullptr) {
    *control.completed = true;
  }
  obs::TraceSpan span("exact.count");
  const Deadline deadline = control.time_limit_seconds > 0
                                ? Deadline::After(control.time_limit_seconds)
                                : Deadline::Infinite();
  const auto adjacency = AdjacencyMasks(graph);
  const std::uint64_t space = std::uint64_t{1} << n;
  std::uint64_t scanned = space;
  std::int64_t count = 0;
  for (std::uint64_t mask = 0; mask < space; ++mask) {
    if ((mask & 0xFFF) == 0 && mask != 0 &&
        StopRequested(deadline, control.cancel)) {
      if (control.completed != nullptr) {
        *control.completed = false;
      }
      scanned = mask;
      break;
    }
    if (std::popcount(mask) >= threshold && IsKPlexMask(adjacency, mask, k)) {
      ++count;
    }
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("exact.counts").Increment();
  registry.GetCounter("exact.masks_scanned")
      .Add(static_cast<std::int64_t>(scanned));
  return count;
}

}  // namespace qplex
