#include "classical/reduce.h"

#include <utility>
#include <vector>

namespace qplex {

ReductionResult ReduceForTarget(const Graph& graph, int k, int target) {
  QPLEX_CHECK(k >= 1) << "k must be >= 1";
  const int n = graph.num_vertices();

  // Work on a mutable copy of the structure: alive vertices + edge set.
  std::vector<bool> vertex_alive(n, true);
  std::vector<std::pair<Vertex, Vertex>> edges = graph.Edges();
  std::vector<bool> edge_alive(edges.size(), true);

  auto degree = [&](Vertex v) {
    int d = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (edge_alive[e] && (edges[e].first == v || edges[e].second == v)) {
        ++d;
      }
    }
    return d;
  };
  auto common_neighbors = [&](Vertex u, Vertex v) {
    // Count w adjacent (via alive edges) to both u and v.
    std::vector<bool> adjacent_u(n, false);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!edge_alive[e]) {
        continue;
      }
      if (edges[e].first == u) {
        adjacent_u[edges[e].second] = true;
      } else if (edges[e].second == u) {
        adjacent_u[edges[e].first] = true;
      }
    }
    int count = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!edge_alive[e]) {
        continue;
      }
      if (edges[e].first == v && adjacent_u[edges[e].second]) {
        ++count;
      } else if (edges[e].second == v && adjacent_u[edges[e].first]) {
        ++count;
      }
    }
    return count;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    // First-order rule: degree threshold.
    for (Vertex v = 0; v < n; ++v) {
      if (vertex_alive[v] && degree(v) < target - k) {
        vertex_alive[v] = false;
        for (std::size_t e = 0; e < edges.size(); ++e) {
          if (edge_alive[e] &&
              (edges[e].first == v || edges[e].second == v)) {
            edge_alive[e] = false;
          }
        }
        changed = true;
      }
    }
    // Second-order rule: common-neighbour (triangle support) threshold.
    if (target - 2 * k > 0) {
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (!edge_alive[e]) {
          continue;
        }
        const auto [u, v] = edges[e];
        if (common_neighbors(u, v) < target - 2 * k) {
          edge_alive[e] = false;
          changed = true;
        }
      }
    }
  }

  ReductionResult result;
  result.old_to_new.assign(n, -1);
  int next = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (vertex_alive[v]) {
      result.old_to_new[v] = next++;
      result.new_to_old.push_back(v);
    } else {
      ++result.vertices_removed;
    }
  }
  result.reduced = Graph(next);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (edge_alive[e]) {
      result.reduced.AddEdge(result.old_to_new[edges[e].first],
                             result.old_to_new[edges[e].second]);
    } else {
      ++result.edges_removed;
    }
  }
  // Edges dropped because an endpoint vanished are counted as removed too;
  // subtract double counting is unnecessary since edge_alive was cleared.
  return result;
}

}  // namespace qplex
