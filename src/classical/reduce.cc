#include "classical/reduce.h"

#include <utility>
#include <vector>

#include "graph/bitgraph.h"

namespace qplex {

ReductionResult ReduceForTarget(const Graph& graph, int k, int target) {
  QPLEX_CHECK(k >= 1) << "k must be >= 1";
  const int n = graph.num_vertices();

  // Peel a mutable copy of the packed adjacency rows: degree is one row
  // popcount, the truss support |N(u) ∩ N(v)| one AND+popcount sweep, so a
  // rule query costs O(n/64) word ops instead of an O(m) edge-list scan.
  BitGraph bits(graph);
  std::vector<bool> vertex_alive(n, true);
  const std::vector<std::pair<Vertex, Vertex>> edges = graph.Edges();

  bool changed = true;
  while (changed) {
    changed = false;
    // First-order rule: degree threshold.
    for (Vertex v = 0; v < n; ++v) {
      if (vertex_alive[v] && bits.Degree(v) < target - k) {
        vertex_alive[v] = false;
        bits.RemoveVertex(v);
        changed = true;
      }
    }
    // Second-order rule: common-neighbour (triangle support) threshold,
    // visiting the surviving edges in the original lexicographic order.
    if (target - 2 * k > 0) {
      for (const auto& [u, v] : edges) {
        if (bits.HasEdge(u, v) &&
            bits.IntersectCount(u, v) < target - 2 * k) {
          bits.RemoveEdge(u, v);
          changed = true;
        }
      }
    }
  }

  ReductionResult result;
  result.old_to_new.assign(n, -1);
  int next = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (vertex_alive[v]) {
      result.old_to_new[v] = next++;
      result.new_to_old.push_back(v);
    } else {
      ++result.vertices_removed;
    }
  }
  // A dead vertex's edges were cleared by RemoveVertex, so one HasEdge probe
  // classifies every original edge as kept or removed.
  std::vector<std::pair<Vertex, Vertex>> kept;
  for (const auto& [u, v] : edges) {
    if (bits.HasEdge(u, v)) {
      kept.emplace_back(result.old_to_new[u], result.old_to_new[v]);
    } else {
      ++result.edges_removed;
    }
  }
  result.reduced = Graph(next);
  result.reduced.AddEdges(kept);
  return result;
}

}  // namespace qplex
