#include "oracle/mkp_oracle.h"

#include <algorithm>
#include <string>

#include "arith/adder.h"
#include "arith/comparator.h"
#include "arith/popcount.h"
#include "graph/kplex.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quantum/basis_sim.h"

namespace qplex {

bool MkpPredicate(const Graph& graph, int k, int threshold,
                  std::uint64_t mask) {
  if (__builtin_popcountll(mask) < threshold) {
    return false;
  }
  return IsKPlexMask(AdjacencyMasks(graph), mask, k);
}

Result<MkpOracle> MkpOracle::Build(const Graph& graph, int k, int threshold,
                                   const MkpOracleOptions& options) {
  const int n = graph.num_vertices();
  if (n < 1 || n > 64) {
    return Status::InvalidArgument("oracle requires 1 <= n <= 64");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (threshold < 0 || threshold > n) {
    return Status::InvalidArgument("threshold outside [0, n]");
  }

  obs::TraceSpan span("oracle.build");
  MkpOracle oracle;
  oracle.num_vertices_ = n;
  oracle.k_ = k;
  oracle.threshold_ = threshold;

  const Graph complement = graph.Complement();
  Circuit& circuit = oracle.circuit_;

  // Vertex register must occupy wires [0, n) so basis inputs map directly.
  const QubitRange vertices = circuit.AllocateRegister("v", n);

  // --- Stage A: complement-graph encoding (paper Fig. 6 box A). -------------
  circuit.BeginStage(OracleStages::kEncoding);
  const auto complement_edges = complement.Edges();
  const QubitRange edges =
      circuit.AllocateRegister("e", static_cast<int>(complement_edges.size()));
  for (std::size_t idx = 0; idx < complement_edges.size(); ++idx) {
    const auto& [u, v] = complement_edges[idx];
    circuit.Append(
        MakeCCX(vertices[u], vertices[v], edges[static_cast<int>(idx)]));
  }

  // --- Stage B: per-vertex degree counting (paper Fig. 6 box B). ------------
  circuit.BeginStage(OracleStages::kDegreeCount);
  // Incident complement-edge wires per vertex.
  std::vector<std::vector<int>> incident(n);
  for (std::size_t idx = 0; idx < complement_edges.size(); ++idx) {
    const auto& [u, v] = complement_edges[idx];
    incident[u].push_back(edges[static_cast<int>(idx)]);
    incident[v].push_back(edges[static_cast<int>(idx)]);
  }
  // Counter for vertex i must hold values up to its complement degree and be
  // wide enough to compare against k-1. `counter_wires[v]` ends up holding
  // the little-endian degree of v.
  std::vector<std::vector<int>> counter_wires(n);
  for (Vertex v = 0; v < n; ++v) {
    const int width = std::max(
        BitWidthFor(static_cast<std::uint64_t>(complement.Degree(v))),
        BitWidthFor(static_cast<std::uint64_t>(k - 1)));
    const QubitRange counter =
        circuit.AllocateRegister("c" + std::to_string(v), width);
    for (int i = 0; i < width; ++i) {
      counter_wires[v].push_back(counter[i]);
    }
    switch (options.degree_count_mode) {
      case DegreeCountMode::kIncrement:
        AppendPopCount(&circuit, incident[v], counter);
        break;
      case DegreeCountMode::kRippleAdder:
        // The paper's construction: degree = Sum over incident edges, each
        // realised as a full multi-bit addition count <- count + (edge
        // zero-extended to counter width). The edge wire is the preserved `x`
        // operand; the running count is the dirtied `y`; the sum lands on
        // fresh wires which become the new running count.
        for (int edge_wire : incident[v]) {
          std::vector<int> operand{edge_wire};
          if (width > 1) {
            const QubitRange pad =
                circuit.AllocateAncilla("deg.pad", width - 1);
            for (int i = 0; i + 1 < width; ++i) {
              operand.push_back(pad[i]);
            }
          }
          const AdderResult sum =
              AppendRippleCarryAdder(&circuit, operand, counter_wires[v]);
          // The top carry cannot fire (the counter is sized for the maximum
          // possible degree), so the counter keeps `width` bits.
          counter_wires[v].assign(sum.sum_wires.begin(),
                                  sum.sum_wires.begin() + width);
        }
        break;
    }
  }

  // --- Degree comparison: d_i = [c_i <= k-1] (paper Fig. 9 box A). ----------
  circuit.BeginStage(OracleStages::kDegreeCompare);
  const QubitRange degree_ok = circuit.AllocateRegister("d", n);
  for (Vertex v = 0; v < n; ++v) {
    AppendLessEqualConst(&circuit, counter_wires[v],
                         static_cast<std::uint64_t>(k - 1), degree_ok[v]);
  }
  // cplex flag: AND over all d_i (paper Fig. 9 box B).
  const int cplex = circuit.AllocateQubit("cplex");
  {
    std::vector<int> controls;
    for (Vertex v = 0; v < n; ++v) {
      controls.push_back(degree_ok[v]);
    }
    circuit.Append(MakeMCX(std::move(controls), cplex));
  }

  // --- Size determination: popcount(v) >= T (paper Fig. 11 boxes A-B). ------
  circuit.BeginStage(OracleStages::kSizeCheck);
  const QubitRange size_reg = circuit.AllocateRegister(
      "size",
      std::max(BitWidthFor(static_cast<std::uint64_t>(n)),
               BitWidthFor(static_cast<std::uint64_t>(threshold))));
  {
    std::vector<int> vertex_wires;
    for (Vertex v = 0; v < n; ++v) {
      vertex_wires.push_back(vertices[v]);
    }
    AppendPopCount(&circuit, vertex_wires, size_reg);
  }
  const int size_ok = circuit.AllocateQubit("size_ok");
  {
    std::vector<int> size_wires;
    for (int i = 0; i < size_reg.width; ++i) {
      size_wires.push_back(size_reg[i]);
    }
    AppendGreaterEqualConst(&circuit, size_wires,
                            static_cast<std::uint64_t>(threshold), size_ok);
  }

  const int compute_end = circuit.num_gates();

  // --- Oracle flip (paper Fig. 11 box C): O ^= cplex AND size_ok. -----------
  circuit.BeginStage(OracleStages::kOracleFlip);
  oracle.oracle_wire_ = circuit.AllocateQubit("O");
  circuit.Append(MakeCCX(cplex, size_ok, oracle.oracle_wire_));

  // --- U_check^dagger: restore every ancilla (paper Fig. 12). ---------------
  circuit.BeginStage(OracleStages::kUncompute);
  circuit.AppendInverseOfRange(0, compute_end);

  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("oracle.builds").Increment();
  registry.GetGauge("oracle.num_qubits").Set(oracle.num_qubits());
  const OracleCostReport report = oracle.CostReport();
  registry.GetCounter("oracle.stage_cost.encoding").Add(report.encoding);
  registry.GetCounter("oracle.stage_cost.degree_count")
      .Add(report.degree_count);
  registry.GetCounter("oracle.stage_cost.degree_compare")
      .Add(report.degree_compare);
  registry.GetCounter("oracle.stage_cost.size_check").Add(report.size_check);
  registry.GetCounter("oracle.stage_cost.oracle_flip").Add(report.oracle_flip);
  registry.GetCounter("oracle.stage_cost.uncompute").Add(report.uncompute);
  registry.GetHistogram("oracle.total_cost")
      .Record(static_cast<double>(report.ComputeTotal()));

  return oracle;
}

bool MkpOracle::Evaluate(std::uint64_t vertex_mask) const {
  BitString input(circuit_.num_qubits());
  input.StoreInt(0, num_vertices_, vertex_mask);
  Result<BitString> final_state = BasisStateSimulator::Execute(circuit_, input);
  QPLEX_CHECK(final_state.ok()) << final_state.status().ToString();
  return final_state.value().Get(oracle_wire_);
}

Result<bool> MkpOracle::EvaluateChecked(std::uint64_t vertex_mask) const {
  BitString input(circuit_.num_qubits());
  input.StoreInt(0, num_vertices_, vertex_mask);
  QPLEX_ASSIGN_OR_RETURN(BitString final_state,
                         BasisStateSimulator::Execute(circuit_, input));
  // Uncompute contract: all wires except the oracle bit must match the input.
  for (int wire = 0; wire < circuit_.num_qubits(); ++wire) {
    if (wire == oracle_wire_) {
      continue;
    }
    if (final_state.Get(wire) != input.Get(wire)) {
      return Status::Internal("ancilla wire " + std::to_string(wire) +
                              " not restored by uncompute");
    }
  }
  return final_state.Get(oracle_wire_);
}

std::vector<std::uint64_t> MkpOracle::MarkedStates() const {
  QPLEX_CHECK(num_vertices_ <= 30) << "exhaustive evaluation needs n <= 30";
  std::vector<std::uint64_t> marked;
  const std::uint64_t space = std::uint64_t{1} << num_vertices_;
  for (std::uint64_t mask = 0; mask < space; ++mask) {
    if (Evaluate(mask)) {
      marked.push_back(mask);
    }
  }
  return marked;
}

OracleCostReport MkpOracle::CostReport() const {
  OracleCostReport report;
  const auto costs = circuit_.CostsByStage();
  const auto& names = circuit_.stage_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == OracleStages::kEncoding) {
      report.encoding = costs[i];
    } else if (names[i] == OracleStages::kDegreeCount) {
      report.degree_count = costs[i];
    } else if (names[i] == OracleStages::kDegreeCompare) {
      report.degree_compare = costs[i];
    } else if (names[i] == OracleStages::kSizeCheck) {
      report.size_check = costs[i];
    } else if (names[i] == OracleStages::kOracleFlip) {
      report.oracle_flip = costs[i];
    } else if (names[i] == OracleStages::kUncompute) {
      report.uncompute = costs[i];
    }
  }
  return report;
}

}  // namespace qplex
