#ifndef QPLEX_ORACLE_MKP_ORACLE_H_
#define QPLEX_ORACLE_MKP_ORACLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "quantum/circuit.h"

namespace qplex {

/// Names of the oracle's cost-accounted stages, in circuit order. The paper's
/// Table V reports the runtime share of the middle three.
struct OracleStages {
  static constexpr const char* kEncoding = "encoding";
  static constexpr const char* kDegreeCount = "degree_count";
  static constexpr const char* kDegreeCompare = "degree_compare";
  static constexpr const char* kSizeCheck = "size_check";
  static constexpr const char* kOracleFlip = "oracle_flip";
  static constexpr const char* kUncompute = "uncompute";
};

/// Per-stage gate/cost statistics of a built oracle.
struct OracleCostReport {
  std::int64_t encoding = 0;
  std::int64_t degree_count = 0;
  std::int64_t degree_compare = 0;
  std::int64_t size_check = 0;
  std::int64_t oracle_flip = 0;
  std::int64_t uncompute = 0;

  std::int64_t ComputeTotal() const {
    return encoding + degree_count + degree_compare + size_check;
  }
};

/// How the degree-count stage accumulates each vertex's activated edges.
enum class DegreeCountMode {
  /// The paper's construction (Figs. 7-8): one full multi-bit ripple-carry
  /// addition per incident edge. Costs O(log n) full adders per edge, which
  /// is why degree counting dominates the oracle runtime (Table V).
  kRippleAdder,
  /// A compact MCX controlled-increment counter — ablation variant showing
  /// how much of the oracle cost the paper's adder chains account for.
  kIncrement,
};

/// Build-time options for the oracle.
struct MkpOracleOptions {
  DegreeCountMode degree_count_mode = DegreeCountMode::kRippleAdder;
};

/// The qTKP decision oracle of the paper (Sections III-B..III-E): given a
/// subset of vertices (one qubit per vertex), decide whether it is a k-plex
/// of the input graph with size >= threshold T. Internally the circuit works
/// on the complement graph, checking the k-cplex condition deg <= k-1:
///
///   vertex reg --+--[A encoding: CCX per complement edge]--
///                +--[B degree count: popcount into c_i]--
///                +--[degree compare: d_i = (c_i <= k-1); cplex = AND d_i]--
///                +--[size check: popcount(v) >= T; O ^= cplex AND size_ok]--
///                +--[U_check^dagger uncompute]--
///
/// All gates are classical-reversible (X with controls), so the circuit can
/// be evaluated exactly on one basis state at a time however many ancillas it
/// uses — this is the trick that lets qplex execute the literal paper
/// construction, whose width is O(n^2 log n) qubits.
class MkpOracle {
 public:
  /// Builds the oracle for `graph`, plex parameter `k` (>= 1) and size
  /// threshold `threshold` in [0, n]. Requires n <= 64 (mask-indexed search
  /// space); the Grover driver further restricts n by state-vector size.
  static Result<MkpOracle> Build(const Graph& graph, int k, int threshold,
                                 const MkpOracleOptions& options = {});

  int num_vertices() const { return num_vertices_; }
  int k() const { return k_; }
  int threshold() const { return threshold_; }

  /// The full oracle circuit: U_check, oracle flip, U_check^dagger.
  const Circuit& circuit() const { return circuit_; }

  /// Total width (vertex + ancilla qubits) — the paper's O(n^2 log n) space.
  int num_qubits() const { return circuit_.num_qubits(); }

  /// Evaluates the oracle on a vertex subset by executing the literal gate
  /// list; returns the oracle bit. Cost: one pass over the circuit.
  bool Evaluate(std::uint64_t vertex_mask) const;

  /// Like Evaluate, but also verifies that every ancilla wire is restored to
  /// |0> and the vertex register is unchanged (the uncompute contract).
  /// Returns InternalError if the contract is violated.
  Result<bool> EvaluateChecked(std::uint64_t vertex_mask) const;

  /// All marked subsets, by exhaustive evaluation over the 2^n masks.
  std::vector<std::uint64_t> MarkedStates() const;

  /// Per-stage cost report (Gate::Cost sums — a hardware-time proxy where a
  /// C^kNOT costs k+1).
  OracleCostReport CostReport() const;

  /// Wire index of the oracle output qubit (for tests).
  int oracle_wire() const { return oracle_wire_; }

 private:
  MkpOracle() = default;

  int num_vertices_ = 0;
  int k_ = 0;
  int threshold_ = 0;
  Circuit circuit_;
  int oracle_wire_ = 0;
};

/// The semantic reference the circuit must agree with: subset `mask` is a
/// k-plex of `graph` with at least `threshold` vertices. Used for
/// cross-validation and as the fast oracle backend for large shot counts.
bool MkpPredicate(const Graph& graph, int k, int threshold,
                  std::uint64_t mask);

}  // namespace qplex

#endif  // QPLEX_ORACLE_MKP_ORACLE_H_
