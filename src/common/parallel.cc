#include "common/parallel.h"

#include <algorithm>

namespace qplex {
namespace {

/// Set while a thread is executing pool tasks; nested Run()/ParallelFor calls
/// from inside a task detect it and degrade to inline execution instead of
/// re-entering the pool (which would deadlock the single-batch protocol).
thread_local bool t_inside_pool_task = false;

struct InsideTaskScope {
  bool previous = t_inside_pool_task;
  InsideTaskScope() { t_inside_pool_task = true; }
  ~InsideTaskScope() { t_inside_pool_task = previous; }
};

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  const int count = std::max(0, num_workers);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  worker_wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkOn(Batch& batch) {
  InsideTaskScope scope;
  for (;;) {
    const int index = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.num_tasks) {
      return;
    }
    try {
      (*batch.task)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mutex);
      if (!batch.error) {
        batch.error = std::current_exception();
      }
    }
    batch.completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen_generation = 0;
  for (;;) {
    worker_wake_.wait(lock, [&] {
      return shutdown_ ||
             (batch_ != nullptr && generation_ != seen_generation &&
              batch_->active_workers < batch_->max_workers);
    });
    if (shutdown_) {
      return;
    }
    seen_generation = generation_;
    Batch* batch = batch_;
    ++batch->active_workers;
    lock.unlock();
    WorkOn(*batch);
    lock.lock();
    --batch->active_workers;
    batch_done_.notify_all();
  }
}

void ThreadPool::Run(int num_tasks, const std::function<void(int)>& task,
                     int max_concurrency) {
  if (num_tasks <= 0) {
    return;
  }
  // Inline paths: nested call, no workers, degenerate batch, or a
  // concurrency cap that leaves only the caller.
  if (t_inside_pool_task || workers_.empty() || num_tasks == 1 ||
      max_concurrency <= 1) {
    InsideTaskScope scope;
    for (int i = 0; i < num_tasks; ++i) {
      task(i);
    }
    return;
  }

  Batch batch;
  batch.task = &task;
  batch.num_tasks = num_tasks;
  batch.max_workers =
      std::min({max_concurrency - 1, num_workers(), num_tasks - 1});
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // One batch at a time; concurrent callers queue here.
    batch_slot_free_.wait(lock, [&] { return batch_ == nullptr; });
    batch_ = &batch;
    ++generation_;
  }
  worker_wake_.notify_all();
  WorkOn(batch);  // the caller participates.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [&] {
      return batch.completed.load(std::memory_order_acquire) ==
                 batch.num_tasks &&
             batch.active_workers == 0;
    });
    batch_ = nullptr;
  }
  batch_slot_free_.notify_one();
  if (batch.error) {
    std::rethrow_exception(batch.error);
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    const int hardware =
        static_cast<int>(std::thread::hardware_concurrency());
    return new ThreadPool(std::max(3, hardware - 1));
  }();
  return *pool;
}

void ParallelFor(
    int num_threads, std::uint64_t size,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  const std::uint64_t num_chunks = NumParallelChunks(size);
  if (num_chunks == 0) {
    return;
  }
  auto run_chunk = [&](int chunk) {
    const std::uint64_t begin =
        static_cast<std::uint64_t>(chunk) * kParallelChunkSize;
    const std::uint64_t end = std::min(size, begin + kParallelChunkSize);
    body(begin, end);
  };
  if (num_threads <= 1 || num_chunks == 1) {
    for (std::uint64_t chunk = 0; chunk < num_chunks; ++chunk) {
      run_chunk(static_cast<int>(chunk));
    }
    return;
  }
  ThreadPool::Global().Run(static_cast<int>(num_chunks), run_chunk,
                           num_threads);
}

}  // namespace qplex
