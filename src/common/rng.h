#ifndef QPLEX_COMMON_RNG_H_
#define QPLEX_COMMON_RNG_H_

#include <cstdint>

#include "common/status.h"

namespace qplex {

/// Deterministic 64-bit PRNG (xoshiro256**). Every stochastic component in
/// qplex takes an explicit seed so that experiments are reproducible
/// run-to-run and machine-to-machine; std::mt19937 distributions are not
/// guaranteed identical across standard libraries, so we roll our own
/// generator and derived distributions.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams (a raw zero seed is also valid).
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses rejection
  /// sampling (Lemire-style) to avoid modulo bias.
  std::uint64_t UniformInt(std::uint64_t bound) {
    QPLEX_CHECK(bound > 0) << "UniformInt bound must be positive";
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    QPLEX_CHECK(lo <= hi) << "UniformInt range is empty";
    const std::uint64_t width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(UniformInt(width));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Forks an independent stream; children of distinct indices are unrelated.
  Rng Fork(std::uint64_t stream_index) {
    return Rng(Next() ^ (0x6a09e667f3bcc909ULL * (stream_index + 1)));
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace qplex

#endif  // QPLEX_COMMON_RNG_H_
