#ifndef QPLEX_COMMON_STOPWATCH_H_
#define QPLEX_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace qplex {

/// Monotonic wall-clock stopwatch used by solvers for deadlines and by the
/// bench harnesses for reporting.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline: solvers poll `Expired()` between units of work. A
/// non-positive budget means "no deadline".
class Deadline {
 public:
  /// Creates a deadline `budget_seconds` from now.
  static Deadline After(double budget_seconds) {
    return Deadline(budget_seconds);
  }
  /// A deadline that never expires.
  static Deadline Infinite() { return Deadline(-1.0); }

  bool Expired() const {
    return budget_seconds_ > 0 && watch_.ElapsedSeconds() >= budget_seconds_;
  }
  double RemainingSeconds() const {
    if (budget_seconds_ <= 0) {
      return std::numeric_limits<double>::infinity();
    }
    return budget_seconds_ - watch_.ElapsedSeconds();
  }

 private:
  explicit Deadline(double budget_seconds) : budget_seconds_(budget_seconds) {}

  double budget_seconds_;
  Stopwatch watch_;
};

}  // namespace qplex

#endif  // QPLEX_COMMON_STOPWATCH_H_
