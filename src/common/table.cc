#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/status.h"

namespace qplex {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  QPLEX_CHECK(!header_.empty()) << "table must have at least one column";
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  QPLEX_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

std::string AsciiTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << row[c]
          << std::string(widths[c] - row[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void AsciiTable::Print(std::ostream& os) const { os << ToString(); }

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatMicros(double micros) {
  if (micros < 1e6) {
    return FormatDouble(micros, micros < 100 ? 2 : 1);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1e", micros);
  return buf;
}

std::string FormatErrorBound(double probability) {
  if (probability <= 0) {
    return "0";
  }
  if (probability >= 1) {
    return "1";
  }
  const int exponent = static_cast<int>(std::ceil(std::log10(probability)));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "<10^%d", exponent);
  return buf;
}

}  // namespace qplex
