#ifndef QPLEX_COMMON_PARALLEL_H_
#define QPLEX_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace qplex {

/// Deterministic chunk geometry shared by every parallel kernel: an index
/// range [0, size) is split into fixed-size chunks of kParallelChunkSize
/// indices (the last chunk ragged). Chunk boundaries depend only on `size`,
/// never on the thread count, so any reduction that computes one partial per
/// chunk and combines the partials in chunk order produces bit-identical
/// results at 1 thread and at N threads.
inline constexpr std::uint64_t kParallelChunkSize = 2048;

inline std::uint64_t NumParallelChunks(std::uint64_t size) {
  return (size + kParallelChunkSize - 1) / kParallelChunkSize;
}

/// Fixed-size pool of worker threads executing batches of indexed tasks.
/// One batch runs at a time (concurrent callers queue on a mutex); within a
/// batch, tasks are claimed by an atomic counter, so task-to-thread
/// assignment is nondeterministic — callers must make task outputs disjoint
/// or order-insensitive (ParallelFor/ParallelReduce below do exactly that).
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (clamped to >= 0). With zero
  /// workers every Run() executes inline on the caller.
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs task(0) .. task(num_tasks - 1) and blocks until all complete. The
  /// calling thread participates, so at most `max_concurrency` threads
  /// (caller included) execute tasks. The first exception thrown by any task
  /// is rethrown on the caller after the batch drains; remaining tasks still
  /// run. Nested calls from inside a task execute inline on the calling
  /// thread (no deadlock, no extra parallelism).
  void Run(int num_tasks, const std::function<void(int)>& task,
           int max_concurrency = 1 << 30);

  /// Process-wide pool, created on first use with one worker per available
  /// hardware thread beyond the caller (at least 3, so thread interplay is
  /// exercised — and caught by TSan — even on small CI machines).
  static ThreadPool& Global();

 private:
  struct Batch {
    const std::function<void(int)>* task = nullptr;
    int num_tasks = 0;
    int max_workers = 0;  ///< max *workers* joining (caller not counted).
    std::atomic<int> next{0};
    std::atomic<int> completed{0};
    int active_workers = 0;  ///< guarded by the pool mutex.
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  void WorkerLoop();
  /// Claims and runs tasks from `batch` until none remain.
  static void WorkOn(Batch& batch);

  std::mutex mutex_;
  std::condition_variable worker_wake_;
  std::condition_variable batch_done_;
  std::condition_variable batch_slot_free_;
  Batch* batch_ = nullptr;       ///< current batch, guarded by mutex_.
  std::uint64_t generation_ = 0;  ///< bumped per batch, guarded by mutex_.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Splits [0, size) into the fixed deterministic chunks and runs
/// body(chunk_begin, chunk_end) for each, using up to `num_threads` threads
/// from the global pool. num_threads <= 1 (or a single chunk, or a nested
/// call) runs every chunk inline in order. Chunks are disjoint, so bodies may
/// write freely inside their own range.
void ParallelFor(int num_threads, std::uint64_t size,
                 const std::function<void(std::uint64_t, std::uint64_t)>& body);

/// Deterministic chunked reduction: computes chunk_fn(chunk_begin, chunk_end)
/// for every fixed chunk of [0, size) (in parallel, up to `num_threads`
/// threads) and folds the per-chunk partials IN CHUNK ORDER with `combine`,
/// starting from `init`. Because both the chunk boundaries and the combine
/// order are independent of the thread count, the result is bit-identical
/// for any num_threads — this is what keeps multi-threaded amplitudes and
/// bench baselines exactly reproducible.
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduce(int num_threads, std::uint64_t size, T init,
                 const ChunkFn& chunk_fn, const CombineFn& combine) {
  const std::uint64_t num_chunks = NumParallelChunks(size);
  if (num_chunks == 0) {
    return init;
  }
  std::vector<T> partials(num_chunks);
  ParallelFor(num_threads, size,
              [&](std::uint64_t begin, std::uint64_t end) {
                partials[begin / kParallelChunkSize] = chunk_fn(begin, end);
              });
  T accumulator = init;
  for (const T& partial : partials) {
    accumulator = combine(accumulator, partial);
  }
  return accumulator;
}

}  // namespace qplex

#endif  // QPLEX_COMMON_PARALLEL_H_
