#include "common/stopwatch.h"

// Stopwatch and Deadline are header-only; this translation unit exists so the
// header is compiled standalone at least once (self-containedness check).
