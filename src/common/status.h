#ifndef QPLEX_COMMON_STATUS_H_
#define QPLEX_COMMON_STATUS_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace qplex {

/// Canonical error space for the library. Modeled after the Status idiom used
/// by production database codebases (Arrow, RocksDB): recoverable failures are
/// returned as values, never thrown.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kResourceExhausted = 5,
  kDeadlineExceeded = 6,
  kInternal = 7,
  kUnimplemented = 8,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation. An OK status
/// carries no message; failure statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or a failure Status. The value may only be
/// accessed when `ok()` is true; this is enforced with a process abort, since
/// accessing the value of a failed result is a programming error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps call sites concise:
  /// `Result<int> F() { return 42; }`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status:
  /// `return Status::InvalidArgument(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  /// Returns the contained value or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::cerr << "Result::value() on error: " << status_.ToString() << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {

/// Accumulates a message via operator<< then aborts; used by QPLEX_CHECK.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr);
  [[noreturn]] ~CheckFailure();

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qplex

/// Aborts with a diagnostic when `condition` is false. For programmer errors
/// (violated invariants), not for recoverable failures — those return Status.
#define QPLEX_CHECK(condition)                                          \
  if (!(condition))                                                     \
  ::qplex::internal::CheckFailure(__FILE__, __LINE__, #condition)

/// Propagates a non-OK Status from the current function.
#define QPLEX_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::qplex::Status qplex_status__ = (expr);   \
    if (!qplex_status__.ok()) {                \
      return qplex_status__;                   \
    }                                          \
  } while (false)

/// Unwraps a Result<T> into `lhs`, propagating failure. Usable repeatedly in
/// one scope (the temporary's name embeds the line number).
#define QPLEX_ASSIGN_OR_RETURN(lhs, expr) \
  QPLEX_ASSIGN_OR_RETURN_IMPL_(           \
      QPLEX_MACRO_CONCAT_(qplex_result__, __LINE__), lhs, expr)

#define QPLEX_MACRO_CONCAT_INNER_(a, b) a##b
#define QPLEX_MACRO_CONCAT_(a, b) QPLEX_MACRO_CONCAT_INNER_(a, b)

#define QPLEX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#endif  // QPLEX_COMMON_STATUS_H_
