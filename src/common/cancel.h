#ifndef QPLEX_COMMON_CANCEL_H_
#define QPLEX_COMMON_CANCEL_H_

#include <atomic>

#include "common/stopwatch.h"

namespace qplex {

/// Cooperative cancellation flag shared between a controller (the service
/// scheduler, a portfolio race) and one or more running solvers. The
/// controller calls Cancel(); solvers poll Cancelled() in their hot loops at
/// the same granularity as their deadline checks and unwind with their
/// incumbent. Cancellation is level-triggered and sticky: once set it stays
/// set for the token's lifetime.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The combined stop predicate solvers poll between units of work: true when
/// the deadline expired or the (optional) token was cancelled. Cheap enough
/// for per-sweep / per-kilonode polling; not meant for inner loops.
inline bool StopRequested(const Deadline& deadline, const CancelToken* cancel) {
  return (cancel != nullptr && cancel->Cancelled()) || deadline.Expired();
}

}  // namespace qplex

#endif  // QPLEX_COMMON_CANCEL_H_
