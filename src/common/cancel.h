#ifndef QPLEX_COMMON_CANCEL_H_
#define QPLEX_COMMON_CANCEL_H_

#include <atomic>
#include <cstdint>

#include "common/stopwatch.h"

namespace qplex {

/// Cooperative cancellation flag shared between a controller (the service
/// scheduler, a portfolio race) and one or more running solvers. The
/// controller calls Cancel(); solvers poll Cancelled() in their hot loops at
/// the same granularity as their deadline checks and unwind with their
/// incumbent. Cancellation is level-triggered and sticky: once set it stays
/// set for the token's lifetime.
///
/// Tokens can be chained: LinkParent() makes this token report cancellation
/// when either its own flag or the parent's is set. The scheduler hands each
/// backend execution a fresh attempt-scoped token linked to the job token, so
/// the watchdog can cancel one wedged attempt (fallback still runs) while a
/// job-level Cancel() reaches every attempt. The parent must outlive this
/// token.
///
/// Poll() doubles as the liveness heartbeat: every StopRequested() check a
/// solver makes bumps a counter the scheduler watchdog reads. A solver that
/// stops polling — wedged in an uninstrumented loop, blocked on I/O — stops
/// heartbeating and becomes eligible for a watchdog kill.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const CancelToken* parent = parent_.load(std::memory_order_relaxed);
    return parent != nullptr && parent->Cancelled();
  }

  /// Cancelled() plus a heartbeat: records that the owner is alive and
  /// polling. Solvers reach this through StopRequested(); monitors that must
  /// not count as progress (the watchdog itself, fault-injected stalls) read
  /// Cancelled() directly.
  bool Poll() const {
    polls_.fetch_add(1, std::memory_order_relaxed);
    return Cancelled();
  }

  /// Heartbeat counter: number of Poll() calls observed so far.
  std::uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }

  /// Chains this token under `parent` (nullptr unlinks). Cancellation of the
  /// parent is then visible through Cancelled()/Poll() here; Cancel() on this
  /// token never propagates upward.
  void LinkParent(const CancelToken* parent) {
    parent_.store(parent, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<std::uint64_t> polls_{0};
  std::atomic<const CancelToken*> parent_{nullptr};
};

/// The combined stop predicate solvers poll between units of work: true when
/// the deadline expired or the (optional) token was cancelled. Cheap enough
/// for per-sweep / per-kilonode polling; not meant for inner loops. Each call
/// heartbeats the token, feeding the scheduler's wedged-job watchdog.
inline bool StopRequested(const Deadline& deadline, const CancelToken* cancel) {
  return (cancel != nullptr && cancel->Poll()) || deadline.Expired();
}

}  // namespace qplex

#endif  // QPLEX_COMMON_CANCEL_H_
