#ifndef QPLEX_COMMON_TABLE_H_
#define QPLEX_COMMON_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qplex {

/// Minimal aligned ASCII table used by the bench harnesses to print rows in
/// the same layout as the paper's tables.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a data row; its arity must match the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with a header rule, one space of padding, left-aligned cells.
  std::string ToString() const;

  /// Convenience: renders straight to `os`.
  void Print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats microseconds compactly: "353.7" style for small values, scientific
/// "1.0e+06" beyond six digits.
std::string FormatMicros(double micros);

/// Formats a probability as "<10^-k" the way the paper reports error bounds
/// (e.g. 3.2e-7 -> "<10^-6"); exact zero renders as "0".
std::string FormatErrorBound(double probability);

}  // namespace qplex

#endif  // QPLEX_COMMON_TABLE_H_
