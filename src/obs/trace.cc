#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/events.h"
#include "obs/reqtrace.h"

namespace qplex::obs {

namespace internal {

struct TraceNode {
  std::string name;
  std::int64_t count = 0;
  std::int64_t total_nanos = 0;
  std::vector<std::unique_ptr<TraceNode>> children;

  TraceNode* FindOrCreateChild(std::string_view child_name) {
    for (const auto& child : children) {
      if (child->name == child_name) {
        return child.get();
      }
    }
    children.push_back(std::make_unique<TraceNode>());
    children.back()->name = std::string(child_name);
    return children.back().get();
  }
};

namespace {

/// Per-thread stack of open spans; the stack is keyed per tracer so a
/// test-local Tracer never interleaves with the global one.
thread_local std::vector<std::pair<const Tracer*, TraceNode*>> tls_span_stack;

TraceNodeSnapshot SnapshotNode(const TraceNode& node) {
  TraceNodeSnapshot snapshot;
  snapshot.name = node.name;
  snapshot.count = node.count;
  snapshot.total_nanos = node.total_nanos;
  snapshot.children.reserve(node.children.size());
  for (const auto& child : node.children) {
    snapshot.children.push_back(SnapshotNode(*child));
  }
  return snapshot;
}

}  // namespace
}  // namespace internal

std::int64_t TraceNodeSnapshot::SelfNanos() const {
  std::int64_t children_nanos = 0;
  for (const TraceNodeSnapshot& child : children) {
    children_nanos += child.total_nanos;
  }
  return std::max<std::int64_t>(0, total_nanos - children_nanos);
}

Tracer::Tracer() : root_(std::make_unique<internal::TraceNode>()) {
  root_->name = "root";
}

Tracer::~Tracer() = default;

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  root_->children.clear();
  root_->count = 0;
  root_->total_nanos = 0;
}

TraceNodeSnapshot Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return internal::SnapshotNode(*root_);
}

internal::TraceNode* Tracer::OpenSpan(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  internal::TraceNode* parent = root_.get();
  for (auto it = internal::tls_span_stack.rbegin();
       it != internal::tls_span_stack.rend(); ++it) {
    if (it->first == this) {
      parent = it->second;
      break;
    }
  }
  internal::TraceNode* node = parent->FindOrCreateChild(name);
  internal::tls_span_stack.emplace_back(this, node);
  return node;
}

void Tracer::CloseSpan(internal::TraceNode* node,
                       std::int64_t elapsed_nanos) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++node->count;
    node->total_nanos += elapsed_nanos;
  }
  // Spans are scoped objects, so this thread's innermost span for this
  // tracer is necessarily `node`.
  for (auto it = internal::tls_span_stack.rbegin();
       it != internal::tls_span_stack.rend(); ++it) {
    if (it->first == this) {
      internal::tls_span_stack.erase(std::next(it).base());
      break;
    }
  }
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

TraceSpan::TraceSpan(std::string_view name, Tracer& tracer)
    : tracer_(tracer), node_(tracer.OpenSpan(name)) {
  if (EventsEnabled()) {
    if (const SpanContext* request = RequestScope::Current()) {
      bridge_ = std::make_unique<RequestScope>(ChildSpan(*request, name));
    }
  }
}

TraceSpan::~TraceSpan() { tracer_.CloseSpan(node_, watch_.ElapsedNanos()); }

namespace {

void FormatNode(const TraceNodeSnapshot& node, int depth, std::string* out) {
  char line[160];
  std::snprintf(line, sizeof(line), "%*s%s  count=%lld  total=%.3fms",
                depth * 2, "", node.name.c_str(),
                static_cast<long long>(node.count),
                node.total_nanos * 1e-6);
  *out += line;
  if (!node.children.empty()) {
    std::snprintf(line, sizeof(line), "  self=%.3fms",
                  node.SelfNanos() * 1e-6);
    *out += line;
  }
  out->push_back('\n');
  for (const TraceNodeSnapshot& child : node.children) {
    FormatNode(child, depth + 1, out);
  }
}

}  // namespace

std::string FormatTraceTree(const TraceNodeSnapshot& root) {
  std::string out;
  for (const TraceNodeSnapshot& child : root.children) {
    FormatNode(child, 0, &out);
  }
  if (out.empty()) {
    out = "(no spans recorded)\n";
  }
  return out;
}

}  // namespace qplex::obs
