#include "obs/run_report.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/table.h"

namespace qplex::obs {
namespace {

JsonValue TraceToJson(const TraceNodeSnapshot& node) {
  JsonValue json = JsonValue::Object();
  json.Set("name", node.name);
  json.Set("count", node.count);
  json.Set("total_seconds", node.TotalSeconds());
  if (!node.children.empty()) {
    JsonValue children = JsonValue::Array();
    for (const TraceNodeSnapshot& child : node.children) {
      children.Append(TraceToJson(child));
    }
    json.Set("children", std::move(children));
  }
  return json;
}

}  // namespace

void RunReport::SetMeta(std::string key, JsonValue value) {
  for (auto& [existing, held] : meta_) {
    if (existing == key) {
      held = std::move(value);
      return;
    }
  }
  meta_.emplace_back(std::move(key), std::move(value));
}

void RunReport::Capture(const MetricsRegistry& registry,
                        const Tracer& tracer) {
  metrics_ = registry.Snapshot();
  trace_ = tracer.Snapshot();
}

JsonValue RunReport::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("report", name_);
  json.Set("schema_version", 1);

  JsonValue meta = JsonValue::Object();
  for (const auto& [key, value] : meta_) {
    meta.Set(key, value);
  }
  json.Set("meta", std::move(meta));

  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : metrics_.counters) {
    counters.Set(name, value);
  }
  json.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : metrics_.gauges) {
    gauges.Set(name, value);
  }
  json.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, snapshot] : metrics_.histograms) {
    JsonValue histogram = JsonValue::Object();
    histogram.Set("count", snapshot.count);
    histogram.Set("sum", snapshot.sum);
    histogram.Set("min", snapshot.min);
    histogram.Set("max", snapshot.max);
    histogram.Set("mean", snapshot.Mean());
    histogram.Set("p50", snapshot.P50());
    histogram.Set("p90", snapshot.P90());
    histogram.Set("p99", snapshot.P99());
    JsonValue buckets = JsonValue::Array();
    for (const auto& [lower_bound, count] : snapshot.buckets) {
      JsonValue bucket = JsonValue::Array();
      bucket.Append(lower_bound);
      bucket.Append(count);
      buckets.Append(std::move(bucket));
    }
    histogram.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(histogram));
  }
  json.Set("histograms", std::move(histograms));

  JsonValue series = JsonValue::Object();
  for (const auto& [name, values] : metrics_.series) {
    JsonValue points = JsonValue::Array();
    for (const double value : values) {
      points.Append(value);
    }
    series.Set(name, std::move(points));
  }
  json.Set("series", std::move(series));

  json.Set("trace", TraceToJson(trace_));
  return json;
}

std::string RunReport::ToPrettyString() const {
  std::ostringstream out;
  out << "== run report: " << name_ << " ==\n";

  if (!meta_.empty()) {
    AsciiTable meta_table({"meta", "value"});
    for (const auto& [key, value] : meta_) {
      meta_table.AddRow({key, value.is_string() ? value.AsString()
                                                : value.Dump()});
    }
    meta_table.Print(out);
    out << "\n";
  }

  if (!metrics_.counters.empty()) {
    AsciiTable counter_table({"counter", "value"});
    for (const auto& [name, value] : metrics_.counters) {
      counter_table.AddRow({name, std::to_string(value)});
    }
    counter_table.Print(out);
    out << "\n";
  }

  if (!metrics_.gauges.empty()) {
    AsciiTable gauge_table({"gauge", "value"});
    for (const auto& [name, value] : metrics_.gauges) {
      gauge_table.AddRow({name, FormatDouble(value, 6)});
    }
    gauge_table.Print(out);
    out << "\n";
  }

  if (!metrics_.histograms.empty()) {
    AsciiTable histogram_table(
        {"histogram", "count", "mean", "p50", "p90", "p99", "min", "max"});
    for (const auto& [name, snapshot] : metrics_.histograms) {
      histogram_table.AddRow({name, std::to_string(snapshot.count),
                              FormatDouble(snapshot.Mean(), 4),
                              FormatDouble(snapshot.P50(), 4),
                              FormatDouble(snapshot.P90(), 4),
                              FormatDouble(snapshot.P99(), 4),
                              FormatDouble(snapshot.min, 4),
                              FormatDouble(snapshot.max, 4)});
    }
    histogram_table.Print(out);
    out << "\n";
  }

  if (!metrics_.series.empty()) {
    AsciiTable series_table({"series", "points", "first", "last"});
    for (const auto& [name, values] : metrics_.series) {
      series_table.AddRow(
          {name, std::to_string(values.size()),
           values.empty() ? "-" : FormatDouble(values.front(), 4),
           values.empty() ? "-" : FormatDouble(values.back(), 4)});
    }
    series_table.Print(out);
    out << "\n";
  }

  out << "trace:\n" << FormatTraceTree(trace_);
  return out.str();
}

Status RunReport::WriteJsonFile(const std::string& path, int indent) const {
  const std::string text = ToJsonString(indent) + "\n";
  if (path == "-") {
    std::cout << text;
    return Status::Ok();
  }
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  file << text;
  file.close();
  if (!file) {
    return Status::Internal("failed writing report to " + path);
  }
  return Status::Ok();
}

}  // namespace qplex::obs
