#ifndef QPLEX_OBS_TRACE_H_
#define QPLEX_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"

namespace qplex::obs {

/// One aggregated node of the trace tree: spans with the same name under the
/// same parent merge (count incremented, durations summed), so a solver that
/// probes qTKP eight times shows one "qtkp" child with count = 8 rather than
/// eight siblings.
struct TraceNodeSnapshot {
  std::string name;
  std::int64_t count = 0;
  std::int64_t total_nanos = 0;  ///< inclusive (children's time counted)
  std::vector<TraceNodeSnapshot> children;

  double TotalSeconds() const { return total_nanos * 1e-9; }
  /// Time not attributed to any child span.
  std::int64_t SelfNanos() const;
};

namespace internal {
struct TraceNode;
}  // namespace internal

class RequestScope;  // obs/reqtrace.h

/// Owns a trace tree built from nested TraceSpan scopes. Open/close take a
/// mutex, which is fine at span granularity (solver call, probe, sweep
/// batch — never per inner-loop step). Each thread tracks its own span stack;
/// a span opened on a thread with no enclosing span parents at the root.
class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Drops all recorded spans. Must not be called while spans are open.
  void Reset();

  TraceNodeSnapshot Snapshot() const;

  /// The process-wide tracer every TraceSpan records into.
  static Tracer& Global();

 private:
  friend class TraceSpan;

  internal::TraceNode* OpenSpan(std::string_view name);
  void CloseSpan(internal::TraceNode* node, std::int64_t elapsed_nanos);

  mutable std::mutex mutex_;
  std::unique_ptr<internal::TraceNode> root_;
};

/// RAII scoped timer: opens a named span in the global tracer on
/// construction, records its duration on destruction. Nested spans form the
/// trace tree (solver -> probe -> oracle eval, etc.).
///
/// When an event stream is active and the constructing thread is inside a
/// RequestScope, the span additionally bridges into the request trace: a
/// structural child scope is opened under the innermost request span, so
/// solver-internal timing shows up in the same connected per-job trace tree
/// that the scheduler builds. Threads outside any request (solver internal
/// pools) skip the bridge entirely, which keeps the span tree orphan-free.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name)
      : TraceSpan(name, Tracer::Global()) {}
  TraceSpan(std::string_view name, Tracer& tracer);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer& tracer_;
  internal::TraceNode* node_;
  std::unique_ptr<RequestScope> bridge_;  // null when not bridging
  Stopwatch watch_;
};

/// Renders a snapshot as an indented text tree with counts and timings —
/// the CLI's --verbose-trace output.
std::string FormatTraceTree(const TraceNodeSnapshot& root);

}  // namespace qplex::obs

#endif  // QPLEX_OBS_TRACE_H_
