#ifndef QPLEX_OBS_EVENTS_H_
#define QPLEX_OBS_EVENTS_H_

#include <atomic>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "common/stopwatch.h"
#include "obs/json.h"

namespace qplex::obs {

/// Severity of a structured event line.
enum class EventLevel : std::uint8_t {
  kDebug = 0,
  kInfo,
  kWarn,
};

/// Stable lowercase name ("debug", "info", "warn").
std::string_view EventLevelName(EventLevel level);

/// A structured JSONL event stream: one compact JSON object per line, written
/// as events happen (flushed per line so `tail -f` and crash post-mortems see
/// every emitted event). Line schema:
///
///   {"ts_ms": <ms since sink open>, "seq": <process-wide sequence number>,
///    "level": "info", "solver": "qmkp", "event": "probe",
///    ...caller key/values in order...}
///
/// "seq" is a process-wide monotonic stamp shared by every sink, so lines
/// merged across sinks (or jobs) sort deterministically even at equal ts_ms.
/// Within one process's output it is gap-free; qplex_obs flags duplicates.
///
/// The sink is the live counterpart of RunReport: reports summarise a finished
/// run, the event stream narrates it while it is still going. Emission is
/// mutex-serialised (events happen at probe/heartbeat granularity, never in
/// inner loops), and every field value rides the obs/json writer, so lines are
/// parseable by `JsonValue::Parse` and by any JSONL tooling.
class EventSink {
 public:
  static constexpr int kDefaultProgressIntervalMs = 250;

  /// Opens a sink writing to `path` ("-" means stdout). `progress_interval_ms`
  /// is the minimum spacing between ProgressHeartbeat emissions per site and
  /// must be >= 1.
  static Result<std::unique_ptr<EventSink>> Open(
      const std::string& path,
      int progress_interval_ms = kDefaultProgressIntervalMs);

  ~EventSink();

  EventSink(const EventSink&) = delete;
  EventSink& operator=(const EventSink&) = delete;

  /// Writes one event line. `fields` are appended to the envelope in order.
  void Emit(EventLevel level, std::string_view solver, std::string_view event,
            std::initializer_list<std::pair<std::string_view, JsonValue>>
                fields);

  /// True when a progress event keyed `solver/event[/scope]` is currently
  /// due: the key has never emitted, or at least progress_interval_ms elapsed
  /// since it last did. Throttle state lives here (not in call sites) so many
  /// short-lived solver objects under one run share one cadence. `scope`
  /// separates concurrent requests (the portfolio racer passes the trace id)
  /// so racing jobs never starve each other's heartbeats.
  bool ProgressDue(std::string_view solver, std::string_view event,
                   std::string_view scope = {}) const;

  /// Emits a progress line iff due, atomically updating the key's last-emit
  /// time. Returns whether a line was written. When `scope` is non-empty it
  /// is also stamped on the line as the "trace" envelope field.
  bool EmitProgress(std::string_view solver, std::string_view event,
                    std::initializer_list<std::pair<std::string_view,
                                                    JsonValue>> fields,
                    std::string_view scope = {});

  int progress_interval_ms() const { return progress_interval_ms_; }
  std::int64_t lines_written() const {
    return lines_written_.load(std::memory_order_relaxed);
  }

  /// The process-wide sink instrumentation sites emit into, or nullptr when
  /// no event stream was requested. Install/uninstall is the CLI's job; the
  /// installed sink must outlive every emitting solver call.
  static EventSink* Global();
  static void InstallGlobal(EventSink* sink);

 private:
  EventSink(std::ostream* stream, std::unique_ptr<std::ostream> owned,
            int progress_interval_ms);

  void EmitLocked(EventLevel level, std::string_view solver,
                  std::string_view event,
                  std::initializer_list<std::pair<std::string_view,
                                                  JsonValue>> fields,
                  std::string_view trace = {});

  std::ostream* stream_;                   // where lines go (never null)
  std::unique_ptr<std::ostream> owned_;    // owns file streams; null for stdout
  int progress_interval_ms_;
  mutable std::mutex mutex_;
  Stopwatch since_open_;
  /// Last ProgressDue-emit time per "solver/event" key, in ms since open.
  std::map<std::string, double, std::less<>> progress_last_ms_;
  std::atomic<std::int64_t> lines_written_{0};
};

/// True when a global sink is installed — the cheap gate for callers that
/// would otherwise compute event fields for nothing.
inline bool EventsEnabled() { return EventSink::Global() != nullptr; }

/// Emits an event into the global sink; no-op when none is installed.
void EmitEvent(EventLevel level, std::string_view solver,
               std::string_view event,
               std::initializer_list<std::pair<std::string_view, JsonValue>>
                   fields);

/// The trace id (16 hex digits) of the request scope active on this thread,
/// or empty outside any request. Defined in obs/reqtrace.cc; declared here so
/// ProgressHeartbeat can key its throttle per request without events.h
/// depending on the reqtrace header.
std::string_view CurrentTraceToken();

/// Rate-limited progress reporter for long-running loops. `Due()` is cheap
/// enough to poll every loop iteration: an atomic load when no sink is
/// installed, one mutex-protected map probe when one is (and polls happen at
/// sweep/probe/1024-node granularity, never per inner-loop step). The very
/// first heartbeat for a given solver/event key is always due, so even a run
/// far shorter than the interval emits at least one progress line; after
/// that the sink enforces the interval across every object sharing the key.
/// Under the portfolio racer the throttle key also carries the active trace
/// id, so two jobs racing through the same solver each keep their own
/// heartbeat cadence instead of the first one silencing the rest.
class ProgressHeartbeat {
 public:
  explicit ProgressHeartbeat(std::string_view solver,
                             std::string_view event = "progress")
      : solver_(solver), event_(event) {}

  /// True when a heartbeat should be emitted now. Callers compute the fields
  /// only after a true return.
  bool Due() const {
    const EventSink* sink = EventSink::Global();
    return sink != nullptr &&
           sink->ProgressDue(solver_, event_, CurrentTraceToken());
  }

  /// Emits a progress event (the sink re-checks dueness atomically, so a
  /// stale Due() answer degrades to a dropped line, never a flood).
  void Emit(std::initializer_list<std::pair<std::string_view, JsonValue>>
                fields) {
    EventSink* sink = EventSink::Global();
    if (sink != nullptr) {
      sink->EmitProgress(solver_, event_, fields, CurrentTraceToken());
    }
  }

 private:
  std::string solver_;
  std::string event_;
};

}  // namespace qplex::obs

#endif  // QPLEX_OBS_EVENTS_H_
