#ifndef QPLEX_OBS_ANALYSIS_H_
#define QPLEX_OBS_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace qplex::obs {

/// One "span" event line from a --events JSONL stream (already merged per
/// line by SpanCollector; LoadEventLog keeps them raw, BuildTraceForest
/// re-merges lines that share a span id across attempts/flushes).
struct SpanRecord {
  std::string trace;   ///< 16-hex trace id
  std::string span;    ///< 16-hex span id
  std::string parent;  ///< 16-hex parent id; all zeros marks a root
  std::string name;
  std::string path;
  std::int64_t count = 0;
  double total_ms = 0;
};

/// One completed job (a job_end line).
struct JobRecord {
  std::int64_t job = 0;
  std::string label;
  std::string trace;
  std::string backend;
  std::string status;
  std::string degraded_from;
  double queue_seconds = 0;
  double wall_seconds = 0;
  std::int64_t attempts = 0;
  std::int64_t size = 0;
  std::int64_t racers = 0;        ///< portfolio width (0 on pre-PR7 logs)
  std::int64_t winner_margin = 0; ///< winner size minus best losing racer
  bool cache_hit = false;
  std::int64_t seq = -1;  ///< envelope sequence number; -1 when absent
};

/// One circuit-breaker state transition (a breaker_transition line).
struct BreakerTransitionRecord {
  std::string backend;
  std::string from;  ///< "closed" | "half_open" | "open"
  std::string to;
  std::int64_t consecutive_failures = 0;
  std::int64_t cooldown = 0;  ///< consults charged for the next probe
  std::int64_t seq = -1;
};

/// One wedged-job watchdog kill (a watchdog_kill line).
struct WatchdogKillRecord {
  std::int64_t job = 0;
  std::string backend;
  std::int64_t attempt = 0;
  std::int64_t heartbeats = 0;  ///< cancel-poll count at kill time
  std::int64_t seq = -1;
};

/// One shed admission decision (an admission_shed line).
struct ShedRecord {
  std::string label;
  std::string reason;  ///< "backlog_full" | "queue_delay"
  std::int64_t seq = -1;
};

/// One admitted job (a job_start line), carrying the instance shape.
struct JobStartRecord {
  std::int64_t job = 0;
  std::string label;
  std::string trace;
  std::int64_t k = 0;
  std::int64_t n = 0;
  std::vector<std::string> backends;
};

/// One "incumbent" event line: a strict best-solution improvement inside a
/// backend, keyed to the structural span (trace + path) that produced it.
struct IncumbentRecord {
  std::string trace;
  std::string solver;
  std::string path;        ///< request-scope path; empty for plain CLI solves
  std::int64_t size = 0;
  std::int64_t work = 0;   ///< backend-native deterministic progress units
  std::int64_t improvement = 0;  ///< 1-based per-timeline index
  bool has_value = false;
  double value = 0;        ///< native objective (energy / MILP objective)
  double elapsed_ms = 0;
  std::int64_t seq = -1;   ///< envelope sequence number; -1 when absent
};

/// One "bound" event line: a dual/upper-bound update from a bounded search.
struct BoundRecord {
  std::string trace;
  std::string solver;
  std::string path;
  double bound = 0;
  std::int64_t work = 0;
  std::int64_t update = 0;  ///< 1-based per-timeline index
  double elapsed_ms = 0;
  std::int64_t seq = -1;
};

/// Everything the analyzer extracts from one events file.
struct EventLog {
  std::vector<SpanRecord> spans;
  std::vector<JobRecord> jobs;
  std::vector<JobStartRecord> job_starts;
  std::vector<IncumbentRecord> incumbents;
  std::vector<BoundRecord> bounds;
  std::vector<BreakerTransitionRecord> breaker_transitions;
  std::vector<WatchdogKillRecord> watchdog_kills;
  std::vector<ShedRecord> sheds;
  std::vector<std::string> replayed_labels;  ///< job_replayed (WAL replays)
  std::int64_t retries = 0;
  std::int64_t fallbacks = 0;
  std::int64_t lines = 0;
  std::int64_t malformed = 0;  ///< lines that failed to parse as JSON
  /// Envelope "seq" stamp accounting across every parsed line. Gaps are
  /// expected when one process feeds several sinks (the counter is shared);
  /// duplicates within one merged stream are a validation failure.
  std::int64_t seq_present = 0;
  std::int64_t seq_missing = 0;     ///< parsed lines without a "seq" field
  std::int64_t seq_duplicates = 0;  ///< stamps seen more than once
  std::int64_t seq_gaps = 0;        ///< missing stamps inside [min, max]
};

/// Parses an --events JSONL file. IO failure is an error; individual
/// malformed lines are counted, not fatal (a crashed run may truncate its
/// last line and post-mortems must still work).
Result<EventLog> LoadEventLog(const std::string& path);

/// A span-id-merged node of a reconstructed trace tree.
struct SpanTreeNode {
  SpanRecord record;
  std::vector<SpanTreeNode> children;  ///< sorted by path
};

/// One job's reconstructed trace.
struct TraceSummary {
  std::string trace;
  std::string label;              ///< from the matching job_end, or "?"
  std::int64_t job = -1;          ///< -1 when no job_end was seen
  std::string backend;
  std::string status;
  std::vector<SpanTreeNode> roots;    ///< parent id all zeros
  std::vector<SpanRecord> orphans;    ///< parent id unknown in this trace
};

/// Groups spans by trace id, merges records sharing a span id (counts and
/// durations summed), and assembles parent/child trees. Ordered by
/// (label, trace id) so output is stable across runs.
std::vector<TraceSummary> BuildTraceForest(const EventLog& log);

std::size_t CountOrphans(const std::vector<TraceSummary>& forest);

/// Renders the forest as an indented text tree. Durations are deliberately
/// excluded — the output is a pure function of trace structure, so two
/// same-seed runs render byte-identically and CI can diff them.
std::string FormatTraceForest(const std::vector<TraceSummary>& forest);

/// Flamegraph-folded stacks ("job;racer@bs;attempt@1;solve 3"), one line per
/// structural path, aggregated across every trace and sorted. The folded
/// value is the span count (not milliseconds) for the same determinism
/// reason as above.
std::string FormatFoldedStacks(const std::vector<TraceSummary>& forest);

/// Per-backend latency percentiles (exact order statistics over job_end
/// queue+wall latencies, in ms). Values are whatever the run recorded;
/// structure and ordering are deterministic.
std::string FormatLatencyReport(const EventLog& log);

/// SLO compliance per backend against `slo_ms` (admission-to-merge latency).
std::string FormatSloReport(const EventLog& log, double slo_ms);

/// Health-subsystem invariants (DESIGN.md section 15), checked on every
/// analyzer run:
///   - breaker transitions per backend replay as a legal walk of the state
///     machine from closed: closed->open, open->half_open,
///     half_open->closed, half_open->open, with each line's "from" matching
///     the replayed state (no open->closed without a half_open probe);
///   - no watchdog kill is sequenced after its job's job_end line (the
///     scheduler emits the kill before the job can merge a response).
/// Pre-health logs (no such events) pass vacuously.
Status ValidateHealthEvents(const EventLog& log);

/// Deterministic health summary: breaker transition counts per backend and
/// edge, watchdog kills per backend, sheds per reason. Counts only — no
/// timestamps or durations — so two same-seed single-worker chaos runs
/// render byte-identically and CI can diff them.
std::string FormatHealthReport(const EventLog& log);

}  // namespace qplex::obs

#endif  // QPLEX_OBS_ANALYSIS_H_
