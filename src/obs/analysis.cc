#include "obs/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <tuple>

#include "obs/json.h"

namespace qplex::obs {
namespace {

constexpr std::string_view kZeroId = "0000000000000000";

std::string GetString(const JsonValue& line, std::string_view key) {
  const JsonValue* value = line.Find(key);
  return value != nullptr && value->is_string() ? value->AsString() : "";
}

std::int64_t GetInt(const JsonValue& line, std::string_view key) {
  const JsonValue* value = line.Find(key);
  return value != nullptr && value->is_number()
             ? static_cast<std::int64_t>(value->AsDouble())
             : 0;
}

double GetDouble(const JsonValue& line, std::string_view key) {
  const JsonValue* value = line.Find(key);
  return value != nullptr && value->is_number() ? value->AsDouble() : 0;
}

bool GetBool(const JsonValue& line, std::string_view key) {
  const JsonValue* value = line.Find(key);
  return value != nullptr && value->is_bool() && value->AsBool();
}

void AppendNode(const SpanTreeNode& node, int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  *out += node.record.name;
  *out += "  count=" + std::to_string(node.record.count) + "\n";
  for (const SpanTreeNode& child : node.children) {
    AppendNode(child, depth + 1, out);
  }
}

void FoldNode(const SpanTreeNode& node,
              std::map<std::string, std::int64_t>* folded) {
  std::string stack = node.record.path;
  std::replace(stack.begin(), stack.end(), '/', ';');
  (*folded)[stack] += node.record.count;
  for (const SpanTreeNode& child : node.children) {
    FoldNode(child, folded);
  }
}

std::string FormatMs(double ms) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

/// Exact order statistic: value at quantile p of a sorted sample.
double PercentileOf(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Result<EventLog> LoadEventLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open events file: " + path);
  }
  EventLog log;
  std::string text;
  std::set<std::int64_t> seqs_seen;
  while (std::getline(in, text)) {
    ++log.lines;
    if (text.empty()) {
      continue;
    }
    auto parsed = JsonValue::Parse(text);
    if (!parsed.ok() || !parsed.value().is_object()) {
      ++log.malformed;
      continue;
    }
    const JsonValue& line = parsed.value();
    const JsonValue* seq_field = line.Find("seq");
    if (seq_field != nullptr && seq_field->is_number()) {
      ++log.seq_present;
      const auto seq = static_cast<std::int64_t>(seq_field->AsDouble());
      if (!seqs_seen.insert(seq).second) {
        ++log.seq_duplicates;
      }
    } else {
      ++log.seq_missing;  // pre-PR7 logs and hand-written fixtures
    }
    const std::string event = GetString(line, "event");
    if (event == "span") {
      SpanRecord span;
      span.trace = GetString(line, "trace");
      span.span = GetString(line, "span");
      span.parent = GetString(line, "parent");
      span.name = GetString(line, "name");
      span.path = GetString(line, "path");
      span.count = GetInt(line, "count");
      span.total_ms = GetDouble(line, "dur_ms");
      if (!span.trace.empty() && !span.span.empty()) {
        log.spans.push_back(std::move(span));
      } else {
        ++log.malformed;
      }
    } else if (event == "job_end") {
      JobRecord job;
      job.job = GetInt(line, "job");
      job.label = GetString(line, "label");
      job.trace = GetString(line, "trace");
      job.backend = GetString(line, "backend");
      job.status = GetString(line, "status");
      job.degraded_from = GetString(line, "degraded_from");
      job.queue_seconds = GetDouble(line, "queue_seconds");
      job.wall_seconds = GetDouble(line, "wall_seconds");
      job.attempts = GetInt(line, "attempts");
      job.size = GetInt(line, "size");
      job.racers = GetInt(line, "racers");
      job.winner_margin = GetInt(line, "winner_margin");
      job.cache_hit = GetBool(line, "cache_hit");
      job.seq = seq_field != nullptr && seq_field->is_number()
                    ? static_cast<std::int64_t>(seq_field->AsDouble())
                    : -1;
      log.jobs.push_back(std::move(job));
    } else if (event == "job_start") {
      JobStartRecord start;
      start.job = GetInt(line, "job");
      start.label = GetString(line, "label");
      start.trace = GetString(line, "trace");
      start.k = GetInt(line, "k");
      start.n = GetInt(line, "num_vertices");
      // "backends" is the scheduler's "+"-joined portfolio ("bs+enum+sa").
      const std::string joined = GetString(line, "backends");
      std::size_t begin = 0;
      while (begin <= joined.size() && !joined.empty()) {
        const std::size_t end = joined.find('+', begin);
        start.backends.push_back(
            joined.substr(begin, end == std::string::npos ? end : end - begin));
        if (end == std::string::npos) {
          break;
        }
        begin = end + 1;
      }
      log.job_starts.push_back(std::move(start));
    } else if (event == "incumbent") {
      IncumbentRecord incumbent;
      incumbent.trace = GetString(line, "trace");
      incumbent.solver = GetString(line, "solver");
      incumbent.path = GetString(line, "path");
      incumbent.size = GetInt(line, "size");
      incumbent.work = GetInt(line, "work");
      incumbent.improvement = GetInt(line, "improvement");
      const JsonValue* value = line.Find("value");
      if (value != nullptr && value->is_number()) {
        incumbent.has_value = true;
        incumbent.value = value->AsDouble();
      }
      incumbent.elapsed_ms = GetDouble(line, "elapsed_ms");
      incumbent.seq = seq_field != nullptr && seq_field->is_number()
                          ? static_cast<std::int64_t>(seq_field->AsDouble())
                          : -1;
      log.incumbents.push_back(std::move(incumbent));
    } else if (event == "bound") {
      BoundRecord bound;
      bound.trace = GetString(line, "trace");
      bound.solver = GetString(line, "solver");
      bound.path = GetString(line, "path");
      bound.bound = GetDouble(line, "bound");
      bound.work = GetInt(line, "work");
      bound.update = GetInt(line, "update");
      bound.elapsed_ms = GetDouble(line, "elapsed_ms");
      bound.seq = seq_field != nullptr && seq_field->is_number()
                      ? static_cast<std::int64_t>(seq_field->AsDouble())
                      : -1;
      log.bounds.push_back(std::move(bound));
    } else if (event == "breaker_transition") {
      BreakerTransitionRecord transition;
      transition.backend = GetString(line, "backend");
      transition.from = GetString(line, "from");
      transition.to = GetString(line, "to");
      transition.consecutive_failures = GetInt(line, "consecutive_failures");
      transition.cooldown = GetInt(line, "cooldown");
      transition.seq = seq_field != nullptr && seq_field->is_number()
                           ? static_cast<std::int64_t>(seq_field->AsDouble())
                           : -1;
      log.breaker_transitions.push_back(std::move(transition));
    } else if (event == "watchdog_kill") {
      WatchdogKillRecord kill;
      kill.job = GetInt(line, "job");
      kill.backend = GetString(line, "backend");
      kill.attempt = GetInt(line, "attempt");
      kill.heartbeats = GetInt(line, "heartbeats");
      kill.seq = seq_field != nullptr && seq_field->is_number()
                     ? static_cast<std::int64_t>(seq_field->AsDouble())
                     : -1;
      log.watchdog_kills.push_back(std::move(kill));
    } else if (event == "admission_shed") {
      ShedRecord shed;
      shed.label = GetString(line, "label");
      shed.reason = GetString(line, "reason");
      shed.seq = seq_field != nullptr && seq_field->is_number()
                     ? static_cast<std::int64_t>(seq_field->AsDouble())
                     : -1;
      log.sheds.push_back(std::move(shed));
    } else if (event == "job_replayed") {
      log.replayed_labels.push_back(GetString(line, "label"));
    } else if (event == "job_retry") {
      ++log.retries;
    } else if (event == "job_fallback") {
      ++log.fallbacks;
    }
  }
  if (!seqs_seen.empty()) {
    const std::int64_t span = *seqs_seen.rbegin() - *seqs_seen.begin() + 1;
    log.seq_gaps = span - static_cast<std::int64_t>(seqs_seen.size());
  }
  return log;
}

std::vector<TraceSummary> BuildTraceForest(const EventLog& log) {
  // Merge span lines sharing (trace, span id): the same structural span is
  // flushed once per attempt/racer and must re-aggregate here.
  std::map<std::string, std::map<std::string, SpanRecord>> merged;
  for (const SpanRecord& span : log.spans) {
    SpanRecord& slot = merged[span.trace][span.span];
    if (slot.span.empty()) {
      slot = span;
    } else {
      slot.count += span.count;
      slot.total_ms += span.total_ms;
    }
  }

  std::vector<TraceSummary> forest;
  for (auto& [trace, spans] : merged) {
    TraceSummary summary;
    summary.trace = trace;
    summary.label = "?";
    for (const JobRecord& job : log.jobs) {
      if (job.trace == trace) {
        summary.label = job.label;
        summary.job = job.job;
        summary.backend = job.backend;
        summary.status = job.status;
        break;
      }
    }

    std::map<std::string, std::vector<const SpanRecord*>> children_of;
    std::vector<const SpanRecord*> roots;
    for (const auto& [span_id, record] : spans) {
      if (record.parent == kZeroId) {
        roots.push_back(&record);
      } else if (spans.find(record.parent) == spans.end()) {
        summary.orphans.push_back(record);
      } else {
        children_of[record.parent].push_back(&record);
      }
    }
    const auto by_path = [](const SpanRecord* a, const SpanRecord* b) {
      return a->path < b->path;
    };
    std::sort(roots.begin(), roots.end(), by_path);
    for (auto& [parent, kids] : children_of) {
      std::sort(kids.begin(), kids.end(), by_path);
    }
    std::sort(summary.orphans.begin(), summary.orphans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.path < b.path;
              });

    // Assemble recursively; the visited set makes malformed input (a parent
    // cycle from hand-edited logs) terminate instead of recursing forever.
    std::set<std::string> visited;
    const std::function<SpanTreeNode(const SpanRecord&)> assemble =
        [&](const SpanRecord& record) {
          SpanTreeNode node;
          node.record = record;
          if (!visited.insert(record.span).second) {
            return node;
          }
          const auto it = children_of.find(record.span);
          if (it != children_of.end()) {
            for (const SpanRecord* child : it->second) {
              node.children.push_back(assemble(*child));
            }
          }
          return node;
        };
    for (const SpanRecord* root : roots) {
      summary.roots.push_back(assemble(*root));
    }
    forest.push_back(std::move(summary));
  }

  std::sort(forest.begin(), forest.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              return std::tie(a.label, a.trace) < std::tie(b.label, b.trace);
            });
  return forest;
}

std::size_t CountOrphans(const std::vector<TraceSummary>& forest) {
  std::size_t orphans = 0;
  for (const TraceSummary& summary : forest) {
    orphans += summary.orphans.size();
  }
  return orphans;
}

std::string FormatTraceForest(const std::vector<TraceSummary>& forest) {
  std::string out;
  for (const TraceSummary& summary : forest) {
    out += "trace " + summary.trace + " label=" + summary.label;
    if (summary.job >= 0) {
      out += " job=" + std::to_string(summary.job) +
             " backend=" + summary.backend + " status=" + summary.status;
    }
    out += "\n";
    for (const SpanTreeNode& root : summary.roots) {
      AppendNode(root, 1, &out);
    }
    for (const SpanRecord& orphan : summary.orphans) {
      out += "  ORPHAN " + orphan.path + "  parent=" + orphan.parent + "\n";
    }
  }
  if (out.empty()) {
    out = "(no spans recorded)\n";
  }
  return out;
}

std::string FormatFoldedStacks(const std::vector<TraceSummary>& forest) {
  std::map<std::string, std::int64_t> folded;
  for (const TraceSummary& summary : forest) {
    for (const SpanTreeNode& root : summary.roots) {
      FoldNode(root, &folded);
    }
  }
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack + " " + std::to_string(count) + "\n";
  }
  return out;
}

std::string FormatLatencyReport(const EventLog& log) {
  std::map<std::string, std::vector<double>> by_backend;
  for (const JobRecord& job : log.jobs) {
    const std::string backend = job.backend.empty() ? "?" : job.backend;
    by_backend[backend].push_back((job.queue_seconds + job.wall_seconds) *
                                  1e3);
  }
  std::string out = "latency (ms, admission to merge), per backend\n";
  for (auto& [backend, samples] : by_backend) {
    std::sort(samples.begin(), samples.end());
    out += "  " + backend + ": n=" + std::to_string(samples.size()) +
           " p50=" + FormatMs(PercentileOf(samples, 0.50)) +
           " p90=" + FormatMs(PercentileOf(samples, 0.90)) +
           " p99=" + FormatMs(PercentileOf(samples, 0.99)) +
           " max=" + FormatMs(samples.back()) + "\n";
  }
  if (by_backend.empty()) {
    out += "  (no completed jobs)\n";
  }
  return out;
}

std::string FormatSloReport(const EventLog& log, double slo_ms) {
  std::string out =
      "slo objective: " + FormatMs(slo_ms) + " ms per job\n";
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> by_backend;
  std::int64_t total_ok = 0;
  std::int64_t total = 0;
  for (const JobRecord& job : log.jobs) {
    const std::string backend = job.backend.empty() ? "?" : job.backend;
    const double latency_ms = (job.queue_seconds + job.wall_seconds) * 1e3;
    auto& [ok, breaches] = by_backend[backend];
    ++total;
    if (latency_ms <= slo_ms) {
      ++ok;
      ++total_ok;
    } else {
      ++breaches;
    }
  }
  for (const auto& [backend, counts] : by_backend) {
    const auto& [ok, breaches] = counts;
    const double pct =
        100.0 * static_cast<double>(ok) / static_cast<double>(ok + breaches);
    out += "  " + backend + ": ok=" + std::to_string(ok) +
           " breaches=" + std::to_string(breaches) +
           " compliance=" + FormatMs(pct) + "%\n";
  }
  if (total == 0) {
    out += "  (no completed jobs)\n";
  } else {
    const double pct =
        100.0 * static_cast<double>(total_ok) / static_cast<double>(total);
    out += "  overall: ok=" + std::to_string(total_ok) + "/" +
           std::to_string(total) + " compliance=" + FormatMs(pct) + "%\n";
  }
  return out;
}

Status ValidateHealthEvents(const EventLog& log) {
  // Replay every backend's transition stream against the legal edge set.
  // "from" must match the replayed state so a dropped line is caught even
  // when the remaining edges happen to chain legally.
  static const std::set<std::pair<std::string, std::string>> kLegalEdges = {
      {"closed", "open"},
      {"open", "half_open"},
      {"half_open", "closed"},
      {"half_open", "open"},
  };
  std::map<std::string, std::string> state;  // backend -> replayed state
  for (std::size_t i = 0; i < log.breaker_transitions.size(); ++i) {
    const BreakerTransitionRecord& transition = log.breaker_transitions[i];
    if (transition.backend.empty()) {
      return Status::InvalidArgument("breaker transition " +
                                     std::to_string(i + 1) +
                                     " is missing its backend");
    }
    auto replayed = state.emplace(transition.backend, "closed").first;
    if (transition.from != replayed->second) {
      return Status::InvalidArgument(
          "breaker '" + transition.backend + "' transition " +
          std::to_string(i + 1) + " claims from=" + transition.from +
          " but the replayed state is " + replayed->second);
    }
    if (kLegalEdges.find({transition.from, transition.to}) ==
        kLegalEdges.end()) {
      return Status::InvalidArgument(
          "breaker '" + transition.backend + "' transition " +
          std::to_string(i + 1) + " takes an illegal edge " + transition.from +
          "->" + transition.to +
          (transition.from == "open" && transition.to == "closed"
               ? " (a breaker must recover through half_open)"
               : ""));
    }
    replayed->second = transition.to;
  }

  // A watchdog kill for a job must be sequenced before that job's job_end:
  // the scheduler emits the kill before the attempt can fail over and the
  // job merge a response. Jobs without a job_end (log truncated mid-run)
  // pass vacuously, as do lines without envelope seq stamps.
  std::map<std::int64_t, std::int64_t> job_end_seq;
  for (const JobRecord& job : log.jobs) {
    if (job.seq >= 0) {
      job_end_seq.emplace(job.job, job.seq);
    }
  }
  for (const WatchdogKillRecord& kill : log.watchdog_kills) {
    if (kill.seq < 0) {
      continue;
    }
    const auto end = job_end_seq.find(kill.job);
    if (end != job_end_seq.end() && kill.seq > end->second) {
      return Status::InvalidArgument(
          "watchdog kill for job " + std::to_string(kill.job) + " (seq " +
          std::to_string(kill.seq) + ") is sequenced after its job_end (seq " +
          std::to_string(end->second) + ")");
    }
  }
  return Status::Ok();
}

std::string FormatHealthReport(const EventLog& log) {
  std::string out = "health report\n";

  out += "breaker transitions, per backend\n";
  // backend -> edge ("from->to") -> count; both keys sort lexicographically.
  std::map<std::string, std::map<std::string, std::int64_t>> edges;
  for (const BreakerTransitionRecord& transition : log.breaker_transitions) {
    ++edges[transition.backend][transition.from + "->" + transition.to];
  }
  for (const auto& [backend, counts] : edges) {
    out += "  " + backend + ":";
    for (const auto& [edge, count] : counts) {
      out += " " + edge + "=" + std::to_string(count);
    }
    out += "\n";
  }
  if (edges.empty()) {
    out += "  (no breaker transitions)\n";
  }

  out += "watchdog kills, per backend\n";
  std::map<std::string, std::int64_t> kills;
  for (const WatchdogKillRecord& kill : log.watchdog_kills) {
    ++kills[kill.backend];
  }
  for (const auto& [backend, count] : kills) {
    out += "  " + backend + ": kills=" + std::to_string(count) + "\n";
  }
  if (kills.empty()) {
    out += "  (no watchdog kills)\n";
  }

  out += "admission sheds, per reason\n";
  std::map<std::string, std::int64_t> reasons;
  for (const ShedRecord& shed : log.sheds) {
    ++reasons[shed.reason];
  }
  for (const auto& [reason, count] : reasons) {
    out += "  " + reason + ": " + std::to_string(count) + "\n";
  }
  if (reasons.empty()) {
    out += "  (no sheds)\n";
  }
  return out;
}

}  // namespace qplex::obs
