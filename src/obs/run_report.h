#ifndef QPLEX_OBS_RUN_REPORT_H_
#define QPLEX_OBS_RUN_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qplex::obs {

/// A structured, machine-readable record of one solver or bench run: free-form
/// metadata, a metrics snapshot (counters / gauges / histograms / series) and
/// the nested span-timing tree. Exported as JSON (schema below) or as
/// AsciiTable text for humans.
///
/// JSON schema (version 1):
///   {
///     "report": "<name>", "schema_version": 1,
///     "meta": { ... caller-provided key/values ... },
///     "counters":   { "<metric>": <int>, ... },
///     "gauges":     { "<metric>": <double>, ... },
///     "histograms": { "<metric>": {"count","sum","min","max","mean",
///                                  "p50","p90","p99",
///                                  "buckets": [[lower_bound, count], ...]} },
///     "series":     { "<metric>": [<double>, ...], ... },
///     "trace":      { "name","count","total_seconds","children":[...] }
///   }
class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  /// Attaches caller metadata (algorithm, dataset, k, seed, wall time...).
  void SetMeta(std::string key, JsonValue value);

  /// Snapshots the global metrics registry and tracer into this report.
  void Capture() {
    Capture(MetricsRegistry::Global(), Tracer::Global());
  }
  void Capture(const MetricsRegistry& registry, const Tracer& tracer);

  const std::string& name() const { return name_; }
  const MetricsSnapshot& metrics() const { return metrics_; }
  const TraceNodeSnapshot& trace() const { return trace_; }

  JsonValue ToJson() const;
  std::string ToJsonString(int indent = 2) const {
    return ToJson().Dump(indent);
  }

  /// Human-readable rendering: metadata, counter/gauge tables, histogram and
  /// series summaries, and the indented trace tree.
  std::string ToPrettyString() const;

  /// Writes the JSON form (pretty, trailing newline) to `path`; "-" writes
  /// to stdout.
  Status WriteJsonFile(const std::string& path, int indent = 2) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, JsonValue>> meta_;
  MetricsSnapshot metrics_;
  TraceNodeSnapshot trace_;
};

}  // namespace qplex::obs

#endif  // QPLEX_OBS_RUN_REPORT_H_
