#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace qplex::obs {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Lock-free running maximum via compare-exchange.
void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(kRelaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value, kRelaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(kRelaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value, kRelaxed)) {
  }
}

}  // namespace

void Gauge::Set(double value) {
  value_.store(value, kRelaxed);
  bool had_value = has_value_.exchange(true, kRelaxed);
  if (!had_value) {
    // First write races are benign: both writers then run AtomicMax.
    max_.store(value, kRelaxed);
  }
  AtomicMax(&max_, value);
}

void Gauge::InstallFirstValue(double value) {
  // Exactly one writer installs the first value; the rest spin (nanoseconds:
  // the winner's store is the next instruction) until it is visible. A plain
  // first-write race would let the default 0 leak into the reduction — a
  // false minimum for SetMin — so unlike Set() the install must be ordered.
  if (!init_claimed_.exchange(true, std::memory_order_acq_rel)) {
    value_.store(value, kRelaxed);
    max_.store(value, kRelaxed);
    has_value_.store(true, std::memory_order_release);
  } else {
    while (!has_value_.load(std::memory_order_acquire)) {
    }
  }
}

void Gauge::SetMin(double value) {
  InstallFirstValue(value);
  AtomicMin(&value_, value);
  AtomicMax(&max_, value);
}

void Gauge::SetMax(double value) {
  InstallFirstValue(value);
  AtomicMax(&value_, value);
  AtomicMax(&max_, value);
}

void Gauge::Reset() {
  value_.store(0, kRelaxed);
  max_.store(0, kRelaxed);
  has_value_.store(false, kRelaxed);
  init_claimed_.store(false, kRelaxed);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) {
    return 0;
  }
  if (p < 0) {
    p = 0;
  }
  if (p > 1) {
    p = 1;
  }
  const double target = p * static_cast<double>(count);
  double cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto& [lower, bucket_count] = buckets[i];
    const bool last = i + 1 == buckets.size();
    if (cumulative + static_cast<double>(bucket_count) >= target || last) {
      double fraction =
          bucket_count > 0
              ? (target - cumulative) / static_cast<double>(bucket_count)
              : 0;
      if (fraction < 0) {
        fraction = 0;
      }
      if (fraction > 1) {
        fraction = 1;
      }
      const double estimate = lower + fraction * lower;  // upper bound = 2x
      return std::min(std::max(estimate, min), max);
    }
    cumulative += static_cast<double>(bucket_count);
  }
  return max;
}

int Histogram::BucketIndex(double value) {
  if (!(value > 0)) {
    return 0;
  }
  const int exponent = std::ilogb(value);  // floor(log2(value))
  const int index = exponent + 32;
  if (index < 0) {
    return 0;
  }
  if (index >= kNumBuckets) {
    return kNumBuckets - 1;
  }
  return index;
}

double Histogram::BucketLowerBound(int index) {
  return std::ldexp(1.0, index - 32);  // 2^(index-32)
}

void Histogram::Record(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, kRelaxed);
  const std::int64_t previous = count_.fetch_add(1, kRelaxed);
  sum_.fetch_add(value, kRelaxed);
  if (previous == 0) {
    min_.store(value, kRelaxed);
    max_.store(value, kRelaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(kRelaxed);
  snapshot.sum = sum_.load(kRelaxed);
  snapshot.min = min_.load(kRelaxed);
  snapshot.max = max_.load(kRelaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::int64_t bucket_count = buckets_[i].load(kRelaxed);
    if (bucket_count > 0) {
      snapshot.buckets.emplace_back(BucketLowerBound(i), bucket_count);
    }
  }
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, kRelaxed);
  }
  count_.store(0, kRelaxed);
  sum_.store(0, kRelaxed);
  min_.store(0, kRelaxed);
  max_.store(0, kRelaxed);
}

void Series::Append(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_appends_;
  // Honour the decimation stride: only every stride_-th append is stored.
  if ((total_appends_ - 1) % stride_ != 0) {
    return;
  }
  values_.push_back(value);
  if (values_.size() >= capacity_) {
    // Drop every other stored point and double the stride; the stored points
    // stay uniformly spaced over the whole history.
    std::vector<double> kept;
    kept.reserve(values_.size() / 2 + 1);
    for (std::size_t i = 0; i < values_.size(); i += 2) {
      kept.push_back(values_[i]);
    }
    values_ = std::move(kept);
    stride_ *= 2;
  }
}

std::vector<double> Series::Values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return values_;
}

std::int64_t Series::TotalAppends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_appends_;
}

std::int64_t Series::Stride() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stride_;
}

void Series::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.clear();
  total_appends_ = 0;
  stride_ = 1;
}

namespace {

/// Find-or-create into a node-stable map; generic over the metric type.
template <typename T>
T& FindOrCreate(std::map<std::string, std::unique_ptr<T>, std::less<>>* map,
                std::string_view name) {
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreate(&counters_, name);
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreate(&gauges_, name);
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreate(&histograms_, name);
}

Series& MetricsRegistry::GetSeries(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreate(&series_, name);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
  for (auto& [name, series] : series_) {
    series->Reset();
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Get());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Get());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  for (const auto& [name, series] : series_) {
    snapshot.series.emplace_back(name, series->Values());
  }
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace qplex::obs
