#include "obs/events.h"

#include <fstream>
#include <iostream>

namespace qplex::obs {
namespace {

std::atomic<EventSink*> g_global_sink{nullptr};

/// Process-wide sequence stamp. One counter across every sink instance, so a
/// merged multi-sink JSONL stream still sorts into the true emission order
/// even when ts_ms ties at millisecond resolution.
std::atomic<std::int64_t> g_seq{0};

}  // namespace

std::string_view EventLevelName(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug:
      return "debug";
    case EventLevel::kInfo:
      return "info";
    case EventLevel::kWarn:
      return "warn";
  }
  return "info";
}

EventSink::EventSink(std::ostream* stream, std::unique_ptr<std::ostream> owned,
                     int progress_interval_ms)
    : stream_(stream),
      owned_(std::move(owned)),
      progress_interval_ms_(progress_interval_ms) {}

EventSink::~EventSink() {
  std::lock_guard<std::mutex> lock(mutex_);
  stream_->flush();
}

Result<std::unique_ptr<EventSink>> EventSink::Open(const std::string& path,
                                                   int progress_interval_ms) {
  if (progress_interval_ms < 1) {
    return Status::InvalidArgument("progress interval must be >= 1 ms, got " +
                                   std::to_string(progress_interval_ms));
  }
  if (path == "-") {
    return std::unique_ptr<EventSink>(
        new EventSink(&std::cout, nullptr, progress_interval_ms));
  }
  auto file = std::make_unique<std::ofstream>(path,
                                              std::ios::out | std::ios::trunc);
  if (!*file) {
    return Status::InvalidArgument("cannot open event stream for writing: " +
                                   path);
  }
  std::ostream* stream = file.get();
  return std::unique_ptr<EventSink>(
      new EventSink(stream, std::move(file), progress_interval_ms));
}

void EventSink::EmitLocked(
    EventLevel level, std::string_view solver, std::string_view event,
    std::initializer_list<std::pair<std::string_view, JsonValue>> fields,
    std::string_view trace) {
  JsonValue line = JsonValue::Object();
  line.Set("ts_ms", since_open_.ElapsedMillis());
  line.Set("seq", g_seq.fetch_add(1, std::memory_order_relaxed));
  line.Set("level", std::string(EventLevelName(level)));
  line.Set("solver", std::string(solver));
  line.Set("event", std::string(event));
  if (!trace.empty()) {
    line.Set("trace", std::string(trace));
  }
  for (const auto& [key, value] : fields) {
    line.Set(std::string(key), value);
  }
  *stream_ << line.Dump() << "\n";
  stream_->flush();
  lines_written_.fetch_add(1, std::memory_order_relaxed);
}

void EventSink::Emit(
    EventLevel level, std::string_view solver, std::string_view event,
    std::initializer_list<std::pair<std::string_view, JsonValue>> fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  EmitLocked(level, solver, event, fields);
}

namespace {

std::string ProgressKey(std::string_view solver, std::string_view event,
                        std::string_view scope) {
  std::string key = std::string(solver) + "/" + std::string(event);
  if (!scope.empty()) {
    key.push_back('/');
    key.append(scope);
  }
  return key;
}

}  // namespace

bool EventSink::ProgressDue(std::string_view solver, std::string_view event,
                            std::string_view scope) const {
  const double now_ms = since_open_.ElapsedMillis();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = ProgressKey(solver, event, scope);
  const auto it = progress_last_ms_.find(key);
  return it == progress_last_ms_.end() ||
         now_ms - it->second >= progress_interval_ms_;
}

bool EventSink::EmitProgress(
    std::string_view solver, std::string_view event,
    std::initializer_list<std::pair<std::string_view, JsonValue>> fields,
    std::string_view scope) {
  const double now_ms = since_open_.ElapsedMillis();
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = ProgressKey(solver, event, scope);
  const auto it = progress_last_ms_.find(key);
  if (it != progress_last_ms_.end() &&
      now_ms - it->second < progress_interval_ms_) {
    return false;
  }
  progress_last_ms_[std::move(key)] = now_ms;
  EmitLocked(EventLevel::kInfo, solver, event, fields, scope);
  return true;
}

EventSink* EventSink::Global() {
  return g_global_sink.load(std::memory_order_acquire);
}

void EventSink::InstallGlobal(EventSink* sink) {
  g_global_sink.store(sink, std::memory_order_release);
}

void EmitEvent(
    EventLevel level, std::string_view solver, std::string_view event,
    std::initializer_list<std::pair<std::string_view, JsonValue>> fields) {
  EventSink* sink = EventSink::Global();
  if (sink != nullptr) {
    sink->Emit(level, solver, event, fields);
  }
}

}  // namespace qplex::obs
