#ifndef QPLEX_OBS_INCUMBENT_H_
#define QPLEX_OBS_INCUMBENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/stopwatch.h"

namespace qplex::obs {

class Counter;

/// Anytime-convergence reporter: every backend owns one per solve and calls
/// Report() whenever it improves its best solution, producing a monotone
/// "incumbent" event timeline (and, for bounded searches, a "bound" timeline)
/// in the global event sink.
///
/// Event schema (fields beyond the sink envelope):
///
///   incumbent: {trace?, path?, size, work, improvement, value?, elapsed_ms}
///   bound:     {trace?, path?, bound, work, update, elapsed_ms}
///
/// `work` is the backend's deterministic progress unit (branch nodes, masks
/// scanned, sweeps, probes, iterations, LP nodes) so two same-seed runs
/// produce byte-identical timelines regardless of wall-clock jitter;
/// `elapsed_ms` rides along for wall-clock views only. `improvement` /
/// `update` are 1-based per-reporter indices. `trace` and `path` are captured
/// from the active RequestScope at construction, keying each timeline to the
/// exact structural span (racer / retry attempt / fallback hop) that produced
/// it — a retried attempt starts a fresh timeline instead of breaking the
/// previous one's monotonicity.
///
/// Cost model: when no sink is installed the constructor is one atomic load
/// and every Report() is a single branch — no allocation, no field building
/// (gated by bench/telemetry_overhead). Report() only emits on a *strict*
/// size improvement, so noisy searches (annealer repair, MILP rounding) stay
/// monotone by construction.
class IncumbentReporter {
 public:
  explicit IncumbentReporter(std::string_view solver);

  IncumbentReporter(const IncumbentReporter&) = delete;
  IncumbentReporter& operator=(const IncumbentReporter&) = delete;

  /// True when a sink was installed at construction; callers can skip
  /// computing sizes/bounds entirely when false.
  bool enabled() const { return enabled_; }

  /// Records a candidate of `size` found after `work` deterministic progress
  /// units; emits an "incumbent" event iff size strictly beats the best seen.
  void Report(int size, std::int64_t work);

  /// Same, additionally attaching the backend's native objective ("value":
  /// QUBO energy, MILP objective) to the event.
  void Report(int size, std::int64_t work, double value);

  /// Records a dual/upper bound after `work` units; emits a "bound" event iff
  /// the bound changed since the last one reported.
  void ReportBound(double bound, std::int64_t work);

  int best_size() const { return best_size_; }
  int improvements() const { return improvements_; }

 private:
  void Emit(int size, std::int64_t work, bool has_value, double value);

  bool enabled_;
  int best_size_ = -1;
  int improvements_ = 0;
  int bound_updates_ = 0;
  bool has_bound_ = false;
  double last_bound_ = 0;
  // The fields below are only populated when enabled_.
  std::string solver_;
  std::string trace_;
  std::string path_;
  Counter* payload_counter_ = nullptr;
  Stopwatch watch_;
};

}  // namespace qplex::obs

#endif  // QPLEX_OBS_INCUMBENT_H_
