#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace qplex::obs {

bool JsonValue::AsBool() const {
  QPLEX_CHECK(type_ == Type::kBool) << "JsonValue is not a bool";
  return bool_;
}

std::int64_t JsonValue::AsInt() const {
  QPLEX_CHECK(type_ == Type::kInt) << "JsonValue is not an integer";
  return int_;
}

double JsonValue::AsDouble() const {
  QPLEX_CHECK(is_number()) << "JsonValue is not a number";
  return type_ == Type::kInt ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::AsString() const {
  QPLEX_CHECK(type_ == Type::kString) << "JsonValue is not a string";
  return string_;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) {
    return array_.size();
  }
  if (type_ == Type::kObject) {
    return object_.size();
  }
  return 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  QPLEX_CHECK(type_ == Type::kArray && index < array_.size())
      << "bad array access";
  return array_[index];
}

void JsonValue::Append(JsonValue value) {
  QPLEX_CHECK(type_ == Type::kArray) << "Append on non-array";
  array_.push_back(std::move(value));
}

void JsonValue::Set(std::string key, JsonValue value) {
  QPLEX_CHECK(type_ == Type::kObject) << "Set on non-object";
  for (auto& [existing, held] : object_) {
    if (existing == key) {
      held = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [existing, held] : object_) {
    if (existing == key) {
      return &held;
    }
  }
  return nullptr;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    *out += "null";
    return;
  }
  // Prefer the short %.15g form when it round-trips; fall back to %.17g,
  // which round-trips every finite double.
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.15g", value);
  double reparsed = 0;
  std::sscanf(buffer, "%lf", &reparsed);
  if (reparsed != value) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  *out += buffer;
}

void AppendNewlineIndent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      *out += std::to_string(int_);
      return;
    case Type::kDouble:
      AppendDouble(out, double_);
      return;
    case Type::kString:
      *out += JsonEscape(string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        if (indent >= 0) {
          AppendNewlineIndent(out, indent, depth + 1);
        }
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) {
        AppendNewlineIndent(out, indent, depth);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        if (indent >= 0) {
          AppendNewlineIndent(out, indent, depth + 1);
        }
        *out += JsonEscape(object_[i].first);
        *out += indent >= 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) {
        AppendNewlineIndent(out, indent, depth);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    QPLEX_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    Result<JsonValue> result = [&]() -> Result<JsonValue> {
      const char c = text_[pos_];
      if (c == '{') {
        return ParseObject();
      }
      if (c == '[') {
        return ParseArray();
      }
      if (c == '"') {
        QPLEX_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      if (ConsumeLiteral("true")) {
        return JsonValue(true);
      }
      if (ConsumeLiteral("false")) {
        return JsonValue(false);
      }
      if (ConsumeLiteral("null")) {
        return JsonValue();
      }
      return ParseNumber();
    }();
    --depth_;
    return result;
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      return object;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      QPLEX_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      QPLEX_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      object.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) {
        return object;
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      return array;
    }
    for (;;) {
      QPLEX_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) {
        return array;
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // produced by our own writer; they decode as two 3-byte units).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    bool is_integer = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Error("expected a JSON value");
    }
    if (is_integer) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return JsonValue(value);
      }
      // Out-of-range integers fall through to double parsing.
    }
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Error("malformed number");
    }
    return JsonValue(value);
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace qplex::obs
