#include "obs/convergence.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>
#include <tuple>
#include <utility>

namespace qplex::obs {
namespace {

std::string FormatMs(double ms) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

std::string FormatBound(double bound) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", bound);
  return buffer;
}

/// "job/racer@bs/attempt@1/solve" -> "racer@bs/attempt@1"; empty -> "(direct)".
std::string DisplayPath(const std::string& path) {
  if (path.empty()) {
    return "(direct)";
  }
  std::string display = path;
  constexpr std::string_view kJobPrefix = "job/";
  if (display.rfind(kJobPrefix, 0) == 0) {
    display.erase(0, kJobPrefix.size());
  }
  constexpr std::string_view kSolveSuffix = "/solve";
  if (display.size() >= kSolveSuffix.size() &&
      display.compare(display.size() - kSolveSuffix.size(),
                      kSolveSuffix.size(), kSolveSuffix) == 0) {
    display.erase(display.size() - kSolveSuffix.size());
  }
  return display.empty() ? "(direct)" : display;
}

/// The racer a path belongs to ("racer@bs/attempt@2" -> "bs"); empty when the
/// path has no racer component (plain CLI solves).
std::string RacerOf(const std::string& path) {
  constexpr std::string_view kMarker = "racer@";
  const std::size_t at = path.find(kMarker);
  if (at == std::string::npos) {
    return "";
  }
  const std::size_t begin = at + kMarker.size();
  const std::size_t end = path.find('/', begin);
  return path.substr(begin, end == std::string::npos ? end : end - begin);
}

/// A timeline is one reporter's emission stream: all events sharing
/// (trace, path, solver).
using TimelineKey = std::tuple<std::string, std::string, std::string>;

TimelineKey KeyOf(const IncumbentRecord& r) {
  return {r.trace, r.path, r.solver};
}

TimelineKey KeyOf(const BoundRecord& r) { return {r.trace, r.path, r.solver}; }

struct Timeline {
  std::vector<const IncumbentRecord*> points;
  std::vector<const BoundRecord*> bound_points;
};

/// Timelines grouped per trace, ordered by (path, solver).
using TraceTimelines = std::map<TimelineKey, Timeline>;

std::map<std::string, TraceTimelines> GroupByTrace(const EventLog& log) {
  std::map<std::string, TraceTimelines> by_trace;
  for (const IncumbentRecord& record : log.incumbents) {
    by_trace[record.trace][KeyOf(record)].points.push_back(&record);
  }
  for (const BoundRecord& record : log.bounds) {
    by_trace[record.trace][KeyOf(record)].bound_points.push_back(&record);
  }
  for (auto& [trace, timelines] : by_trace) {
    for (auto& [key, timeline] : timelines) {
      std::sort(timeline.points.begin(), timeline.points.end(),
                [](const IncumbentRecord* a, const IncumbentRecord* b) {
                  return a->improvement < b->improvement;
                });
      std::sort(timeline.bound_points.begin(), timeline.bound_points.end(),
                [](const BoundRecord* a, const BoundRecord* b) {
                  return a->update < b->update;
                });
    }
  }
  return by_trace;
}

void AppendTimelines(const TraceTimelines& timelines,
                     const ConvergenceOptions& options, std::string* out) {
  for (const auto& [key, timeline] : timelines) {
    const auto& [trace, path, solver] = key;
    if (!timeline.points.empty()) {
      const IncumbentRecord* best = timeline.points.back();
      *out += "  timeline " + solver + " @ " + DisplayPath(path) +
              "  improvements=" +
              std::to_string(timeline.points.size()) +
              " best=" + std::to_string(best->size);
      if (options.include_timing) {
        *out += " t_first=" + FormatMs(timeline.points.front()->elapsed_ms) +
                "ms t_best=" + FormatMs(best->elapsed_ms) + "ms";
      }
      *out += "\n";
      for (const IncumbentRecord* point : timeline.points) {
        *out += "    #" + std::to_string(point->improvement) +
                " size=" + std::to_string(point->size) +
                " work=" + std::to_string(point->work);
        if (point->has_value) {
          *out += " value=" + FormatBound(point->value);
        }
        if (options.include_timing) {
          *out += " t=" + FormatMs(point->elapsed_ms) + "ms";
        }
        *out += "\n";
      }
    }
    if (!timeline.bound_points.empty()) {
      *out += "  bound " + solver + " @ " + DisplayPath(path) + "  updates=" +
              std::to_string(timeline.bound_points.size()) + " final=" +
              FormatBound(timeline.bound_points.back()->bound) + "\n";
      for (const BoundRecord* point : timeline.bound_points) {
        *out += "    #" + std::to_string(point->update) +
                " bound=" + FormatBound(point->bound) +
                " work=" + std::to_string(point->work);
        if (options.include_timing) {
          *out += " t=" + FormatMs(point->elapsed_ms) + "ms";
        }
        *out += "\n";
      }
    }
  }
}

/// Primal-dual gap line: primal = best incumbent across the trace, dual =
/// tightest (smallest) final upper bound across its bound timelines.
void AppendGap(const TraceTimelines& timelines, std::int64_t job_size,
               std::string* out) {
  std::int64_t primal = job_size;
  bool has_dual = false;
  double dual = 0;
  for (const auto& [key, timeline] : timelines) {
    if (!timeline.points.empty()) {
      primal = std::max(primal, timeline.points.back()->size);
    }
    if (!timeline.bound_points.empty()) {
      const double final_bound = timeline.bound_points.back()->bound;
      if (!has_dual || final_bound < dual) {
        has_dual = true;
        dual = final_bound;
      }
    }
  }
  if (!has_dual) {
    *out += "  gap: primal=" + std::to_string(primal) + " dual=(none)\n";
    return;
  }
  const double gap = dual - static_cast<double>(primal);
  *out += "  gap: primal=" + std::to_string(primal) +
          " dual=" + FormatBound(dual) + " gap=" + FormatBound(gap) +
          (gap <= 0 ? " (closed)" : "") + "\n";
}

/// Per-racer rollup of a portfolio job: best size and improvement count per
/// racer component of the path.
void AppendRace(const TraceTimelines& timelines, const JobRecord& job,
                const ConvergenceOptions& options, std::string* out) {
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> per_racer;
  for (const auto& [key, timeline] : timelines) {
    if (timeline.points.empty()) {
      continue;
    }
    const std::string racer = RacerOf(std::get<1>(key));
    if (racer.empty()) {
      continue;
    }
    auto& [best, improvements] = per_racer[racer];
    best = std::max(best, timeline.points.back()->size);
    improvements += static_cast<std::int64_t>(timeline.points.size());
  }
  *out += "  race: winner=" + job.backend +
          " margin=" + std::to_string(job.winner_margin) +
          " racers=" + std::to_string(job.racers) + "\n";
  for (const auto& [racer, stats] : per_racer) {
    *out += "    " + racer + ": best=" + std::to_string(stats.first) +
            " improvements=" + std::to_string(stats.second) +
            (racer == job.backend ? "  <- winner" : "") + "\n";
  }
  if (!options.include_timing) {
    return;
  }
  // Seq-ordered lead changes: who held the best size as events landed. This
  // interleaving is real emission order but scheduling-dependent, hence
  // timing-view only.
  std::vector<const IncumbentRecord*> ordered;
  for (const auto& [key, timeline] : timelines) {
    for (const IncumbentRecord* point : timeline.points) {
      if (point->seq >= 0 && !RacerOf(point->path).empty()) {
        ordered.push_back(point);
      }
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const IncumbentRecord* a, const IncumbentRecord* b) {
              return a->seq < b->seq;
            });
  std::string leader;
  std::int64_t lead_size = -1;
  std::string line;
  for (const IncumbentRecord* point : ordered) {
    if (point->size > lead_size) {
      lead_size = point->size;
      const std::string racer = RacerOf(point->path);
      if (racer != leader) {
        leader = racer;
        line += (line.empty() ? "" : " -> ") + racer + "@" +
                std::to_string(point->size);
      }
    }
  }
  if (!line.empty()) {
    *out += "    lead: " + line + "\n";
  }
}

}  // namespace

std::string FormatConvergenceReport(const EventLog& log,
                                    const ConvergenceOptions& options) {
  std::map<std::string, TraceTimelines> by_trace = GroupByTrace(log);

  std::string out = "anytime convergence report\n";
  out += "jobs=" + std::to_string(log.jobs.size()) +
         " incumbent_events=" + std::to_string(log.incumbents.size()) +
         " bound_events=" + std::to_string(log.bounds.size()) + "\n";

  // Jobs ordered by (label, trace) like every other analyzer view.
  std::vector<const JobRecord*> jobs;
  jobs.reserve(log.jobs.size());
  for (const JobRecord& job : log.jobs) {
    jobs.push_back(&job);
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const JobRecord* a, const JobRecord* b) {
              return std::tie(a->label, a->trace) <
                     std::tie(b->label, b->trace);
            });

  for (const JobRecord* job : jobs) {
    out += "\njob label=" + job->label + " trace=" + job->trace +
           " backend=" + job->backend + " status=" + job->status +
           " final_size=" + std::to_string(job->size) + "\n";
    for (const JobStartRecord& start : log.job_starts) {
      if (start.trace == job->trace) {
        std::string backends;
        for (const std::string& backend : start.backends) {
          backends += (backends.empty() ? "" : "+") + backend;
        }
        out += "  instance: n=" + std::to_string(start.n) +
               " k=" + std::to_string(start.k) + " backends=" + backends +
               "\n";
        break;
      }
    }
    const auto it = by_trace.find(job->trace);
    const bool has_timelines = it != by_trace.end();
    if (has_timelines) {
      AppendTimelines(it->second, options, &out);
      AppendGap(it->second, job->size, &out);
    } else {
      out += "  (no incumbent events";
      out += job->cache_hit ? "; cache hit)\n" : ")\n";
    }
    if (job->racers > 1 && has_timelines) {
      AppendRace(it->second, *job, options, &out);
    }
    if (has_timelines) {
      by_trace.erase(it);
    }
  }

  // Timelines whose trace matched no job_end: plain CLI solves (empty trace)
  // or truncated logs. Still rendered so the report reconstructs from the
  // JSONL stream alone.
  bool unattached_header = false;
  for (const auto& [trace, timelines] : by_trace) {
    if (!unattached_header) {
      out += "\nunattached timelines\n";
      unattached_header = true;
    }
    out += trace.empty() ? "(no trace)\n" : "trace " + trace + "\n";
    AppendTimelines(timelines, options, &out);
    AppendGap(timelines, 0, &out);
  }
  return out;
}

std::vector<std::string> ValidateIncumbents(const EventLog& log) {
  std::vector<std::string> violations;
  const auto describe = [](const TimelineKey& key) {
    const auto& [trace, path, solver] = key;
    return solver + " @ " + DisplayPath(path) +
           (trace.empty() ? "" : " trace=" + trace);
  };
  for (const auto& [trace, timelines] : GroupByTrace(log)) {
    for (const auto& [key, timeline] : timelines) {
      for (std::size_t i = 1; i < timeline.points.size(); ++i) {
        const IncumbentRecord& prev = *timeline.points[i - 1];
        const IncumbentRecord& cur = *timeline.points[i];
        if (cur.size <= prev.size) {
          violations.push_back("non-improving incumbent in " + describe(key) +
                               ": size " + std::to_string(prev.size) +
                               " -> " + std::to_string(cur.size));
        }
        if (cur.work < prev.work) {
          violations.push_back("work moved backwards in " + describe(key) +
                               ": " + std::to_string(prev.work) + " -> " +
                               std::to_string(cur.work));
        }
        if (cur.improvement != prev.improvement + 1) {
          violations.push_back("improvement index gap in " + describe(key) +
                               ": #" + std::to_string(prev.improvement) +
                               " -> #" + std::to_string(cur.improvement));
        }
      }
      for (std::size_t i = 1; i < timeline.bound_points.size(); ++i) {
        const BoundRecord& prev = *timeline.bound_points[i - 1];
        const BoundRecord& cur = *timeline.bound_points[i];
        if (cur.bound > prev.bound) {
          violations.push_back("loosened bound in " + describe(key) + ": " +
                               FormatBound(prev.bound) + " -> " +
                               FormatBound(cur.bound));
        }
        if (cur.work < prev.work) {
          violations.push_back("bound work moved backwards in " +
                               describe(key) + ": " +
                               std::to_string(prev.work) + " -> " +
                               std::to_string(cur.work));
        }
      }
    }
  }
  return violations;
}

}  // namespace qplex::obs
