#include "obs/reqtrace.h"

#include <vector>

#include "obs/events.h"

namespace qplex::obs {
namespace {

/// Per-thread scope stack plus the collector the innermost scopes record
/// into. Worker threads in the scheduler each carry their own stack; solver
/// internal threads start with an empty one, which is exactly what keeps
/// them from attaching spans to a request they are not serving.
thread_local std::vector<const SpanContext*> tls_scope_stack;
thread_local SpanCollector* tls_collector = nullptr;

}  // namespace

std::uint64_t Fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string IdHex(std::uint64_t id) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = kDigits[id & 0xf];
    id >>= 4;
  }
  return hex;
}

std::uint64_t DeriveTraceId(std::string_view label, std::int64_t job_id) {
  std::string key = "qplex-trace:";
  key.append(label);
  key.push_back('#');
  key.append(std::to_string(job_id));
  return Fnv1a64(key);
}

SpanContext RootSpan(std::uint64_t trace_id, std::string_view name) {
  SpanContext context;
  context.trace_id = trace_id;
  context.trace_hex = IdHex(trace_id);
  context.parent_id = 0;
  context.path = std::string(name);
  context.name = std::string(name);
  context.span_id = Fnv1a64(context.trace_hex + ":" + context.path);
  return context;
}

SpanContext ChildSpan(const SpanContext& parent, std::string_view name,
                      std::string_view qualifier) {
  SpanContext context;
  context.trace_id = parent.trace_id;
  context.trace_hex = parent.trace_hex;
  context.parent_id = parent.span_id;
  context.name = std::string(name);
  if (!qualifier.empty()) {
    context.name.push_back('@');
    context.name.append(qualifier);
  }
  context.path = parent.path + "/" + context.name;
  context.span_id = Fnv1a64(context.trace_hex + ":" + context.path);
  return context;
}

void EmitSpanEvent(const SpanContext& context, std::int64_t count,
                   double total_ms) {
  EmitEvent(EventLevel::kDebug, "trace", "span",
            {{"trace", JsonValue(context.trace_hex)},
             {"span", JsonValue(IdHex(context.span_id))},
             {"parent", JsonValue(IdHex(context.parent_id))},
             {"name", JsonValue(context.name)},
             {"path", JsonValue(context.path)},
             {"count", JsonValue(count)},
             {"dur_ms", JsonValue(total_ms)}});
}

SpanCollector::~SpanCollector() { Flush(); }

void SpanCollector::Record(const SpanContext& context, double elapsed_ms) {
  Node& node = nodes_[context.path];
  if (node.count == 0) {
    node.context = context;
  }
  node.count += 1;
  node.total_ms += elapsed_ms;
}

void SpanCollector::Flush() {
  for (const auto& [path, node] : nodes_) {
    EmitSpanEvent(node.context, node.count, node.total_ms);
  }
  nodes_.clear();
}

RequestScope::RequestScope(SpanContext context, SpanCollector* collector)
    : context_(std::move(context)), saved_collector_(tls_collector) {
  tls_scope_stack.push_back(&context_);
  if (collector != nullptr) {
    tls_collector = collector;
  }
}

RequestScope::~RequestScope() {
  if (SpanCollector* collector = tls_collector; collector != nullptr) {
    collector->Record(context_, watch_.ElapsedMillis());
  }
  tls_scope_stack.pop_back();
  tls_collector = saved_collector_;
}

const SpanContext* RequestScope::Current() {
  return tls_scope_stack.empty() ? nullptr : tls_scope_stack.back();
}

SpanCollector* RequestScope::CurrentCollector() { return tls_collector; }

std::string_view CurrentTraceToken() {
  const SpanContext* current = RequestScope::Current();
  return current == nullptr ? std::string_view{}
                            : std::string_view(current->trace_hex);
}

}  // namespace qplex::obs
