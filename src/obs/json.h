#ifndef QPLEX_OBS_JSON_H_
#define QPLEX_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qplex::obs {

/// A minimal owned JSON document tree — the serialization substrate of the
/// observability layer (run reports, bench artifacts). Deliberately small:
/// no third-party dependency, insertion-ordered objects (reports render in
/// the order fields were added), exact round-tripping of 64-bit integers
/// (counter values must not pass through a double).
class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull = 0,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}          // NOLINT
  JsonValue(std::int64_t value) : type_(Type::kInt), int_(value) {}    // NOLINT
  JsonValue(int value) : JsonValue(static_cast<std::int64_t>(value)) {}  // NOLINT
  JsonValue(double value) : type_(Type::kDouble), double_(value) {}    // NOLINT
  JsonValue(std::string value)                                         // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : JsonValue(std::string(value)) {}      // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; QPLEX_CHECK on type mismatch (programmer error).
  bool AsBool() const;
  std::int64_t AsInt() const;
  /// Numeric value as double (valid for kInt and kDouble).
  double AsDouble() const;
  const std::string& AsString() const;

  /// Array access.
  std::size_t size() const;
  const JsonValue& at(std::size_t index) const;
  void Append(JsonValue value);

  /// Object access. `Set` replaces an existing key in place (order kept).
  void Set(std::string key, JsonValue value);
  /// Pointer to the member value, or nullptr when absent / not an object.
  const JsonValue* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Serializes. `indent < 0` renders compact one-line JSON; `indent >= 0`
  /// pretty-prints with that many spaces per nesting level.
  std::string Dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing non-whitespace is an error).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes `text` as a JSON string literal including the surrounding quotes.
std::string JsonEscape(std::string_view text);

}  // namespace qplex::obs

#endif  // QPLEX_OBS_JSON_H_
