#ifndef QPLEX_OBS_CONVERGENCE_H_
#define QPLEX_OBS_CONVERGENCE_H_

#include <string>
#include <vector>

#include "obs/analysis.h"

namespace qplex::obs {

struct ConvergenceOptions {
  /// Include wall-clock columns (elapsed_ms, time-to-first/best) and the
  /// seq-ordered race lead changes. Off by default: the default report is a
  /// pure function of the deterministic event fields, so two same-seed runs
  /// (at any worker count) render byte-identically and CI can diff them.
  bool include_timing = false;
};

/// Renders the anytime-convergence report from a loaded event log: per-job
/// incumbent timelines (quality vs deterministic work units), bound
/// timelines and primal-dual gap closure, and a portfolio race summary
/// (winner, margin, per-racer best/improvement counts). Timelines are keyed
/// by (trace, solver, request path) so retry attempts and fallback hops each
/// get their own monotone curve; ordering is (label, trace) / path /
/// improvement index throughout.
std::string FormatConvergenceReport(const EventLog& log,
                                    const ConvergenceOptions& options = {});

/// Checks every incumbent/bound timeline for the invariants the reporters
/// guarantee: sizes strictly increase, work and improvement indices never
/// move backwards, dual bounds never loosen. Returns one human-readable
/// violation string per breach (empty = clean).
std::vector<std::string> ValidateIncumbents(const EventLog& log);

}  // namespace qplex::obs

#endif  // QPLEX_OBS_CONVERGENCE_H_
