#ifndef QPLEX_OBS_REQTRACE_H_
#define QPLEX_OBS_REQTRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/stopwatch.h"

namespace qplex::obs {

/// FNV-1a 64-bit hash: the id-derivation primitive for trace and span ids.
std::uint64_t Fnv1a64(std::string_view text);

/// 16-hex-digit lowercase rendering of an id (the wire form in span events).
std::string IdHex(std::uint64_t id);

/// One node of a request-scoped trace. Ids are *structural*: pure functions
/// of (trace id, path), so a retry attempt, a fallback hop, or a bridged
/// solver span recomputes the same span id on any worker thread without
/// shared counters — and two same-seed runs emit byte-identical id sets,
/// which is what lets CI diff reconstructed trace trees.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span of the trace
  std::string trace_hex;        ///< cached IdHex(trace_id)
  std::string path;             ///< e.g. "job/racer@bs/attempt@1/solve"
  std::string name;             ///< last path element ("attempt@1", "solve")
};

/// Trace id of one scheduler job: a hash of the caller's label and the job
/// id, so it is recomputable anywhere the job is visible.
std::uint64_t DeriveTraceId(std::string_view label, std::int64_t job_id);

/// The root span of a trace (parent id 0, path = name).
SpanContext RootSpan(std::uint64_t trace_id, std::string_view name);

/// A child span. The path element is `name` or "name@qualifier"; the span id
/// is the hash of "<trace hex>:<path>".
SpanContext ChildSpan(const SpanContext& parent, std::string_view name,
                      std::string_view qualifier = {});

/// Emits one "span" event line (trace/span/parent/name/path/count/dur_ms)
/// into the global event sink; no-op when none is installed.
void EmitSpanEvent(const SpanContext& context, std::int64_t count,
                   double total_ms);

/// Aggregates closed spans per structural path (count + wall-time total) so
/// one event line per distinct path is emitted instead of one per close — a
/// solver evaluating its oracle 10^4 times inside an attempt still costs one
/// "span" line. Not thread-safe by design: the scheduler owns one collector
/// per backend execution on the worker thread that runs it.
class SpanCollector {
 public:
  SpanCollector() = default;
  ~SpanCollector();  // flushes anything still buffered

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  void Record(const SpanContext& context, double elapsed_ms);

  /// Emits one "span" event per aggregated path (path-sorted, so flush order
  /// is deterministic) and clears the collector.
  void Flush();

  std::size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    SpanContext context;
    std::int64_t count = 0;
    double total_ms = 0;
  };
  std::map<std::string, Node> nodes_;
};

/// RAII request scope: pushes `context` onto this thread's scope stack so
/// nested instrumentation can attach to the request — TraceSpan bridges
/// solver spans under Current(), ProgressHeartbeat keys its rate limiter by
/// CurrentTraceToken() — and records the scope's wall duration into the
/// active collector on destruction. Passing `collector` additionally makes
/// it the thread's active collector for the scope's lifetime.
class RequestScope {
 public:
  explicit RequestScope(SpanContext context,
                        SpanCollector* collector = nullptr);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  const SpanContext& context() const { return context_; }

  /// The innermost scope on this thread, or nullptr outside any request.
  static const SpanContext* Current();
  /// The collector scopes on this thread record into, or nullptr.
  static SpanCollector* CurrentCollector();

 private:
  SpanContext context_;
  SpanCollector* saved_collector_;  // restored when this scope closes
  Stopwatch watch_;
};

}  // namespace qplex::obs

#endif  // QPLEX_OBS_REQTRACE_H_
