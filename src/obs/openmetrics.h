#ifndef QPLEX_OBS_OPENMETRICS_H_
#define QPLEX_OBS_OPENMETRICS_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace qplex::obs {

/// Renders a metric name into the OpenMetrics charset: characters outside
/// [a-zA-Z0-9_:] become '_', and the result is prefixed with "qplex_" (which
/// also guarantees a legal leading character).
std::string OpenMetricsName(std::string_view name);

/// Renders a whole registry snapshot as OpenMetrics text exposition:
///
///   - counters  -> `# TYPE qplex_<name> counter` + `qplex_<name>_total <v>`
///   - gauges    -> `# TYPE qplex_<name> gauge` + `qplex_<name> <v>`
///   - histograms-> cumulative `_bucket{le="..."}` samples (le = the bucket's
///                  exclusive upper bound, then `le="+Inf"`), plus `_sum` and
///                  `_count`
///   - series    -> one `qplex_series_points` gauge family with a
///                  `series="<name>"` label per series (point counts; the
///                  values themselves live in run reports)
///
/// ends with the mandatory `# EOF` terminator. Doubles print with %.17g so a
/// write -> parse round trip is exact.
std::string RenderOpenMetrics(const MetricsSnapshot& snapshot);

/// One parsed sample line: metric name (with suffix), optional label pairs in
/// source order, and the value.
struct OpenMetricsSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;

  const std::string* FindLabel(std::string_view key) const;
};

/// A parsed exposition: family name -> declared type, plus every sample.
struct OpenMetricsDoc {
  std::map<std::string, std::string> types;  // family -> counter|gauge|...
  std::vector<OpenMetricsSample> samples;

  /// Sum convenience: the value of the single sample named `name` with no
  /// labels, or nullopt-like NaN when absent. Used by round-trip tests.
  const OpenMetricsSample* FindSample(std::string_view name) const;
};

/// Parses OpenMetrics text (the subset RenderOpenMetrics emits: `# TYPE` /
/// `# EOF` comment lines and `name{labels} value` samples). Rejects lines it
/// cannot understand.
Result<OpenMetricsDoc> ParseOpenMetrics(std::string_view text);

/// Structural validity check used by CI: parses, then verifies that every
/// sample's family has a preceding TYPE declaration, names stay inside the
/// charset, histogram bucket counts are cumulative (monotone over ascending
/// `le`), the `+Inf` bucket equals `_count`, and the document ends with
/// `# EOF`. Returns OK or the first violation.
Status CheckOpenMetrics(std::string_view text);

}  // namespace qplex::obs

#endif  // QPLEX_OBS_OPENMETRICS_H_
