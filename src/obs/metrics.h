#ifndef QPLEX_OBS_METRICS_H_
#define QPLEX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qplex::obs {

/// Monotonically increasing 64-bit counter. All mutation is a single relaxed
/// atomic add, so solver hot paths (and parallel-tempering style threads) can
/// record without locks; readers see totals that are exact once the writers
/// quiesce.
class Counter {
 public:
  void Add(std::int64_t delta) { value_.fetch_add(delta, kOrder); }
  void Increment() { Add(1); }
  std::int64_t Get() const { return value_.load(kOrder); }
  void Reset() { value_.store(0, kOrder); }

 private:
  static constexpr auto kOrder = std::memory_order_relaxed;
  std::atomic<std::int64_t> value_{0};
};

/// Last-written double value (plus a running max, useful for peaks like
/// "largest success probability seen").
class Gauge {
 public:
  void Set(double value);
  /// Ordered reductions: keep the smallest / largest value ever set. Unlike
  /// Set(), the final value is independent of writer interleaving, so
  /// concurrently finishing jobs (portfolio racers, batch workers) can all
  /// publish their best-energy / best-size result and the gauge stays
  /// deterministic for the bench gate.
  void SetMin(double value);
  void SetMax(double value);
  double Get() const { return value_.load(std::memory_order_relaxed); }
  double Max() const { return max_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  /// Installs `value` as the first observation exactly once (Set/SetMin/SetMax
  /// must not mix on one gauge within a run — the reduction semantics differ).
  void InstallFirstValue(double value);

  std::atomic<double> value_{0};
  std::atomic<double> max_{0};
  std::atomic<bool> has_value_{false};
  std::atomic<bool> init_claimed_{false};
};

/// Immutable view of a histogram taken by Snapshot().
struct HistogramSnapshot {
  std::int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  /// Non-empty log-scale buckets as (inclusive lower bound, count). Bucket i
  /// covers [2^(i-32), 2^(i-31)); values <= 0 land in the first bucket.
  std::vector<std::pair<double, std::int64_t>> buckets;

  double Mean() const { return count > 0 ? sum / count : 0; }

  /// Estimated value at quantile `p` in [0, 1], linearly interpolated inside
  /// the covering log bucket and clamped to [min, max]. Accurate to the ~2x
  /// bucket resolution — good enough to compare distribution tails between
  /// runs (benchdiff), not a substitute for exact order statistics.
  double Percentile(double p) const;
  double P50() const { return Percentile(0.50); }
  double P90() const { return Percentile(0.90); }
  double P99() const { return Percentile(0.99); }
};

/// Lock-free log-scale histogram: values are bucketed by binary exponent
/// (64 power-of-two buckets spanning [2^-32, 2^32)), which covers iteration
/// counts, gate costs and probabilities alike with ~2x resolution.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(double value);
  std::int64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;
  void Reset();

  /// Bucket index for `value` (exposed for tests).
  static int BucketIndex(double value);
  /// Inclusive lower bound of bucket `index`.
  static double BucketLowerBound(int index);

 private:
  std::atomic<std::int64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
};

/// Append-only sequence of doubles — trajectories (binary-search thresholds,
/// best-energy-so-far curves). Mutex-guarded: appends happen at solver-probe
/// granularity, not in inner loops. Long series are decimated: once
/// `capacity` points are stored, every other one is dropped and the append
/// stride doubles, keeping a uniformly spaced sketch of bounded size.
class Series {
 public:
  explicit Series(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity < 2 ? 2 : capacity) {}

  void Append(double value);
  std::vector<double> Values() const;
  /// Total appends (>= stored size once decimation kicks in).
  std::int64_t TotalAppends() const;
  /// Current append stride (1 until the first decimation).
  std::int64_t Stride() const;
  void Reset();

  static constexpr std::size_t kDefaultCapacity = 4096;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<double> values_;
  std::int64_t total_appends_ = 0;
  std::int64_t stride_ = 1;
};

/// Name-addressed snapshot of a whole registry, ordered by metric name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<std::pair<std::string, std::vector<double>>> series;
};

/// Owns named metrics. Lookup takes a mutex (callers are expected to look up
/// once per solver call or cache the returned reference); recording on the
/// returned objects is lock-free. References stay valid for the registry's
/// lifetime — Reset() zeroes values without destroying metric objects.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);
  Series& GetSeries(std::string_view name);

  /// Zeroes every metric (references handed out remain valid).
  void Reset();

  MetricsSnapshot Snapshot() const;

  /// The process-wide registry every built-in instrumentation site records
  /// into. Run reports snapshot it; the CLI resets it before solving.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
};

}  // namespace qplex::obs

#endif  // QPLEX_OBS_METRICS_H_
