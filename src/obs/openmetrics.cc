#include "obs/openmetrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace qplex::obs {
namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

std::string FormatDouble(double value) {
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string FormatInt(std::int64_t value) { return std::to_string(value); }

/// Strips the family name out of a sample name: `_total`, `_bucket`, `_sum`,
/// `_count` suffixes belong to the family, everything else IS the family.
std::string FamilyOf(const std::string& sample_name) {
  static constexpr std::string_view kSuffixes[] = {"_total", "_bucket", "_sum",
                                                   "_count"};
  for (std::string_view suffix : kSuffixes) {
    if (sample_name.size() > suffix.size() &&
        sample_name.compare(sample_name.size() - suffix.size(), suffix.size(),
                            suffix) == 0) {
      return sample_name.substr(0, sample_name.size() - suffix.size());
    }
  }
  return sample_name;
}

Result<double> ParseValue(std::string_view text) {
  if (text == "+Inf") {
    return std::numeric_limits<double>::infinity();
  }
  if (text == "-Inf") {
    return -std::numeric_limits<double>::infinity();
  }
  try {
    std::size_t consumed = 0;
    const double value = std::stod(std::string(text), &consumed);
    if (consumed != text.size()) {
      return Status::InvalidArgument("trailing junk in sample value: " +
                                     std::string(text));
    }
    return value;
  } catch (const std::exception&) {
    return Status::InvalidArgument("unparseable sample value: " +
                                   std::string(text));
  }
}

}  // namespace

std::string OpenMetricsName(std::string_view name) {
  std::string out = "qplex_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out.push_back(IsNameChar(c) ? c : '_');
  }
  return out;
}

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string family = OpenMetricsName(name);
    out += "# TYPE " + family + " counter\n";
    out += family + "_total " + FormatInt(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string family = OpenMetricsName(name);
    out += "# TYPE " + family + " gauge\n";
    out += family + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string family = OpenMetricsName(name);
    out += "# TYPE " + family + " histogram\n";
    std::int64_t cumulative = 0;
    for (const auto& [lower_bound, count] : hist.buckets) {
      cumulative += count;
      // The exposition "le" is the bucket's exclusive upper bound; buckets
      // span [lower, 2*lower), so the boundary is lower*2.
      out += family + "_bucket{le=\"" + FormatDouble(lower_bound * 2) + "\"} " +
             FormatInt(cumulative) + "\n";
    }
    out += family + "_bucket{le=\"+Inf\"} " + FormatInt(hist.count) + "\n";
    out += family + "_sum " + FormatDouble(hist.sum) + "\n";
    out += family + "_count " + FormatInt(hist.count) + "\n";
  }
  if (!snapshot.series.empty()) {
    out += "# TYPE qplex_series_points gauge\n";
    for (const auto& [name, values] : snapshot.series) {
      out += "qplex_series_points{series=\"" + std::string(name) + "\"} " +
             FormatInt(static_cast<std::int64_t>(values.size())) + "\n";
    }
  }
  out += "# EOF\n";
  return out;
}

const std::string* OpenMetricsSample::FindLabel(std::string_view key) const {
  for (const auto& [label_key, label_value] : labels) {
    if (label_key == key) {
      return &label_value;
    }
  }
  return nullptr;
}

const OpenMetricsSample* OpenMetricsDoc::FindSample(
    std::string_view name) const {
  for (const OpenMetricsSample& sample : samples) {
    if (sample.name == name && sample.labels.empty()) {
      return &sample;
    }
  }
  return nullptr;
}

Result<OpenMetricsDoc> ParseOpenMetrics(std::string_view text) {
  OpenMetricsDoc doc;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  bool saw_eof = false;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_number;
    const std::string where = " (line " + std::to_string(line_number) + ")";
    if (line.empty()) {
      continue;
    }
    if (saw_eof) {
      return Status::InvalidArgument("content after # EOF" + where);
    }
    if (line[0] == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          return Status::InvalidArgument("malformed TYPE line" + where);
        }
        doc.types[std::string(rest.substr(0, space))] =
            std::string(rest.substr(space + 1));
        continue;
      }
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# UNIT ", 0) == 0) {
        continue;
      }
      return Status::InvalidArgument("unrecognised comment line" + where);
    }
    // Sample: name[{labels}] value
    OpenMetricsSample sample;
    std::size_t i = 0;
    while (i < line.size() && IsNameChar(line[i])) {
      ++i;
    }
    if (i == 0) {
      return Status::InvalidArgument("sample line without metric name" +
                                     where);
    }
    sample.name = std::string(line.substr(0, i));
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t key_start = i;
        while (i < line.size() && IsNameChar(line[i])) {
          ++i;
        }
        if (i >= line.size() || line[i] != '=' || i + 1 >= line.size() ||
            line[i + 1] != '"') {
          return Status::InvalidArgument("malformed label" + where);
        }
        std::string key(line.substr(key_start, i - key_start));
        i += 2;  // skip ="
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) {
            ++i;  // the subset we emit only escapes \" \\ and \n
            value.push_back(line[i] == 'n' ? '\n' : line[i]);
          } else {
            value.push_back(line[i]);
          }
          ++i;
        }
        if (i >= line.size()) {
          return Status::InvalidArgument("unterminated label value" + where);
        }
        ++i;  // closing quote
        sample.labels.emplace_back(std::move(key), std::move(value));
        if (i < line.size() && line[i] == ',') {
          ++i;
        }
      }
      if (i >= line.size() || line[i] != '}') {
        return Status::InvalidArgument("unterminated label set" + where);
      }
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') {
      return Status::InvalidArgument("missing value separator" + where);
    }
    ++i;
    auto value = ParseValue(line.substr(i));
    if (!value.ok()) {
      return Status::InvalidArgument(value.status().message() + where);
    }
    sample.value = value.value();
    doc.samples.push_back(std::move(sample));
  }
  if (!saw_eof) {
    return Status::InvalidArgument("missing # EOF terminator");
  }
  return doc;
}

Status CheckOpenMetrics(std::string_view text) {
  auto parsed = ParseOpenMetrics(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const OpenMetricsDoc& doc = parsed.value();
  for (const auto& [family, type] : doc.types) {
    for (const char c : family) {
      if (!IsNameChar(c)) {
        return Status::InvalidArgument("family name outside charset: " +
                                       family);
      }
    }
    if (type != "counter" && type != "gauge" && type != "histogram" &&
        type != "summary" && type != "unknown") {
      return Status::InvalidArgument("unknown metric type '" + type +
                                     "' for family " + family);
    }
  }
  // Every sample must belong to a declared family, counters must expose
  // `_total`, and histogram buckets must be cumulative with ascending `le`
  // ending at `+Inf` == `_count`.
  struct HistogramCheck {
    double last_le = -std::numeric_limits<double>::infinity();
    std::int64_t last_cumulative = -1;
    double inf_value = -1;
    double count_value = -1;
  };
  std::map<std::string, HistogramCheck> histograms;
  for (const OpenMetricsSample& sample : doc.samples) {
    const std::string family = FamilyOf(sample.name);
    const auto type_it = doc.types.find(family);
    if (type_it == doc.types.end()) {
      return Status::InvalidArgument("sample without TYPE declaration: " +
                                     sample.name);
    }
    const std::string& type = type_it->second;
    if (type == "counter") {
      if (sample.name != family + "_total") {
        return Status::InvalidArgument("counter sample must end in _total: " +
                                       sample.name);
      }
      if (sample.value < 0) {
        return Status::InvalidArgument("negative counter: " + sample.name);
      }
    } else if (type == "histogram") {
      HistogramCheck& check = histograms[family];
      if (sample.name == family + "_bucket") {
        const std::string* le = sample.FindLabel("le");
        if (le == nullptr) {
          return Status::InvalidArgument("bucket sample without le label: " +
                                         family);
        }
        double boundary = std::numeric_limits<double>::infinity();
        if (*le != "+Inf") {
          try {
            boundary = std::stod(*le);
          } catch (const std::exception&) {
            return Status::InvalidArgument("unparseable le boundary '" + *le +
                                           "' in " + family);
          }
        }
        if (boundary <= check.last_le) {
          return Status::InvalidArgument(
              "histogram le boundaries not ascending: " + family);
        }
        const auto cumulative = static_cast<std::int64_t>(sample.value);
        if (cumulative < check.last_cumulative) {
          return Status::InvalidArgument(
              "histogram bucket counts not cumulative: " + family);
        }
        check.last_le = boundary;
        check.last_cumulative = cumulative;
        if (std::isinf(boundary)) {
          check.inf_value = sample.value;
        }
      } else if (sample.name == family + "_count") {
        check.count_value = sample.value;
      }
    }
  }
  for (const auto& [family, check] : histograms) {
    if (check.inf_value < 0) {
      return Status::InvalidArgument("histogram missing +Inf bucket: " +
                                     family);
    }
    if (check.count_value < 0) {
      return Status::InvalidArgument("histogram missing _count: " + family);
    }
    if (check.inf_value != check.count_value) {
      return Status::InvalidArgument("histogram +Inf bucket != _count: " +
                                     family);
    }
  }
  return Status::Ok();
}

}  // namespace qplex::obs
