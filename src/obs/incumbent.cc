#include "obs/incumbent.h"

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"

namespace qplex::obs {

IncumbentReporter::IncumbentReporter(std::string_view solver)
    : enabled_(EventsEnabled()) {
  if (!enabled_) {
    return;
  }
  solver_ = std::string(solver);
  trace_ = std::string(CurrentTraceToken());
  if (const SpanContext* scope = RequestScope::Current()) {
    path_ = scope->path;
  }
  payload_counter_ =
      &MetricsRegistry::Global().GetCounter("obs.events.incumbent_payloads");
}

void IncumbentReporter::Report(int size, std::int64_t work) {
  if (size <= best_size_) {
    return;
  }
  best_size_ = size;
  ++improvements_;
  if (enabled_) {
    Emit(size, work, /*has_value=*/false, 0);
  }
}

void IncumbentReporter::Report(int size, std::int64_t work, double value) {
  if (size <= best_size_) {
    return;
  }
  best_size_ = size;
  ++improvements_;
  if (enabled_) {
    Emit(size, work, /*has_value=*/true, value);
  }
}

void IncumbentReporter::Emit(int size, std::int64_t work, bool has_value,
                             double value) {
  payload_counter_->Increment();
  const double elapsed_ms = watch_.ElapsedMillis();
  // A request scope yields both trace and path; outside any scope (plain CLI
  // solves) both are omitted. Branches keep Emit's initializer-list API.
  if (path_.empty()) {
    if (has_value) {
      EmitEvent(EventLevel::kInfo, solver_, "incumbent",
                {{"size", size},
                 {"work", work},
                 {"improvement", improvements_},
                 {"value", value},
                 {"elapsed_ms", elapsed_ms}});
    } else {
      EmitEvent(EventLevel::kInfo, solver_, "incumbent",
                {{"size", size},
                 {"work", work},
                 {"improvement", improvements_},
                 {"elapsed_ms", elapsed_ms}});
    }
    return;
  }
  if (has_value) {
    EmitEvent(EventLevel::kInfo, solver_, "incumbent",
              {{"trace", trace_},
               {"path", path_},
               {"size", size},
               {"work", work},
               {"improvement", improvements_},
               {"value", value},
               {"elapsed_ms", elapsed_ms}});
  } else {
    EmitEvent(EventLevel::kInfo, solver_, "incumbent",
              {{"trace", trace_},
               {"path", path_},
               {"size", size},
               {"work", work},
               {"improvement", improvements_},
               {"elapsed_ms", elapsed_ms}});
  }
}

void IncumbentReporter::ReportBound(double bound, std::int64_t work) {
  if (has_bound_ && bound == last_bound_) {
    return;
  }
  has_bound_ = true;
  last_bound_ = bound;
  ++bound_updates_;
  if (!enabled_) {
    return;
  }
  payload_counter_->Increment();
  const double elapsed_ms = watch_.ElapsedMillis();
  if (path_.empty()) {
    EmitEvent(EventLevel::kInfo, solver_, "bound",
              {{"bound", bound},
               {"work", work},
               {"update", bound_updates_},
               {"elapsed_ms", elapsed_ms}});
  } else {
    EmitEvent(EventLevel::kInfo, solver_, "bound",
              {{"trace", trace_},
               {"path", path_},
               {"bound", bound},
               {"work", work},
               {"update", bound_updates_},
               {"elapsed_ms", elapsed_ms}});
  }
}

}  // namespace qplex::obs
