#ifndef QPLEX_NET_SERVER_H_
#define QPLEX_NET_SERVER_H_

/// \file
/// Single-threaded poll()-based TCP server for the JSONL serving protocol.
/// The Server owns the listening socket and every connection's state machine
/// (frame splitter in, coalescing write buffer out); the protocol itself —
/// what a request line means, what responses look like — lives in the
/// caller's callbacks, so the net layer stays free of svc/graph types.
///
/// Threading model: everything here runs on the caller's thread. One
/// Poll() call performs one event-loop iteration: poll readiness, accept,
/// budgeted reads (frames dispatched to on_line), write flushes, idle
/// closes. The caller interleaves Poll() with its own work (draining the
/// job scheduler) and pushes responses back with Send().

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/stopwatch.h"
#include "net/frame.h"
#include "net/io.h"

namespace qplex::net {

struct ServerOptions {
  /// Loopback port to bind; 0 lets the kernel pick (read it back via port()).
  int port = 0;
  /// Admission cap: connections accepted beyond this are immediately sent
  /// `busy_response` and closed, counted in net.connections.rejected.
  int max_connections = 64;
  /// Close connections with no inbound traffic for this long; 0 disables.
  int idle_timeout_ms = 0;
  /// Oversize-line rejection threshold for the frame splitter.
  std::size_t max_line_bytes = FrameSplitter::kDefaultMaxLineBytes;
  /// Per-connection, per-Poll read budget: at most this many bytes are
  /// drained from one connection per iteration so a firehose client cannot
  /// starve its neighbours (fairness, not a hard protocol limit).
  std::size_t read_budget_bytes = 64 * 1024;
  /// Slow-reader bound: a connection whose un-flushed response backlog
  /// exceeds this is dropped (it is not reading its responses).
  std::size_t max_write_buffer_bytes = 8u << 20;
  /// Line written (verbatim; include the trailing newline) to a connection
  /// rejected by the admission cap.
  std::string busy_response;
};

struct ServerCallbacks {
  /// One complete request line (newline stripped). Lines arrive in
  /// per-connection order; across connections, in poll-readiness order.
  std::function<void(std::uint64_t conn_id, std::string line)> on_line;
  /// The connection is gone (peer closed, error, idle timeout, or an
  /// explicit CloseConnection). Fired exactly once per accepted connection,
  /// after its fd is closed; Send() to this id is a no-op from here on.
  std::function<void(std::uint64_t conn_id)> on_close;
  /// A framing-level protocol violation (today: oversize line). The callback
  /// may Send() a final error response; the server then closes the
  /// connection once the response has flushed.
  std::function<void(std::uint64_t conn_id, const Status& violation)>
      on_protocol_error;
};

class Server {
 public:
  /// Binds and listens on loopback. Metrics land in the global registry
  /// under net.*.
  static Result<std::unique_ptr<Server>> Create(ServerOptions options,
                                                ServerCallbacks callbacks);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  int port() const { return port_; }

  /// One event-loop iteration. Blocks in poll() for at most `timeout_ms`
  /// (0 = just poll readiness, -1 = wait indefinitely; an earlier idle
  /// deadline shortens the wait either way). Returns a non-OK status only
  /// for unrecoverable loop failures (poll on a bad fd), never for
  /// per-connection errors.
  Status Poll(int timeout_ms);

  /// Queues one framed response line (caller includes the '\n') on a
  /// connection's write buffer; flushes immediately once a segment's worth
  /// is queued. Unknown/closed ids are dropped and counted
  /// (net.responses.dropped) — the client hung up before its answer.
  void Send(std::uint64_t conn_id, std::string line);

  /// One non-blocking flush attempt on every connection with queued bytes.
  void FlushWritable();

  /// Stops accepting new connections (the listening socket closes; existing
  /// connections are untouched). Idempotent — this is the first step of a
  /// graceful drain.
  void StopAccepting();

  /// Exempts `conn_id` from the idle timeout while the caller holds
  /// admitted-but-unanswered work for it. The idle timer only measures
  /// inbound silence, so without this a connection whose one request is
  /// still in the scheduler — write buffer empty, nothing left to read —
  /// would be "idle" and its eventual response dropped. The serve front-end
  /// pins a connection while its outstanding-job count is non-zero.
  /// Unknown/closed ids are ignored.
  void SetIdleExempt(std::uint64_t conn_id, bool exempt);

  /// Closes `conn_id` after its pending responses flush (bounded by the
  /// drain in the destructor / DrainWrites).
  void CloseAfterFlush(std::uint64_t conn_id);

  /// Closes `conn_id` now, discarding queued bytes.
  void CloseConnection(std::uint64_t conn_id);

  /// Blocks (with poll) until every queued response byte is flushed, each
  /// peer is closed, or `timeout_ms` elapses. The graceful-drain tail.
  void DrainWrites(int timeout_ms);

  std::size_t active_connections() const { return connections_.size(); }
  bool has_queued_writes() const;

 private:
  struct Connection {
    int fd = -1;
    FrameSplitter splitter;
    WriteBuffer writes;
    Stopwatch last_activity;
    bool close_after_flush = false;
    /// See SetIdleExempt: true while the caller owes this peer a response.
    bool idle_exempt = false;
  };

  Server(ServerOptions options, ServerCallbacks callbacks, int listen_fd,
         int port);

  void AcceptReady();
  /// Budgeted read + frame dispatch; returns false when the connection died.
  bool ReadReady(std::uint64_t conn_id, Connection& conn);
  void FlushConnection(std::uint64_t conn_id, Connection& conn);
  void Close(std::uint64_t conn_id, const char* reason);
  void CloseIdleConnections();
  /// Milliseconds until the earliest idle deadline, or -1 when none.
  int NextIdleDeadlineMs() const;

  ServerOptions options_;
  ServerCallbacks callbacks_;
  int listen_fd_;
  int port_;
  std::uint64_t next_conn_id_ = 1;
  /// Ordered so poll-set construction and idle scans iterate oldest-first.
  std::map<std::uint64_t, Connection> connections_;
};

}  // namespace qplex::net

#endif  // QPLEX_NET_SERVER_H_
