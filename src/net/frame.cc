#include "net/frame.h"

#include <sys/uio.h>

#include <utility>

namespace qplex::net {

Status FrameSplitter::Feed(std::string_view bytes) {
  if (poisoned_) {
    return Status::ResourceExhausted("frame splitter poisoned by an oversize "
                                     "line; the connection must be closed");
  }
  std::size_t start = 0;
  while (start < bytes.size()) {
    const std::size_t newline = bytes.find('\n', start);
    if (newline == std::string_view::npos) {
      tail_.append(bytes.substr(start));
      break;
    }
    tail_.append(bytes.substr(start, newline - start));
    if (tail_.size() > max_line_bytes_) {
      poisoned_ = true;
      return Status::ResourceExhausted(
          "request line exceeds the " + std::to_string(max_line_bytes_) +
          "-byte frame limit");
    }
    if (!tail_.empty() && tail_.back() == '\r') {
      tail_.pop_back();
    }
    lines_.push_back(std::move(tail_));
    tail_.clear();
    start = newline + 1;
  }
  if (tail_.size() > max_line_bytes_) {
    poisoned_ = true;
    return Status::ResourceExhausted(
        "request line exceeds the " + std::to_string(max_line_bytes_) +
        "-byte frame limit");
  }
  return Status::Ok();
}

bool FrameSplitter::Next(std::string* line) {
  if (lines_.empty()) {
    return false;
  }
  *line = std::move(lines_.front());
  lines_.pop_front();
  return true;
}

void WriteBuffer::Append(std::string line) {
  if (line.empty()) {
    return;
  }
  queued_bytes_ += line.size();
  chunks_.push_back(std::move(line));
}

IoState WriteBuffer::FlushTo(int fd) {
  while (!chunks_.empty()) {
    iovec iov[kMaxIov];
    int count = 0;
    std::size_t offset = front_offset_;
    for (const std::string& chunk : chunks_) {
      if (count == kMaxIov) {
        break;
      }
      iov[count].iov_base =
          const_cast<char*>(chunk.data() + offset);  // writev API
      iov[count].iov_len = chunk.size() - offset;
      offset = 0;
      ++count;
    }
    const IoResult wrote = WritevFd(fd, iov, count);
    ++flush_calls_;
    if (wrote.state != IoState::kOk) {
      return wrote.state;
    }
    bytes_written_ += wrote.bytes;
    queued_bytes_ -= wrote.bytes;
    // Retire fully-written chunks; a partial write parks the offset inside
    // the new front chunk so the next flush resumes mid-line.
    std::size_t remaining = wrote.bytes;
    while (remaining > 0) {
      const std::size_t front_left = chunks_.front().size() - front_offset_;
      if (remaining >= front_left) {
        remaining -= front_left;
        front_offset_ = 0;
        chunks_.pop_front();
      } else {
        front_offset_ += remaining;
        remaining = 0;
      }
    }
    if (wrote.bytes == 0) {
      return IoState::kOk;  // defensive: zero-byte writev, nothing to retire
    }
  }
  return IoState::kOk;
}

}  // namespace qplex::net
