#include "net/io.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace qplex::net {
namespace {

IoResult ClassifyWriteFailure() {
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    return {IoState::kWouldBlock, 0, errno};
  }
  if (errno == EPIPE || errno == ECONNRESET) {
    return {IoState::kClosed, 0, errno};
  }
  return {IoState::kError, 0, errno};
}

}  // namespace

IoResult ReadFd(int fd, char* buffer, std::size_t capacity) {
  while (true) {
    const ssize_t n = ::read(fd, buffer, capacity);
    if (n > 0) {
      return {IoState::kOk, static_cast<std::size_t>(n), 0};
    }
    if (n == 0) {
      return {IoState::kClosed, 0, 0};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoState::kWouldBlock, 0, errno};
    }
    if (errno == ECONNRESET) {
      return {IoState::kClosed, 0, errno};
    }
    return {IoState::kError, 0, errno};
  }
}

IoResult WriteFd(int fd, const char* data, std::size_t size) {
  while (true) {
    const ssize_t n = ::write(fd, data, size);
    if (n >= 0) {
      return {IoState::kOk, static_cast<std::size_t>(n), 0};
    }
    if (errno == EINTR) {
      continue;
    }
    return ClassifyWriteFailure();
  }
}

IoResult WritevFd(int fd, const iovec* chunks, int count) {
  while (true) {
    const ssize_t n = ::writev(fd, chunks, count);
    if (n >= 0) {
      return {IoState::kOk, static_cast<std::size_t>(n), 0};
    }
    if (errno == EINTR) {
      continue;
    }
    return ClassifyWriteFailure();
  }
}

int PollFds(pollfd* fds, std::size_t count, int timeout_ms) {
  while (true) {
    const int ready = ::poll(fds, static_cast<nfds_t>(count), timeout_ms);
    if (ready >= 0) {
      return ready;
    }
    if (errno == EINTR) {
      // Report "nothing ready" instead of re-arming with a stale timeout;
      // the caller's loop re-evaluates deadlines and signal flags first.
      return 0;
    }
    return -1;
  }
}

IoResult AcceptFd(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      return {IoState::kOk, static_cast<std::size_t>(fd), 0};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return {IoState::kWouldBlock, 0, errno};
    }
    return {IoState::kError, 0, errno};
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl(O_NONBLOCK) failed: " +
                            std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

void IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

void CloseFd(int fd) {
  while (::close(fd) < 0 && errno == EINTR) {
  }
}

Result<int> ListenLoopback(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string reason = std::strerror(errno);
    CloseFd(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(port) +
                            ") failed: " + reason);
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    const std::string reason = std::strerror(errno);
    CloseFd(fd);
    return Status::Internal("listen() failed: " + reason);
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      const std::string reason = std::strerror(errno);
      CloseFd(fd);
      return Status::Internal("getsockname() failed: " + reason);
    }
    *bound_port = static_cast<int>(ntohs(actual.sin_port));
  }
  if (const Status status = SetNonBlocking(fd); !status.ok()) {
    CloseFd(fd);
    return status;
  }
  return fd;
}

Result<int> ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const std::string reason = std::strerror(errno);
    CloseFd(fd);
    return Status::Internal("connect(127.0.0.1:" + std::to_string(port) +
                            ") failed: " + reason);
  }
  return fd;
}

}  // namespace qplex::net
