#include "net/server.h"

#include <poll.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace qplex::net {
namespace {

obs::MetricsRegistry& Metrics() { return obs::MetricsRegistry::Global(); }

}  // namespace

Result<std::unique_ptr<Server>> Server::Create(ServerOptions options,
                                               ServerCallbacks callbacks) {
  QPLEX_CHECK(callbacks.on_line != nullptr) << "server needs an on_line";
  int port = 0;
  QPLEX_ASSIGN_OR_RETURN(const int listen_fd,
                         ListenLoopback(options.port, &port));
  return std::unique_ptr<Server>(
      new Server(std::move(options), std::move(callbacks), listen_fd, port));
}

Server::Server(ServerOptions options, ServerCallbacks callbacks, int listen_fd,
               int port)
    : options_(std::move(options)),
      callbacks_(std::move(callbacks)),
      listen_fd_(listen_fd),
      port_(port) {}

Server::~Server() {
  StopAccepting();
  // Destruction is not a graceful drain (callers run DrainWrites first);
  // whatever is still queued is discarded with the fds.
  for (auto& [id, conn] : connections_) {
    CloseFd(conn.fd);
    if (callbacks_.on_close) {
      callbacks_.on_close(id);
    }
  }
  connections_.clear();
  Metrics().GetGauge("net.connections.active").Set(0);
}

Status Server::Poll(int timeout_ms) {
  // Cap the wait at the earliest idle deadline so an idle connection is
  // closed on time even when the loop is otherwise quiet.
  const int idle_ms = NextIdleDeadlineMs();
  if (idle_ms >= 0 && (timeout_ms < 0 || idle_ms < timeout_ms)) {
    timeout_ms = idle_ms;
  }

  std::vector<pollfd> fds;
  std::vector<std::uint64_t> ids;  // ids[i] owns fds[i + has_listener]
  const bool has_listener = listen_fd_ >= 0;
  fds.reserve(connections_.size() + 1);
  if (has_listener) {
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  }
  for (const auto& [id, conn] : connections_) {
    short events = 0;
    // A connection marked close-after-flush is done reading: its final
    // response is on the way out and new requests would never be answered.
    if (!conn.close_after_flush && !conn.splitter.poisoned()) {
      events |= POLLIN;
    }
    if (!conn.writes.empty()) {
      events |= POLLOUT;
    }
    fds.push_back(pollfd{conn.fd, events, 0});
    ids.push_back(id);
  }

  const int ready = PollFds(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    return Status::Internal("poll() failed on the server loop");
  }

  if (has_listener && (fds[0].revents & POLLIN) != 0) {
    AcceptReady();
  }

  std::vector<std::uint64_t> dead;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const pollfd& pfd = fds[i + (has_listener ? 1 : 0)];
    const auto it = connections_.find(ids[i]);
    if (it == connections_.end()) {
      continue;  // closed by a callback earlier this iteration
    }
    Connection& conn = it->second;
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
      dead.push_back(ids[i]);
      continue;
    }
    if ((pfd.revents & (POLLIN | POLLHUP)) != 0) {
      if (!ReadReady(ids[i], conn)) {
        dead.push_back(ids[i]);
        continue;
      }
    }
    if ((pfd.revents & POLLOUT) != 0) {
      FlushConnection(ids[i], conn);
    }
  }
  for (const std::uint64_t id : dead) {
    Close(id, "peer");
  }

  // Retire connections whose farewell response has fully flushed.
  std::vector<std::uint64_t> flushed;
  for (const auto& [id, conn] : connections_) {
    if (conn.close_after_flush && conn.writes.empty()) {
      flushed.push_back(id);
    }
  }
  for (const std::uint64_t id : flushed) {
    Close(id, "drained");
  }

  CloseIdleConnections();
  return Status::Ok();
}

void Server::AcceptReady() {
  while (listen_fd_ >= 0) {
    const IoResult accepted = AcceptFd(listen_fd_);
    if (accepted.state == IoState::kWouldBlock) {
      return;
    }
    if (accepted.state != IoState::kOk) {
      Metrics().GetCounter("net.accept.errors").Increment();
      return;
    }
    const int fd = static_cast<int>(accepted.bytes);
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Admission cap: tell the client it is load, not protocol, and move
      // on. One best-effort blocking-ish write on a fresh socket always
      // fits the send buffer.
      if (!options_.busy_response.empty()) {
        (void)WriteFd(fd, options_.busy_response.data(),
                      options_.busy_response.size());
      }
      CloseFd(fd);
      Metrics().GetCounter("net.connections.rejected").Increment();
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      CloseFd(fd);
      Metrics().GetCounter("net.accept.errors").Increment();
      continue;
    }
    const std::uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.splitter = FrameSplitter(options_.max_line_bytes);
    connections_.emplace(id, std::move(conn));
    Metrics().GetCounter("net.connections.accepted").Increment();
    Metrics().GetGauge("net.connections.active")
        .Set(static_cast<double>(connections_.size()));
    Metrics().GetGauge("net.connections.active_max")
        .SetMax(static_cast<double>(connections_.size()));
  }
}

bool Server::ReadReady(std::uint64_t conn_id, Connection& conn) {
  char buffer[16 * 1024];
  std::size_t budget = options_.read_budget_bytes;
  bool peer_closed = false;
  Status frame_status = Status::Ok();
  while (budget > 0) {
    const std::size_t want = std::min(budget, sizeof(buffer));
    const IoResult got = ReadFd(conn.fd, buffer, want);
    if (got.state == IoState::kWouldBlock) {
      break;
    }
    if (got.state == IoState::kClosed) {
      peer_closed = true;
      break;
    }
    if (got.state == IoState::kError) {
      Metrics().GetCounter("net.read.errors").Increment();
      return false;
    }
    budget -= got.bytes;
    Metrics().GetCounter("net.bytes.in")
        .Add(static_cast<std::int64_t>(got.bytes));
    conn.last_activity.Restart();
    frame_status = conn.splitter.Feed(std::string_view(buffer, got.bytes));
    if (!frame_status.ok()) {
      break;  // poisoned: reject below, after dispatching what framed cleanly
    }
    if (got.bytes < want) {
      break;  // short read: the kernel buffer is drained
    }
  }

  // Dispatch every complete line framed so far. The callback may Send() and
  // CloseAfterFlush() but never CloseConnection() (documented in server.h),
  // so `conn` stays valid across the loop.
  std::string line;
  while (conn.splitter.Next(&line)) {
    Metrics().GetCounter("net.lines.parsed").Increment();
    callbacks_.on_line(conn_id, std::move(line));
    line.clear();
  }

  if (!frame_status.ok()) {
    Metrics().GetCounter("net.lines.oversize").Increment();
    if (callbacks_.on_protocol_error) {
      callbacks_.on_protocol_error(conn_id, frame_status);
    }
    conn.close_after_flush = true;
    FlushConnection(conn_id, conn);
    return true;  // closes once the rejection response drains
  }
  if (peer_closed) {
    // EOF: the client is done sending. Any requests already framed were
    // dispatched above; their responses have nowhere to go (the counterpart
    // client keeps its socket open until it has collected every response).
    return false;
  }
  return true;
}

void Server::FlushConnection(std::uint64_t conn_id, Connection& conn) {
  const std::uint64_t before = conn.writes.bytes_written();
  const IoState state = conn.writes.FlushTo(conn.fd);
  Metrics().GetCounter("net.bytes.out")
      .Add(static_cast<std::int64_t>(conn.writes.bytes_written() - before));
  if (state == IoState::kClosed || state == IoState::kError) {
    // Mid-write disconnect: a per-connection failure, never a server fault.
    Metrics().GetCounter("net.write.errors").Increment();
    Close(conn_id, "write");
  }
}

void Server::Send(std::uint64_t conn_id, std::string line) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    Metrics().GetCounter("net.responses.dropped").Increment();
    return;
  }
  Connection& conn = it->second;
  conn.writes.Append(std::move(line));
  Metrics().GetGauge("net.conn.write_queue_bytes_max")
      .SetMax(static_cast<double>(conn.writes.queued_bytes()));
  if (conn.writes.queued_bytes() > options_.max_write_buffer_bytes) {
    // The peer is not reading its responses; shedding it bounds memory.
    Metrics().GetCounter("net.connections.overflowed").Increment();
    Close(conn_id, "overflow");
    return;
  }
  if (conn.writes.FlushDue()) {
    FlushConnection(conn_id, conn);
  }
}

void Server::FlushWritable() {
  std::vector<std::uint64_t> pending;
  for (const auto& [id, conn] : connections_) {
    if (!conn.writes.empty()) {
      pending.push_back(id);
    }
  }
  for (const std::uint64_t id : pending) {
    const auto it = connections_.find(id);
    if (it != connections_.end()) {
      FlushConnection(id, it->second);
    }
  }
}

void Server::StopAccepting() {
  if (listen_fd_ >= 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::CloseAfterFlush(std::uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it != connections_.end()) {
    it->second.close_after_flush = true;
  }
}

void Server::CloseConnection(std::uint64_t conn_id) {
  Close(conn_id, "server");
}

void Server::Close(std::uint64_t conn_id, const char* reason) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    return;
  }
  CloseFd(it->second.fd);
  connections_.erase(it);
  Metrics().GetCounter(std::string("net.connections.closed.") + reason)
      .Increment();
  Metrics().GetGauge("net.connections.active")
      .Set(static_cast<double>(connections_.size()));
  if (callbacks_.on_close) {
    callbacks_.on_close(conn_id);
  }
}

void Server::SetIdleExempt(std::uint64_t conn_id, bool exempt) {
  const auto it = connections_.find(conn_id);
  if (it != connections_.end()) {
    it->second.idle_exempt = exempt;
  }
}

void Server::CloseIdleConnections() {
  if (options_.idle_timeout_ms <= 0) {
    return;
  }
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (conn.last_activity.ElapsedMillis() < options_.idle_timeout_ms) {
      continue;
    }
    // Never close a peer we still owe bytes (queued responses) or answers
    // (admitted jobs pinned via SetIdleExempt): "idle" means the peer is
    // silent AND the server is done with it.
    if (conn.idle_exempt || !conn.writes.empty()) {
      Metrics().GetCounter("net.connections.idle_spared").Increment();
      continue;
    }
    idle.push_back(id);
  }
  for (const std::uint64_t id : idle) {
    Metrics().GetCounter("net.connections.idle_closed").Increment();
    Close(id, "idle");
  }
}

int Server::NextIdleDeadlineMs() const {
  if (options_.idle_timeout_ms <= 0) {
    return -1;
  }
  double soonest = -1;
  for (const auto& [id, conn] : connections_) {
    if (conn.idle_exempt) {
      continue;  // pinned connections have no idle deadline to wake for
    }
    const double remaining =
        options_.idle_timeout_ms - conn.last_activity.ElapsedMillis();
    soonest = soonest < 0 ? remaining : std::min(soonest, remaining);
  }
  if (soonest < 0) {
    return -1;
  }
  return std::max(0, static_cast<int>(soonest) + 1);
}

void Server::DrainWrites(int timeout_ms) {
  Stopwatch watch;
  while (has_queued_writes() && watch.ElapsedMillis() < timeout_ms) {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;
    for (const auto& [id, conn] : connections_) {
      if (!conn.writes.empty()) {
        fds.push_back(pollfd{conn.fd, POLLOUT, 0});
        ids.push_back(id);
      }
    }
    const int remaining =
        std::max(1, timeout_ms - static_cast<int>(watch.ElapsedMillis()));
    if (PollFds(fds.data(), fds.size(), std::min(remaining, 50)) < 0) {
      return;
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if ((fds[i].revents & (POLLOUT | POLLERR | POLLHUP)) == 0) {
        continue;
      }
      const auto it = connections_.find(ids[i]);
      if (it != connections_.end()) {
        FlushConnection(ids[i], it->second);
      }
    }
  }
}

bool Server::has_queued_writes() const {
  return std::any_of(connections_.begin(), connections_.end(),
                     [](const auto& entry) {
                       return !entry.second.writes.empty();
                     });
}

}  // namespace qplex::net
