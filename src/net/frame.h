#ifndef QPLEX_NET_FRAME_H_
#define QPLEX_NET_FRAME_H_

/// \file
/// Newline-delimited framing for the JSONL wire protocol. FrameSplitter
/// turns an arbitrary byte stream (partial lines, many lines per read) back
/// into complete request lines; WriteBuffer coalesces many small response
/// lines into few large writev() flushes. Both are pure byte machines with
/// no socket dependency, so the unit tests drive them without any I/O.

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/io.h"

namespace qplex::net {

/// Reassembles newline-delimited frames from a byte stream. Feed() appends
/// whatever one read() produced; Next() yields complete lines in order. A
/// line longer than `max_line_bytes` poisons the stream (kResourceExhausted):
/// the splitter cannot resynchronise inside an unbounded line, so the owning
/// connection must be closed. CR before LF is stripped, so both "\n" and
/// "\r\n" clients work.
class FrameSplitter {
 public:
  static constexpr std::size_t kDefaultMaxLineBytes = 1 << 20;  // 1 MiB

  explicit FrameSplitter(std::size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends raw bytes. Returns kResourceExhausted once the unterminated
  /// tail exceeds the line limit; the splitter stays poisoned afterwards.
  Status Feed(std::string_view bytes);

  /// Pops the next complete line (newline stripped) into `*line`. Returns
  /// false when no complete line is buffered.
  bool Next(std::string* line);

  /// Bytes buffered in the unterminated tail (diagnostic; a half-received
  /// line at connection teardown means the client hung up mid-request).
  std::size_t pending_bytes() const { return tail_.size(); }
  bool poisoned() const { return poisoned_; }

 private:
  std::size_t max_line_bytes_;
  std::deque<std::string> lines_;
  std::string tail_;
  bool poisoned_ = false;
};

/// Outbound byte queue with coalescing flushes. Append() enqueues complete
/// response lines; Flush() hands the kernel as much as it will take in one
/// writev() of up to kMaxIov chunks, resuming cleanly after partial writes.
/// Small responses therefore aggregate toward ~MTU-sized segments instead of
/// one syscall (and one tinygram) per response — the buffered-send
/// aggregation idiom from Galois' network layer.
class WriteBuffer {
 public:
  /// Aggregation target: Flush() is worth calling once this many bytes are
  /// queued (callers may flush earlier, e.g. when the event loop goes idle).
  /// ~one Ethernet MTU of payload.
  static constexpr std::size_t kFlushThresholdBytes = 1400;
  /// Chunks per writev call; deliberately below any platform IOV_MAX.
  static constexpr int kMaxIov = 64;

  /// Enqueues one already-framed line (caller includes the trailing '\n').
  void Append(std::string line);

  /// True when enough is buffered that a flush would fill a segment.
  bool FlushDue() const { return queued_bytes_ >= kFlushThresholdBytes; }

  bool empty() const { return chunks_.empty(); }
  std::size_t queued_bytes() const { return queued_bytes_; }

  /// Writes as much as possible to `fd`. Partial writes advance an offset
  /// into the front chunk so no byte is ever re-sent. Returns the IoState of
  /// the last attempt: kOk (everything flushed or the fd stopped accepting
  /// exactly at a chunk boundary), kWouldBlock (retry on POLLOUT), kClosed,
  /// or kError.
  IoState FlushTo(int fd);

  /// Total bytes ever handed to the kernel and writev calls made (for the
  /// net.bytes.out / net.writes.coalesced metrics).
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t flush_calls() const { return flush_calls_; }

 private:
  std::deque<std::string> chunks_;
  std::size_t front_offset_ = 0;  ///< already-written bytes of chunks_.front()
  std::size_t queued_bytes_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t flush_calls_ = 0;
};

}  // namespace qplex::net

#endif  // QPLEX_NET_FRAME_H_
