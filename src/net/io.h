#ifndef QPLEX_NET_IO_H_
#define QPLEX_NET_IO_H_

/// \file
/// EINTR-safe POSIX I/O wrappers shared by the server event loop and the
/// loopback client. Every wrapper retries the underlying syscall while it
/// fails with EINTR, so a signal landing mid-read (SIGTERM during a graceful
/// drain, a profiler's SIGPROF) degrades to a retried call instead of a
/// spurious I/O error. Would-block conditions are surfaced as distinct
/// results, never as errors — the callers run non-blocking descriptors.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

struct iovec;   // <sys/uio.h>
struct pollfd;  // <poll.h>

namespace qplex::net {

/// Outcome of one non-blocking read/write attempt.
enum class IoState : std::uint8_t {
  kOk,          ///< progress was made; `bytes` is valid
  kWouldBlock,  ///< EAGAIN/EWOULDBLOCK: retry after the next poll readiness
  kClosed,      ///< orderly EOF (read) or the peer vanished (EPIPE/ECONNRESET)
  kError,       ///< anything else; `errno_value` names it
};

struct IoResult {
  IoState state = IoState::kError;
  std::size_t bytes = 0;
  int errno_value = 0;
};

/// read(fd) with EINTR retry. kClosed on EOF.
IoResult ReadFd(int fd, char* buffer, std::size_t capacity);

/// write(fd) with EINTR retry. A disconnected peer (EPIPE, ECONNRESET) is
/// kClosed, not kError: client hangups are per-connection data, never a
/// server fault. Requires SIGPIPE to be ignored (IgnoreSigpipe below).
IoResult WriteFd(int fd, const char* data, std::size_t size);

/// writev(fd) over `count` chunks with EINTR retry; same contract as WriteFd.
IoResult WritevFd(int fd, const iovec* chunks, int count);

/// poll() with EINTR retry. Returns the number of ready descriptors (0 on
/// timeout); a genuine failure is < 0 with errno preserved. On EINTR the
/// remaining timeout is NOT recomputed — callers run their own deadline
/// arithmetic every loop iteration anyway, and returning early just makes
/// the loop re-check its signal flags sooner, which is exactly what the
/// interrupting signal wanted.
int PollFds(pollfd* fds, std::size_t count, int timeout_ms);

/// accept(listen_fd) with EINTR retry. kWouldBlock when the backlog is empty;
/// transient per-connection failures (ECONNABORTED — the peer gave up while
/// queued) also report kWouldBlock so the accept loop simply moves on.
/// On kOk, `bytes` carries the new descriptor.
IoResult AcceptFd(int listen_fd);

/// O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

/// Process-wide SIGPIPE -> SIG_IGN, so a client disconnecting mid-write
/// surfaces as EPIPE on that connection's write instead of killing the
/// process. Idempotent.
void IgnoreSigpipe();

/// close(fd), retrying EINTR (POSIX leaves the fd state unspecified on
/// EINTR, but retrying is the portable-in-practice Linux behaviour and the
/// descriptor is never reused concurrently here).
void CloseFd(int fd);

/// Creates a non-blocking loopback listener on `port` (0 = kernel-assigned)
/// with SO_REUSEADDR. Returns the listening fd; `*bound_port` receives the
/// actual port.
Result<int> ListenLoopback(int port, int* bound_port);

/// Blocking loopback connect for the client side.
Result<int> ConnectLoopback(int port);

}  // namespace qplex::net

#endif  // QPLEX_NET_IO_H_
