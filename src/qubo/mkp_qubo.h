#ifndef QPLEX_QUBO_MKP_QUBO_H_
#define QPLEX_QUBO_MKP_QUBO_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "qubo/qubo_model.h"

namespace qplex {

/// The qaMKP QUBO of the paper (Eq. 13):
///
///   F = -sum_i x_i
///       + R * sum_i ( sum_{j in N-bar(i)} x_j + s_i - (k-1) - M_i(1-x_i) )^2
///
/// built on the complement graph N-bar, with per-vertex big-M
/// M_i = d-bar(v_i) - k + 1 and slack s_i expanded over L_i binary bits.
/// Minimizing F over {x, s} solves MKP: at the optimum, the x bits select a
/// maximum k-plex and the penalty vanishes.
struct MkpQubo {
  QuboModel model = QuboModel(0);
  /// The original input graph (the plex is reported against it).
  Graph graph;
  /// Cached complement N-bar, computed once in BuildMkpQubo; every penalty
  /// and slack computation walks complement neighborhoods, and rebuilding it
  /// per OptimizeSlacks call is O(n^2) wasted on the hybrid solver hot path.
  Graph complement;
  int k = 0;
  double penalty = 0;  ///< R

  /// Variable layout: x_i is variable i for i in [0, n); slack bit r of
  /// vertex i is slack_offset[i] + r with slack_bits[i] bits total.
  std::vector<int> slack_offset;
  std::vector<int> slack_bits;
  /// The big-M used for each vertex's constraint.
  std::vector<int> big_m;

  int num_vertices() const { return graph.num_vertices(); }
  int num_variables() const { return model.num_variables(); }
  int num_slack_variables() const {
    return model.num_variables() - graph.num_vertices();
  }

  /// Extracts the selected vertex set from a sample (slacks ignored).
  VertexList DecodeVertices(const QuboSample& sample) const;

  /// True when the decoded vertex set is a k-plex (i.e. the sample is
  /// feasible regardless of slack configuration).
  bool IsFeasible(const QuboSample& sample) const;

  /// Energy of a sample (convenience for model.Evaluate).
  double Cost(const QuboSample& sample) const { return model.Evaluate(sample); }

  /// The best achievable cost for a k-plex of size `size` (penalty 0):
  /// -size. Used to recognise optimal samples in the harnesses.
  static double CostOfPlexSize(int size) { return -static_cast<double>(size); }

  /// Greedily repairs an infeasible sample by removing the most-violating
  /// vertices until the decoded set is a k-plex; returns the repaired size.
  /// (The hybrid solver's classical post-processing step.)
  VertexList RepairToPlex(const QuboSample& sample) const;

  /// Sets the slack bits of `sample` to the values that minimize each
  /// vertex's penalty given the current x bits (slacks are auxiliary; this is
  /// the "slack variables need not be optimal" note of Section IV-C).
  void OptimizeSlacks(QuboSample* sample) const;

  /// Domain-aware polish: decodes the sample, repairs it to a k-plex,
  /// greedily extends the plex while the k-plex invariant holds, and writes
  /// the result back with optimally configured slacks. Always leaves the
  /// sample feasible with energy -|plex|. This is the classical refinement
  /// half a hybrid annealing service applies between quantum samples.
  void ImproveSample(QuboSample* sample) const;
};

/// Options for BuildMkpQubo.
struct MkpQuboOptions {
  /// Penalty strength R; the paper proves R > 1 is required and finds R = 2
  /// best in practice (Table VII).
  double penalty = 2.0;
  /// Ablation switch: use one worst-case big-M (max complement degree) for
  /// every vertex instead of the paper's per-vertex M_i = d-bar(v_i) - k + 1.
  /// Demonstrates how much the per-vertex choice saves in slack bits
  /// (Section IV-B1 argues for the smallest safe M).
  bool use_global_big_m = false;
};

/// Builds the qaMKP QUBO for `graph` and `k`. Fails for k < 1 or
/// penalty <= 1 (the correctness bound of Section IV-B3).
Result<MkpQubo> BuildMkpQubo(const Graph& graph, int k,
                             const MkpQuboOptions& options = {});

}  // namespace qplex

#endif  // QPLEX_QUBO_MKP_QUBO_H_
