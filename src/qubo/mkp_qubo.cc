#include "qubo/mkp_qubo.h"

#include <algorithm>
#include <cstdint>

#include "graph/kplex.h"

namespace qplex {
namespace {

/// Bits needed to represent 0..max_value (>= 0 bits; 0 when max_value == 0).
int SlackBitsFor(int max_value) {
  int bits = 0;
  while ((max_value >> bits) != 0) {
    ++bits;
  }
  return bits;
}

}  // namespace

VertexList MkpQubo::DecodeVertices(const QuboSample& sample) const {
  QPLEX_CHECK(static_cast<int>(sample.size()) == num_variables())
      << "sample arity mismatch";
  VertexList vertices;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    if (sample[v]) {
      vertices.push_back(v);
    }
  }
  return vertices;
}

bool MkpQubo::IsFeasible(const QuboSample& sample) const {
  const VertexList vertices = DecodeVertices(sample);
  return IsKPlex(graph,
                 VertexBitset::FromList(graph.num_vertices(), vertices), k);
}

VertexList MkpQubo::RepairToPlex(const QuboSample& sample) const {
  const int n = graph.num_vertices();
  VertexBitset members(n);
  for (Vertex v = 0; v < n; ++v) {
    if (sample[v]) {
      members.Set(v);
    }
  }
  // Repeatedly drop the member with the largest degree deficit.
  for (;;) {
    const int size = members.Count();
    Vertex worst = -1;
    int worst_deficit = 0;
    for (Vertex v : members.ToList()) {
      const int deficit = (size - k) - graph.DegreeIn(v, members);
      if (deficit > worst_deficit) {
        worst_deficit = deficit;
        worst = v;
      }
    }
    if (worst < 0) {
      break;  // already a k-plex
    }
    members.Reset(worst);
  }
  return members.ToList();
}

void MkpQubo::OptimizeSlacks(QuboSample* sample) const {
  QPLEX_CHECK(sample != nullptr && static_cast<int>(sample->size()) ==
                                        num_variables())
      << "sample arity mismatch";
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    const int big_m_v = big_m[v];
    // Residual the slack has to absorb:
    //   s = (k-1) + M(1-x_v) - sum_{j in N-bar(v)} x_j.
    int selected_neighbors = 0;
    for (Vertex j : complement.Neighbors(v)) {
      selected_neighbors += (*sample)[j];
    }
    int residual =
        (k - 1) + (((*sample)[v]) ? 0 : big_m_v) - selected_neighbors;
    const int bits = slack_bits[v];
    const int max_slack = (1 << bits) - 1;
    residual = std::clamp(residual, 0, max_slack);
    for (int r = 0; r < bits; ++r) {
      (*sample)[slack_offset[v] + r] =
          static_cast<std::uint8_t>((residual >> r) & 1);
    }
  }
}

void MkpQubo::ImproveSample(QuboSample* sample) const {
  QPLEX_CHECK(sample != nullptr && static_cast<int>(sample->size()) ==
                                        num_variables())
      << "sample arity mismatch";
  const int n = graph.num_vertices();
  VertexBitset members(n);
  for (Vertex v : RepairToPlex(*sample)) {
    members.Set(v);
  }
  // Greedy extension: repeatedly add any vertex that keeps the set a k-plex
  // (highest-degree candidates first, mirroring the BS greedy bound). The
  // member check uses deg_{P+v}(u) = deg_P(u) + [u ~ v], so no temporary
  // subset is built per candidate.
  bool grew = true;
  while (grew) {
    grew = false;
    const int size = members.Count();
    Vertex pick = -1;
    int pick_degree = -1;
    for (Vertex v = 0; v < n; ++v) {
      if (members.Test(v)) {
        continue;
      }
      if (graph.DegreeIn(v, members) < size + 1 - k) {
        continue;
      }
      const bool feasible = members.ForEachBitWhile([&](Vertex u) {
        return graph.DegreeIn(u, members) + (graph.HasEdge(u, v) ? 1 : 0) >=
               size + 1 - k;
      });
      if (feasible && graph.Degree(v) > pick_degree) {
        pick = v;
        pick_degree = graph.Degree(v);
      }
    }
    if (pick >= 0) {
      members.Set(pick);
      grew = true;
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    (*sample)[v] = members.Test(v) ? 1 : 0;
  }
  OptimizeSlacks(sample);
}

Result<MkpQubo> BuildMkpQubo(const Graph& graph, int k,
                             const MkpQuboOptions& options) {
  const int n = graph.num_vertices();
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.penalty <= 1.0) {
    return Status::InvalidArgument(
        "penalty R must exceed 1 (correctness bound, Section IV-B)");
  }

  MkpQubo qubo;
  qubo.graph = graph;
  qubo.complement = graph.Complement();
  qubo.k = k;
  qubo.penalty = options.penalty;

  const Graph& complement = qubo.complement;

  // Variable layout: vertices first, then each vertex's slack bits. The
  // paper's L_i = ceil(log2 max{d-bar(v_i), k-1}); we use the bit count that
  // exactly covers the slack's true maximum max{d-bar(v_i), k-1} (identical
  // except when that maximum is a power of two, where the paper's formula
  // under-allocates by one bit and would penalize valid assignments).
  qubo.slack_offset.assign(n, 0);
  qubo.slack_bits.assign(n, 0);
  qubo.big_m.assign(n, 0);
  const int max_degree_bar = complement.MaxDegree();
  int next_variable = n;
  for (Vertex v = 0; v < n; ++v) {
    const int degree_for_m =
        options.use_global_big_m ? max_degree_bar : complement.Degree(v);
    qubo.big_m[v] = degree_for_m - k + 1;
    // Slack maximum: (k-1) + M_v when x_v = 0 and no complement neighbour is
    // selected, or k-1 when x_v = 1 — whichever is larger.
    const int max_slack = std::max((k - 1) + qubo.big_m[v], k - 1);
    qubo.slack_offset[v] = next_variable;
    qubo.slack_bits[v] = SlackBitsFor(max_slack);
    next_variable += qubo.slack_bits[v];
  }

  QuboModel model(next_variable);
  // Objective: maximize the plex size.
  for (Vertex v = 0; v < n; ++v) {
    model.AddLinear(v, -1.0);
  }

  // Penalty per vertex: R * (sum_{j in N-bar(v)} x_j + s_v - (k-1)
  //                          - M_v (1 - x_v))^2
  // expanded as R * (sum_t c_t z_t + constant)^2 over binary z_t.
  const double R = options.penalty;
  for (Vertex v = 0; v < n; ++v) {
    const double big_m = static_cast<double>(qubo.big_m[v]);
    std::vector<std::pair<int, double>> terms;  // (variable, coefficient)
    for (Vertex j : complement.Neighbors(v)) {
      terms.emplace_back(j, 1.0);
    }
    for (int r = 0; r < qubo.slack_bits[v]; ++r) {
      terms.emplace_back(qubo.slack_offset[v] + r,
                         static_cast<double>(1 << r));
    }
    terms.emplace_back(v, big_m);
    const double constant = -(static_cast<double>(k - 1) + big_m);

    model.AddOffset(R * constant * constant);
    for (std::size_t a = 0; a < terms.size(); ++a) {
      const auto& [var_a, coeff_a] = terms[a];
      // Diagonal: (c_a z_a)^2 = c_a^2 z_a, plus the cross term with the
      // constant.
      model.AddLinear(var_a, R * (coeff_a * coeff_a + 2.0 * coeff_a * constant));
      for (std::size_t b = a + 1; b < terms.size(); ++b) {
        const auto& [var_b, coeff_b] = terms[b];
        model.AddQuadratic(var_a, var_b, R * 2.0 * coeff_a * coeff_b);
      }
    }
  }

  qubo.model = std::move(model);
  return qubo;
}

}  // namespace qplex
