#include "qubo/qubo_model.h"

#include <algorithm>
#include <sstream>

namespace qplex {

QuboModel::QuboModel(int num_variables)
    : num_variables_(num_variables),
      linear_(num_variables, 0.0),
      neighbors_(num_variables) {
  QPLEX_CHECK(num_variables >= 0) << "negative variable count";
}

void QuboModel::AddLinear(int i, double weight) {
  QPLEX_CHECK(i >= 0 && i < num_variables_) << "variable " << i << " of "
                                            << num_variables_;
  linear_[i] += weight;
}

void QuboModel::AddQuadratic(int i, int j, double weight) {
  QPLEX_CHECK(i >= 0 && i < num_variables_) << "variable " << i;
  QPLEX_CHECK(j >= 0 && j < num_variables_) << "variable " << j;
  QPLEX_CHECK(i != j) << "diagonal terms belong in AddLinear (x^2 == x)";
  const auto key = std::minmax(i, j);
  const auto [it, inserted] = quadratic_.try_emplace(key, weight);
  if (inserted) {
    neighbors_[i].emplace_back(j, weight);
    neighbors_[j].emplace_back(i, weight);
  } else {
    it->second += weight;
    for (auto& [other, w] : neighbors_[i]) {
      if (other == j) {
        w += weight;
      }
    }
    for (auto& [other, w] : neighbors_[j]) {
      if (other == i) {
        w += weight;
      }
    }
  }
}

double QuboModel::linear(int i) const {
  QPLEX_CHECK(i >= 0 && i < num_variables_) << "variable " << i;
  return linear_[i];
}

double QuboModel::quadratic(int i, int j) const {
  const auto it = quadratic_.find(std::minmax(i, j));
  return it == quadratic_.end() ? 0.0 : it->second;
}

double QuboModel::Evaluate(const QuboSample& sample) const {
  QPLEX_CHECK(static_cast<int>(sample.size()) == num_variables_)
      << "sample arity mismatch";
  double energy = offset_;
  for (int i = 0; i < num_variables_; ++i) {
    if (sample[i]) {
      energy += linear_[i];
    }
  }
  for (const auto& [key, weight] : quadratic_) {
    if (sample[key.first] && sample[key.second]) {
      energy += weight;
    }
  }
  return energy;
}

double QuboModel::FlipDelta(const QuboSample& sample, int i) const {
  QPLEX_CHECK(i >= 0 && i < num_variables_) << "variable " << i;
  // Contribution of x_i given the rest of the sample.
  double slope = linear_[i];
  for (const auto& [j, weight] : neighbors_[i]) {
    if (sample[j]) {
      slope += weight;
    }
  }
  return sample[i] ? -slope : slope;
}

const std::vector<std::pair<int, double>>& QuboModel::Neighbors(int i) const {
  QPLEX_CHECK(i >= 0 && i < num_variables_) << "variable " << i;
  return neighbors_[i];
}

Graph QuboModel::InteractionGraph() const {
  Graph graph(num_variables_);
  for (const auto& [key, weight] : quadratic_) {
    if (weight != 0.0) {
      graph.AddEdge(key.first, key.second);
    }
  }
  return graph;
}

IsingModel QuboModel::ToIsing() const {
  // x_i = (1 + s_i) / 2:
  //   a x         -> a/2 + (a/2) s
  //   b x_i x_j   -> b/4 + (b/4)(s_i + s_j) + (b/4) s_i s_j
  IsingModel ising;
  ising.offset = offset_;
  ising.fields.assign(num_variables_, 0.0);
  for (int i = 0; i < num_variables_; ++i) {
    ising.offset += linear_[i] / 2;
    ising.fields[i] += linear_[i] / 2;
  }
  for (const auto& [key, weight] : quadratic_) {
    ising.offset += weight / 4;
    ising.fields[key.first] += weight / 4;
    ising.fields[key.second] += weight / 4;
    ising.couplings.push_back({key, weight / 4});
  }
  return ising;
}

std::string QuboModel::ToString() const {
  std::ostringstream out;
  out << "QuboModel(vars=" << num_variables_
      << ", quadratic_terms=" << quadratic_.size() << ", offset=" << offset_
      << ")";
  return out.str();
}

}  // namespace qplex
