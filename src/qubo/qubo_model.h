#ifndef QPLEX_QUBO_QUBO_MODEL_H_
#define QPLEX_QUBO_QUBO_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace qplex {

/// An assignment of the binary variables (one byte per variable, 0 or 1).
using QuboSample = std::vector<std::uint8_t>;

/// Ising form of a QUBO: E(s) = offset + sum h_i s_i + sum J_ij s_i s_j with
/// spins s in {-1, +1}. Used by the path-integral (quantum) annealer.
struct IsingModel {
  double offset = 0;
  std::vector<double> fields;                            // h_i
  std::vector<std::pair<std::pair<int, int>, double>> couplings;  // J_ij, i<j
};

/// A quadratic unconstrained binary optimization problem
///   E(x) = offset + sum_i a_i x_i + sum_{i<j} b_ij x_i x_j,  x_i in {0,1},
/// to be minimized. Quadratic terms are stored symmetrically folded onto
/// i < j; duplicate Add calls accumulate. Per-variable adjacency is kept so
/// annealers can compute single-flip energy deltas in O(degree).
class QuboModel {
 public:
  explicit QuboModel(int num_variables);

  int num_variables() const { return num_variables_; }
  double offset() const { return offset_; }

  void AddOffset(double value) { offset_ += value; }
  /// Accumulates a_i += weight.
  void AddLinear(int i, double weight);
  /// Accumulates b_ij += weight (i != j; stored on the i<j key).
  void AddQuadratic(int i, int j, double weight);

  double linear(int i) const;
  /// Quadratic coefficient (0 when absent).
  double quadratic(int i, int j) const;
  /// All quadratic terms with nonzero accumulated weight, keyed (i, j), i<j.
  const std::map<std::pair<int, int>, double>& quadratic_terms() const {
    return quadratic_;
  }
  std::int64_t num_quadratic_terms() const {
    return static_cast<std::int64_t>(quadratic_.size());
  }

  /// Full energy of a sample. O(n + #terms).
  double Evaluate(const QuboSample& sample) const;

  /// Energy change caused by flipping variable `i` in `sample`. O(deg(i)).
  double FlipDelta(const QuboSample& sample, int i) const;

  /// Variables adjacent to i through quadratic terms, with their weights.
  const std::vector<std::pair<int, double>>& Neighbors(int i) const;

  /// The interaction graph: vertices = variables, edges = quadratic terms.
  /// This is what gets minor-embedded onto annealer hardware.
  Graph InteractionGraph() const;

  /// Converts to the equivalent Ising model via x = (1 + s) / 2.
  IsingModel ToIsing() const;

  /// One-line summary for logs.
  std::string ToString() const;

 private:
  int num_variables_;
  double offset_ = 0;
  std::vector<double> linear_;
  std::map<std::pair<int, int>, double> quadratic_;
  std::vector<std::vector<std::pair<int, double>>> neighbors_;
};

}  // namespace qplex

#endif  // QPLEX_QUBO_QUBO_MODEL_H_
