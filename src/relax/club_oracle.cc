#include "relax/club_oracle.h"

#include <string>

#include "arith/adder.h"
#include "arith/comparator.h"
#include "arith/popcount.h"
#include "graph/kplex.h"
#include "grover/engine.h"
#include "quantum/basis_sim.h"
#include "quantum/statevector.h"
#include "relax/club.h"

namespace qplex {

Result<Club2Oracle> Club2Oracle::Build(const Graph& graph, int threshold) {
  const int n = graph.num_vertices();
  if (n < 1 || n > 64) {
    return Status::InvalidArgument("oracle requires 1 <= n <= 64");
  }
  if (threshold < 0 || threshold > n) {
    return Status::InvalidArgument("threshold outside [0, n]");
  }

  Club2Oracle oracle;
  oracle.num_vertices_ = n;
  oracle.threshold_ = threshold;
  Circuit& circuit = oracle.circuit_;

  const QubitRange vertices = circuit.AllocateRegister("v", n);

  // --- Pair reachability: one violation flag per non-adjacent pair. --------
  circuit.BeginStage("pair_check");
  std::vector<int> violation_wires;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (graph.HasEdge(u, v)) {
        continue;  // adjacent pairs can never violate the diameter bound
      }
      // Common neighbours of u and v.
      std::vector<Vertex> witnesses;
      for (Vertex w : graph.Neighbors(u)) {
        if (graph.HasEdge(w, v)) {
          witnesses.push_back(w);
        }
      }
      const std::string tag =
          std::to_string(u) + "_" + std::to_string(v);
      // no_witness = AND over witnesses of NOT x_w (constant 1 if none).
      const int no_witness = circuit.AllocateQubit("nw" + tag);
      if (witnesses.empty()) {
        circuit.Append(MakeX(no_witness));
      } else {
        std::vector<Control> controls;
        for (Vertex w : witnesses) {
          controls.push_back(Control{vertices[w], false});
        }
        circuit.Append(MakeMCX(std::move(controls), no_witness));
      }
      // violation = x_u AND x_v AND no_witness.
      const int violation = circuit.AllocateQubit("viol" + tag);
      circuit.Append(MakeMCX(
          std::vector<int>{vertices[u], vertices[v], no_witness}, violation));
      violation_wires.push_back(violation);
    }
  }
  // club flag = AND of negated violations.
  const int club = circuit.AllocateQubit("club");
  {
    std::vector<Control> controls;
    for (int wire : violation_wires) {
      controls.push_back(Control{wire, false});
    }
    circuit.Append(MakeMCX(std::move(controls), club));
  }

  // --- Size determination (shared machinery with the k-plex oracle). -------
  circuit.BeginStage("size_check");
  const QubitRange size_reg = circuit.AllocateRegister(
      "size", std::max(BitWidthFor(static_cast<std::uint64_t>(n)),
                       BitWidthFor(static_cast<std::uint64_t>(threshold))));
  {
    std::vector<int> vertex_wires;
    for (Vertex v = 0; v < n; ++v) {
      vertex_wires.push_back(vertices[v]);
    }
    AppendPopCount(&circuit, vertex_wires, size_reg);
  }
  const int size_ok = circuit.AllocateQubit("size_ok");
  {
    std::vector<int> size_wires;
    for (int i = 0; i < size_reg.width; ++i) {
      size_wires.push_back(size_reg[i]);
    }
    AppendGreaterEqualConst(&circuit, size_wires,
                            static_cast<std::uint64_t>(threshold), size_ok);
  }

  const int compute_end = circuit.num_gates();
  circuit.BeginStage("oracle_flip");
  oracle.oracle_wire_ = circuit.AllocateQubit("O");
  circuit.Append(MakeCCX(club, size_ok, oracle.oracle_wire_));
  circuit.BeginStage("uncompute");
  circuit.AppendInverseOfRange(0, compute_end);
  return oracle;
}

bool Club2Oracle::Evaluate(std::uint64_t vertex_mask) const {
  BitString input(circuit_.num_qubits());
  input.StoreInt(0, num_vertices_, vertex_mask);
  Result<BitString> final_state = BasisStateSimulator::Execute(circuit_, input);
  QPLEX_CHECK(final_state.ok()) << final_state.status().ToString();
  return final_state.value().Get(oracle_wire_);
}

Result<bool> Club2Oracle::EvaluateChecked(std::uint64_t vertex_mask) const {
  BitString input(circuit_.num_qubits());
  input.StoreInt(0, num_vertices_, vertex_mask);
  QPLEX_ASSIGN_OR_RETURN(BitString final_state,
                         BasisStateSimulator::Execute(circuit_, input));
  for (int wire = 0; wire < circuit_.num_qubits(); ++wire) {
    if (wire != oracle_wire_ && final_state.Get(wire) != input.Get(wire)) {
      return Status::Internal("ancilla wire " + std::to_string(wire) +
                              " not restored by uncompute");
    }
  }
  return final_state.Get(oracle_wire_);
}

std::vector<std::uint64_t> Club2Oracle::MarkedStates() const {
  QPLEX_CHECK(num_vertices_ <= 30) << "exhaustive evaluation needs n <= 30";
  std::vector<std::uint64_t> marked;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << num_vertices_);
       ++mask) {
    if (Evaluate(mask)) {
      marked.push_back(mask);
    }
  }
  return marked;
}

Result<Max2ClubResult> RunQMax2Club(const Graph& graph, std::uint64_t seed) {
  const int n = graph.num_vertices();
  if (n < 1 || n > StateVectorSimulator::kMaxQubits) {
    return Status::InvalidArgument("simulation requires 1 <= n <= " +
                                   std::to_string(
                                       StateVectorSimulator::kMaxQubits));
  }
  QPLEX_RETURN_IF_ERROR(CheckSimulationBudget(n));
  Rng rng(seed);
  Max2ClubResult result;
  int low = 1;
  int high = n;
  while (low <= high) {
    const int mid = low + (high - low) / 2;
    QPLEX_ASSIGN_OR_RETURN(Club2Oracle oracle, Club2Oracle::Build(graph, mid));
    const auto marked = oracle.MarkedStates();
    ++result.probes;
    bool found = false;
    if (!marked.empty()) {
      GroverSimulation grover(n, marked);
      const int iterations = OptimalGroverIterations(
          n, static_cast<std::int64_t>(marked.size()));
      // Up to three verified attempts per probe, as in qTKP.
      for (int attempt = 0; attempt < 3 && !found; ++attempt) {
        grover.Reset();
        grover.Run(iterations);
        result.oracle_calls += iterations;
        const std::uint64_t sample = grover.Measure(rng);
        if (IsSClubMask(graph, sample, 2) &&
            __builtin_popcountll(sample) >= mid) {
          found = true;
          const int size = __builtin_popcountll(sample);
          if (size > result.size) {
            result.size = size;
            result.mask = sample;
            result.members = MaskToBitset(n, sample).ToList();
          }
        }
      }
    }
    if (found) {
      low = std::max(mid, result.size) + 1;
    } else {
      high = mid - 1;
    }
  }
  return result;
}

}  // namespace qplex
