#ifndef QPLEX_RELAX_CLUB_ORACLE_H_
#define QPLEX_RELAX_CLUB_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "quantum/circuit.h"

namespace qplex {

/// The paper's "Adaptability" claim made concrete (Section III-G): the same
/// encoding / counting / comparison machinery behind the k-plex oracle
/// builds a decision oracle for the 2-club model — is the selected subset a
/// 2-club (induced diameter <= 2) of size >= T?
///
/// Per non-adjacent pair (u, v) the circuit computes
///   no_witness_uv = AND over common neighbours w of NOT x_w
///   violation_uv  = x_u AND x_v AND no_witness_uv
/// and the club flag is the AND of all negated violations; the size stage is
/// shared with the k-plex oracle (popcount + comparator). All gates are
/// classical reversible, so the same basis-state simulator executes it.
class Club2Oracle {
 public:
  static Result<Club2Oracle> Build(const Graph& graph, int threshold);

  int num_vertices() const { return num_vertices_; }
  int threshold() const { return threshold_; }
  const Circuit& circuit() const { return circuit_; }
  int num_qubits() const { return circuit_.num_qubits(); }
  int oracle_wire() const { return oracle_wire_; }

  /// Executes the literal circuit on one subset.
  bool Evaluate(std::uint64_t vertex_mask) const;

  /// Evaluate + verify the uncompute contract.
  Result<bool> EvaluateChecked(std::uint64_t vertex_mask) const;

  /// All marked subsets (exhaustive; n <= 30).
  std::vector<std::uint64_t> MarkedStates() const;

 private:
  Club2Oracle() = default;

  int num_vertices_ = 0;
  int threshold_ = 0;
  Circuit circuit_;
  int oracle_wire_ = 0;
};

/// Result of the Grover-based maximum 2-club search.
struct Max2ClubResult {
  VertexList members;
  int size = 0;
  std::uint64_t mask = 0;
  std::int64_t oracle_calls = 0;
  int probes = 0;
};

/// Maximum 2-club via binary search over T driving Grover searches, the
/// direct analogue of qMKP. Requires n <= StateVectorSimulator limits.
Result<Max2ClubResult> RunQMax2Club(const Graph& graph, std::uint64_t seed);

}  // namespace qplex

#endif  // QPLEX_RELAX_CLUB_ORACLE_H_
