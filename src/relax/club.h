#ifndef QPLEX_RELAX_CLUB_H_
#define QPLEX_RELAX_CLUB_H_

#include <cstdint>

#include "common/status.h"
#include "graph/graph.h"

namespace qplex {

/// Distance-based clique relaxations (the models the paper names as further
/// targets of its oracle machinery, Section III-G "Adaptability"):
///   s-clique: every pair of members is within distance s in the WHOLE graph;
///   s-club:   the induced subgraph has diameter <= s;
///   s-clan:   an s-clique whose induced subgraph also has diameter <= s.
/// Every s-club is an s-clan, and every s-clan is an s-clique.

/// All-pairs shortest-path distances inside the subgraph induced by
/// `members` (|members| x |members| not materialized; query via the graph's
/// vertex ids). Unreachable pairs get a large sentinel.
constexpr int kUnreachable = 1 << 20;

/// Distance between u and v inside the subgraph induced by `members`
/// (BFS; u and v must be members).
int InducedDistance(const Graph& graph, const VertexBitset& members, Vertex u,
                    Vertex v);

/// Diameter of the induced subgraph (kUnreachable when disconnected,
/// 0 for sets of size <= 1).
int InducedDiameter(const Graph& graph, const VertexBitset& members);

/// True if every pair of members is within distance s in the whole graph.
bool IsSClique(const Graph& graph, const VertexBitset& members, int s);

/// True if the induced subgraph has diameter <= s (and is connected).
bool IsSClub(const Graph& graph, const VertexBitset& members, int s);

/// True if `members` is an s-clique and an s-club simultaneously.
bool IsSClan(const Graph& graph, const VertexBitset& members, int s);

/// Mask forms (n <= 64), matching graph/kplex.h conventions.
bool IsSClubMask(const Graph& graph, std::uint64_t mask, int s);
bool IsSCliqueMask(const Graph& graph, std::uint64_t mask, int s);
bool IsSClanMask(const Graph& graph, std::uint64_t mask, int s);

/// Exhaustive maximum s-club (ground truth; n <= 30).
struct ClubSolution {
  VertexList members;
  int size = 0;
  std::uint64_t mask = 0;
};
Result<ClubSolution> SolveMaxSClubByEnumeration(const Graph& graph, int s);

}  // namespace qplex

#endif  // QPLEX_RELAX_CLUB_H_
