#include "relax/club.h"

#include <bit>
#include <queue>

#include "graph/kplex.h"

namespace qplex {
namespace {

/// BFS distances from `source` inside the subgraph induced by `members`.
std::vector<int> InducedBfs(const Graph& graph, const VertexBitset& members,
                            Vertex source) {
  std::vector<int> distance(graph.num_vertices(), kUnreachable);
  distance[source] = 0;
  std::queue<Vertex> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const Vertex u = frontier.front();
    frontier.pop();
    for (Vertex w : graph.Neighbors(u)) {
      if (members.Test(w) && distance[w] == kUnreachable) {
        distance[w] = distance[u] + 1;
        frontier.push(w);
      }
    }
  }
  return distance;
}

/// BFS distances from `source` in the whole graph.
std::vector<int> GlobalBfs(const Graph& graph, Vertex source) {
  VertexBitset all(graph.num_vertices());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    all.Set(v);
  }
  return InducedBfs(graph, all, source);
}

}  // namespace

int InducedDistance(const Graph& graph, const VertexBitset& members, Vertex u,
                    Vertex v) {
  QPLEX_CHECK(members.Test(u) && members.Test(v))
      << "endpoints must be members";
  return InducedBfs(graph, members, u)[v];
}

int InducedDiameter(const Graph& graph, const VertexBitset& members) {
  const VertexList vertices = members.ToList();
  if (vertices.size() <= 1) {
    return 0;
  }
  int diameter = 0;
  for (Vertex source : vertices) {
    const std::vector<int> distance = InducedBfs(graph, members, source);
    for (Vertex v : vertices) {
      diameter = std::max(diameter, distance[v]);
      if (diameter >= kUnreachable) {
        return kUnreachable;
      }
    }
  }
  return diameter;
}

bool IsSClique(const Graph& graph, const VertexBitset& members, int s) {
  QPLEX_CHECK(s >= 1) << "s must be >= 1";
  const VertexList vertices = members.ToList();
  for (Vertex source : vertices) {
    const std::vector<int> distance = GlobalBfs(graph, source);
    for (Vertex v : vertices) {
      if (distance[v] > s) {
        return false;
      }
    }
  }
  return true;
}

bool IsSClub(const Graph& graph, const VertexBitset& members, int s) {
  QPLEX_CHECK(s >= 1) << "s must be >= 1";
  return InducedDiameter(graph, members) <= s;
}

bool IsSClan(const Graph& graph, const VertexBitset& members, int s) {
  return IsSClique(graph, members, s) && IsSClub(graph, members, s);
}

bool IsSClubMask(const Graph& graph, std::uint64_t mask, int s) {
  return IsSClub(graph, MaskToBitset(graph.num_vertices(), mask), s);
}

bool IsSCliqueMask(const Graph& graph, std::uint64_t mask, int s) {
  return IsSClique(graph, MaskToBitset(graph.num_vertices(), mask), s);
}

bool IsSClanMask(const Graph& graph, std::uint64_t mask, int s) {
  return IsSClan(graph, MaskToBitset(graph.num_vertices(), mask), s);
}

Result<ClubSolution> SolveMaxSClubByEnumeration(const Graph& graph, int s) {
  const int n = graph.num_vertices();
  if (n > 30) {
    return Status::InvalidArgument("enumeration limited to n <= 30");
  }
  if (s < 1) {
    return Status::InvalidArgument("s must be >= 1");
  }
  ClubSolution best;
  const std::uint64_t space = n == 0 ? 1 : (std::uint64_t{1} << n);
  for (std::uint64_t mask = 0; mask < space; ++mask) {
    const int size = std::popcount(mask);
    if (size > best.size && IsSClubMask(graph, mask, s)) {
      best.size = size;
      best.mask = mask;
    }
  }
  best.members = MaskToBitset(n, best.mask).ToList();
  return best;
}

}  // namespace qplex
