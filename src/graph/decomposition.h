#ifndef QPLEX_GRAPH_DECOMPOSITION_H_
#define QPLEX_GRAPH_DECOMPOSITION_H_

#include <vector>

#include "graph/graph.h"

namespace qplex {

/// Core numbers of every vertex: core(v) is the largest c such that v belongs
/// to a subgraph where every vertex has degree >= c. Computed by the linear
/// peeling algorithm (Matula–Beck).
std::vector<int> CoreNumbers(const Graph& graph);

/// Degeneracy of the graph = max core number (0 for empty graphs).
int Degeneracy(const Graph& graph);

/// A degeneracy ordering: repeatedly removes a minimum-degree vertex.
VertexList DegeneracyOrdering(const Graph& graph);

/// Number of triangles through each edge ("support"), keyed in the order of
/// Graph::Edges(). Used by the second-order (truss) reduction.
std::vector<int> EdgeSupports(const Graph& graph);

/// Total triangle count of the graph.
long long CountTriangles(const Graph& graph);

/// Greedy sequential colouring along a degeneracy ordering; returns the colour
/// of each vertex and uses at most degeneracy+1 colours. Colour-class counts
/// give the co-k-plex style upper bound used by branch-and-bound solvers.
std::vector<int> GreedyColoring(const Graph& graph);

}  // namespace qplex

#endif  // QPLEX_GRAPH_DECOMPOSITION_H_
