#include "graph/generators.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace qplex {
namespace {

long long MaxEdges(int n) {
  return static_cast<long long>(n) * (n - 1) / 2;
}

}  // namespace

Result<Graph> RandomGnm(int num_vertices, int num_edges, std::uint64_t seed) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  if (num_edges < 0 || num_edges > MaxEdges(num_vertices)) {
    return Status::InvalidArgument("edge count out of range for G(n,m)");
  }
  // Sample m distinct pairs via a partial Fisher–Yates over the edge universe
  // when the universe is small; fall back to rejection sampling otherwise.
  Rng rng(seed);
  Graph graph(num_vertices);
  const long long universe = MaxEdges(num_vertices);
  if (universe <= 4 * static_cast<long long>(num_edges) + 64) {
    std::vector<std::pair<Vertex, Vertex>> pairs;
    pairs.reserve(universe);
    for (Vertex u = 0; u < num_vertices; ++u) {
      for (Vertex v = u + 1; v < num_vertices; ++v) {
        pairs.emplace_back(u, v);
      }
    }
    for (int i = 0; i < num_edges; ++i) {
      const auto j =
          i + static_cast<long long>(rng.UniformInt(pairs.size() - i));
      std::swap(pairs[i], pairs[j]);
      graph.AddEdge(pairs[i].first, pairs[i].second);
    }
  } else {
    while (graph.num_edges() < num_edges) {
      const auto u = static_cast<Vertex>(rng.UniformInt(num_vertices));
      const auto v = static_cast<Vertex>(rng.UniformInt(num_vertices));
      if (u != v) {
        graph.AddEdge(u, v);
      }
    }
  }
  return graph;
}

Result<Graph> RandomGnp(int num_vertices, double edge_probability,
                        std::uint64_t seed) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  if (edge_probability < 0.0 || edge_probability > 1.0) {
    return Status::InvalidArgument("edge probability outside [0, 1]");
  }
  Rng rng(seed);
  Graph graph(num_vertices);
  for (Vertex u = 0; u < num_vertices; ++u) {
    for (Vertex v = u + 1; v < num_vertices; ++v) {
      if (rng.Bernoulli(edge_probability)) {
        graph.AddEdge(u, v);
      }
    }
  }
  return graph;
}

Result<Graph> PlantedKPlex(int num_vertices, int plex_size, int k,
                           double background_probability, std::uint64_t seed) {
  if (plex_size < 0 || plex_size > num_vertices) {
    return Status::InvalidArgument("plex size out of range");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  Rng rng(seed);
  QPLEX_ASSIGN_OR_RETURN(
      Graph graph, RandomGnp(num_vertices, background_probability, rng.Next()));

  // Choose the planted members: a random subset of size plex_size.
  std::vector<Vertex> vertices(num_vertices);
  for (Vertex v = 0; v < num_vertices; ++v) {
    vertices[v] = v;
  }
  for (int i = 0; i < plex_size; ++i) {
    const auto j = i + static_cast<int>(rng.UniformInt(num_vertices - i));
    std::swap(vertices[i], vertices[j]);
  }
  const VertexList members(vertices.begin(), vertices.begin() + plex_size);

  // Inside the planted set, connect each member to all but at most k-1
  // co-members: start from the complete subgraph and delete up to k-1 edges
  // per vertex, greedily respecting both endpoints' deletion budgets.
  Graph planted(num_vertices);
  for (const auto& [u, v] : graph.Edges()) {
    planted.AddEdge(u, v);
  }
  for (int i = 0; i < plex_size; ++i) {
    for (int j = i + 1; j < plex_size; ++j) {
      planted.AddEdge(members[i], members[j]);
    }
  }
  std::vector<int> missing_budget(num_vertices, k - 1);
  // Randomly drop some internal edges within budget so the plex is not simply
  // a clique (exercises the "deviation from clique" structure).
  for (int i = 0; i < plex_size; ++i) {
    for (int j = i + 1; j < plex_size; ++j) {
      const Vertex u = members[i];
      const Vertex v = members[j];
      if (missing_budget[u] > 0 && missing_budget[v] > 0 &&
          rng.Bernoulli(0.25)) {
        --missing_budget[u];
        --missing_budget[v];
        // Rebuild without this edge (Graph has no RemoveEdge by design: the
        // planting path is the only mutation-heavy user, and it is O(n^2)).
        Graph rebuilt(num_vertices);
        for (const auto& [a, b] : planted.Edges()) {
          if (!((a == u && b == v) || (a == v && b == u))) {
            rebuilt.AddEdge(a, b);
          }
        }
        planted = std::move(rebuilt);
      }
    }
  }
  return planted;
}

Graph CompleteGraph(int num_vertices) {
  Graph graph(num_vertices);
  for (Vertex u = 0; u < num_vertices; ++u) {
    for (Vertex v = u + 1; v < num_vertices; ++v) {
      graph.AddEdge(u, v);
    }
  }
  return graph;
}

Result<Graph> CycleGraph(int num_vertices) {
  if (num_vertices < 3) {
    return Status::InvalidArgument("cycle requires at least 3 vertices");
  }
  Graph graph(num_vertices);
  for (Vertex v = 0; v < num_vertices; ++v) {
    graph.AddEdge(v, (v + 1) % num_vertices);
  }
  return graph;
}

Graph PathGraph(int num_vertices) {
  Graph graph(num_vertices);
  for (Vertex v = 0; v + 1 < num_vertices; ++v) {
    graph.AddEdge(v, v + 1);
  }
  return graph;
}

Graph StarGraph(int num_vertices) {
  Graph graph(num_vertices);
  for (Vertex v = 1; v < num_vertices; ++v) {
    graph.AddEdge(0, v);
  }
  return graph;
}

}  // namespace qplex
