#include "graph/instances.h"

namespace qplex {

Graph PaperExampleComplement() {
  Graph graph(6);
  // Edges as wired in the paper's Fig. 6 encoding circuit (1-based labels in
  // the paper; 0-based here).
  graph.AddEdge(0, 5);  // e1 = (v1, v6)
  graph.AddEdge(1, 5);  // e2 = (v2, v6)
  graph.AddEdge(2, 5);  // e3 = (v3, v6)
  graph.AddEdge(3, 5);  // e4 = (v4, v6)
  graph.AddEdge(1, 4);  // e5 = (v2, v5)
  graph.AddEdge(1, 2);  // e6 = (v2, v3)
  graph.AddEdge(2, 4);  // e7 = (v3, v5)
  graph.AddEdge(2, 3);  // e8 = (v3, v4)
  return graph;
}

Graph PaperExampleGraph() { return PaperExampleComplement().Complement(); }

Graph KarateClub() {
  Graph graph(34);
  static constexpr int kEdges[][2] = {
      {0, 1},   {0, 2},   {0, 3},   {0, 4},   {0, 5},   {0, 6},   {0, 7},
      {0, 8},   {0, 10},  {0, 11},  {0, 12},  {0, 13},  {0, 17},  {0, 19},
      {0, 21},  {0, 31},  {1, 2},   {1, 3},   {1, 7},   {1, 13},  {1, 17},
      {1, 19},  {1, 21},  {1, 30},  {2, 3},   {2, 7},   {2, 8},   {2, 9},
      {2, 13},  {2, 27},  {2, 28},  {2, 32},  {3, 7},   {3, 12},  {3, 13},
      {4, 6},   {4, 10},  {5, 6},   {5, 10},  {5, 16},  {6, 16},  {8, 30},
      {8, 32},  {8, 33},  {9, 33},  {13, 33}, {14, 32}, {14, 33}, {15, 32},
      {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33}, {22, 32},
      {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33}, {24, 25},
      {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33}, {28, 31},
      {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32}, {31, 33},
      {32, 33},
  };
  for (const auto& edge : kEdges) {
    graph.AddEdge(edge[0], edge[1]);
  }
  return graph;
}

Graph PetersenGraph() {
  Graph graph(10);
  for (int i = 0; i < 5; ++i) {
    graph.AddEdge(i, (i + 1) % 5);          // outer cycle
    graph.AddEdge(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    graph.AddEdge(i, 5 + i);                // spokes
  }
  return graph;
}

}  // namespace qplex
