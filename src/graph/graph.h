#ifndef QPLEX_GRAPH_GRAPH_H_
#define QPLEX_GRAPH_GRAPH_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qplex {

/// Vertex identifier. Vertices of an n-vertex graph are 0..n-1.
using Vertex = int;

/// A subset of vertices, as a sorted list of vertex ids.
using VertexList = std::vector<Vertex>;

/// A dynamic bitset over vertices. Used for adjacency rows and subsets of
/// graphs too large for a 64-bit mask.
class VertexBitset {
 public:
  VertexBitset() = default;
  explicit VertexBitset(int num_vertices)
      : num_bits_(num_vertices), words_((num_vertices + 63) / 64, 0) {}

  int size() const { return num_bits_; }

  bool Test(Vertex v) const {
    return (words_[static_cast<std::size_t>(v) >> 6] >> (v & 63)) & 1;
  }
  void Set(Vertex v) { words_[static_cast<std::size_t>(v) >> 6] |= Bit(v); }
  void Reset(Vertex v) { words_[static_cast<std::size_t>(v) >> 6] &= ~Bit(v); }
  void Assign(Vertex v, bool value) { value ? Set(v) : Reset(v); }

  /// Number of set bits.
  int Count() const;
  /// Number of set bits in the intersection with `other` (same size).
  int IntersectCount(const VertexBitset& other) const;
  /// True if no bit is set.
  bool None() const;

  void Clear() { std::fill(words_.begin(), words_.end(), 0); }
  /// Sets every bit in [0, size).
  void SetAll();
  /// Complements the set within [0, size): bit i becomes !bit i.
  void FlipAll();

  /// In-place set algebra against a same-size set.
  void OrWith(const VertexBitset& other);
  void AndWith(const VertexBitset& other);
  void AndNotWith(const VertexBitset& other);

  /// Backing word array (little-endian bit order, (size + 63) / 64 words;
  /// bits at positions >= size are always zero).
  const std::uint64_t* words() const { return words_.data(); }
  int num_words() const { return static_cast<int>(words_.size()); }

  /// Calls `fn(Vertex)` for every set bit in ascending order.
  template <typename Fn>
  void ForEachBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        fn(static_cast<Vertex>(w * 64 + std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

  /// Like ForEachBit but `fn` returns false to stop early; returns true when
  /// every set bit was visited without an early stop.
  template <typename Fn>
  bool ForEachBitWhile(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        if (!fn(static_cast<Vertex>(w * 64 + std::countr_zero(word)))) {
          return false;
        }
        word &= word - 1;
      }
    }
    return true;
  }

  /// Sorted list of set vertices.
  VertexList ToList() const;

  /// Builds a bitset of `num_vertices` bits with the given members set.
  static VertexBitset FromList(int num_vertices, const VertexList& members);

  friend bool operator==(const VertexBitset& a, const VertexBitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  static std::uint64_t Bit(Vertex v) { return std::uint64_t{1} << (v & 63); }

  /// Zeroes the bits at positions >= num_bits_ in the last word.
  void ClearTail();

  int num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// An undirected, unweighted, loop-free graph with a fixed vertex count.
/// Stores both adjacency bitsets (O(1) edge queries, fast set intersections
/// for triangle/k-plex checks) and adjacency lists (cheap neighbourhood
/// iteration); memory is O(n^2/64 + m), fine for the instance sizes in the
/// paper's evaluation and for annealer hardware graphs (thousands of nodes).
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_vertices);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}. Self-loops and duplicates are ignored.
  void AddEdge(Vertex u, Vertex v);

  /// Bulk edge ingestion: adds every edge of `edges` (self-loops and
  /// duplicates ignored), appending to the neighbour lists and sorting each
  /// touched list once at the end. O(m + Σ d log d) total, versus the
  /// O(Σ d²) worst case of per-edge sorted inserts through AddEdge — the
  /// difference between linear and quadratic time when a vertex's whole
  /// neighbourhood arrives in one batch (MakeGraph, Complement,
  /// InducedSubgraph, reductions).
  void AddEdges(const std::vector<std::pair<Vertex, Vertex>>& edges);

  bool HasEdge(Vertex u, Vertex v) const {
    return adjacency_[u].Test(v);
  }

  int Degree(Vertex v) const { return static_cast<int>(neighbors_[v].size()); }
  int MaxDegree() const;

  /// Neighbour list of `v`, sorted ascending.
  const VertexList& Neighbors(Vertex v) const { return neighbors_[v]; }
  /// Neighbour bitset of `v`.
  const VertexBitset& NeighborBits(Vertex v) const { return adjacency_[v]; }

  /// Number of neighbours of `v` inside `subset`.
  int DegreeIn(Vertex v, const VertexBitset& subset) const {
    return adjacency_[v].IntersectCount(subset);
  }

  /// All edges as (u, v) pairs with u < v, sorted lexicographically.
  std::vector<std::pair<Vertex, Vertex>> Edges() const;

  /// The complement graph Ḡ: same vertices, edge iff not an edge here.
  Graph Complement() const;

  /// The subgraph induced by `keep`, with vertices renumbered 0..|keep|-1 in
  /// ascending original order. `old_to_new` (optional) receives the mapping,
  /// -1 for dropped vertices.
  Graph InducedSubgraph(const VertexBitset& keep,
                        std::vector<Vertex>* old_to_new = nullptr) const;

  /// Human-readable one-line summary, e.g. "Graph(n=6, m=8)".
  std::string ToString() const;

 private:
  int num_vertices_ = 0;
  int num_edges_ = 0;
  std::vector<VertexBitset> adjacency_;
  std::vector<VertexList> neighbors_;
};

/// Builds a graph from an explicit edge list. Vertices outside [0, n) are a
/// checked error.
Result<Graph> MakeGraph(int num_vertices,
                        const std::vector<std::pair<Vertex, Vertex>>& edges);

}  // namespace qplex

#endif  // QPLEX_GRAPH_GRAPH_H_
