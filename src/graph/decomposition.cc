#include "graph/decomposition.h"

#include <algorithm>

namespace qplex {

std::vector<int> CoreNumbers(const Graph& graph) {
  const int n = graph.num_vertices();
  std::vector<int> degree(n);
  int max_degree = 0;
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort vertices by degree (standard O(n + m) peeling).
  std::vector<int> bin(max_degree + 2, 0);
  for (Vertex v = 0; v < n; ++v) {
    ++bin[degree[v]];
  }
  int start = 0;
  for (int d = 0; d <= max_degree; ++d) {
    const int count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<Vertex> order(n);
  std::vector<int> position(n);
  for (Vertex v = 0; v < n; ++v) {
    position[v] = bin[degree[v]];
    order[position[v]] = v;
    ++bin[degree[v]];
  }
  for (int d = max_degree; d >= 1; --d) {
    bin[d] = bin[d - 1];
  }
  if (max_degree >= 0) {
    bin[0] = 0;
  }

  std::vector<int> core(n, 0);
  for (int i = 0; i < n; ++i) {
    const Vertex v = order[i];
    core[v] = degree[v];
    for (Vertex u : graph.Neighbors(v)) {
      if (degree[u] > degree[v]) {
        // Move u one bucket down: swap it with the first vertex of its bucket.
        const int du = degree[u];
        const int pu = position[u];
        const int pw = bin[du];
        const Vertex w = order[pw];
        if (u != w) {
          std::swap(order[pu], order[pw]);
          position[u] = pw;
          position[w] = pu;
        }
        ++bin[du];
        --degree[u];
      }
    }
  }
  return core;
}

int Degeneracy(const Graph& graph) {
  const std::vector<int> core = CoreNumbers(graph);
  int best = 0;
  for (int c : core) {
    best = std::max(best, c);
  }
  return best;
}

VertexList DegeneracyOrdering(const Graph& graph) {
  const int n = graph.num_vertices();
  std::vector<int> degree(n);
  std::vector<bool> removed(n, false);
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
  }
  VertexList order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    Vertex best = -1;
    for (Vertex v = 0; v < n; ++v) {
      if (!removed[v] && (best < 0 || degree[v] < degree[best])) {
        best = v;
      }
    }
    removed[best] = true;
    order.push_back(best);
    for (Vertex u : graph.Neighbors(best)) {
      if (!removed[u]) {
        --degree[u];
      }
    }
  }
  return order;
}

std::vector<int> EdgeSupports(const Graph& graph) {
  const auto edges = graph.Edges();
  std::vector<int> support;
  support.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    support.push_back(graph.NeighborBits(u).IntersectCount(graph.NeighborBits(v)));
  }
  return support;
}

long long CountTriangles(const Graph& graph) {
  long long total = 0;
  for (int s : EdgeSupports(graph)) {
    total += s;
  }
  return total / 3;
}

std::vector<int> GreedyColoring(const Graph& graph) {
  const int n = graph.num_vertices();
  std::vector<int> color(n, -1);
  VertexList order = DegeneracyOrdering(graph);
  // Colour in reverse degeneracy order so each vertex sees at most
  // `degeneracy` coloured neighbours.
  std::reverse(order.begin(), order.end());
  std::vector<bool> used;
  for (Vertex v : order) {
    used.assign(n, false);
    for (Vertex u : graph.Neighbors(v)) {
      if (color[u] >= 0) {
        used[color[u]] = true;
      }
    }
    int c = 0;
    while (used[c]) {
      ++c;
    }
    color[v] = c;
  }
  return color;
}

}  // namespace qplex
