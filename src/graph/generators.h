#ifndef QPLEX_GRAPH_GENERATORS_H_
#define QPLEX_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace qplex {

/// Erdős–Rényi G(n, m): exactly m distinct edges chosen uniformly at random.
/// Fails if m exceeds n(n-1)/2.
Result<Graph> RandomGnm(int num_vertices, int num_edges, std::uint64_t seed);

/// Erdős–Rényi G(n, p): each of the n(n-1)/2 edges present with probability p.
Result<Graph> RandomGnp(int num_vertices, double edge_probability,
                        std::uint64_t seed);

/// A random graph with a planted k-plex of size `plex_size`: starts from
/// G(n, p) background noise, then rewires a chosen subset so each of its
/// vertices misses at most k-1 of its co-members. Useful for tests with a
/// known feasible size.
Result<Graph> PlantedKPlex(int num_vertices, int plex_size, int k,
                           double background_probability, std::uint64_t seed);

/// Complete graph K_n.
Graph CompleteGraph(int num_vertices);

/// Cycle C_n (requires n >= 3).
Result<Graph> CycleGraph(int num_vertices);

/// Path P_n.
Graph PathGraph(int num_vertices);

/// Star with one hub and `num_vertices - 1` leaves.
Graph StarGraph(int num_vertices);

}  // namespace qplex

#endif  // QPLEX_GRAPH_GENERATORS_H_
