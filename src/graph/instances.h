#ifndef QPLEX_GRAPH_INSTANCES_H_
#define QPLEX_GRAPH_INSTANCES_H_

#include "graph/graph.h"

namespace qplex {

/// The paper's running example (Fig. 1): a 6-vertex graph whose complement
/// has exactly the 8 edges wired in the encoding circuit of Fig. 6 —
/// e1=(v1,v6), e2=(v2,v6), e3=(v3,v6), e4=(v4,v6), e5=(v2,v5), e6=(v2,v3),
/// e7=(v3,v5), e8=(v3,v4) (0-based internally). Its maximum 2-plex is
/// {v1,v2,v4,v5}, matching the paper's highlighted 2-plex / 2-cplex.
Graph PaperExampleGraph();

/// The complement of PaperExampleGraph() (paper Fig. 5), for direct checks
/// against the encoding circuit.
Graph PaperExampleComplement();

/// Zachary's karate club (34 vertices, 78 edges) — the classic social
/// network used by the community-detection example.
Graph KarateClub();

/// The Petersen graph (10 vertices, 15 edges, 3-regular) — a standard
/// adversarial instance: triangle-free, so large k-plexes need large k.
Graph PetersenGraph();

}  // namespace qplex

#endif  // QPLEX_GRAPH_INSTANCES_H_
