#ifndef QPLEX_GRAPH_KPLEX_H_
#define QPLEX_GRAPH_KPLEX_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace qplex {

/// k-plex predicates and small-graph (n <= 64) mask utilities. Gate-model
/// search spaces are indexed by 64-bit subset masks where bit i selects
/// vertex v_i, matching the paper's one-hot encoding |v_1 ... v_n>.

/// True if `members` is a k-plex of `graph`: every member has at least
/// |members| - k neighbours inside the set. The empty set is a k-plex.
bool IsKPlex(const Graph& graph, const VertexBitset& members, int k);

/// True if `members` is a k-cplex of `graph`: every member has at most k-1
/// neighbours inside the set (the complement-graph view used by the oracle).
bool IsKCplex(const Graph& graph, const VertexBitset& members, int k);

/// Per-vertex adjacency as 64-bit masks; requires n <= 64.
std::vector<std::uint64_t> AdjacencyMasks(const Graph& graph);

/// Degree of `v` within the subset `mask`, given precomputed masks.
inline int DegreeInMask(const std::vector<std::uint64_t>& adjacency, Vertex v,
                        std::uint64_t mask);

/// True if subset `mask` is a k-plex (mask form; requires n <= 64).
bool IsKPlexMask(const std::vector<std::uint64_t>& adjacency,
                 std::uint64_t mask, int k);

/// True if subset `mask` is a k-cplex (mask form; requires n <= 64).
bool IsKCplexMask(const std::vector<std::uint64_t>& adjacency,
                  std::uint64_t mask, int k);

/// Converts a mask into a VertexBitset of `num_vertices` bits.
VertexBitset MaskToBitset(int num_vertices, std::uint64_t mask);

/// Converts a small bitset (n <= 64) into a mask.
std::uint64_t BitsetToMask(const VertexBitset& members);

// -- inline implementation ---------------------------------------------------

inline int DegreeInMask(const std::vector<std::uint64_t>& adjacency, Vertex v,
                        std::uint64_t mask) {
  return __builtin_popcountll(adjacency[v] & mask);
}

}  // namespace qplex

#endif  // QPLEX_GRAPH_KPLEX_H_
