#ifndef QPLEX_GRAPH_IO_H_
#define QPLEX_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace qplex {

/// Parses a plain edge-list document:
///   # comment lines start with '#'
///   <num_vertices>
///   <u> <v>        (one edge per line, 0-based)
Result<Graph> ParseEdgeList(const std::string& text);

/// Serializes in the edge-list format accepted by ParseEdgeList.
std::string WriteEdgeList(const Graph& graph);

/// Parses the DIMACS clique benchmark format:
///   c <comment>
///   p edge <n> <m>
///   e <u> <v>      (1-based)
Result<Graph> ParseDimacs(const std::string& text);

/// Serializes in DIMACS `p edge` format (1-based endpoints).
std::string WriteDimacs(const Graph& graph);

/// Reads a whole file; convenience over the string parsers.
Result<Graph> LoadEdgeListFile(const std::string& path);
Result<Graph> LoadDimacsFile(const std::string& path);

}  // namespace qplex

#endif  // QPLEX_GRAPH_IO_H_
