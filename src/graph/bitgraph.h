#ifndef QPLEX_GRAPH_BITGRAPH_H_
#define QPLEX_GRAPH_BITGRAPH_H_

// BitGraph kernel engine: packed uint64_t adjacency rows plus the word-op
// primitives (IntersectCount, AndNot, IterateBits, DegreeIn) shared by every
// classical hot path — BS branch-and-search, GRASP construction/local
// search, the core–truss reductions, exact feasibility, and the QUBO sample
// repair. Feasibility checks and candidate pruning cost O(n/64) word ops per
// query instead of per-neighbour loops (the KPartiteKClique idiom).
//
// Word layout: vertex v's adjacency row occupies words
// [v * words_per_row, (v+1) * words_per_row) of one flat array, bit i of
// word w selecting neighbour 64w + i; rows are contiguous so sweeping a
// row is a linear scan. Bits at positions >= n are always zero.
//
// The two *engines* at the bottom expose one subset API over two
// representations, so a solver written once against the engine template
// runs on either:
//  * MaskEngine — Set is a raw uint64_t (requires n <= 64). This is the
//    small-n fast path: every subset op is a single register instruction,
//    zero allocation, exactly the code the pre-BitGraph solvers ran.
//  * WideEngine — Set is a VertexBitset over BitGraph rows; any n.
// Both are deterministic: iteration order is ascending vertex id, so an
// algorithm instantiated over either engine visits candidates in the same
// order and produces the same answer on n <= 64 inputs.

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace qplex {

/// Calls `fn(Vertex)` for each set bit of a raw word span, ascending.
template <typename Fn>
void IterateBits(const std::uint64_t* words, int num_words, Fn&& fn) {
  for (int w = 0; w < num_words; ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      fn(static_cast<Vertex>(w * 64 + std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

/// Packed multi-word adjacency rows of a Graph. Rows are mutable (RemoveEdge
/// / RemoveVertex) so reduction rules can peel the graph in place and
/// re-query degrees and common-neighbour counts as row intersections.
class BitGraph {
 public:
  BitGraph() = default;
  explicit BitGraph(const Graph& graph);

  int num_vertices() const { return n_; }
  int words_per_row() const { return words_; }

  const std::uint64_t* Row(Vertex v) const {
    return rows_.data() + static_cast<std::size_t>(v) * words_;
  }

  bool HasEdge(Vertex u, Vertex v) const {
    return (Row(u)[static_cast<std::size_t>(v) >> 6] >> (v & 63)) & 1;
  }

  /// Current degree of `v` (popcount of its row).
  int Degree(Vertex v) const;

  /// |N(v) ∩ subset| — one AND+popcount pass over the row words.
  int DegreeIn(Vertex v, const VertexBitset& subset) const;

  /// |N(u) ∩ N(v)| — the common-neighbour (triangle support) count.
  int IntersectCount(Vertex u, Vertex v) const;

  /// Deletes the undirected edge {u, v} (no-op when absent).
  void RemoveEdge(Vertex u, Vertex v);

  /// Isolates `v`: clears its row and its bit in every neighbour's row.
  void RemoveVertex(Vertex v);

  /// Calls `fn(Vertex)` for each current neighbour of `v`, ascending.
  template <typename Fn>
  void ForEachNeighbor(Vertex v, Fn&& fn) const {
    IterateBits(Row(v), words_, fn);
  }

  /// True if `members` is a k-plex: every member keeps at least
  /// |members| - k neighbours inside the set. O(|members| · n/64).
  bool IsKPlex(const VertexBitset& members, int k) const;

 private:
  std::uint64_t* MutableRow(Vertex v) {
    return rows_.data() + static_cast<std::size_t>(v) * words_;
  }

  int n_ = 0;
  int words_ = 0;
  std::vector<std::uint64_t> rows_;
};

// -- engines -----------------------------------------------------------------

/// Single-word engine: subsets are raw uint64_t masks. Requires n <= 64.
struct MaskEngine {
  using Set = std::uint64_t;

  explicit MaskEngine(const Graph& graph);

  int n = 0;
  std::vector<std::uint64_t> rows;

  Set Empty() const { return 0; }
  Set Full() const {
    return n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  }
  static int Count(const Set& s) { return std::popcount(s); }
  static bool Test(const Set& s, Vertex v) { return (s >> v) & 1; }
  static void Add(Set& s, Vertex v) { s |= std::uint64_t{1} << v; }
  static void Remove(Set& s, Vertex v) { s &= ~(std::uint64_t{1} << v); }
  static bool None(const Set& s) { return s == 0; }
  static Set AndNot(const Set& a, const Set& b) { return a & ~b; }
  static Set Or(const Set& a, const Set& b) { return a | b; }

  int Degree(Vertex v) const { return std::popcount(rows[v]); }
  int DegreeIn(Vertex v, const Set& s) const {
    return std::popcount(rows[v] & s);
  }
  bool HasEdge(Vertex u, Vertex v) const { return (rows[u] >> v) & 1; }

  template <typename Fn>
  static void ForEach(const Set& s, Fn&& fn) {
    std::uint64_t rest = s;
    while (rest != 0) {
      fn(static_cast<Vertex>(std::countr_zero(rest)));
      rest &= rest - 1;
    }
  }

  /// `fn` returns false to stop; returns true when no early stop happened.
  template <typename Fn>
  static bool ForEachWhile(const Set& s, Fn&& fn) {
    std::uint64_t rest = s;
    while (rest != 0) {
      if (!fn(static_cast<Vertex>(std::countr_zero(rest)))) {
        return false;
      }
      rest &= rest - 1;
    }
    return true;
  }

  static VertexList ToList(const Set& s) {
    VertexList out;
    ForEach(s, [&out](Vertex v) { out.push_back(v); });
    return out;
  }
};

/// Multi-word engine: subsets are VertexBitsets over BitGraph rows. Any n.
struct WideEngine {
  using Set = VertexBitset;

  explicit WideEngine(const Graph& graph)
      : n(graph.num_vertices()), bits(graph) {}

  int n = 0;
  BitGraph bits;

  Set Empty() const { return VertexBitset(n); }
  Set Full() const {
    VertexBitset s(n);
    s.SetAll();
    return s;
  }
  static int Count(const Set& s) { return s.Count(); }
  static bool Test(const Set& s, Vertex v) { return s.Test(v); }
  static void Add(Set& s, Vertex v) { s.Set(v); }
  static void Remove(Set& s, Vertex v) { s.Reset(v); }
  static bool None(const Set& s) { return s.None(); }
  static Set AndNot(Set a, const Set& b) {
    a.AndNotWith(b);
    return a;
  }
  static Set Or(Set a, const Set& b) {
    a.OrWith(b);
    return a;
  }

  int Degree(Vertex v) const { return bits.Degree(v); }
  int DegreeIn(Vertex v, const Set& s) const { return bits.DegreeIn(v, s); }
  bool HasEdge(Vertex u, Vertex v) const { return bits.HasEdge(u, v); }

  template <typename Fn>
  static void ForEach(const Set& s, Fn&& fn) {
    s.ForEachBit(fn);
  }

  template <typename Fn>
  static bool ForEachWhile(const Set& s, Fn&& fn) {
    return s.ForEachBitWhile(fn);
  }

  static VertexList ToList(const Set& s) { return s.ToList(); }
};

// -- shared feasibility kernel ----------------------------------------------

/// True if `chosen` (a k-plex of |chosen| = size) stays a k-plex after
/// adding v: v has at least size + 1 - k neighbours inside, and no member's
/// deficit grows past k. The member check uses deg_{chosen+v}(u) =
/// deg_chosen(u) + [u ~ v], so no temporary subset is materialized.
template <typename Engine>
bool CanExtendPlex(const Engine& engine, const typename Engine::Set& chosen,
                   int size, Vertex v, int k) {
  const int need = size + 1 - k;
  if (engine.DegreeIn(v, chosen) < need) {
    return false;
  }
  return Engine::ForEachWhile(chosen, [&](Vertex u) {
    return engine.DegreeIn(u, chosen) + (engine.HasEdge(u, v) ? 1 : 0) >= need;
  });
}

}  // namespace qplex

#endif  // QPLEX_GRAPH_BITGRAPH_H_
