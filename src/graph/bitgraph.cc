#include "graph/bitgraph.h"

#include <bit>

#include "common/status.h"

namespace qplex {

BitGraph::BitGraph(const Graph& graph)
    : n_(graph.num_vertices()),
      words_((graph.num_vertices() + 63) / 64),
      rows_(static_cast<std::size_t>(n_) * words_, 0) {
  for (Vertex u = 0; u < n_; ++u) {
    std::uint64_t* row = MutableRow(u);
    const VertexBitset& bits = graph.NeighborBits(u);
    for (int w = 0; w < words_; ++w) {
      row[w] = bits.words()[w];
    }
  }
}

int BitGraph::Degree(Vertex v) const {
  const std::uint64_t* row = Row(v);
  int count = 0;
  for (int w = 0; w < words_; ++w) {
    count += std::popcount(row[w]);
  }
  return count;
}

int BitGraph::DegreeIn(Vertex v, const VertexBitset& subset) const {
  QPLEX_CHECK(subset.size() == n_) << "subset size mismatch";
  const std::uint64_t* row = Row(v);
  const std::uint64_t* sub = subset.words();
  int count = 0;
  for (int w = 0; w < words_; ++w) {
    count += std::popcount(row[w] & sub[w]);
  }
  return count;
}

int BitGraph::IntersectCount(Vertex u, Vertex v) const {
  const std::uint64_t* a = Row(u);
  const std::uint64_t* b = Row(v);
  int count = 0;
  for (int w = 0; w < words_; ++w) {
    count += std::popcount(a[w] & b[w]);
  }
  return count;
}

void BitGraph::RemoveEdge(Vertex u, Vertex v) {
  MutableRow(u)[static_cast<std::size_t>(v) >> 6] &=
      ~(std::uint64_t{1} << (v & 63));
  MutableRow(v)[static_cast<std::size_t>(u) >> 6] &=
      ~(std::uint64_t{1} << (u & 63));
}

void BitGraph::RemoveVertex(Vertex v) {
  std::uint64_t* row = MutableRow(v);
  IterateBits(row, words_, [this, v](Vertex u) {
    MutableRow(u)[static_cast<std::size_t>(v) >> 6] &=
        ~(std::uint64_t{1} << (v & 63));
  });
  for (int w = 0; w < words_; ++w) {
    row[w] = 0;
  }
}

bool BitGraph::IsKPlex(const VertexBitset& members, int k) const {
  QPLEX_CHECK(members.size() == n_) << "subset size mismatch";
  const int size = members.Count();
  return members.ForEachBitWhile(
      [&](Vertex v) { return DegreeIn(v, members) >= size - k; });
}

MaskEngine::MaskEngine(const Graph& graph) : n(graph.num_vertices()) {
  QPLEX_CHECK(n <= 64) << "MaskEngine requires n <= 64, got " << n;
  rows.assign(n, 0);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : graph.Neighbors(u)) {
      rows[u] |= std::uint64_t{1} << v;
    }
  }
}

}  // namespace qplex
