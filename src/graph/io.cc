#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace qplex {
namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Result<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int num_vertices = -1;
  std::vector<std::pair<Vertex, Vertex>> edges;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    if (num_vertices < 0) {
      if (!(fields >> num_vertices) || num_vertices < 0) {
        return Status::InvalidArgument("bad vertex count at line " +
                                       std::to_string(line_number));
      }
      continue;
    }
    Vertex u = 0;
    Vertex v = 0;
    if (!(fields >> u >> v)) {
      return Status::InvalidArgument("bad edge at line " +
                                     std::to_string(line_number));
    }
    edges.emplace_back(u, v);
  }
  if (num_vertices < 0) {
    return Status::InvalidArgument("missing vertex count header");
  }
  return MakeGraph(num_vertices, edges);
}

std::string WriteEdgeList(const Graph& graph) {
  std::ostringstream out;
  out << "# qplex edge list\n" << graph.num_vertices() << "\n";
  for (const auto& [u, v] : graph.Edges()) {
    out << u << " " << v << "\n";
  }
  return out.str();
}

Result<Graph> ParseDimacs(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int num_vertices = -1;
  std::vector<std::pair<Vertex, Vertex>> edges;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == 'c') {
      continue;
    }
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 'p') {
      std::string kind;
      int declared_edges = 0;
      if (!(fields >> kind >> num_vertices >> declared_edges) ||
          kind != "edge" || num_vertices < 0) {
        return Status::InvalidArgument("bad problem line at line " +
                                       std::to_string(line_number));
      }
    } else if (tag == 'e') {
      if (num_vertices < 0) {
        return Status::InvalidArgument("edge before problem line");
      }
      Vertex u = 0;
      Vertex v = 0;
      if (!(fields >> u >> v) || u < 1 || v < 1) {
        return Status::InvalidArgument("bad edge at line " +
                                       std::to_string(line_number));
      }
      edges.emplace_back(u - 1, v - 1);
    } else {
      return Status::InvalidArgument("unknown record '" + std::string(1, tag) +
                                     "' at line " + std::to_string(line_number));
    }
  }
  if (num_vertices < 0) {
    return Status::InvalidArgument("missing problem line");
  }
  return MakeGraph(num_vertices, edges);
}

std::string WriteDimacs(const Graph& graph) {
  std::ostringstream out;
  out << "c qplex DIMACS export\n"
      << "p edge " << graph.num_vertices() << " " << graph.num_edges() << "\n";
  for (const auto& [u, v] : graph.Edges()) {
    out << "e " << (u + 1) << " " << (v + 1) << "\n";
  }
  return out.str();
}

Result<Graph> LoadEdgeListFile(const std::string& path) {
  QPLEX_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseEdgeList(text);
}

Result<Graph> LoadDimacsFile(const std::string& path) {
  QPLEX_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseDimacs(text);
}

}  // namespace qplex
