#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "resilience/fault_injection.h"

namespace qplex {
namespace {

Result<std::string> ReadFile(const std::string& path) {
  if (resilience::FaultFires(resilience::FaultSite::kIoRead)) {
    return Status::Internal("injected fault: io_read on " + path);
  }
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Shared edge validation for the text loaders: self-loops are rejected with
/// the offending line number (they would otherwise silently vanish inside
/// Graph::AddEdge), out-of-range endpoints are rejected before graph
/// construction, and repeated edges (in either orientation) are dropped so a
/// noisy file cannot inflate the declared edge count.
Status AppendEdge(Vertex u, Vertex v, int num_vertices, int line_number,
                  std::set<std::pair<Vertex, Vertex>>* seen,
                  std::vector<std::pair<Vertex, Vertex>>* edges) {
  if (u == v) {
    return Status::InvalidArgument("self-loop " + std::to_string(u) + "-" +
                                   std::to_string(v) + " at line " +
                                   std::to_string(line_number));
  }
  if (u < 0 || u >= num_vertices || v < 0 || v >= num_vertices) {
    return Status::InvalidArgument(
        "edge endpoint out of range at line " + std::to_string(line_number) +
        " (vertices: " + std::to_string(num_vertices) + ")");
  }
  const auto key = std::minmax(u, v);
  if (!seen->insert(key).second) {
    return Status::Ok();  // duplicate: keep the first occurrence
  }
  edges->emplace_back(u, v);
  return Status::Ok();
}

}  // namespace

Result<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int num_vertices = -1;
  std::vector<std::pair<Vertex, Vertex>> edges;
  std::set<std::pair<Vertex, Vertex>> seen;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    if (num_vertices < 0) {
      if (!(fields >> num_vertices) || num_vertices < 0) {
        return Status::InvalidArgument("bad vertex count at line " +
                                       std::to_string(line_number));
      }
      continue;
    }
    Vertex u = 0;
    Vertex v = 0;
    if (!(fields >> u >> v)) {
      return Status::InvalidArgument("bad edge at line " +
                                     std::to_string(line_number));
    }
    QPLEX_RETURN_IF_ERROR(
        AppendEdge(u, v, num_vertices, line_number, &seen, &edges));
  }
  if (num_vertices < 0) {
    return Status::InvalidArgument("missing vertex count header");
  }
  return MakeGraph(num_vertices, edges);
}

std::string WriteEdgeList(const Graph& graph) {
  std::ostringstream out;
  out << "# qplex edge list\n" << graph.num_vertices() << "\n";
  for (const auto& [u, v] : graph.Edges()) {
    out << u << " " << v << "\n";
  }
  return out.str();
}

Result<Graph> ParseDimacs(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int num_vertices = -1;
  std::vector<std::pair<Vertex, Vertex>> edges;
  std::set<std::pair<Vertex, Vertex>> seen;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == 'c') {
      continue;
    }
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 'p') {
      std::string kind;
      int declared_edges = 0;
      if (!(fields >> kind >> num_vertices >> declared_edges) ||
          kind != "edge" || num_vertices < 0) {
        return Status::InvalidArgument("bad problem line at line " +
                                       std::to_string(line_number));
      }
    } else if (tag == 'e') {
      if (num_vertices < 0) {
        return Status::InvalidArgument("edge before problem line");
      }
      Vertex u = 0;
      Vertex v = 0;
      if (!(fields >> u >> v) || u < 1 || v < 1) {
        return Status::InvalidArgument("bad edge at line " +
                                       std::to_string(line_number));
      }
      QPLEX_RETURN_IF_ERROR(
          AppendEdge(u - 1, v - 1, num_vertices, line_number, &seen, &edges));
    } else {
      return Status::InvalidArgument("unknown record '" + std::string(1, tag) +
                                     "' at line " + std::to_string(line_number));
    }
  }
  if (num_vertices < 0) {
    return Status::InvalidArgument("missing problem line");
  }
  return MakeGraph(num_vertices, edges);
}

std::string WriteDimacs(const Graph& graph) {
  std::ostringstream out;
  out << "c qplex DIMACS export\n"
      << "p edge " << graph.num_vertices() << " " << graph.num_edges() << "\n";
  for (const auto& [u, v] : graph.Edges()) {
    out << "e " << (u + 1) << " " << (v + 1) << "\n";
  }
  return out.str();
}

Result<Graph> LoadEdgeListFile(const std::string& path) {
  QPLEX_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseEdgeList(text);
}

Result<Graph> LoadDimacsFile(const std::string& path) {
  QPLEX_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseDimacs(text);
}

}  // namespace qplex
