#include "graph/kplex.h"

#include <bit>

namespace qplex {

bool IsKPlex(const Graph& graph, const VertexBitset& members, int k) {
  QPLEX_CHECK(k >= 1) << "k must be at least 1";
  const int size = members.Count();
  for (Vertex v : members.ToList()) {
    if (graph.DegreeIn(v, members) < size - k) {
      return false;
    }
  }
  return true;
}

bool IsKCplex(const Graph& graph, const VertexBitset& members, int k) {
  QPLEX_CHECK(k >= 1) << "k must be at least 1";
  for (Vertex v : members.ToList()) {
    if (graph.DegreeIn(v, members) > k - 1) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint64_t> AdjacencyMasks(const Graph& graph) {
  QPLEX_CHECK(graph.num_vertices() <= 64)
      << "mask utilities require n <= 64, got n=" << graph.num_vertices();
  std::vector<std::uint64_t> masks(graph.num_vertices(), 0);
  for (const auto& [u, v] : graph.Edges()) {
    masks[u] |= std::uint64_t{1} << v;
    masks[v] |= std::uint64_t{1} << u;
  }
  return masks;
}

bool IsKPlexMask(const std::vector<std::uint64_t>& adjacency,
                 std::uint64_t mask, int k) {
  const int size = std::popcount(mask);
  std::uint64_t rest = mask;
  while (rest != 0) {
    const int v = std::countr_zero(rest);
    rest &= rest - 1;
    if (DegreeInMask(adjacency, v, mask) < size - k) {
      return false;
    }
  }
  return true;
}

bool IsKCplexMask(const std::vector<std::uint64_t>& adjacency,
                  std::uint64_t mask, int k) {
  std::uint64_t rest = mask;
  while (rest != 0) {
    const int v = std::countr_zero(rest);
    rest &= rest - 1;
    if (DegreeInMask(adjacency, v, mask) > k - 1) {
      return false;
    }
  }
  return true;
}

VertexBitset MaskToBitset(int num_vertices, std::uint64_t mask) {
  QPLEX_CHECK(num_vertices <= 64) << "mask form requires n <= 64";
  VertexBitset set(num_vertices);
  while (mask != 0) {
    const int v = std::countr_zero(mask);
    mask &= mask - 1;
    QPLEX_CHECK(v < num_vertices) << "mask bit beyond vertex count";
    set.Set(v);
  }
  return set;
}

std::uint64_t BitsetToMask(const VertexBitset& members) {
  QPLEX_CHECK(members.size() <= 64) << "mask form requires n <= 64";
  std::uint64_t mask = 0;
  for (Vertex v : members.ToList()) {
    mask |= std::uint64_t{1} << v;
  }
  return mask;
}

}  // namespace qplex
