#include "graph/graph.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace qplex {

int VertexBitset::Count() const {
  int count = 0;
  for (std::uint64_t word : words_) {
    count += std::popcount(word);
  }
  return count;
}

int VertexBitset::IntersectCount(const VertexBitset& other) const {
  QPLEX_CHECK(num_bits_ == other.num_bits_) << "bitset size mismatch";
  int count = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] & other.words_[i]);
  }
  return count;
}

bool VertexBitset::None() const {
  for (std::uint64_t word : words_) {
    if (word != 0) {
      return false;
    }
  }
  return true;
}

VertexList VertexBitset::ToList() const {
  VertexList out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<Vertex>(w * 64 + bit));
      word &= word - 1;
    }
  }
  return out;
}

VertexBitset VertexBitset::FromList(int num_vertices,
                                    const VertexList& members) {
  VertexBitset set(num_vertices);
  for (Vertex v : members) {
    QPLEX_CHECK(v >= 0 && v < num_vertices) << "vertex " << v << " out of range";
    set.Set(v);
  }
  return set;
}

Graph::Graph(int num_vertices)
    : num_vertices_(num_vertices),
      adjacency_(num_vertices, VertexBitset(num_vertices)),
      neighbors_(num_vertices) {
  QPLEX_CHECK(num_vertices >= 0) << "negative vertex count";
}

void Graph::AddEdge(Vertex u, Vertex v) {
  QPLEX_CHECK(u >= 0 && u < num_vertices_) << "vertex " << u << " out of range";
  QPLEX_CHECK(v >= 0 && v < num_vertices_) << "vertex " << v << " out of range";
  if (u == v || adjacency_[u].Test(v)) {
    return;
  }
  adjacency_[u].Set(v);
  adjacency_[v].Set(u);
  neighbors_[u].insert(
      std::lower_bound(neighbors_[u].begin(), neighbors_[u].end(), v), v);
  neighbors_[v].insert(
      std::lower_bound(neighbors_[v].begin(), neighbors_[v].end(), u), u);
  ++num_edges_;
}

int Graph::MaxDegree() const {
  int best = 0;
  for (Vertex v = 0; v < num_vertices_; ++v) {
    best = std::max(best, Degree(v));
  }
  return best;
}

std::vector<std::pair<Vertex, Vertex>> Graph::Edges() const {
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(num_edges_);
  for (Vertex u = 0; u < num_vertices_; ++u) {
    for (Vertex v : neighbors_[u]) {
      if (u < v) {
        edges.emplace_back(u, v);
      }
    }
  }
  return edges;
}

Graph Graph::Complement() const {
  Graph complement(num_vertices_);
  for (Vertex u = 0; u < num_vertices_; ++u) {
    for (Vertex v = u + 1; v < num_vertices_; ++v) {
      if (!HasEdge(u, v)) {
        complement.AddEdge(u, v);
      }
    }
  }
  return complement;
}

Graph Graph::InducedSubgraph(const VertexBitset& keep,
                             std::vector<Vertex>* old_to_new) const {
  QPLEX_CHECK(keep.size() == num_vertices_) << "subset size mismatch";
  std::vector<Vertex> mapping(num_vertices_, -1);
  Vertex next = 0;
  for (Vertex v = 0; v < num_vertices_; ++v) {
    if (keep.Test(v)) {
      mapping[v] = next++;
    }
  }
  Graph sub(next);
  for (Vertex u = 0; u < num_vertices_; ++u) {
    if (mapping[u] < 0) {
      continue;
    }
    for (Vertex v : neighbors_[u]) {
      if (u < v && mapping[v] >= 0) {
        sub.AddEdge(mapping[u], mapping[v]);
      }
    }
  }
  if (old_to_new != nullptr) {
    *old_to_new = std::move(mapping);
  }
  return sub;
}

std::string Graph::ToString() const {
  std::ostringstream out;
  out << "Graph(n=" << num_vertices_ << ", m=" << num_edges_ << ")";
  return out.str();
}

Result<Graph> MakeGraph(int num_vertices,
                        const std::vector<std::pair<Vertex, Vertex>>& edges) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  Graph graph(num_vertices);
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= num_vertices || v < 0 || v >= num_vertices) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (u == v) {
      return Status::InvalidArgument("self-loop not allowed");
    }
    graph.AddEdge(u, v);
  }
  return graph;
}

}  // namespace qplex
