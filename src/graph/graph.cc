#include "graph/graph.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace qplex {

int VertexBitset::Count() const {
  int count = 0;
  for (std::uint64_t word : words_) {
    count += std::popcount(word);
  }
  return count;
}

int VertexBitset::IntersectCount(const VertexBitset& other) const {
  QPLEX_CHECK(num_bits_ == other.num_bits_) << "bitset size mismatch";
  int count = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] & other.words_[i]);
  }
  return count;
}

bool VertexBitset::None() const {
  for (std::uint64_t word : words_) {
    if (word != 0) {
      return false;
    }
  }
  return true;
}

void VertexBitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  ClearTail();
}

void VertexBitset::FlipAll() {
  for (std::uint64_t& word : words_) {
    word = ~word;
  }
  ClearTail();
}

void VertexBitset::ClearTail() {
  if (words_.empty()) {
    return;
  }
  const int tail = num_bits_ & 63;
  if (tail != 0) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

void VertexBitset::OrWith(const VertexBitset& other) {
  QPLEX_CHECK(num_bits_ == other.num_bits_) << "bitset size mismatch";
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void VertexBitset::AndWith(const VertexBitset& other) {
  QPLEX_CHECK(num_bits_ == other.num_bits_) << "bitset size mismatch";
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
}

void VertexBitset::AndNotWith(const VertexBitset& other) {
  QPLEX_CHECK(num_bits_ == other.num_bits_) << "bitset size mismatch";
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
}

VertexList VertexBitset::ToList() const {
  VertexList out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<Vertex>(w * 64 + bit));
      word &= word - 1;
    }
  }
  return out;
}

VertexBitset VertexBitset::FromList(int num_vertices,
                                    const VertexList& members) {
  VertexBitset set(num_vertices);
  for (Vertex v : members) {
    QPLEX_CHECK(v >= 0 && v < num_vertices) << "vertex " << v << " out of range";
    set.Set(v);
  }
  return set;
}

Graph::Graph(int num_vertices)
    : num_vertices_(num_vertices),
      adjacency_(num_vertices, VertexBitset(num_vertices)),
      neighbors_(num_vertices) {
  QPLEX_CHECK(num_vertices >= 0) << "negative vertex count";
}

void Graph::AddEdge(Vertex u, Vertex v) {
  QPLEX_CHECK(u >= 0 && u < num_vertices_) << "vertex " << u << " out of range";
  QPLEX_CHECK(v >= 0 && v < num_vertices_) << "vertex " << v << " out of range";
  if (u == v || adjacency_[u].Test(v)) {
    return;
  }
  adjacency_[u].Set(v);
  adjacency_[v].Set(u);
  neighbors_[u].insert(
      std::lower_bound(neighbors_[u].begin(), neighbors_[u].end(), v), v);
  neighbors_[v].insert(
      std::lower_bound(neighbors_[v].begin(), neighbors_[v].end(), u), u);
  ++num_edges_;
}

void Graph::AddEdges(const std::vector<std::pair<Vertex, Vertex>>& edges) {
  std::vector<bool> touched(num_vertices_, false);
  for (const auto& [u, v] : edges) {
    QPLEX_CHECK(u >= 0 && u < num_vertices_)
        << "vertex " << u << " out of range";
    QPLEX_CHECK(v >= 0 && v < num_vertices_)
        << "vertex " << v << " out of range";
    if (u == v || adjacency_[u].Test(v)) {
      continue;
    }
    adjacency_[u].Set(v);
    adjacency_[v].Set(u);
    neighbors_[u].push_back(v);
    neighbors_[v].push_back(u);
    touched[u] = true;
    touched[v] = true;
    ++num_edges_;
  }
  for (Vertex v = 0; v < num_vertices_; ++v) {
    if (touched[v]) {
      std::sort(neighbors_[v].begin(), neighbors_[v].end());
    }
  }
}

int Graph::MaxDegree() const {
  int best = 0;
  for (Vertex v = 0; v < num_vertices_; ++v) {
    best = std::max(best, Degree(v));
  }
  return best;
}

std::vector<std::pair<Vertex, Vertex>> Graph::Edges() const {
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(num_edges_);
  for (Vertex u = 0; u < num_vertices_; ++u) {
    for (Vertex v : neighbors_[u]) {
      if (u < v) {
        edges.emplace_back(u, v);
      }
    }
  }
  return edges;
}

Graph Graph::Complement() const {
  // Word-parallel: each complement row is the bitwise NOT of the adjacency
  // row (minus the self bit), so the whole build is O(n²/64) instead of n²
  // individual edge inserts.
  Graph complement(num_vertices_);
  std::int64_t degree_sum = 0;
  for (Vertex u = 0; u < num_vertices_; ++u) {
    VertexBitset row = adjacency_[u];
    row.FlipAll();
    row.Reset(u);
    complement.neighbors_[u] = row.ToList();
    degree_sum += static_cast<std::int64_t>(complement.neighbors_[u].size());
    complement.adjacency_[u] = std::move(row);
  }
  complement.num_edges_ = static_cast<int>(degree_sum / 2);
  return complement;
}

Graph Graph::InducedSubgraph(const VertexBitset& keep,
                             std::vector<Vertex>* old_to_new) const {
  QPLEX_CHECK(keep.size() == num_vertices_) << "subset size mismatch";
  std::vector<Vertex> mapping(num_vertices_, -1);
  Vertex next = 0;
  for (Vertex v = 0; v < num_vertices_; ++v) {
    if (keep.Test(v)) {
      mapping[v] = next++;
    }
  }
  Graph sub(next);
  std::vector<std::pair<Vertex, Vertex>> kept_edges;
  for (Vertex u = 0; u < num_vertices_; ++u) {
    if (mapping[u] < 0) {
      continue;
    }
    for (Vertex v : neighbors_[u]) {
      if (u < v && mapping[v] >= 0) {
        kept_edges.emplace_back(mapping[u], mapping[v]);
      }
    }
  }
  sub.AddEdges(kept_edges);
  if (old_to_new != nullptr) {
    *old_to_new = std::move(mapping);
  }
  return sub;
}

std::string Graph::ToString() const {
  std::ostringstream out;
  out << "Graph(n=" << num_vertices_ << ", m=" << num_edges_ << ")";
  return out.str();
}

Result<Graph> MakeGraph(int num_vertices,
                        const std::vector<std::pair<Vertex, Vertex>>& edges) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  Graph graph(num_vertices);
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= num_vertices || v < 0 || v >= num_vertices) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (u == v) {
      return Status::InvalidArgument("self-loop not allowed");
    }
  }
  graph.AddEdges(edges);
  return graph;
}

}  // namespace qplex
