#include "milp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stopwatch.h"

namespace qplex {
namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau over columns [structural | slack | artificial | rhs]
/// with an explicit cost row. Implements the textbook two-phase method with
/// Dantzig pricing and a Bland fallback for anti-cycling.
class Tableau {
 public:
  Tableau(int num_rows, int num_cols)
      : rows_(num_rows), cols_(num_cols),
        data_((num_rows + 1) * num_cols, 0.0), basis_(num_rows, -1) {}

  double& At(int row, int col) { return data_[row * cols_ + col]; }
  double At(int row, int col) const { return data_[row * cols_ + col]; }
  // Cost row is stored at index rows_.
  double& Cost(int col) { return data_[rows_ * cols_ + col]; }
  double Cost(int col) const { return data_[rows_ * cols_ + col]; }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::vector<int>& basis() { return basis_; }

  void Pivot(int pivot_row, int pivot_col) {
    const double pivot = At(pivot_row, pivot_col);
    const double inv = 1.0 / pivot;
    for (int c = 0; c < cols_; ++c) {
      At(pivot_row, c) *= inv;
    }
    for (int r = 0; r <= rows_; ++r) {
      if (r == pivot_row) {
        continue;
      }
      const double factor = At(r, pivot_col);
      if (std::abs(factor) < kEps) {
        continue;
      }
      for (int c = 0; c < cols_; ++c) {
        At(r, c) -= factor * At(pivot_row, c);
      }
      At(r, pivot_col) = 0.0;
    }
    basis_[pivot_row] = pivot_col;
  }

  /// Runs simplex iterations until optimal or unbounded; checks the deadline
  /// every few pivots. `allowed` marks columns permitted to enter the basis.
  enum class OptimizeOutcome { kOptimal, kUnbounded, kTimeLimit };
  OptimizeOutcome Optimize(const std::vector<bool>& allowed, int* pivots,
                           const Deadline& deadline) {
    const int bland_threshold = 20 * (rows_ + cols_);
    for (;;) {
      // Pricing.
      int entering = -1;
      if (*pivots < bland_threshold) {
        double most_negative = -kEps;
        for (int c = 0; c + 1 < cols_; ++c) {
          if (allowed[c] && Cost(c) < most_negative) {
            most_negative = Cost(c);
            entering = c;
          }
        }
      } else {  // Bland's rule
        for (int c = 0; c + 1 < cols_; ++c) {
          if (allowed[c] && Cost(c) < -kEps) {
            entering = c;
            break;
          }
        }
      }
      if (entering < 0) {
        return OptimizeOutcome::kOptimal;
      }
      if ((*pivots & 0xF) == 0 && deadline.Expired()) {
        return OptimizeOutcome::kTimeLimit;
      }
      // Ratio test (smallest index tie-break keeps Bland valid).
      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      const int rhs = cols_ - 1;
      for (int r = 0; r < rows_; ++r) {
        const double a = At(r, entering);
        if (a > kEps) {
          const double ratio = At(r, rhs) / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && leaving >= 0 &&
               basis_[r] < basis_[leaving])) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving < 0) {
        return OptimizeOutcome::kUnbounded;
      }
      Pivot(leaving, entering);
      ++*pivots;
    }
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
  std::vector<int> basis_;
};

}  // namespace

void LpProblem::AddRowGe(std::vector<std::pair<int, double>> terms,
                         double rhs) {
  for (auto& [var, coeff] : terms) {
    coeff = -coeff;
  }
  AddRowLe(std::move(terms), -rhs);
}

Result<LpSolution> SolveLp(const LpProblem& problem,
                           double time_limit_seconds) {
  const Deadline deadline = time_limit_seconds > 0
                                ? Deadline::After(time_limit_seconds)
                                : Deadline::Infinite();
  const int n = problem.num_vars;
  if (static_cast<int>(problem.objective.size()) != n) {
    return Status::InvalidArgument("objective arity mismatch");
  }
  if (!problem.upper.empty() &&
      static_cast<int>(problem.upper.size()) != n) {
    return Status::InvalidArgument("upper-bound arity mismatch");
  }

  // Materialise upper bounds as extra rows.
  std::vector<LpProblem::Row> rows = problem.rows;
  for (int i = 0; i < n && !problem.upper.empty(); ++i) {
    if (problem.upper[i] >= 0) {
      rows.push_back(LpProblem::Row{{{i, 1.0}}, problem.upper[i]});
    }
  }
  const int m = static_cast<int>(rows.size());

  // Columns: n structural, m slacks, up to m artificials, 1 rhs.
  int num_artificials = 0;
  for (const auto& row : rows) {
    if (row.rhs < 0) {
      ++num_artificials;
    }
  }
  const int slack_base = n;
  const int art_base = n + m;
  const int total_cols = n + m + num_artificials + 1;
  const int rhs_col = total_cols - 1;

  Tableau tableau(m, total_cols);
  int next_artificial = art_base;
  std::vector<int> artificial_cols;
  for (int r = 0; r < m; ++r) {
    const double sign = rows[r].rhs < 0 ? -1.0 : 1.0;
    for (const auto& [var, coeff] : rows[r].terms) {
      QPLEX_CHECK(var >= 0 && var < n) << "row references variable " << var;
      tableau.At(r, var) += sign * coeff;
    }
    tableau.At(r, slack_base + r) = sign;  // slack (negated for flipped rows)
    tableau.At(r, rhs_col) = sign * rows[r].rhs;
    if (sign < 0) {
      tableau.At(r, next_artificial) = 1.0;
      tableau.basis()[r] = next_artificial;
      artificial_cols.push_back(next_artificial);
      ++next_artificial;
    } else {
      tableau.basis()[r] = slack_base + r;
    }
  }

  LpSolution solution;
  int pivots = 0;

  // ---- Phase 1: minimize the sum of artificials. ---------------------------
  if (num_artificials > 0) {
    for (int col : artificial_cols) {
      tableau.Cost(col) = 1.0;
    }
    // Make the cost row consistent with the starting basis (price out the
    // basic artificials).
    for (int r = 0; r < m; ++r) {
      if (tableau.basis()[r] >= art_base) {
        for (int c = 0; c < total_cols; ++c) {
          tableau.Cost(c) -= tableau.At(r, c);
        }
      }
    }
    std::vector<bool> allowed(total_cols, true);
    allowed[rhs_col] = false;
    switch (tableau.Optimize(allowed, &pivots, deadline)) {
      case Tableau::OptimizeOutcome::kOptimal:
        break;
      case Tableau::OptimizeOutcome::kUnbounded:
        return Status::Internal("phase-1 LP unbounded (should be impossible)");
      case Tableau::OptimizeOutcome::kTimeLimit:
        solution.status = LpStatus::kTimeLimit;
        solution.pivots = pivots;
        return solution;
    }
    if (tableau.Cost(rhs_col) < -1e-6) {
      // Residual infeasibility: -cost_row[rhs] is the phase-1 objective.
      solution.status = LpStatus::kInfeasible;
      solution.pivots = pivots;
      return solution;
    }
    // Drive any artificial that is still basic (at value 0) out of the
    // basis; otherwise later pivots could silently regrow it, voiding its
    // constraint. If its row has no eligible column the row is redundant and
    // can never change the artificial's value, so it is safe to leave.
    for (int r = 0; r < m; ++r) {
      if (tableau.basis()[r] < art_base) {
        continue;
      }
      for (int c = 0; c < art_base; ++c) {
        if (std::abs(tableau.At(r, c)) > kEps) {
          tableau.Pivot(r, c);
          ++pivots;
          break;
        }
      }
    }
    // Clear the phase-1 cost row.
    for (int c = 0; c < total_cols; ++c) {
      tableau.Cost(c) = 0.0;
    }
  }

  // ---- Phase 2: original objective. ----------------------------------------
  for (int i = 0; i < n; ++i) {
    tableau.Cost(i) = problem.objective[i];
  }
  // Price out the basic columns.
  for (int r = 0; r < m; ++r) {
    const int basic = tableau.basis()[r];
    const double cost = tableau.Cost(basic);
    if (std::abs(cost) > kEps) {
      for (int c = 0; c < total_cols; ++c) {
        tableau.Cost(c) -= cost * tableau.At(r, c);
      }
    }
  }
  std::vector<bool> allowed(total_cols, true);
  allowed[rhs_col] = false;
  for (int col : artificial_cols) {
    allowed[col] = false;  // artificials may never re-enter
  }
  switch (tableau.Optimize(allowed, &pivots, deadline)) {
    case Tableau::OptimizeOutcome::kOptimal:
      break;
    case Tableau::OptimizeOutcome::kUnbounded:
      solution.status = LpStatus::kUnbounded;
      solution.pivots = pivots;
      return solution;
    case Tableau::OptimizeOutcome::kTimeLimit:
      solution.status = LpStatus::kTimeLimit;
      solution.pivots = pivots;
      return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.pivots = pivots;
  solution.x.assign(n, 0.0);
  for (int r = 0; r < m; ++r) {
    const int basic = tableau.basis()[r];
    if (basic < n) {
      solution.x[basic] = tableau.At(r, rhs_col);
    }
  }
  double objective = 0;
  for (int i = 0; i < n; ++i) {
    objective += problem.objective[i] * solution.x[i];
  }
  solution.objective = objective;
  return solution;
}

}  // namespace qplex
