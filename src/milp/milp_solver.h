#ifndef QPLEX_MILP_MILP_SOLVER_H_
#define QPLEX_MILP_MILP_SOLVER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "milp/simplex.h"

namespace qplex {

/// A mixed binary/continuous linear program: the LP of `lp` plus a set of
/// variables constrained to {0, 1}.
struct MilpProblem {
  LpProblem lp;
  std::vector<int> binary_vars;
};

/// A point on the solver's anytime curve.
struct MilpTracePoint {
  double seconds = 0;
  double objective = 0;
};

struct MilpSolution {
  bool feasible = false;
  /// True when optimality was proven before the deadline.
  bool optimal = false;
  double objective = 0;
  std::vector<double> x;
  std::int64_t nodes = 0;
  int lp_pivots = 0;
  double seconds = 0;
  std::vector<MilpTracePoint> trace;
};

struct MilpSolverOptions {
  double time_limit_seconds = 0;  ///< <= 0: unlimited
  std::int64_t max_nodes = 0;     ///< <= 0: unlimited
  /// Optional cooperative cancellation; polled with the deadline at every
  /// branch-and-bound node. May be null.
  const CancelToken* cancel = nullptr;
  /// Integrality tolerance for classifying LP values.
  double integrality_tolerance = 1e-6;
  /// Optional primal heuristic: given a node's (fractional) LP solution,
  /// construct a feasible integer point. Returns true on success and fills
  /// the full solution vector + objective. The QUBO linearization supplies a
  /// rounding-plus-derive-products completer here.
  std::function<bool(const std::vector<double>& lp_x, std::vector<double>* x,
                     double* objective)>
      incumbent_heuristic;
  /// Invoked on every strict incumbent improvement with the node count spent
  /// so far (the search's deterministic work unit).
  std::function<void(const std::vector<double>& x, double objective,
                     std::int64_t nodes)>
      on_incumbent;
  /// Invoked when the proven dual bound changes: once with the root LP
  /// relaxation, and at completion with the optimal objective (gap closed).
  /// The MILP minimizes, so bounds here are lower bounds on the objective.
  std::function<void(double bound, std::int64_t nodes)> on_bound;
};

/// Branch-and-bound binary MILP solver over the dense simplex — qplex's
/// stand-in for the Gurobi baseline of the paper's Fig. 10/11. DFS
/// best-bound hybrid with most-fractional branching; every LP-feasible node
/// is also rounded to generate early incumbents, which produces the anytime
/// trace the figures plot.
class MilpSolver {
 public:
  explicit MilpSolver(MilpSolverOptions options = {}) : options_(options) {}

  Result<MilpSolution> Solve(const MilpProblem& problem) const;

 private:
  MilpSolverOptions options_;
};

}  // namespace qplex

#endif  // QPLEX_MILP_MILP_SOLVER_H_
