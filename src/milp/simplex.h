#ifndef QPLEX_MILP_SIMPLEX_H_
#define QPLEX_MILP_SIMPLEX_H_

#include <vector>

#include "common/status.h"

namespace qplex {

/// A linear program in inequality form:
///   minimize    c . x
///   subject to  A x <= b         (rows)
///               0 <= x <= upper  (upper defaults to +inf; binaries use 1)
struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;  ///< c, size num_vars

  struct Row {
    std::vector<std::pair<int, double>> terms;  ///< sparse (var, coeff)
    double rhs = 0;
  };
  std::vector<Row> rows;

  /// Per-variable upper bound; negative means unbounded above.
  std::vector<double> upper;

  /// Appends a constraint sum(terms) <= rhs.
  void AddRowLe(std::vector<std::pair<int, double>> terms, double rhs) {
    rows.push_back(Row{std::move(terms), rhs});
  }
  /// Appends sum(terms) >= rhs as its negation.
  void AddRowGe(std::vector<std::pair<int, double>> terms, double rhs);
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kTimeLimit };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0;
  std::vector<double> x;
  int pivots = 0;
};

/// Dense two-phase primal simplex with Bland's anti-cycling rule. Intended
/// for the moderate LP sizes produced by the McCormick linearization of
/// qaMKP QUBOs; no scaling/presolve. A non-positive `time_limit_seconds`
/// means unlimited; on expiry the solve aborts with LpStatus::kTimeLimit.
Result<LpSolution> SolveLp(const LpProblem& problem,
                           double time_limit_seconds = 0);

}  // namespace qplex

#endif  // QPLEX_MILP_SIMPLEX_H_
