#include "milp/milp_solver.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace qplex {
namespace {

/// One branch-and-bound node: variable fixings accumulated along the path.
struct Node {
  std::vector<std::pair<int, int>> fixings;  // (var, value 0/1)
  double bound = -1e300;                     // parent LP objective
};

}  // namespace

Result<MilpSolution> MilpSolver::Solve(const MilpProblem& problem) const {
  for (int var : problem.binary_vars) {
    if (var < 0 || var >= problem.lp.num_vars) {
      return Status::InvalidArgument("binary variable out of range");
    }
  }

  Stopwatch watch;
  const Deadline deadline = options_.time_limit_seconds > 0
                                ? Deadline::After(options_.time_limit_seconds)
                                : Deadline::Infinite();

  MilpSolution solution;
  double incumbent = 1e300;

  auto record_incumbent = [&](double objective, std::vector<double> x) {
    if (!solution.feasible || objective < incumbent) {
      incumbent = objective;
      solution.feasible = true;
      solution.objective = objective;
      solution.x = std::move(x);
      solution.trace.push_back(
          MilpTracePoint{watch.ElapsedSeconds(), objective});
      if (options_.on_incumbent) {
        options_.on_incumbent(solution.x, objective, solution.nodes);
      }
    }
  };

  // Initial heuristic incumbent (the B&B analogue of an MILP solver's
  // start heuristics): complete the all-zeros point before the first LP.
  if (options_.incumbent_heuristic) {
    std::vector<double> zero(problem.lp.num_vars, 0.0);
    std::vector<double> heuristic_x;
    double heuristic_objective = 0;
    if (options_.incumbent_heuristic(zero, &heuristic_x,
                                     &heuristic_objective)) {
      record_incumbent(heuristic_objective, std::move(heuristic_x));
    }
  }

  std::vector<Node> stack;
  stack.push_back(Node{});

  while (!stack.empty()) {
    if (StopRequested(deadline, options_.cancel) ||
        (options_.max_nodes > 0 && solution.nodes >= options_.max_nodes)) {
      solution.optimal = false;
      solution.seconds = watch.ElapsedSeconds();
      return solution;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++solution.nodes;

    // Bound check against the incumbent before paying for the LP.
    if (solution.feasible && node.bound >= incumbent - 1e-9) {
      continue;
    }

    // Build the node LP: base problem + fixings.
    LpProblem lp = problem.lp;
    if (lp.upper.empty()) {
      lp.upper.assign(lp.num_vars, -1.0);
    }
    for (int var : problem.binary_vars) {
      if (lp.upper[var] < 0 || lp.upper[var] > 1.0) {
        lp.upper[var] = 1.0;
      }
    }
    for (const auto& [var, value] : node.fixings) {
      if (value == 0) {
        lp.upper[var] = 0.0;
      } else {
        lp.AddRowGe({{var, 1.0}}, 1.0);
      }
    }

    QPLEX_ASSIGN_OR_RETURN(
        LpSolution lp_solution,
        SolveLp(lp, options_.time_limit_seconds > 0
                        ? deadline.RemainingSeconds()
                        : 0));
    solution.lp_pivots += lp_solution.pivots;
    if (lp_solution.status == LpStatus::kTimeLimit) {
      solution.optimal = false;
      solution.seconds = watch.ElapsedSeconds();
      return solution;
    }
    if (lp_solution.status == LpStatus::kInfeasible) {
      continue;
    }
    if (lp_solution.status == LpStatus::kUnbounded) {
      return Status::InvalidArgument("MILP relaxation is unbounded");
    }
    if (solution.nodes == 1 && options_.on_bound) {
      // The root relaxation is the search's initial proven dual bound.
      options_.on_bound(lp_solution.objective, solution.nodes);
    }
    if (solution.feasible && lp_solution.objective >= incumbent - 1e-9) {
      continue;  // dominated
    }

    // Select the most fractional binary variable.
    int branch_var = -1;
    double branch_frac = options_.integrality_tolerance;
    for (int var : problem.binary_vars) {
      const double value = lp_solution.x[var];
      const double frac = std::abs(value - std::round(value));
      if (frac > branch_frac) {
        branch_frac = frac;
        branch_var = var;
      }
    }

    if (branch_var < 0) {
      // LP solution is integral on the binaries: a feasible MILP point.
      record_incumbent(lp_solution.objective, lp_solution.x);
      continue;
    }

    // Heuristic incumbent from this fractional node.
    if (options_.incumbent_heuristic) {
      std::vector<double> heuristic_x;
      double heuristic_objective = 0;
      if (options_.incumbent_heuristic(lp_solution.x, &heuristic_x,
                                       &heuristic_objective)) {
        record_incumbent(heuristic_objective, std::move(heuristic_x));
      }
    }

    // Dive first on the side the LP already prefers.
    const int preferred = lp_solution.x[branch_var] >= 0.5 ? 1 : 0;
    Node far = node;
    far.bound = lp_solution.objective;
    far.fixings.emplace_back(branch_var, 1 - preferred);
    Node near = node;
    near.bound = lp_solution.objective;
    near.fixings.emplace_back(branch_var, preferred);
    stack.push_back(std::move(far));
    stack.push_back(std::move(near));  // popped first (DFS dive)
  }

  solution.optimal = solution.feasible;
  solution.seconds = watch.ElapsedSeconds();
  if (solution.optimal && options_.on_bound) {
    // Tree exhausted: the dual bound meets the incumbent objective.
    options_.on_bound(solution.objective, solution.nodes);
  }
  return solution;
}

}  // namespace qplex
