#include "milp/qubo_linearization.h"

#include <cmath>

namespace qplex {

LinearizedQubo LinearizeQubo(const QuboModel& model) {
  LinearizedQubo out;
  out.num_x = model.num_variables();
  out.offset = model.offset();

  const int num_products = static_cast<int>(model.quadratic_terms().size());
  LpProblem& lp = out.milp.lp;
  lp.num_vars = out.num_x + num_products;
  lp.objective.assign(lp.num_vars, 0.0);
  lp.upper.assign(lp.num_vars, 1.0);

  for (int i = 0; i < out.num_x; ++i) {
    lp.objective[i] = model.linear(i);
    out.milp.binary_vars.push_back(i);
  }

  int next = out.num_x;
  for (const auto& [key, weight] : model.quadratic_terms()) {
    const int y = next++;
    out.product_vars[key] = y;
    lp.objective[y] = weight;
    const auto [u, v] = key;
    // McCormick envelope: y <= x_u, y <= x_v, y >= x_u + x_v - 1, y >= 0.
    lp.AddRowLe({{y, 1.0}, {u, -1.0}}, 0.0);
    lp.AddRowLe({{y, 1.0}, {v, -1.0}}, 0.0);
    lp.AddRowGe({{y, 1.0}, {u, -1.0}, {v, -1.0}}, -1.0);
  }
  return out;
}

QuboSample ExtractSample(const LinearizedQubo& linearized,
                         const std::vector<double>& x) {
  QuboSample sample(linearized.num_x);
  for (int i = 0; i < linearized.num_x; ++i) {
    sample[i] = x[i] >= 0.5 ? 1 : 0;
  }
  return sample;
}

std::function<bool(const std::vector<double>&, std::vector<double>*, double*)>
MakeQuboRoundingHeuristic(const QuboModel& model,
                          const LinearizedQubo& linearized) {
  return [&model, &linearized](const std::vector<double>& lp_x,
                               std::vector<double>* x, double* objective) {
    QuboSample sample(linearized.num_x);
    for (int i = 0; i < linearized.num_x; ++i) {
      sample[i] = lp_x[i] >= 0.5 ? 1 : 0;
    }
    // Single-flip steepest descent on the true QUBO energy — the rounding
    // alone can land on terrible points of the penalty landscape (this is
    // the MILP solver's "improvement heuristic").
    for (;;) {
      int best_var = -1;
      double best_delta = -1e-12;
      for (int i = 0; i < linearized.num_x; ++i) {
        const double delta = model.FlipDelta(sample, i);
        if (delta < best_delta) {
          best_delta = delta;
          best_var = i;
        }
      }
      if (best_var < 0) {
        break;
      }
      sample[best_var] ^= 1;
    }
    x->assign(linearized.milp.lp.num_vars, 0.0);
    for (int i = 0; i < linearized.num_x; ++i) {
      (*x)[i] = sample[i];
    }
    for (const auto& [key, y] : linearized.product_vars) {
      (*x)[y] = sample[key.first] && sample[key.second] ? 1.0 : 0.0;
    }
    // The MILP objective excludes the constant offset; report the LP-scale
    // objective so bounds compare apples to apples.
    *objective = model.Evaluate(sample) - model.offset();
    return true;
  };
}

}  // namespace qplex
