#ifndef QPLEX_MILP_QUBO_LINEARIZATION_H_
#define QPLEX_MILP_QUBO_LINEARIZATION_H_

#include <map>
#include <utility>
#include <vector>

#include "milp/milp_solver.h"
#include "qubo/qubo_model.h"

namespace qplex {

/// The paper's MILP baseline model (Eq. 14): every quadratic product
/// X_u * X_v is replaced by a fresh continuous variable y_uv subject to the
/// McCormick envelope
///   y <= X_u,  y <= X_v,  y >= X_u + X_v - 1,  y >= 0,
/// which is exact when the X's are binary. Diagonal terms X^2 = X stay
/// linear. The resulting MILP minimizes offset + sum Q_uv Z_uv.
struct LinearizedQubo {
  MilpProblem milp;
  /// The QUBO being linearized has this many binary x variables, at MILP
  /// indices [0, num_x); product variables follow.
  int num_x = 0;
  /// (u, v) -> MILP index of y_uv.
  std::map<std::pair<int, int>, int> product_vars;
  /// The model's constant (carried outside the LP objective).
  double offset = 0;
};

/// Builds the McCormick linearization of `model`.
LinearizedQubo LinearizeQubo(const QuboModel& model);

/// Extracts the binary sample from an MILP solution vector.
QuboSample ExtractSample(const LinearizedQubo& linearized,
                         const std::vector<double>& x);

/// An incumbent heuristic for MilpSolverOptions: round the x block of an LP
/// point, derive the products exactly, and evaluate the true QUBO energy.
/// `model` must outlive the returned callable.
std::function<bool(const std::vector<double>&, std::vector<double>*, double*)>
MakeQuboRoundingHeuristic(const QuboModel& model,
                          const LinearizedQubo& linearized);

}  // namespace qplex

#endif  // QPLEX_MILP_QUBO_LINEARIZATION_H_
