#ifndef QPLEX_RESILIENCE_RETRY_H_
#define QPLEX_RESILIENCE_RETRY_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace qplex::resilience {

/// Retry taxonomy over the canonical StatusCode space (full table in
/// DESIGN.md section 10). The scheduler retries transient failures with
/// backoff, walks the registry fallback chain on degradable ones, and
/// surfaces permanent ones immediately.
enum class FailureClass {
  kTransient,   ///< kInternal: crashed/flaky execution, retry may succeed
  kDegradable,  ///< kResourceExhausted: same backend will fail again at the
                ///< same scale — fall back, don't retry
  kPermanent,   ///< bad request, missing backend, expired deadline, ...
};

FailureClass ClassifyFailure(StatusCode code);

/// Exponential backoff with decorrelated jitter (the AWS architecture-blog
/// variant): delay_i = min(cap, uniform(base, prev * multiplier)). Fully
/// deterministic for a fixed seed, so retry schedules are reproducible and
/// safe to record in gated bench counters.
struct BackoffOptions {
  double base_ms = 1.0;
  double cap_ms = 100.0;
  double multiplier = 3.0;
  std::uint64_t seed = 1;
};

class Backoff {
 public:
  explicit Backoff(BackoffOptions options);

  /// The next delay in milliseconds; grows (jittered) up to cap_ms.
  double NextDelayMs();

  /// Restores the initial state; the next NextDelayMs() replays the same
  /// deterministic sequence.
  void Reset();

  /// Delays handed out since construction/Reset.
  int attempts() const { return attempts_; }

  /// The delay a fresh Backoff(options) would hand out on its `attempt`-th
  /// NextDelayMs() call (attempt >= 1). A pure function of (options, attempt)
  /// — the scheduler uses it to recompute a task's backoff schedule without
  /// carrying Backoff state across re-enqueues, and the telemetry layer uses
  /// it to stamp the exact same number into phase histograms and span events.
  static double DelayAtAttempt(const BackoffOptions& options, int attempt);

 private:
  BackoffOptions options_;
  Rng rng_;
  double previous_ms_;
  int attempts_ = 0;
};

}  // namespace qplex::resilience

#endif  // QPLEX_RESILIENCE_RETRY_H_
