#ifndef QPLEX_RESILIENCE_HEALTH_H_
#define QPLEX_RESILIENCE_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace qplex::resilience {

/// Adaptive admission control for the serving front-ends (DESIGN.md
/// section 15). The controller watches one signal the caller feeds it —
/// per-request queue delay, reported as completed responses drain — and
/// combines it with instantaneous backlog depth and breaker state to decide
/// whether to admit the next request or shed it early with a retry_after_ms
/// hint. Shedding early (before the backlog hard cap) bounds the queue delay
/// accepted requests experience instead of serving every request late.
///
/// Determinism: the decision is a pure function of the inputs and the EWMA
/// state, which itself is a fold over the reported delays. Chaos tests that
/// need byte-stable event streams simply keep the adaptive path disabled
/// (target_delay_ms = 0) or drive it with synthetic delays.
struct OverloadOptions {
  /// Queue-delay objective in milliseconds. 0 disables adaptive shedding:
  /// only the backlog-full hard cap sheds, as before.
  double target_delay_ms = 0;

  /// EWMA smoothing factor in (0, 1]; higher reacts faster.
  double ewma_alpha = 0.2;

  /// Adaptive shedding triggers when the delay EWMA exceeds
  /// target_delay_ms * shed_factor (or target_delay_ms alone while any
  /// breaker is open — degraded capacity warrants shedding sooner).
  double shed_factor = 2.0;

  /// Adaptive shedding never fires while fewer than this many requests are
  /// queued, so a briefly-slow system still makes progress.
  std::size_t min_backlog = 2;

  /// Clamp range for the retry_after_ms hint attached to shed responses.
  double min_retry_after_ms = 10;
  double max_retry_after_ms = 2000;
};

class OverloadController {
 public:
  explicit OverloadController(OverloadOptions options);

  /// Feeds one completed request's queue delay (milliseconds spent between
  /// admission and execution start) into the EWMA.
  void RecordQueueDelay(double delay_ms);

  struct Decision {
    bool admit = true;
    double retry_after_ms = 0;  ///< meaningful when !admit
    const char* reason = "";    ///< "backlog_full" | "queue_delay" when shed
  };

  /// Admission decision for one incoming request given the current backlog
  /// depth, its capacity, and the number of open circuit breakers. Counts
  /// sheds into `svc.admission.*` metrics.
  Decision Admit(std::size_t backlog_depth, std::size_t backlog_capacity,
                 int open_breakers);

  /// Current smoothed queue delay in milliseconds (0 until first sample).
  double delay_ewma_ms() const;

  /// Requests shed by Admit() since construction.
  std::int64_t shed() const;

  /// The hint attached to shed responses: how long a client should wait
  /// before retrying, derived from the smoothed delay and clamped to the
  /// configured range.
  double RetryAfterMsHint() const;

 private:
  const OverloadOptions options_;
  mutable std::mutex mutex_;
  double ewma_ms_ = 0;
  bool has_sample_ = false;
  std::int64_t shed_ = 0;
};

}  // namespace qplex::resilience

#endif  // QPLEX_RESILIENCE_HEALTH_H_
