#include "resilience/retry.h"

#include <algorithm>

namespace qplex::resilience {

FailureClass ClassifyFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kInternal:
      return FailureClass::kTransient;
    case StatusCode::kResourceExhausted:
      return FailureClass::kDegradable;
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kNotFound:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnimplemented:
      return FailureClass::kPermanent;
  }
  return FailureClass::kPermanent;
}

Backoff::Backoff(BackoffOptions options)
    : options_(options), rng_(options.seed), previous_ms_(options.base_ms) {
  options_.base_ms = std::max(options_.base_ms, 0.0);
  options_.cap_ms = std::max(options_.cap_ms, options_.base_ms);
  options_.multiplier = std::max(options_.multiplier, 1.0);
  previous_ms_ = options_.base_ms;
}

double Backoff::NextDelayMs() {
  const double lo = options_.base_ms;
  const double hi = std::max(lo, previous_ms_ * options_.multiplier);
  const double delay =
      std::min(options_.cap_ms, lo + rng_.UniformDouble() * (hi - lo));
  previous_ms_ = delay;
  ++attempts_;
  return delay;
}

void Backoff::Reset() {
  rng_ = Rng(options_.seed);
  previous_ms_ = options_.base_ms;
  attempts_ = 0;
}

double Backoff::DelayAtAttempt(const BackoffOptions& options, int attempt) {
  Backoff backoff(options);
  double delay = 0;
  for (int i = 0; i < attempt; ++i) {
    delay = backoff.NextDelayMs();
  }
  return delay;
}

}  // namespace qplex::resilience
