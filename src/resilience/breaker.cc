#include "resilience/breaker.h"

#include <algorithm>
#include <utility>

#include "obs/events.h"
#include "obs/metrics.h"

namespace qplex::resilience {
namespace {

void CountTransition(const std::string& backend, BreakerState to) {
  auto& registry = obs::MetricsRegistry::Global();
  std::string_view kind;
  switch (to) {
    case BreakerState::kOpen:
      kind = "opened";
      break;
    case BreakerState::kHalfOpen:
      kind = "half_opened";
      break;
    case BreakerState::kClosed:
      kind = "closed";
      break;
  }
  registry.GetCounter("resilience.breaker." + std::string(kind)).Increment();
  registry.GetCounter("resilience.breaker." + backend + "." + std::string(kind))
      .Increment();
  registry.GetGauge("resilience.breaker." + backend + ".state")
      .Set(static_cast<double>(static_cast<int>(to)));
}

}  // namespace

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kHalfOpen:
      return "half_open";
    case BreakerState::kOpen:
      return "open";
  }
  return "closed";
}

bool BreakerCountsFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kInternal:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kNotFound:
    case StatusCode::kUnimplemented:
    case StatusCode::kOutOfRange:
      return true;
    default:
      return false;
  }
}

CircuitBreaker::CircuitBreaker(std::string backend, BreakerOptions options)
    : backend_(std::move(backend)),
      options_(options),
      current_cooldown_(std::max(1, options.cooldown_consults)) {}

void CircuitBreaker::TransitionLocked(BreakerState to) {
  const BreakerState from = state_;
  state_ = to;
  switch (to) {
    case BreakerState::kOpen:
      ++opened_;
      cooldown_remaining_ = current_cooldown_;
      break;
    case BreakerState::kHalfOpen:
      cooldown_remaining_ = 0;
      break;
    case BreakerState::kClosed:
      ++closed_count_;
      consecutive_failures_ = 0;
      current_cooldown_ = std::max(1, options_.cooldown_consults);
      break;
  }
  CountTransition(backend_, to);
  if (obs::EventsEnabled()) {
    obs::EmitEvent(obs::EventLevel::kInfo, "resilience", "breaker_transition",
                   {{"backend", backend_},
                    {"from", std::string(BreakerStateName(from))},
                    {"to", std::string(BreakerStateName(to))},
                    {"consecutive_failures",
                     static_cast<std::int64_t>(consecutive_failures_)},
                    {"cooldown",
                     static_cast<std::int64_t>(cooldown_remaining_)}});
  }
}

CircuitBreaker::Decision CircuitBreaker::Consult() {
  if (options_.failure_threshold <= 0) {
    return Decision::kProceed;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return Decision::kProceed;
    case BreakerState::kOpen:
      if (--cooldown_remaining_ > 0) {
        ++short_circuits_;
        obs::MetricsRegistry::Global()
            .GetCounter("resilience.breaker.short_circuits")
            .Increment();
        return Decision::kShortCircuit;
      }
      TransitionLocked(BreakerState::kHalfOpen);
      probe_in_flight_ = true;
      ++probes_;
      obs::MetricsRegistry::Global()
          .GetCounter("resilience.breaker.probes")
          .Increment();
      return Decision::kProbe;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) {
        // One probe at a time: concurrent consults keep short-circuiting
        // until the in-flight probe resolves the breaker's fate.
        ++short_circuits_;
        obs::MetricsRegistry::Global()
            .GetCounter("resilience.breaker.short_circuits")
            .Increment();
        return Decision::kShortCircuit;
      }
      probe_in_flight_ = true;
      ++probes_;
      obs::MetricsRegistry::Global()
          .GetCounter("resilience.breaker.probes")
          .Increment();
      return Decision::kProbe;
  }
  return Decision::kProceed;
}

void CircuitBreaker::RecordSuccess() {
  if (options_.failure_threshold <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;
    TransitionLocked(BreakerState::kClosed);
  }
}

void CircuitBreaker::RecordFailure() {
  if (options_.failure_threshold <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;
    current_cooldown_ = std::min(
        options_.cooldown_max_consults,
        std::max(1, static_cast<int>(static_cast<double>(current_cooldown_) *
                                     options_.cooldown_multiplier)));
    TransitionLocked(BreakerState::kOpen);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    TransitionLocked(BreakerState::kOpen);
  }
}

void CircuitBreaker::RecordNeutral() {
  if (options_.failure_threshold <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // The probe produced no verdict; stay half-open and let the next consult
    // admit a fresh probe.
    probe_in_flight_ = false;
  }
}

BreakerSnapshot CircuitBreaker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BreakerSnapshot snapshot;
  snapshot.backend = backend_;
  snapshot.state = state_;
  snapshot.consecutive_failures = consecutive_failures_;
  snapshot.cooldown_remaining =
      state_ == BreakerState::kOpen ? cooldown_remaining_ : 0;
  snapshot.opened = opened_;
  snapshot.closed = closed_count_;
  snapshot.short_circuits = short_circuits_;
  snapshot.probes = probes_;
  return snapshot;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

BreakerBoard::BreakerBoard(BreakerOptions options) : options_(options) {}

CircuitBreaker* BreakerBoard::Get(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = breakers_.find(backend);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(backend,
                      std::make_unique<CircuitBreaker>(backend, options_))
             .first;
  }
  return it->second.get();
}

std::vector<BreakerSnapshot> BreakerBoard::Snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BreakerSnapshot> snapshots;
  snapshots.reserve(breakers_.size());
  for (const auto& [name, breaker] : breakers_) {
    snapshots.push_back(breaker->Snapshot());
  }
  return snapshots;
}

int BreakerBoard::OpenCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int open = 0;
  for (const auto& [name, breaker] : breakers_) {
    if (breaker->state() == BreakerState::kOpen) {
      ++open;
    }
  }
  return open;
}

}  // namespace qplex::resilience
