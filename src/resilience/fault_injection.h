#ifndef QPLEX_RESILIENCE_FAULT_INJECTION_H_
#define QPLEX_RESILIENCE_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qplex::resilience {

/// Named injection sites registered at the hot spots of the serving stack.
/// Each site is a single branch in production code; when the injector is
/// disabled (the default) the whole check collapses to one relaxed atomic
/// load, so the instrumented paths stay on their fast path.
enum class FaultSite : int {
  kAlloc = 0,       ///< statevector amplitude-budget check
  kSolverThrow,     ///< scheduler worker: backend throws mid-solve
  kSolverSlow,      ///< scheduler worker: backend stalls ~25 ms
  kIoRead,          ///< graph/io.cc file read
  kCacheInsert,     ///< svc result-cache insert dropped
  kSolverStall,     ///< scheduler worker: backend wedges (no heartbeat) until
                    ///< cancelled or the deadline expires — virtual-time
                    ///< stall for watchdog tests, not a fixed sleep
};

inline constexpr int kNumFaultSites = 6;

/// Stable lowercase name used in --fault-spec and metrics
/// ("alloc", "solver_throw", "solver_slow", "io_read", "cache_insert",
/// "solver_stall").
std::string_view FaultSiteName(FaultSite site);

/// Parses a site name; unknown names are an InvalidArgument listing the
/// valid set.
Result<FaultSite> ParseFaultSite(std::string_view name);

/// How one armed site decides to fire. Exactly one of `probability` /
/// `every_n` is active: rates written with a '.' or exponent ("0.3", "1e-2")
/// arm a probability trigger, plain integers ("64") fire every Nth call.
/// Both triggers are pure functions of (seed, per-site call index), so a
/// fixed spec yields the same fault pattern on every sequential run.
struct FaultRule {
  double probability = 0;
  std::int64_t every_n = 0;
  std::uint64_t seed = 1;
};

/// Parses "site:rate[:seed]" with ','-separated repetition, e.g.
/// "solver_throw:0.3:7,io_read:5:1". Seed defaults to 1.
Result<std::vector<std::pair<FaultSite, FaultRule>>> ParseFaultSpec(
    std::string_view spec);

/// Deterministic seed-driven fault injector. Construct instances freely in
/// tests; production call sites consult the process-wide Global() instance
/// through FaultFires() below.
///
/// Thread safety: ShouldFire/injected/calls are safe to call concurrently;
/// Configure/Arm/Reset must not race with them (configure at startup, before
/// workers exist — exactly what the tools do).
class FaultInjector {
 public:
  FaultInjector() = default;

  /// The process-wide injector. On first use it bootstraps from the
  /// QPLEX_FAULT_SPEC environment variable (same grammar as --fault-spec);
  /// an explicit Configure() from a tool flag replaces that configuration.
  static FaultInjector& Global();

  /// Replaces the active configuration with `spec`; an empty spec disables
  /// every site. Invalid specs leave the injector unchanged.
  Status Configure(std::string_view spec);

  /// Arms one site, resetting its call/injected counters.
  void Arm(FaultSite site, FaultRule rule);

  /// Disarms every site and clears all counters.
  void Reset();

  /// True when at least one site is armed (one relaxed load; the gate for
  /// the production no-op branch).
  bool enabled() const { return armed_sites_.load(std::memory_order_relaxed) > 0; }

  /// Counts the call and decides whether the fault fires at this site.
  bool ShouldFire(FaultSite site);

  /// Diagnostics: calls observed / faults injected at `site`.
  std::int64_t calls(FaultSite site) const;
  std::int64_t injected(FaultSite site) const;

 private:
  struct SiteState {
    std::atomic<bool> active{false};
    std::atomic<std::int64_t> calls{0};
    std::atomic<std::int64_t> injected{0};
    FaultRule rule;
  };

  std::mutex config_mutex_;
  std::atomic<int> armed_sites_{0};
  std::array<SiteState, kNumFaultSites> sites_;
};

/// The one-line production check: `if (FaultFires(FaultSite::kIoRead)) ...`.
/// Compiles to a single relaxed load + branch when nothing is armed, and to
/// `false` outright under -DQPLEX_DISABLE_FAULT_INJECTION.
inline bool FaultFires(FaultSite site) {
#ifdef QPLEX_DISABLE_FAULT_INJECTION
  (void)site;
  return false;
#else
  FaultInjector& injector = FaultInjector::Global();
  return injector.enabled() && injector.ShouldFire(site);
#endif
}

}  // namespace qplex::resilience

#endif  // QPLEX_RESILIENCE_FAULT_INJECTION_H_
