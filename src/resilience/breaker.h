#ifndef QPLEX_RESILIENCE_BREAKER_H_
#define QPLEX_RESILIENCE_BREAKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace qplex::resilience {

/// Circuit-breaker state machine (DESIGN.md section 15). Legal transitions:
///   closed -> open        (failure threshold reached)
///   open -> half_open     (cooldown elapsed; one probe admitted)
///   half_open -> closed   (probe succeeded)
///   half_open -> open     (probe failed; cooldown doubles up to a cap)
/// The analyzer rejects any event stream that closes a breaker without
/// passing through half_open.
enum class BreakerState { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

/// Stable lowercase name used in events, health responses, and metrics
/// ("closed", "half_open", "open").
std::string_view BreakerStateName(BreakerState state);

struct BreakerOptions {
  /// Consecutive counted failures that trip a closed breaker open.
  /// <= 0 disables the breaker entirely (Consult always proceeds).
  int failure_threshold = 3;

  /// Deterministic backoff, measured in Consult() calls rather than wall
  /// time: after opening, the breaker short-circuits the next N-1
  /// consultations and admits a half-open probe on the Nth. Counting
  /// consultations instead of seconds keeps chaos runs byte-reproducible —
  /// the transition sequence is a pure function of the request stream, not
  /// of scheduling latency.
  int cooldown_consults = 8;

  /// Each half_open -> open reopen scales the next cooldown by this factor,
  /// capped at cooldown_max_consults; a successful close resets it.
  double cooldown_multiplier = 2.0;
  int cooldown_max_consults = 64;
};

/// Point-in-time view of one breaker, for health responses and tests.
struct BreakerSnapshot {
  std::string backend;
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  int cooldown_remaining = 0;      ///< consults left before a probe (open only)
  std::int64_t opened = 0;         ///< closed/half_open -> open transitions
  std::int64_t closed = 0;         ///< half_open -> closed transitions
  std::int64_t short_circuits = 0; ///< consults answered without execution
  std::int64_t probes = 0;         ///< half-open executions admitted
};

/// True when a failure with `code` should count toward tripping a breaker.
/// Counted: transient crashes (kInternal) and server-side permanent failures
/// (kFailedPrecondition, kNotFound, kUnimplemented, kOutOfRange). Not
/// counted: caller-attributable outcomes — kInvalidArgument (bad request) and
/// kDeadlineExceeded (the client's budget, not the backend's health) — and
/// kResourceExhausted, which the fallback chain already handles
/// deterministically per request. The scheduler separately force-counts
/// watchdog kills, which surface as kResourceExhausted but are genuine
/// backend-health signals.
bool BreakerCountsFailure(StatusCode code);

/// Per-backend circuit breaker. Thread-safe; every transition emits a
/// `breaker_transition` event (solver "resilience") and bumps
/// `resilience.breaker.*` counters. Event payloads carry only
/// deterministic fields (states, counts, configured cooldowns) so a
/// single-worker chaos run produces a byte-stable transition stream.
class CircuitBreaker {
 public:
  /// What the caller should do with the execution it is about to run.
  enum class Decision {
    kProceed,       ///< closed: execute normally
    kProbe,         ///< half-open: execute; this is the recovery probe
    kShortCircuit,  ///< open: skip the backend, go straight to fallback
  };

  CircuitBreaker(std::string backend, BreakerOptions options);

  /// Admission decision for one imminent execution. Open breakers consume
  /// one cooldown tick per consult and flip to half-open when it reaches
  /// zero. A kProbe/kProceed decision must be resolved with exactly one
  /// RecordSuccess/RecordFailure/RecordNeutral call after the execution.
  Decision Consult();

  /// The admitted execution completed successfully.
  void RecordSuccess();

  /// The admitted execution failed in a way that counts toward the breaker
  /// (see BreakerCountsFailure; the scheduler also routes watchdog kills
  /// here).
  void RecordFailure();

  /// The admitted execution ended without a health verdict (client deadline,
  /// cancellation, non-counting status). Releases a half-open probe slot
  /// without changing state or failure counts.
  void RecordNeutral();

  BreakerSnapshot Snapshot() const;
  BreakerState state() const;

 private:
  void TransitionLocked(BreakerState to);

  const std::string backend_;
  const BreakerOptions options_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int cooldown_remaining_ = 0;
  int current_cooldown_ = 0;   ///< cooldown to charge on the next trip
  bool probe_in_flight_ = false;
  std::int64_t opened_ = 0;
  std::int64_t closed_count_ = 0;
  std::int64_t short_circuits_ = 0;
  std::int64_t probes_ = 0;
};

/// Registry of breakers keyed by backend name, created on first consult.
/// Thread-safe; pointers remain valid for the board's lifetime.
class BreakerBoard {
 public:
  explicit BreakerBoard(BreakerOptions options);

  /// The breaker for `backend`, created closed on first use.
  CircuitBreaker* Get(const std::string& backend);

  /// Snapshots of every breaker created so far, sorted by backend name.
  std::vector<BreakerSnapshot> Snapshots() const;

  /// Number of breakers currently in the open state (half-open counts as
  /// available capacity, not as open).
  int OpenCount() const;

 private:
  const BreakerOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

}  // namespace qplex::resilience

#endif  // QPLEX_RESILIENCE_BREAKER_H_
