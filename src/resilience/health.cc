#include "resilience/health.h"

#include <algorithm>

#include "obs/metrics.h"

namespace qplex::resilience {

OverloadController::OverloadController(OverloadOptions options)
    : options_(options) {}

void OverloadController::RecordQueueDelay(double delay_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!has_sample_) {
    ewma_ms_ = delay_ms;
    has_sample_ = true;
  } else {
    ewma_ms_ += options_.ewma_alpha * (delay_ms - ewma_ms_);
  }
  obs::MetricsRegistry::Global()
      .GetGauge("svc.admission.delay_ewma_ms")
      .Set(ewma_ms_);
}

OverloadController::Decision OverloadController::Admit(
    std::size_t backlog_depth, std::size_t backlog_capacity,
    int open_breakers) {
  Decision decision;
  std::lock_guard<std::mutex> lock(mutex_);
  if (backlog_capacity > 0 && backlog_depth >= backlog_capacity) {
    decision.admit = false;
    decision.reason = "backlog_full";
  } else if (options_.target_delay_ms > 0 && has_sample_ &&
             backlog_depth >= options_.min_backlog) {
    const double threshold =
        open_breakers > 0 ? options_.target_delay_ms
                          : options_.target_delay_ms * options_.shed_factor;
    if (ewma_ms_ > threshold) {
      decision.admit = false;
      decision.reason = "queue_delay";
    }
  }
  if (!decision.admit) {
    decision.retry_after_ms =
        std::clamp(2 * ewma_ms_, options_.min_retry_after_ms,
                   options_.max_retry_after_ms);
    ++shed_;
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("svc.admission.shed").Increment();
    registry
        .GetCounter(std::string("svc.admission.shed.") + decision.reason)
        .Increment();
    registry.GetHistogram("svc.admission.retry_after_ms")
        .Record(decision.retry_after_ms);
  }
  return decision;
}

double OverloadController::delay_ewma_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ewma_ms_;
}

std::int64_t OverloadController::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

double OverloadController::RetryAfterMsHint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::clamp(2 * ewma_ms_, options_.min_retry_after_ms,
                    options_.max_retry_after_ms);
}

}  // namespace qplex::resilience
