#include "resilience/fault_injection.h"

#include <cstdlib>
#include <iostream>

#include "obs/metrics.h"

namespace qplex::resilience {
namespace {

constexpr std::string_view kSiteNames[kNumFaultSites] = {
    "alloc",      "solver_throw", "solver_slow",
    "io_read",    "cache_insert", "solver_stall"};

/// SplitMix64 finalizer: maps (seed, call index) to a uniform 64-bit hash so
/// probability triggers are deterministic per call index, independent of how
/// calls interleave across threads in between.
std::uint64_t Mix(std::uint64_t seed, std::uint64_t call) {
  std::uint64_t z = seed + call * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double HashToUnitDouble(std::uint64_t seed, std::uint64_t call) {
  return static_cast<double>(Mix(seed, call) >> 11) * 0x1.0p-53;
}

Result<FaultRule> ParseRule(std::string_view rate, std::string_view seed_text,
                            std::string_view clause) {
  FaultRule rule;
  const std::string rate_str(rate);
  const bool is_probability = rate.find('.') != std::string_view::npos ||
                              rate.find('e') != std::string_view::npos ||
                              rate.find('E') != std::string_view::npos;
  try {
    std::size_t consumed = 0;
    if (is_probability) {
      rule.probability = std::stod(rate_str, &consumed);
      if (consumed != rate_str.size() || rule.probability <= 0 ||
          rule.probability > 1) {
        return Status::InvalidArgument(
            "fault-spec probability must be in (0, 1]: " + std::string(clause));
      }
    } else {
      rule.every_n = std::stoll(rate_str, &consumed);
      if (consumed != rate_str.size() || rule.every_n <= 0) {
        return Status::InvalidArgument(
            "fault-spec every-N must be a positive integer: " +
            std::string(clause));
      }
    }
    if (!seed_text.empty()) {
      const std::string seed_str(seed_text);
      rule.seed = std::stoull(seed_str, &consumed);
      if (consumed != seed_str.size()) {
        return Status::InvalidArgument("fault-spec seed must be an integer: " +
                                       std::string(clause));
      }
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed fault-spec clause: " +
                                   std::string(clause));
  }
  return rule;
}

}  // namespace

std::string_view FaultSiteName(FaultSite site) {
  return kSiteNames[static_cast<int>(site)];
}

Result<FaultSite> ParseFaultSite(std::string_view name) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (kSiteNames[i] == name) {
      return static_cast<FaultSite>(i);
    }
  }
  std::string valid;
  for (const std::string_view site : kSiteNames) {
    if (!valid.empty()) {
      valid += ", ";
    }
    valid += site;
  }
  return Status::InvalidArgument("unknown fault site '" + std::string(name) +
                                 "' (valid: " + valid + ")");
}

Result<std::vector<std::pair<FaultSite, FaultRule>>> ParseFaultSpec(
    std::string_view spec) {
  std::vector<std::pair<FaultSite, FaultRule>> rules;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string_view::npos) {
      end = spec.size();
    }
    const std::string_view clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) {
      continue;  // tolerate trailing/duplicated commas from flag joining
    }
    const std::size_t first = clause.find(':');
    if (first == std::string_view::npos) {
      return Status::InvalidArgument(
          "fault-spec clause needs site:rate[:seed]: " + std::string(clause));
    }
    const std::size_t second = clause.find(':', first + 1);
    const std::string_view site_name = clause.substr(0, first);
    const std::string_view rate =
        second == std::string_view::npos
            ? clause.substr(first + 1)
            : clause.substr(first + 1, second - first - 1);
    const std::string_view seed_text =
        second == std::string_view::npos ? std::string_view{}
                                         : clause.substr(second + 1);
    QPLEX_ASSIGN_OR_RETURN(const FaultSite site, ParseFaultSite(site_name));
    QPLEX_ASSIGN_OR_RETURN(const FaultRule rule,
                           ParseRule(rate, seed_text, clause));
    rules.emplace_back(site, rule);
  }
  return rules;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* created = new FaultInjector();
    if (const char* spec = std::getenv("QPLEX_FAULT_SPEC");
        spec != nullptr && *spec != '\0') {
      const Status status = created->Configure(spec);
      if (!status.ok()) {
        std::cerr << "QPLEX_FAULT_SPEC ignored: " << status.ToString() << "\n";
      }
    }
    return created;
  }();
  return *injector;
}

Status FaultInjector::Configure(std::string_view spec) {
  QPLEX_ASSIGN_OR_RETURN(const auto rules, ParseFaultSpec(spec));
  Reset();
  for (const auto& [site, rule] : rules) {
    Arm(site, rule);
  }
  return Status::Ok();
}

void FaultInjector::Arm(FaultSite site, FaultRule rule) {
  std::lock_guard<std::mutex> lock(config_mutex_);
  SiteState& state = sites_[static_cast<int>(site)];
  if (!state.active.load(std::memory_order_relaxed)) {
    armed_sites_.fetch_add(1, std::memory_order_relaxed);
  }
  state.rule = rule;
  state.calls.store(0, std::memory_order_relaxed);
  state.injected.store(0, std::memory_order_relaxed);
  state.active.store(true, std::memory_order_release);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(config_mutex_);
  for (SiteState& state : sites_) {
    state.active.store(false, std::memory_order_relaxed);
    state.calls.store(0, std::memory_order_relaxed);
    state.injected.store(0, std::memory_order_relaxed);
    state.rule = FaultRule{};
  }
  armed_sites_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFire(FaultSite site) {
  SiteState& state = sites_[static_cast<int>(site)];
  if (!state.active.load(std::memory_order_acquire)) {
    return false;
  }
  const std::int64_t call =
      state.calls.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire;
  if (state.rule.every_n > 0) {
    fire = call % state.rule.every_n == 0;
  } else {
    fire = HashToUnitDouble(state.rule.seed,
                            static_cast<std::uint64_t>(call)) <
           state.rule.probability;
  }
  if (fire) {
    state.injected.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global()
        .GetCounter("resilience.fault." + std::string(FaultSiteName(site)) +
                    ".injected")
        .Increment();
  }
  return fire;
}

std::int64_t FaultInjector::calls(FaultSite site) const {
  return sites_[static_cast<int>(site)].calls.load(std::memory_order_relaxed);
}

std::int64_t FaultInjector::injected(FaultSite site) const {
  return sites_[static_cast<int>(site)].injected.load(
      std::memory_order_relaxed);
}

}  // namespace qplex::resilience
