#ifndef QPLEX_EMBED_MINOR_EMBEDDING_H_
#define QPLEX_EMBED_MINOR_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace qplex {

/// A minor embedding: each logical variable owns a connected, pairwise
/// disjoint set ("chain") of hardware qubits, such that every logical edge is
/// realised by at least one hardware coupler between the two chains.
struct Embedding {
  /// chains[v] = hardware nodes representing logical variable v.
  std::vector<std::vector<int>> chains;
};

/// Aggregate chain statistics — the quantities plotted in the paper's
/// Fig. "Variable counts and chain size vs graph size".
struct EmbeddingStats {
  int num_variables = 0;
  int num_physical_qubits = 0;
  int max_chain = 0;
  double average_chain = 0;
};

EmbeddingStats ComputeEmbeddingStats(const Embedding& embedding);

/// Verifies the embedding contract against the logical/hardware graphs:
/// chains non-empty, connected, disjoint, and covering every logical edge.
Status ValidateEmbedding(const Graph& logical, const Graph& hardware,
                         const Embedding& embedding);

/// Options for the heuristic embedder.
struct MinorEmbedderOptions {
  /// Refinement passes after the initial greedy construction; each pass
  /// rips up and re-routes every chain (in a fresh random order, under a
  /// doubled contention penalty) with the others fixed.
  int max_passes = 16;
  /// Multiplicative node-cost penalty per existing occupant; drives the
  /// router around contended qubits (the alpha of Cai–Macready–Roy).
  double usage_penalty = 8.0;
  std::uint64_t seed = 1;
};

/// Heuristic minor embedder after Cai, Macready & Roy (2014) — the same
/// algorithm family as D-Wave's minorminer, which the paper uses ("the
/// embedding problem is NP-hard; therefore we adopt a heuristic approach").
/// Chains are grown by multi-source Dijkstra routing with usage-penalised
/// node costs; temporary overlaps are permitted and resolved by rip-up and
/// re-route passes.
class MinorEmbedder {
 public:
  explicit MinorEmbedder(MinorEmbedderOptions options = {})
      : options_(options) {}

  /// Embeds `logical` into `hardware`. Returns ResourceExhausted when no
  /// overlap-free embedding was found within the pass budget.
  Result<Embedding> Embed(const Graph& logical, const Graph& hardware) const;

 private:
  MinorEmbedderOptions options_;
};

}  // namespace qplex

#endif  // QPLEX_EMBED_MINOR_EMBEDDING_H_
