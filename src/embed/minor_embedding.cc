#include "embed/minor_embedding.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "common/rng.h"

namespace qplex {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Router state shared by the construction and refinement phases.
struct RouterState {
  const Graph* hardware = nullptr;
  /// Number of chains currently occupying each hardware node.
  std::vector<int> usage;
  double usage_penalty = 8.0;
  /// Per-node multiplicative cost noise, refreshed before every chain
  /// construction. Equal-cost configurations then wander pass to pass, which
  /// is what lets the rip-up loop escape "door contention" deadlocks (two
  /// variables forced through the single free qubit next to a third chain).
  std::vector<double> jitter;

  /// Cached per-node entering cost, rebuilt once per chain construction
  /// (a pow() per edge relaxation would dominate the router's runtime).
  std::vector<double> cost;

  double NodeCost(int node) const { return cost[node]; }

  void RefreshCosts(Rng& rng) {
    cost.resize(usage.size());
    for (std::size_t node = 0; node < usage.size(); ++node) {
      // Free nodes cost ~1; each occupant multiplies the cost, steering the
      // router around contention without forbidding it outright. Jitter
      // breaks ties so stalled configurations wander between passes.
      jitter[node] = 1.0 + 0.25 * rng.UniformDouble();
      cost[node] =
          std::pow(usage_penalty, static_cast<double>(usage[node])) *
          jitter[node];
    }
  }
};

/// Multi-source Dijkstra from every node of `sources` (cost 0 to stand on a
/// source). Fills dist/parent over hardware nodes where the cost of entering
/// node w is NodeCost(w).
void Route(const RouterState& state, const std::vector<int>& sources,
           std::vector<double>* dist, std::vector<int>* parent) {
  const int n = state.hardware->num_vertices();
  dist->assign(n, kInfinity);
  parent->assign(n, -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  for (int s : sources) {
    (*dist)[s] = 0;
    queue.push({0, s});
  }
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (d > (*dist)[node]) {
      continue;
    }
    for (Vertex next : state.hardware->Neighbors(node)) {
      const double nd = d + state.NodeCost(next);
      if (nd < (*dist)[next]) {
        (*dist)[next] = nd;
        (*parent)[next] = node;
        queue.push({nd, next});
      }
    }
  }
}

/// Result of growing one chain: the variable's own nodes plus, for each
/// neighbour chain, the routed connector nodes DONATED to that neighbour.
/// Donating connectors (instead of absorbing them) is the Cai-Macready-Roy
/// move that resolves door contention: once the connector joins the
/// neighbour's chain, later routers stop in front of it instead of fighting
/// over it.
struct GrownChain {
  bool ok = false;
  std::vector<int> own;
  /// Parallel to the neighbor_chains input: nodes to append to that chain.
  std::vector<std::vector<int>> donations;
};

/// Builds a chain for logical variable `v` given the chains of its already-
/// embedded logical neighbours.
GrownChain GrowChain(const RouterState& state,
                     const std::vector<std::vector<int>>& neighbor_chains,
                     Rng& rng) {
  const int n = state.hardware->num_vertices();
  GrownChain grown;
  grown.donations.resize(neighbor_chains.size());
  if (neighbor_chains.empty()) {
    // Seed anywhere: cheapest node, ties broken randomly.
    int best = -1;
    double best_cost = kInfinity;
    int ties = 0;
    for (int node = 0; node < n; ++node) {
      const double cost = state.NodeCost(node);
      if (cost < best_cost) {
        best = node;
        best_cost = cost;
        ties = 1;
      } else if (cost == best_cost && rng.UniformInt(++ties) == 0) {
        best = node;
      }
    }
    if (best >= 0) {
      grown.ok = true;
      grown.own.push_back(best);
    }
    return grown;
  }

  // One Dijkstra per neighbour chain.
  std::vector<std::vector<double>> dists(neighbor_chains.size());
  std::vector<std::vector<int>> parents(neighbor_chains.size());
  for (std::size_t i = 0; i < neighbor_chains.size(); ++i) {
    Route(state, neighbor_chains[i], &dists[i], &parents[i]);
  }

  // Root = node minimizing its own cost plus the distances to every chain.
  int root = -1;
  double root_cost = kInfinity;
  for (int node = 0; node < n; ++node) {
    double total = state.NodeCost(node);
    for (const auto& dist : dists) {
      if (dist[node] == kInfinity) {
        total = kInfinity;
        break;
      }
      total += dist[node];
    }
    if (total < root_cost) {
      root_cost = total;
      root = node;
    }
  }
  if (root < 0) {
    return grown;
  }

  // Reconstruct the routed path per neighbour (root -> ... -> last node
  // before the neighbour chain).
  std::vector<std::vector<int>> paths(neighbor_chains.size());
  std::map<int, int> occurrences;  // node -> number of paths through it
  for (std::size_t i = 0; i < neighbor_chains.size(); ++i) {
    const std::set<int> targets(neighbor_chains[i].begin(),
                                neighbor_chains[i].end());
    if (targets.count(root) > 0) {
      continue;  // root already touches this chain
    }
    int node = root;
    while (parents[i][node] >= 0) {
      node = parents[i][node];
      if (targets.count(node) > 0) {
        break;  // reached the neighbour chain
      }
      paths[i].push_back(node);
    }
    for (int node_on_path : paths[i]) {
      ++occurrences[node_on_path];
    }
  }

  // The variable keeps the root and every node shared by two or more paths
  // (Steiner branch points, plus everything rootward of them); each path's
  // unshared suffix is DONATED to the neighbour chain it connects. Donating
  // connectors resolves door contention: once a connector joins the
  // neighbour's chain, later routers stop in front of it instead of fighting
  // over it. Edge coverage holds at the keep/donate split point.
  grown.ok = true;
  std::set<int> own{root};
  for (std::size_t i = 0; i < neighbor_chains.size(); ++i) {
    std::size_t last_shared = 0;  // paths[i][j] kept for j < last_shared
    for (std::size_t j = 0; j < paths[i].size(); ++j) {
      if (occurrences[paths[i][j]] > 1) {
        last_shared = j + 1;
      }
    }
    for (std::size_t j = 0; j < paths[i].size(); ++j) {
      if (j < last_shared) {
        own.insert(paths[i][j]);
      } else {
        grown.donations[i].push_back(paths[i][j]);
      }
    }
  }
  grown.own.assign(own.begin(), own.end());
  return grown;
}

}  // namespace

EmbeddingStats ComputeEmbeddingStats(const Embedding& embedding) {
  EmbeddingStats stats;
  stats.num_variables = static_cast<int>(embedding.chains.size());
  for (const auto& chain : embedding.chains) {
    stats.num_physical_qubits += static_cast<int>(chain.size());
    stats.max_chain = std::max(stats.max_chain, static_cast<int>(chain.size()));
  }
  stats.average_chain =
      stats.num_variables == 0
          ? 0
          : static_cast<double>(stats.num_physical_qubits) /
                stats.num_variables;
  return stats;
}

Status ValidateEmbedding(const Graph& logical, const Graph& hardware,
                         const Embedding& embedding) {
  const int n = logical.num_vertices();
  if (static_cast<int>(embedding.chains.size()) != n) {
    return Status::InvalidArgument("one chain per logical variable required");
  }
  std::vector<int> owner(hardware.num_vertices(), -1);
  for (int v = 0; v < n; ++v) {
    const auto& chain = embedding.chains[v];
    if (chain.empty()) {
      return Status::InvalidArgument("empty chain for variable " +
                                     std::to_string(v));
    }
    for (int node : chain) {
      if (node < 0 || node >= hardware.num_vertices()) {
        return Status::InvalidArgument("chain node outside hardware");
      }
      if (owner[node] != -1) {
        return Status::InvalidArgument(
            "hardware qubit " + std::to_string(node) + " shared by chains " +
            std::to_string(owner[node]) + " and " + std::to_string(v));
      }
      owner[node] = v;
    }
    // Connectivity: BFS within the chain.
    std::set<int> members(chain.begin(), chain.end());
    std::vector<int> stack{chain[0]};
    std::set<int> seen{chain[0]};
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      for (Vertex next : hardware.Neighbors(node)) {
        if (members.count(next) > 0 && seen.insert(next).second) {
          stack.push_back(next);
        }
      }
    }
    if (seen.size() != members.size()) {
      return Status::InvalidArgument("chain for variable " +
                                     std::to_string(v) + " is disconnected");
    }
  }
  // Edge coverage.
  for (const auto& [u, v] : logical.Edges()) {
    bool covered = false;
    for (int a : embedding.chains[u]) {
      for (Vertex b : hardware.Neighbors(a)) {
        if (owner[b] == v) {
          covered = true;
          break;
        }
      }
      if (covered) {
        break;
      }
    }
    if (!covered) {
      return Status::InvalidArgument("logical edge (" + std::to_string(u) +
                                     ", " + std::to_string(v) +
                                     ") not realised by any coupler");
    }
  }
  return Status::Ok();
}

Result<Embedding> MinorEmbedder::Embed(const Graph& logical,
                                       const Graph& hardware) const {
  const int n = logical.num_vertices();
  if (n == 0) {
    return Embedding{};
  }
  if (hardware.num_vertices() == 0) {
    return Status::InvalidArgument("empty hardware graph");
  }

  Rng rng(options_.seed);
  RouterState state;
  state.hardware = &hardware;
  state.usage.assign(hardware.num_vertices(), 0);
  state.usage_penalty = options_.usage_penalty;
  state.jitter.assign(hardware.num_vertices(), 1.0);

  // Embed in descending-degree order (hardest first).
  std::vector<Vertex> order(n);
  for (int v = 0; v < n; ++v) {
    order[v] = v;
  }
  std::stable_sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return logical.Degree(a) > logical.Degree(b);
  });

  Embedding embedding;
  embedding.chains.assign(n, {});
  std::vector<bool> placed(n, false);

  auto embed_one = [&](Vertex v) -> bool {
    state.RefreshCosts(rng);
    std::vector<std::vector<int>> neighbor_chains;
    std::vector<Vertex> neighbor_ids;
    for (Vertex u : logical.Neighbors(v)) {
      if (placed[u]) {
        neighbor_chains.push_back(embedding.chains[u]);
        neighbor_ids.push_back(u);
      }
    }
    const GrownChain grown = GrowChain(state, neighbor_chains, rng);
    if (!grown.ok) {
      return false;
    }
    embedding.chains[v] = grown.own;
    for (int node : grown.own) {
      ++state.usage[node];
    }
    for (std::size_t i = 0; i < neighbor_ids.size(); ++i) {
      for (int node : grown.donations[i]) {
        embedding.chains[neighbor_ids[i]].push_back(node);
        ++state.usage[node];
      }
    }
    placed[v] = true;
    return true;
  };

  for (Vertex v : order) {
    if (!embed_one(v)) {
      return Status::ResourceExhausted("hardware too small for variable " +
                                       std::to_string(v));
    }
  }

  auto has_overlap = [&]() {
    for (int node = 0; node < hardware.num_vertices(); ++node) {
      if (state.usage[node] > 1) {
        return true;
      }
    }
    return false;
  };

  // Rip-up and re-route until overlap-free or out of passes. Each pass
  // shuffles the variable order and raises the contention penalty — the
  // escalation schedule of Cai-Macready-Roy.
  auto overlap_count = [&]() {
    int overlapped = 0;
    for (int node = 0; node < hardware.num_vertices(); ++node) {
      overlapped += state.usage[node] > 1;
    }
    return overlapped;
  };
  int best_overlap = overlap_count();
  int stalled_passes = 0;
  for (int pass = 0; pass < options_.max_passes && has_overlap(); ++pass) {
    // Restart from scratch in a fresh random order only when refinement has
    // stalled: rip-up of one chain at a time cannot escape some contention
    // deadlocks, but a reshuffled rebuild usually does — while restarting
    // too eagerly throws away convergence progress on large instances.
    if (stalled_passes >= 4) {
      std::fill(state.usage.begin(), state.usage.end(), 0);
      std::fill(placed.begin(), placed.end(), false);
      for (auto& chain : embedding.chains) {
        chain.clear();
      }
      state.usage_penalty = options_.usage_penalty;
      best_overlap = hardware.num_vertices();
      stalled_passes = 0;
    }
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.UniformInt(i)]);
    }
    for (Vertex v : order) {
      for (int node : embedding.chains[v]) {
        --state.usage[node];
      }
      placed[v] = false;
      embedding.chains[v].clear();
      if (!embed_one(v)) {
        return Status::ResourceExhausted("re-route failed for variable " +
                                         std::to_string(v));
      }
    }
    state.usage_penalty *= 2.0;
    const int overlapped = overlap_count();
    if (overlapped < best_overlap) {
      best_overlap = overlapped;
      stalled_passes = 0;
    } else {
      ++stalled_passes;
    }
  }
  if (has_overlap()) {
    return Status::ResourceExhausted(
        "no overlap-free embedding within the pass budget");
  }
  QPLEX_RETURN_IF_ERROR(ValidateEmbedding(logical, hardware, embedding));
  return embedding;
}

}  // namespace qplex
