#ifndef QPLEX_EMBED_HARDWARE_H_
#define QPLEX_EMBED_HARDWARE_H_

#include "common/status.h"
#include "graph/graph.h"

namespace qplex {

/// Annealer hardware topologies. qaMKP's QUBO variables must be minor-
/// embedded into one of these before a quantum annealer can run them
/// (Section V, "Chain strength of qaMKP on D-Wave").

/// Chimera C(rows, cols, t): a rows x cols grid of unit cells, each cell a
/// complete bipartite K_{t,t}; vertical qubits couple to the cell below,
/// horizontal qubits to the cell to the right. D-Wave 2000Q is C(16,16,4).
Result<Graph> ChimeraGraph(int rows, int cols, int t);

/// Index of qubit (row, col, side, k) in the Chimera numbering used by
/// ChimeraGraph: side 0 = vertical partition, 1 = horizontal.
int ChimeraIndex(int rows, int cols, int t, int row, int col, int side, int k);

/// A Pegasus-like topology approximating the D-Wave Advantage connectivity:
/// a Chimera C(size, size, 4) augmented with intra-cell "odd" couplers and
/// diagonal inter-cell couplers, raising the qubit degree from 6 toward the
/// 15 of the real Pegasus. (The exact Pegasus coordinate system is
/// proprietary-documented; this stand-in preserves degree and locality
/// characteristics, which is what chain statistics depend on.)
Result<Graph> PegasusLikeGraph(int size);

}  // namespace qplex

#endif  // QPLEX_EMBED_HARDWARE_H_
