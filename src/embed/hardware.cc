#include "embed/hardware.h"

namespace qplex {

int ChimeraIndex(int rows, int cols, int t, int row, int col, int side,
                 int k) {
  QPLEX_CHECK(row >= 0 && row < rows) << "row out of range";
  QPLEX_CHECK(col >= 0 && col < cols) << "col out of range";
  QPLEX_CHECK(side == 0 || side == 1) << "side must be 0 or 1";
  QPLEX_CHECK(k >= 0 && k < t) << "k out of range";
  return ((row * cols + col) * 2 + side) * t + k;
}

Result<Graph> ChimeraGraph(int rows, int cols, int t) {
  if (rows < 1 || cols < 1 || t < 1) {
    return Status::InvalidArgument("Chimera dimensions must be positive");
  }
  Graph graph(rows * cols * 2 * t);
  for (int row = 0; row < rows; ++row) {
    for (int col = 0; col < cols; ++col) {
      // Intra-cell K_{t,t}.
      for (int a = 0; a < t; ++a) {
        for (int b = 0; b < t; ++b) {
          graph.AddEdge(ChimeraIndex(rows, cols, t, row, col, 0, a),
                        ChimeraIndex(rows, cols, t, row, col, 1, b));
        }
      }
      // Vertical couplers: vertical qubits connect to the same k in the cell
      // below.
      if (row + 1 < rows) {
        for (int k = 0; k < t; ++k) {
          graph.AddEdge(ChimeraIndex(rows, cols, t, row, col, 0, k),
                        ChimeraIndex(rows, cols, t, row + 1, col, 0, k));
        }
      }
      // Horizontal couplers: horizontal qubits connect rightward.
      if (col + 1 < cols) {
        for (int k = 0; k < t; ++k) {
          graph.AddEdge(ChimeraIndex(rows, cols, t, row, col, 1, k),
                        ChimeraIndex(rows, cols, t, row, col + 1, 1, k));
        }
      }
    }
  }
  return graph;
}

Result<Graph> PegasusLikeGraph(int size) {
  if (size < 1) {
    return Status::InvalidArgument("size must be positive");
  }
  const int t = 4;
  QPLEX_ASSIGN_OR_RETURN(Graph graph, ChimeraGraph(size, size, t));
  for (int row = 0; row < size; ++row) {
    for (int col = 0; col < size; ++col) {
      // "Odd" couplers: pair up qubits within each partition of a cell.
      for (int k = 0; k + 1 < t; k += 2) {
        graph.AddEdge(ChimeraIndex(size, size, t, row, col, 0, k),
                      ChimeraIndex(size, size, t, row, col, 0, k + 1));
        graph.AddEdge(ChimeraIndex(size, size, t, row, col, 1, k),
                      ChimeraIndex(size, size, t, row, col, 1, k + 1));
      }
      // Diagonal inter-cell couplers (down-right), mixing partitions.
      if (row + 1 < size && col + 1 < size) {
        for (int k = 0; k < t; ++k) {
          graph.AddEdge(ChimeraIndex(size, size, t, row, col, 0, k),
                        ChimeraIndex(size, size, t, row + 1, col + 1, 1, k));
          graph.AddEdge(ChimeraIndex(size, size, t, row, col, 1, k),
                        ChimeraIndex(size, size, t, row + 1, col + 1, 0, k));
        }
      }
    }
  }
  return graph;
}

}  // namespace qplex
