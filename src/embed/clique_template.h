#ifndef QPLEX_EMBED_CLIQUE_TEMPLATE_H_
#define QPLEX_EMBED_CLIQUE_TEMPLATE_H_

#include "common/status.h"
#include "embed/minor_embedding.h"

namespace qplex {

/// Deterministic clique embedding for Chimera C(m, m, t): realises K_n for
/// any n <= t*m with uniform chains of length m + 1. This is the template
/// annealer toolchains fall back to for dense problems, where routing
/// heuristics struggle.
///
/// Construction ("staircase cross"): variable i with block b = i / t and
/// offset k = i % t owns
///   vertical qubits   (row, col=b, k) for row in [0, b]    and
///   horizontal qubits (row=b, col, k) for col in [b, m).
/// The two arms meet in the diagonal cell (b, b) (vertical k couples to
/// horizontal k inside a cell); variables in blocks b_i <= b_j meet in cell
/// (b_i, b_j), where i's horizontal arm crosses j's vertical arm.
Result<Embedding> ChimeraCliqueTemplate(int num_variables, int m, int t);

/// Largest clique the template supports on C(m, m, t).
inline int ChimeraCliqueCapacity(int m, int t) { return m * t; }

}  // namespace qplex

#endif  // QPLEX_EMBED_CLIQUE_TEMPLATE_H_
