#include "embed/clique_template.h"

#include "embed/hardware.h"

namespace qplex {

Result<Embedding> ChimeraCliqueTemplate(int num_variables, int m, int t) {
  if (m < 1 || t < 1) {
    return Status::InvalidArgument("Chimera dimensions must be positive");
  }
  if (num_variables < 0 || num_variables > ChimeraCliqueCapacity(m, t)) {
    return Status::InvalidArgument(
        "template supports at most m*t variables on C(m,m,t)");
  }
  Embedding embedding;
  embedding.chains.resize(num_variables);
  for (int i = 0; i < num_variables; ++i) {
    const int block = i / t;
    const int offset = i % t;
    auto& chain = embedding.chains[i];
    // Vertical arm: column `block`, rows 0..block.
    for (int row = 0; row <= block; ++row) {
      chain.push_back(ChimeraIndex(m, m, t, row, block, 0, offset));
    }
    // Horizontal arm: row `block`, columns block..m-1.
    for (int col = block; col < m; ++col) {
      chain.push_back(ChimeraIndex(m, m, t, block, col, 1, offset));
    }
  }
  return embedding;
}

}  // namespace qplex
