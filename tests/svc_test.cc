// Tests of the solver service layer: canonical graph hashing, the LRU
// instance cache and its counters, the backend registry, and the bounded
// job scheduler (determinism across worker counts, deadline promptness,
// cooperative cancellation, portfolio racing, backpressure, and the
// resilience layer: fault injection, retry/backoff, fallback chains).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "classical/bs_solver.h"
#include "classical/exact.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "obs/analysis.h"
#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "quantum/statevector.h"
#include "resilience/fault_injection.h"
#include "resilience/retry.h"
#include "svc/cache.h"
#include "svc/graph_hash.h"
#include "svc/registry.h"
#include "svc/scheduler.h"
#include "svc/solver.h"

namespace qplex::svc {
namespace {

Graph TwoBlockGraph() {
  // Two K4 blocks joined by one edge; the maximum 2-plex is a K4.
  return ParseEdgeList(
             "8\n0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n3 4\n4 5\n4 6\n5 6\n5 7\n6 "
             "7\n")
      .value();
}

std::int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).Get();
}

TEST(GraphHashTest, EdgeOrderAndFormatDoNotChangeHash) {
  const Graph a = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}}).value();
  const Graph b = MakeGraph(4, {{2, 3}, {1, 0}, {1, 2}}).value();  // permuted
  const Graph c = ParseEdgeList("4\n1 2\n0 1\n2 3\n").value();
  const Graph d = ParseDimacs("p edge 4 3\ne 1 2\ne 2 3\ne 3 4\n").value();
  EXPECT_EQ(CanonicalGraphHash(a), CanonicalGraphHash(b));
  EXPECT_EQ(CanonicalGraphHash(a), CanonicalGraphHash(c));
  EXPECT_EQ(CanonicalGraphHash(a), CanonicalGraphHash(d));
}

TEST(GraphHashTest, IsomorphicRelabelingHashesDifferently) {
  // The hash is a *labelled* digest by design (see graph_hash.h): the path
  // 0-1-2 and its relabeling 0-2-1 are isomorphic but hash differently,
  // because cached solutions are reported in the caller's vertex ids.
  const Graph path = MakeGraph(3, {{0, 1}, {1, 2}}).value();
  const Graph relabeled = MakeGraph(3, {{0, 2}, {2, 1}}).value();
  EXPECT_NE(CanonicalGraphHash(path), CanonicalGraphHash(relabeled));
}

TEST(GraphHashTest, VertexCountMatters) {
  const Graph small = MakeGraph(3, {{0, 1}}).value();
  const Graph padded = MakeGraph(4, {{0, 1}}).value();
  EXPECT_NE(CanonicalGraphHash(small), CanonicalGraphHash(padded));
}

TEST(GraphHashTest, CacheKeyCoversRequestFields) {
  SolveRequest request;
  request.graph = TwoBlockGraph();
  request.k = 2;
  request.seed = 1;
  const std::string base = CacheKey(request, "bs");

  SolveRequest other = request;
  other.k = 3;
  EXPECT_NE(CacheKey(other, "bs"), base);
  other = request;
  other.seed = 2;
  EXPECT_NE(CacheKey(other, "bs"), base);
  other = request;
  other.options["shots"] = "50";
  EXPECT_NE(CacheKey(other, "bs"), base);
  EXPECT_NE(CacheKey(request, "enum"), base);

  // Deadline and label do NOT affect the key: a cached completed answer is
  // valid under any budget.
  other = request;
  other.deadline_seconds = 5;
  other.label = "renamed";
  EXPECT_EQ(CacheKey(other, "bs"), base);
}

TEST(InstanceCacheTest, HitMissAndCountersMatch) {
  obs::MetricsRegistry::Global().Reset();
  InstanceCache cache(8);
  SolveResponse response;
  response.solution.size = 4;
  response.backend = "bs";

  EXPECT_FALSE(cache.Lookup("key-a").has_value());
  cache.Insert("key-a", response);
  const std::optional<SolveResponse> hit = cache.Lookup("key-a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->solution.size, 4);
  EXPECT_EQ(hit->backend, "bs");

  EXPECT_EQ(CounterValue("svc.cache.misses"), 1);
  EXPECT_EQ(CounterValue("svc.cache.hits"), 1);
  EXPECT_EQ(CounterValue("svc.cache.insertions"), 1);
}

TEST(InstanceCacheTest, LruEviction) {
  obs::MetricsRegistry::Global().Reset();
  InstanceCache cache(2);
  SolveResponse response;
  cache.Insert("a", response);
  cache.Insert("b", response);
  ASSERT_TRUE(cache.Lookup("a").has_value());  // refresh a; b is now LRU
  cache.Insert("c", response);                 // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(CounterValue("svc.cache.evictions"), 1);
}

TEST(RegistryTest, BuiltinBackendsRegistered) {
  const SolverRegistry registry = MakeBuiltinRegistry();
  const std::vector<std::string> expected = {"bs",  "enum", "grasp", "hybrid",
                                             "milp", "pia",  "pt",    "qmkp",
                                             "qtkp", "sa"};
  EXPECT_EQ(registry.Names(), expected);
  for (const std::string& name : expected) {
    EXPECT_NE(registry.Get(name), nullptr) << name;
  }
  EXPECT_EQ(registry.Get("nope"), nullptr);
}

TEST(RegistryTest, DirectBackendSolveMatchesGroundTruth) {
  const SolverRegistry registry = MakeBuiltinRegistry();
  SolveRequest request;
  request.graph = TwoBlockGraph();
  request.k = 2;
  const SolveContext context;
  for (const char* backend : {"bs", "enum"}) {
    const Result<SolveOutcome> outcome =
        registry.Get(backend)->Solve(request, context);
    ASSERT_TRUE(outcome.ok()) << backend << ": " << outcome.status();
    EXPECT_EQ(outcome.value().solution.size, 4) << backend;
    EXPECT_TRUE(outcome.value().completed) << backend;
    EXPECT_TRUE(outcome.value().provably_optimal) << backend;
  }
}

TEST(RegistryTest, MalformedOptionFailsTheJob) {
  const SolverRegistry registry = MakeBuiltinRegistry();
  SolveRequest request;
  request.graph = TwoBlockGraph();
  request.k = 2;
  request.backend = "grasp";
  request.options["iterations"] = "not-a-number";
  const Result<SolveOutcome> outcome =
      registry.Get("grasp")->Solve(request, SolveContext{});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : registry_(MakeBuiltinRegistry()) {}

  SolveRequest Request(const std::string& backend, std::uint64_t seed = 1) {
    SolveRequest request;
    request.graph = TwoBlockGraph();
    request.k = 2;
    request.backend = backend;
    request.seed = seed;
    return request;
  }

  SolverRegistry registry_;
};

TEST_F(SchedulerTest, SingleJobSolvesToOptimum) {
  JobScheduler scheduler(&registry_);
  const Result<JobId> id = scheduler.Submit(Request("bs"));
  ASSERT_TRUE(id.ok()) << id.status();
  const SolveResponse response = scheduler.Wait(id.value());
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.solution.size, 4);
  EXPECT_TRUE(response.provably_optimal);
  EXPECT_EQ(response.backend, "bs");
}

TEST_F(SchedulerTest, UnknownBackendRejectedAtSubmit) {
  JobScheduler scheduler(&registry_);
  const Result<JobId> id = scheduler.Submit(Request("nope"));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SchedulerTest, WaitOnUnknownIdFails) {
  JobScheduler scheduler(&registry_);
  const SolveResponse response = scheduler.Wait(12345);
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SchedulerTest, DeterministicAcrossWorkerCounts) {
  // A mixed-backend batch must produce identical solutions at any worker
  // count — the core service determinism contract.
  const std::vector<std::pair<std::string, std::uint64_t>> batch = {
      {"bs", 1},  {"enum", 1}, {"grasp", 3}, {"grasp", 9},
      {"sa", 5},  {"sa", 7},   {"pt", 2},    {"hybrid", 4},
  };
  auto run_batch = [&](int workers) {
    JobSchedulerOptions options;
    options.num_workers = workers;
    options.enable_cache = false;  // force every job to actually execute
    JobScheduler scheduler(&registry_, options);
    std::vector<JobId> ids;
    for (const auto& [backend, seed] : batch) {
      const Result<JobId> id = scheduler.Submit(Request(backend, seed));
      EXPECT_TRUE(id.ok()) << id.status();
      ids.push_back(id.value());
    }
    std::vector<VertexList> solutions;
    for (const JobId id : ids) {
      const SolveResponse response = scheduler.Wait(id);
      EXPECT_TRUE(response.status.ok()) << response.status;
      solutions.push_back(response.solution.members);
    }
    return solutions;
  };
  const std::vector<VertexList> serial = run_batch(1);
  const std::vector<VertexList> parallel4 = run_batch(4);
  const std::vector<VertexList> parallel8 = run_batch(8);
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel8);
}

TEST_F(SchedulerTest, MillisecondDeadlineReturnsDeadlineExceededPromptly) {
  // n = 26 enumeration scans 2^26 masks — seconds of work — but the 1 ms
  // deadline must surface within the scheduler's polling granularity.
  JobScheduler scheduler(&registry_);
  SolveRequest request;
  request.graph = RandomGnm(26, 120, 7).value();
  request.k = 2;
  request.backend = "enum";
  request.deadline_seconds = 0.001;
  Stopwatch watch;
  const Result<JobId> id = scheduler.Submit(std::move(request));
  ASSERT_TRUE(id.ok()) << id.status();
  const SolveResponse response = scheduler.Wait(id.value());
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  // Generous CI bound: prompt means "milliseconds", not "after the scan".
  EXPECT_LT(watch.ElapsedSeconds(), 2.0);
}

TEST_F(SchedulerTest, CancelStopsARunningJob) {
  JobScheduler scheduler(&registry_);
  SolveRequest request;
  request.graph = RandomGnm(48, 400, 11).value();
  request.k = 2;
  request.backend = "grasp";
  request.options["iterations"] = "100000000";  // minutes if uncancelled
  const Result<JobId> id = scheduler.Submit(std::move(request));
  ASSERT_TRUE(id.ok()) << id.status();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler.Cancel(id.value());
  const SolveResponse response = scheduler.Wait(id.value());
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  // The incumbent at cancellation time is still attached.
  EXPECT_GE(response.solution.size, 1);
}

TEST_F(SchedulerTest, PortfolioPicksProvablyOptimalWinnerAndCancelsLosers) {
  obs::MetricsRegistry::Global().Reset();
  JobSchedulerOptions options;
  options.num_workers = 2;
  JobScheduler scheduler(&registry_, options);
  SolveRequest request;
  request.graph = TwoBlockGraph();
  request.k = 2;
  // bs proves the optimum in microseconds; the grasp racer is configured to
  // grind for minutes unless the portfolio cancellation reaches it.
  request.options["iterations"] = "100000000";
  const Result<JobId> id =
      scheduler.SubmitPortfolio(std::move(request), {"bs", "grasp"});
  ASSERT_TRUE(id.ok()) << id.status();
  Stopwatch watch;
  const SolveResponse response = scheduler.Wait(id.value());
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.backend, "bs");
  EXPECT_TRUE(response.provably_optimal);
  EXPECT_EQ(response.solution.size, 4);
  EXPECT_LT(watch.ElapsedSeconds(), 30.0);
  EXPECT_EQ(CounterValue("svc.portfolio.jobs"), 1);
}

TEST_F(SchedulerTest, CacheHitShortCircuitsRepeatedJobs) {
  obs::MetricsRegistry::Global().Reset();
  JobScheduler scheduler(&registry_);
  const Result<JobId> first = scheduler.Submit(Request("bs"));
  ASSERT_TRUE(first.ok());
  const SolveResponse cold = scheduler.Wait(first.value());
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.metrics.cache_hit);

  const Result<JobId> second = scheduler.Submit(Request("bs"));
  ASSERT_TRUE(second.ok());
  const SolveResponse warm = scheduler.Wait(second.value());
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.metrics.cache_hit);
  EXPECT_EQ(warm.solution.members, cold.solution.members);
  EXPECT_EQ(warm.metrics.wall_seconds, 0);

  EXPECT_EQ(CounterValue("svc.cache.hits"), 1);
  EXPECT_EQ(CounterValue("svc.cache.misses"), 1);
  EXPECT_EQ(CounterValue("svc.cache.insertions"), 1);
}

TEST_F(SchedulerTest, CacheDisabledNeverHits) {
  obs::MetricsRegistry::Global().Reset();
  JobSchedulerOptions options;
  options.enable_cache = false;
  JobScheduler scheduler(&registry_, options);
  for (int round = 0; round < 2; ++round) {
    const Result<JobId> id = scheduler.Submit(Request("bs"));
    ASSERT_TRUE(id.ok());
    const SolveResponse response = scheduler.Wait(id.value());
    EXPECT_FALSE(response.metrics.cache_hit);
  }
  EXPECT_EQ(CounterValue("svc.cache.hits"), 0);
}

TEST_F(SchedulerTest, FullQueueRejectsWithResourceExhausted) {
  obs::MetricsRegistry::Global().Reset();
  JobSchedulerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  JobScheduler scheduler(&registry_, options);

  auto slow_request = [&] {
    SolveRequest request;
    request.graph = RandomGnm(48, 400, 13).value();
    request.k = 2;
    request.backend = "grasp";
    request.options["iterations"] = "100000000";
    return request;
  };

  // Job 1 occupies the single worker; wait for it to leave the queue.
  const Result<JobId> running = scheduler.Submit(slow_request());
  ASSERT_TRUE(running.ok());
  for (int spin = 0; spin < 1000 && scheduler.QueueDepth() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(scheduler.QueueDepth(), 0u);

  // Jobs 2 and 3 fill the bounded queue; job 4 must bounce.
  const Result<JobId> queued_a = scheduler.Submit(slow_request());
  const Result<JobId> queued_b = scheduler.Submit(slow_request());
  ASSERT_TRUE(queued_a.ok());
  ASSERT_TRUE(queued_b.ok());
  const Result<JobId> rejected = scheduler.Submit(slow_request());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(CounterValue("svc.jobs.rejected"), 1);

  for (const JobId id :
       {running.value(), queued_a.value(), queued_b.value()}) {
    scheduler.Cancel(id);
    const SolveResponse response = scheduler.Wait(id);
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(SchedulerTest, DestructorDrainsUnwaitedJobs) {
  obs::MetricsRegistry::Global().Reset();
  {
    JobScheduler scheduler(&registry_);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(scheduler.Submit(Request("bs")).ok());
    }
    // No Wait: the destructor must still execute everything.
  }
  EXPECT_EQ(CounterValue("svc.jobs.completed"), 4);
}

// ---------------------------------------------------------------------------
// Resilience layer: fault injection, retry/backoff, fallback chains.

TEST(FaultSpecTest, ParsesProbabilityEveryNAndSeeds) {
  const auto rules =
      resilience::ParseFaultSpec("solver_throw:0.3:7,io_read:5");
  ASSERT_TRUE(rules.ok()) << rules.status();
  ASSERT_EQ(rules.value().size(), 2u);
  EXPECT_EQ(rules.value()[0].first, resilience::FaultSite::kSolverThrow);
  EXPECT_DOUBLE_EQ(rules.value()[0].second.probability, 0.3);
  EXPECT_EQ(rules.value()[0].second.every_n, 0);
  EXPECT_EQ(rules.value()[0].second.seed, 7u);
  // A plain integer rate means "every Nth call", seed defaults to 1.
  EXPECT_EQ(rules.value()[1].first, resilience::FaultSite::kIoRead);
  EXPECT_EQ(rules.value()[1].second.every_n, 5);
  EXPECT_EQ(rules.value()[1].second.seed, 1u);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  for (const char* spec :
       {"nope:0.5", "alloc", "alloc:abc", "alloc:1.5", "alloc:0",
        "alloc:-1", "alloc:0.5:xyz"}) {
    EXPECT_FALSE(resilience::ParseFaultSpec(spec).ok()) << spec;
  }
}

TEST(FaultInjectorTest, EveryNthTriggerIsExact) {
  resilience::FaultInjector injector;
  resilience::FaultRule rule;
  rule.every_n = 3;
  injector.Arm(resilience::FaultSite::kIoRead, rule);
  EXPECT_TRUE(injector.enabled());
  int fires = 0;
  for (int i = 0; i < 9; ++i) {
    if (injector.ShouldFire(resilience::FaultSite::kIoRead)) ++fires;
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(injector.calls(resilience::FaultSite::kIoRead), 9);
  EXPECT_EQ(injector.injected(resilience::FaultSite::kIoRead), 3);
}

TEST(FaultInjectorTest, ProbabilityTriggerIsDeterministicPerCallIndex) {
  resilience::FaultRule rule;
  rule.probability = 0.3;
  rule.seed = 7;
  auto pattern = [&] {
    resilience::FaultInjector injector;
    injector.Arm(resilience::FaultSite::kSolverThrow, rule);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(
          injector.ShouldFire(resilience::FaultSite::kSolverThrow));
    }
    return fired;
  };
  const std::vector<bool> a = pattern();
  const std::vector<bool> b = pattern();
  EXPECT_EQ(a, b);
  const long fires = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fires, 0);   // p = 0.3 over 200 calls: some must fire...
  EXPECT_LT(fires, 200); // ...and some must not.
}

TEST(FaultInjectorTest, ConfigureReplacesAndEmptySpecDisables) {
  resilience::FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  ASSERT_TRUE(injector.Configure("io_read:2").ok());
  EXPECT_TRUE(injector.enabled());
  // An invalid spec must leave the current configuration untouched.
  EXPECT_FALSE(injector.Configure("bogus:1").ok());
  EXPECT_TRUE(injector.enabled());
  ASSERT_TRUE(injector.Configure("").ok());
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.ShouldFire(resilience::FaultSite::kIoRead));
}

TEST(BackoffTest, DeterministicBoundedAndResettable) {
  resilience::BackoffOptions options;
  options.base_ms = 1.0;
  options.cap_ms = 50.0;
  options.seed = 42;
  resilience::Backoff a(options);
  resilience::Backoff b(options);
  std::vector<double> first;
  for (int i = 0; i < 10; ++i) {
    const double delay = a.NextDelayMs();
    EXPECT_GE(delay, options.base_ms);
    EXPECT_LE(delay, options.cap_ms);
    first.push_back(delay);
    EXPECT_DOUBLE_EQ(b.NextDelayMs(), delay);
  }
  EXPECT_EQ(a.attempts(), 10);
  a.Reset();
  EXPECT_EQ(a.attempts(), 0);
  for (const double delay : first) {
    EXPECT_DOUBLE_EQ(a.NextDelayMs(), delay);  // Reset replays the sequence
  }
}

TEST(ClassifyFailureTest, TaxonomyMatchesDesignTable) {
  using resilience::ClassifyFailure;
  using resilience::FailureClass;
  EXPECT_EQ(ClassifyFailure(StatusCode::kInternal), FailureClass::kTransient);
  EXPECT_EQ(ClassifyFailure(StatusCode::kResourceExhausted),
            FailureClass::kDegradable);
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kDeadlineExceeded, StatusCode::kUnimplemented}) {
    EXPECT_EQ(ClassifyFailure(code), FailureClass::kPermanent)
        << static_cast<int>(code);
  }
}

TEST(RegistryTest, FallbackChainValidation) {
  SolverRegistry registry = MakeBuiltinRegistry();
  EXPECT_FALSE(registry.SetFallback("nope", "bs").ok());
  EXPECT_FALSE(registry.SetFallback("bs", "nope").ok());
  EXPECT_FALSE(registry.SetFallback("bs", "bs").ok());  // self-loop
  ASSERT_TRUE(registry.SetFallback("sa", "bs").ok());
  ASSERT_NE(registry.Fallback("sa"), nullptr);
  EXPECT_EQ(*registry.Fallback("sa"), "bs");
  EXPECT_EQ(registry.Fallback("grasp"), nullptr);
}

TEST(RegistryTest, BuiltinFallbackChainsDeclared) {
  const SolverRegistry registry = MakeBuiltinRegistry();
  ASSERT_NE(registry.Fallback("qtkp"), nullptr);
  EXPECT_EQ(*registry.Fallback("qtkp"), "bs");
  ASSERT_NE(registry.Fallback("qmkp"), nullptr);
  EXPECT_EQ(*registry.Fallback("qmkp"), "bs");
  ASSERT_NE(registry.Fallback("milp"), nullptr);
  EXPECT_EQ(*registry.Fallback("milp"), "grasp");
}

/// Always throws: the scheduler's exception barrier must contain it.
class ThrowingSolver : public Solver {
 public:
  std::string_view name() const override { return "boom"; }
  Result<SolveOutcome> Solve(const SolveRequest&,
                             const SolveContext&) const override {
    throw std::runtime_error("synthetic backend crash");
  }
};

/// Fails with kInternal `failures` times, then succeeds.
class FlakySolver : public Solver {
 public:
  explicit FlakySolver(int failures) : failures_(failures) {}
  std::string_view name() const override { return "flaky"; }
  Result<SolveOutcome> Solve(const SolveRequest&,
                             const SolveContext&) const override {
    if (calls_.fetch_add(1) < failures_) {
      return Status::Internal("flaky backend failure");
    }
    SolveOutcome outcome;
    outcome.solution.size = 1;
    outcome.solution.members = {0};
    return outcome;
  }

 private:
  int failures_;
  mutable std::atomic<int> calls_{0};
};

/// Always fails with kResourceExhausted: must degrade, never retry.
class OomSolver : public Solver {
 public:
  std::string_view name() const override { return "oom"; }
  Result<SolveOutcome> Solve(const SolveRequest&,
                             const SolveContext&) const override {
    return Status::ResourceExhausted("synthetic memory budget breach");
  }
};

JobSchedulerOptions FastRetryOptions() {
  JobSchedulerOptions options;
  options.retry.backoff_base_ms = 0.01;  // keep retry sleeps negligible
  options.retry.backoff_cap_ms = 0.1;
  return options;
}

TEST_F(SchedulerTest, ThrowingBackendBecomesInternalAndExhaustsRetries) {
  obs::MetricsRegistry::Global().Reset();
  SolverRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_unique<ThrowingSolver>()).ok());
  JobSchedulerOptions options = FastRetryOptions();
  options.retry.max_retries = 2;
  JobScheduler scheduler(&registry, options);

  SolveRequest request = Request("boom");
  const Result<JobId> id = scheduler.Submit(std::move(request));
  ASSERT_TRUE(id.ok()) << id.status();
  const SolveResponse response = scheduler.Wait(id.value());
  // The throw is contained as a per-job status naming backend and what();
  // the process (and the worker pool) survives.
  EXPECT_EQ(response.status.code(), StatusCode::kInternal);
  EXPECT_NE(response.status.message().find("boom"), std::string::npos);
  EXPECT_NE(response.status.message().find("synthetic backend crash"),
            std::string::npos);
  EXPECT_EQ(response.attempts, 3);  // 1 first attempt + 2 retries
  EXPECT_EQ(CounterValue("svc.backend.boom.exceptions"), 3);
  EXPECT_EQ(CounterValue("svc.retries.scheduled"), 2);
  EXPECT_EQ(CounterValue("svc.retries.exhausted"), 1);

  // The scheduler is still healthy: a follow-up job runs normally.
  ASSERT_TRUE(scheduler.Submit(Request("boom")).ok());
}

TEST_F(SchedulerTest, TransientFailureRecoversViaRetry) {
  obs::MetricsRegistry::Global().Reset();
  SolverRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_unique<FlakySolver>(2)).ok());
  JobScheduler scheduler(&registry, FastRetryOptions());  // max_retries = 2

  SolveRequest request = Request("flaky");
  const Result<JobId> id = scheduler.Submit(std::move(request));
  ASSERT_TRUE(id.ok()) << id.status();
  const SolveResponse response = scheduler.Wait(id.value());
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.attempts, 3);
  EXPECT_EQ(response.solution.size, 1);
  EXPECT_EQ(CounterValue("svc.retries.scheduled"), 2);
  EXPECT_EQ(CounterValue("svc.retries.exhausted"), 0);
}

TEST_F(SchedulerTest, ResourceExhaustedWalksFallbackChain) {
  obs::MetricsRegistry::Global().Reset();
  SolverRegistry registry = MakeBuiltinRegistry();
  ASSERT_TRUE(registry.Register(std::make_unique<OomSolver>()).ok());
  ASSERT_TRUE(registry.SetFallback("oom", "bs").ok());
  JobScheduler scheduler(&registry, FastRetryOptions());

  const Result<JobId> id = scheduler.Submit(Request("oom"));
  ASSERT_TRUE(id.ok()) << id.status();
  const SolveResponse response = scheduler.Wait(id.value());
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.backend, "bs");
  EXPECT_EQ(response.degraded_from, "oom");
  EXPECT_NE(response.degradation_reason.find("synthetic memory budget"),
            std::string::npos);
  EXPECT_EQ(response.solution.size, 4);
  EXPECT_TRUE(response.provably_optimal);
  EXPECT_EQ(response.attempts, 1);  // degradable failures are not retried
  EXPECT_EQ(CounterValue("svc.fallbacks.taken"), 1);

  // Degraded answers are never cached (the key names the requested
  // backend): a repeat submission walks the chain again.
  const Result<JobId> again = scheduler.Submit(Request("oom"));
  ASSERT_TRUE(again.ok());
  const SolveResponse repeat = scheduler.Wait(again.value());
  ASSERT_TRUE(repeat.status.ok()) << repeat.status;
  EXPECT_EQ(CounterValue("svc.fallbacks.taken"), 2);
  EXPECT_EQ(CounterValue("svc.cache.hits"), 0);
}

TEST_F(SchedulerTest, QtkpDegradesToBsUnderTinySimulationBudget) {
  obs::MetricsRegistry::Global().Reset();
  // 8 vertices need a 2^8-amplitude register (4096 bytes); a 256-byte
  // budget forces qtkp into kResourceExhausted and down its chain to bs.
  SetMaxSimulationBytes(256);
  struct BudgetRestore {
    ~BudgetRestore() { SetMaxSimulationBytes(0); }
  } restore;

  JobScheduler scheduler(&registry_, FastRetryOptions());
  SolveRequest request = Request("qtkp");
  request.options["threshold"] = "4";
  const Result<JobId> id = scheduler.Submit(std::move(request));
  ASSERT_TRUE(id.ok()) << id.status();
  const SolveResponse response = scheduler.Wait(id.value());
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.backend, "bs");
  EXPECT_EQ(response.degraded_from, "qtkp");
  EXPECT_NE(response.degradation_reason.find("simulation budget"),
            std::string::npos);
  EXPECT_EQ(response.solution.size, 4);
  EXPECT_EQ(CounterValue("svc.fallbacks.taken"), 1);
}

TEST_F(SchedulerTest, CacheInsertFaultDropsInsertSafely) {
  obs::MetricsRegistry::Global().Reset();
  resilience::FaultInjector& injector = resilience::FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("cache_insert:1:1").ok());
  struct InjectorRestore {
    ~InjectorRestore() { resilience::FaultInjector::Global().Reset(); }
  } restore;

  JobScheduler scheduler(&registry_);  // cache enabled
  for (int round = 0; round < 2; ++round) {
    const Result<JobId> id = scheduler.Submit(Request("bs"));
    ASSERT_TRUE(id.ok()) << id.status();
    const SolveResponse response = scheduler.Wait(id.value());
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(response.solution.size, 4);
  }
  // Every insert was dropped, so the repeat run could not hit the cache —
  // a lost cache entry degrades throughput, never correctness.
  EXPECT_EQ(CounterValue("svc.cache.dropped_inserts"), 2);
  EXPECT_EQ(CounterValue("svc.cache.hits"), 0);
}

TEST_F(SchedulerTest, CancelWhileBlockedInWait) {
  // qplex_serve's signal watcher cancels the job the main thread is
  // currently Wait()ing on; the job must stay addressable during the wait.
  JobScheduler scheduler(&registry_);
  SolveRequest request = Request("grasp");
  request.graph = RandomGnm(48, 400, 13).value();
  request.options["iterations"] = "100000000";
  const Result<JobId> id = scheduler.Submit(std::move(request));
  ASSERT_TRUE(id.ok()) << id.status();
  std::thread canceller([&scheduler, &id] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    scheduler.Cancel(id.value());
  });
  const SolveResponse response = scheduler.Wait(id.value());
  canceller.join();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(response.solution.size, 1);  // incumbent attached
}

TEST_F(SchedulerTest, SecondWaitOnConsumedJobFails) {
  JobScheduler scheduler(&registry_);
  const Result<JobId> id = scheduler.Submit(Request("bs"));
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(scheduler.Wait(id.value()).status.ok());
  EXPECT_EQ(scheduler.Wait(id.value()).status.code(),
            StatusCode::kInvalidArgument);
}

// --- TryWait: the non-blocking completion probe ------------------------------

/// Holds its execution open until Release(): lets a test pin a job in the
/// running state and probe TryWait against every lifecycle edge. Polls the
/// cancel token (heartbeating) so cancellation still releases it.
class GateSolver : public Solver {
 public:
  std::string_view name() const override { return "gate"; }
  Result<SolveOutcome> Solve(const SolveRequest&,
                             const SolveContext& context) const override {
    started_.store(true);
    bool cancelled = false;
    while (!released_.load()) {
      if (context.cancel != nullptr && context.cancel->Poll()) {
        cancelled = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    SolveOutcome outcome;
    outcome.solution.size = 1;
    outcome.solution.members = {0};
    outcome.completed = !cancelled;
    return outcome;
  }
  void Release() { released_.store(true); }
  bool started() const { return started_.load(); }

 private:
  mutable std::atomic<bool> started_{false};
  std::atomic<bool> released_{false};
};

/// Spins until TryWait consumes the job, with a generous CI bound.
bool PollTryWait(JobScheduler& scheduler, JobId id, SolveResponse* response) {
  for (int i = 0; i < 20000; ++i) {
    if (scheduler.TryWait(id, response)) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST_F(SchedulerTest, TryWaitIsNonBlockingWhileRunningAndConsumesWhenDone) {
  SolverRegistry registry;
  auto* gate = new GateSolver();
  ASSERT_TRUE(registry.Register(std::unique_ptr<Solver>(gate)).ok());
  JobScheduler scheduler(&registry);

  const Result<JobId> id = scheduler.Submit(Request("gate"));
  ASSERT_TRUE(id.ok()) << id.status();
  while (!gate->started()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Running: the probe returns false and must not consume or block.
  SolveResponse response;
  EXPECT_FALSE(scheduler.TryWait(id.value(), &response));
  EXPECT_FALSE(scheduler.TryWait(id.value(), &response));

  gate->Release();
  ASSERT_TRUE(PollTryWait(scheduler, id.value(), &response));
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.solution.size, 1);

  // TryWait consumed the response exactly like Wait: a second probe (and a
  // blocking Wait) both report the id as already consumed.
  EXPECT_TRUE(scheduler.TryWait(id.value(), &response));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(scheduler.Wait(id.value()).status.code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SchedulerTest, TryWaitUnknownIdReportsInvalidArgumentImmediately) {
  JobScheduler scheduler(&registry_);
  SolveResponse response;
  EXPECT_TRUE(scheduler.TryWait(424242, &response));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SchedulerTest, TryWaitObservesCancellationWithIncumbentAttached) {
  SolverRegistry registry;
  auto* gate = new GateSolver();
  ASSERT_TRUE(registry.Register(std::unique_ptr<Solver>(gate)).ok());
  JobScheduler scheduler(&registry);

  const Result<JobId> id = scheduler.Submit(Request("gate"));
  ASSERT_TRUE(id.ok()) << id.status();
  while (!gate->started()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SolveResponse response;
  ASSERT_FALSE(scheduler.TryWait(id.value(), &response));
  scheduler.Cancel(id.value());  // never Release(): only the cancel frees it
  ASSERT_TRUE(PollTryWait(scheduler, id.value(), &response));
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(response.solution.size, 1);  // incumbent attached
}

TEST_F(SchedulerTest, TryWaitObservesDeadlineExpiry) {
  // Same instance as the blocking-deadline test: seconds of enumeration
  // against a 1 ms budget, but observed through the non-blocking probe the
  // socket serve loop uses.
  JobScheduler scheduler(&registry_);
  SolveRequest request;
  request.graph = RandomGnm(26, 120, 7).value();
  request.k = 2;
  request.backend = "enum";
  request.deadline_seconds = 0.001;
  Stopwatch watch;
  const Result<JobId> id = scheduler.Submit(std::move(request));
  ASSERT_TRUE(id.ok()) << id.status();
  SolveResponse response;
  ASSERT_TRUE(PollTryWait(scheduler, id.value(), &response));
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(watch.ElapsedSeconds(), 2.0);
}

TEST_F(SchedulerTest, TryWaitConsumesMergedPortfolioWinner) {
  JobScheduler scheduler(&registry_);
  SolveRequest request = Request("bs");
  const Result<JobId> id =
      scheduler.SubmitPortfolio(std::move(request), {"bs", "grasp"});
  ASSERT_TRUE(id.ok()) << id.status();
  SolveResponse response;
  ASSERT_TRUE(PollTryWait(scheduler, id.value(), &response));
  ASSERT_TRUE(response.status.ok()) << response.status;
  // The merge ran exactly as it would for Wait(): the provably optimal
  // racer wins and the probe hands over the merged response once.
  EXPECT_EQ(response.solution.size, 4);
  EXPECT_EQ(response.backend, "bs");
  EXPECT_TRUE(scheduler.TryWait(id.value(), &response));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

// --- Request-scoped tracing through the scheduler ----------------------------

std::filesystem::path SvcEventsPath(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "qplex_svc_test";
  std::filesystem::create_directories(dir);
  return dir / name;
}

/// Records whether a request scope was active while the backend solved, and
/// what its path looked like.
class ScopeProbeSolver : public Solver {
 public:
  std::string_view name() const override { return "probe"; }
  Result<SolveOutcome> Solve(const SolveRequest&,
                             const SolveContext&) const override {
    const obs::SpanContext* scope = obs::RequestScope::Current();
    if (scope != nullptr) {
      observed_paths_.push_back(scope->path);
    }
    obs::ProgressHeartbeat heartbeat("probe");
    if (heartbeat.Due()) {
      heartbeat.Emit({{"step", 1}});
    }
    SolveOutcome outcome;
    outcome.solution.size = 1;
    outcome.solution.members = {0};
    return outcome;
  }

  mutable std::vector<std::string> observed_paths_;
};

TEST_F(SchedulerTest, SolverRunsInsideTheJobsRequestScope) {
  const std::filesystem::path path = SvcEventsPath("scope_probe.jsonl");
  Result<std::unique_ptr<obs::EventSink>> sink =
      obs::EventSink::Open(path.string());
  ASSERT_TRUE(sink.ok()) << sink.status();
  obs::EventSink::InstallGlobal(sink.value().get());

  SolverRegistry registry;
  auto solver = std::make_unique<ScopeProbeSolver>();
  ScopeProbeSolver* probe = solver.get();
  ASSERT_TRUE(registry.Register(std::move(solver)).ok());
  {
    JobSchedulerOptions options = FastRetryOptions();
    options.num_workers = 1;
    JobScheduler scheduler(&registry, options);
    const Result<JobId> id = scheduler.Submit(Request("probe"));
    ASSERT_TRUE(id.ok()) << id.status();
    ASSERT_TRUE(scheduler.Wait(id.value()).status.ok());
  }
  obs::EventSink::InstallGlobal(nullptr);

  ASSERT_EQ(probe->observed_paths_.size(), 1u);
  // The backend executes under job/racer@.../attempt@1/svc.job/solve.
  EXPECT_NE(probe->observed_paths_[0].find("attempt@1"), std::string::npos)
      << probe->observed_paths_[0];
  EXPECT_NE(probe->observed_paths_[0].find("/solve"), std::string::npos)
      << probe->observed_paths_[0];
}

TEST_F(SchedulerTest, RacingJobsKeepIndependentHeartbeatCadences) {
  // Regression: the heartbeat throttle used to key on (solver, event) only,
  // so with a long interval the first racing job's heartbeat silenced every
  // other job's. The key now carries the active trace id.
  const std::filesystem::path path = SvcEventsPath("racing_heartbeats.jsonl");
  Result<std::unique_ptr<obs::EventSink>> sink =
      obs::EventSink::Open(path.string(), 3'600'000);  // one heartbeat/key/hour
  ASSERT_TRUE(sink.ok()) << sink.status();
  obs::EventSink::InstallGlobal(sink.value().get());

  SolverRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_unique<ScopeProbeSolver>()).ok());
  {
    JobSchedulerOptions options = FastRetryOptions();
    options.num_workers = 2;
    options.enable_cache = false;  // both jobs must actually execute
    JobScheduler scheduler(&registry, options);
    SolveRequest first = Request("probe");
    first.label = "race-a";
    SolveRequest second = Request("probe");
    second.label = "race-b";
    const Result<JobId> id_a = scheduler.Submit(std::move(first));
    const Result<JobId> id_b = scheduler.Submit(std::move(second));
    ASSERT_TRUE(id_a.ok());
    ASSERT_TRUE(id_b.ok());
    ASSERT_TRUE(scheduler.Wait(id_a.value()).status.ok());
    ASSERT_TRUE(scheduler.Wait(id_b.value()).status.ok());
  }
  obs::EventSink::InstallGlobal(nullptr);

  // Both jobs landed their first heartbeat despite the hour-long interval.
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> heartbeat_traces;
  while (std::getline(in, line)) {
    const Result<obs::JsonValue> parsed = obs::JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const obs::JsonValue* event = parsed.value().Find("event");
    if (event != nullptr && event->AsString() == "progress") {
      heartbeat_traces.push_back(parsed.value().Find("trace")->AsString());
    }
  }
  ASSERT_EQ(heartbeat_traces.size(), 2u);
  EXPECT_NE(heartbeat_traces[0], heartbeat_traces[1]);
}

/// One seeded chaos batch: flaky retries, an oom->bs fallback hop, and plain
/// jobs, all on one worker so execution order is the submission order.
/// Returns the rendered trace forest; asserts basic connectivity.
std::string RunChaosBatch(const std::string& events_name) {
  const std::filesystem::path path = SvcEventsPath(events_name);
  Result<std::unique_ptr<obs::EventSink>> sink =
      obs::EventSink::Open(path.string());
  QPLEX_CHECK(sink.ok()) << sink.status().ToString();
  obs::EventSink::InstallGlobal(sink.value().get());

  SolverRegistry registry = MakeBuiltinRegistry();
  QPLEX_CHECK(registry.Register(std::make_unique<FlakySolver>(2)).ok());
  QPLEX_CHECK(registry.Register(std::make_unique<OomSolver>()).ok());
  QPLEX_CHECK(registry.SetFallback("oom", "bs").ok());
  {
    JobSchedulerOptions options = FastRetryOptions();
    options.num_workers = 1;
    JobScheduler scheduler(&registry, options);
    std::vector<JobId> ids;
    int index = 0;
    for (const std::string backend : {"flaky", "oom", "bs", "bs"}) {
      SolveRequest request;
      request.graph = ParseEdgeList(
                          "8\n0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n3 4\n4 5\n4 6\n"
                          "5 6\n5 7\n6 7\n")
                          .value();
      request.k = 2;
      request.backend = backend;
      request.seed = 1;
      request.label = "chaos-" + std::to_string(index++);
      const Result<JobId> id = scheduler.Submit(std::move(request));
      QPLEX_CHECK(id.ok()) << id.status().ToString();
      ids.push_back(id.value());
    }
    for (const JobId id : ids) {
      const SolveResponse response = scheduler.Wait(id);
      QPLEX_CHECK(response.status.ok()) << response.status.ToString();
    }
  }
  obs::EventSink::InstallGlobal(nullptr);
  sink.value().reset();

  const Result<obs::EventLog> log = obs::LoadEventLog(path.string());
  QPLEX_CHECK(log.ok()) << log.status().ToString();
  const std::vector<obs::TraceSummary> forest =
      obs::BuildTraceForest(log.value());

  // Every job is one connected tree: no orphans, and every job_end trace id
  // has a forest entry whose single root is the "job" span.
  EXPECT_EQ(obs::CountOrphans(forest), 0u) << obs::FormatTraceForest(forest);
  EXPECT_EQ(log.value().jobs.size(), 4u);
  for (const obs::JobRecord& job : log.value().jobs) {
    const auto match =
        std::find_if(forest.begin(), forest.end(),
                     [&job](const obs::TraceSummary& summary) {
                       return summary.trace == job.trace;
                     });
    if (match == forest.end()) {
      ADD_FAILURE() << "no trace tree for job " << job.label;
      continue;
    }
    if (match->roots.size() != 1u) {
      ADD_FAILURE() << job.label << ": " << match->roots.size() << " roots";
      continue;
    }
    EXPECT_EQ(match->roots[0].record.name, "job");
    EXPECT_FALSE(match->roots[0].children.empty()) << job.label;
  }

  // The retry path shows up as attempt spans + backoff spans, the fallback
  // path as a fallback@bs hop.
  const std::string folded = obs::FormatFoldedStacks(forest);
  EXPECT_NE(folded.find("attempt@3"), std::string::npos) << folded;
  EXPECT_NE(folded.find("backoff@2"), std::string::npos) << folded;
  EXPECT_NE(folded.find("fallback@bs"), std::string::npos) << folded;
  return obs::FormatTraceForest(forest);
}

TEST_F(SchedulerTest, SeededChaosRunYieldsConnectedByteIdenticalTraces) {
  obs::MetricsRegistry::Global().Reset();
  const std::string first = RunChaosBatch("chaos_a.jsonl");
  const std::string second = RunChaosBatch("chaos_b.jsonl");
  // Structural span ids + deterministic single-worker scheduling: the whole
  // reconstructed forest renders byte-identically across same-seed runs.
  EXPECT_EQ(first, second) << first;
}

}  // namespace
}  // namespace qplex::svc
