#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "graph/decomposition.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/instances.h"
#include "graph/io.h"
#include "graph/kplex.h"

namespace qplex {
namespace {

TEST(VertexBitsetTest, SetResetCount) {
  VertexBitset set(70);
  EXPECT_EQ(set.Count(), 0);
  EXPECT_TRUE(set.None());
  set.Set(0);
  set.Set(63);
  set.Set(69);
  EXPECT_EQ(set.Count(), 3);
  EXPECT_TRUE(set.Test(63));
  EXPECT_FALSE(set.Test(62));
  set.Reset(63);
  EXPECT_EQ(set.Count(), 2);
  EXPECT_EQ(set.ToList(), (VertexList{0, 69}));
}

TEST(VertexBitsetTest, IntersectCount) {
  VertexBitset a(100);
  VertexBitset b(100);
  for (int v = 0; v < 100; v += 2) {
    a.Set(v);
  }
  for (int v = 0; v < 100; v += 3) {
    b.Set(v);
  }
  EXPECT_EQ(a.IntersectCount(b), 17);  // multiples of 6 in [0, 100)
}

TEST(VertexBitsetTest, FromListRoundTrip) {
  const VertexList members{1, 5, 64, 65};
  VertexBitset set = VertexBitset::FromList(80, members);
  EXPECT_EQ(set.ToList(), members);
}

TEST(GraphTest, AddEdgeBasics) {
  Graph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);  // duplicate ignored
  graph.AddEdge(2, 2);  // self-loop ignored
  graph.AddEdge(1, 3);
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_TRUE(graph.HasEdge(1, 0));
  EXPECT_FALSE(graph.HasEdge(0, 3));
  EXPECT_EQ(graph.Degree(1), 2);
  EXPECT_EQ(graph.Neighbors(1), (VertexList{0, 3}));
}

TEST(GraphTest, EdgesSorted) {
  Graph graph(5);
  graph.AddEdge(3, 1);
  graph.AddEdge(0, 4);
  graph.AddEdge(0, 2);
  const auto edges = graph.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(0, 2));
  EXPECT_EQ(edges[1], std::make_pair(0, 4));
  EXPECT_EQ(edges[2], std::make_pair(1, 3));
}

TEST(GraphTest, ComplementInvolution) {
  auto graph = RandomGnm(12, 30, 7).value();
  Graph complement = graph.Complement();
  EXPECT_EQ(complement.num_edges(), 12 * 11 / 2 - 30);
  Graph back = complement.Complement();
  EXPECT_EQ(back.num_edges(), graph.num_edges());
  for (const auto& [u, v] : graph.Edges()) {
    EXPECT_TRUE(back.HasEdge(u, v));
    EXPECT_FALSE(complement.HasEdge(u, v));
  }
}

TEST(GraphTest, InducedSubgraph) {
  Graph graph = CompleteGraph(5);
  VertexBitset keep(5);
  keep.Set(0);
  keep.Set(2);
  keep.Set(4);
  std::vector<Vertex> mapping;
  Graph sub = graph.InducedSubgraph(keep, &mapping);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 3);
  EXPECT_EQ(mapping[0], 0);
  EXPECT_EQ(mapping[1], -1);
  EXPECT_EQ(mapping[2], 1);
  EXPECT_EQ(mapping[4], 2);
}

TEST(GraphTest, MakeGraphValidation) {
  EXPECT_FALSE(MakeGraph(3, {{0, 3}}).ok());
  EXPECT_FALSE(MakeGraph(3, {{1, 1}}).ok());
  EXPECT_TRUE(MakeGraph(3, {{0, 1}, {1, 2}}).ok());
}

TEST(GraphTest, DegreeIn) {
  Graph graph = PaperExampleGraph();
  VertexBitset subset = VertexBitset::FromList(6, {0, 1, 3, 4});
  EXPECT_EQ(graph.DegreeIn(0, subset), 3);
  EXPECT_EQ(graph.DegreeIn(1, subset), 2);
}

// -- k-plex predicates --------------------------------------------------------

TEST(KPlexTest, PaperExampleStructure) {
  Graph graph = PaperExampleGraph();
  EXPECT_EQ(graph.num_vertices(), 6);
  EXPECT_EQ(graph.num_edges(), 7);
  EXPECT_EQ(PaperExampleComplement().num_edges(), 8);

  // The highlighted 2-plex {v1, v2, v4, v5} (0-based {0,1,3,4}).
  const VertexBitset plex = VertexBitset::FromList(6, {0, 1, 3, 4});
  EXPECT_TRUE(IsKPlex(graph, plex, 2));
  EXPECT_TRUE(IsKCplex(PaperExampleComplement(), plex, 2));

  // No 2-plex of size 5 exists.
  for (std::uint64_t mask = 0; mask < 64; ++mask) {
    if (__builtin_popcountll(mask) >= 5) {
      EXPECT_FALSE(IsKPlexMask(AdjacencyMasks(graph), mask, 2))
          << "mask " << mask;
    }
  }
}

TEST(KPlexTest, EmptyAndSingletonAreKPlexes) {
  Graph graph = PaperExampleGraph();
  EXPECT_TRUE(IsKPlex(graph, VertexBitset(6), 1));
  EXPECT_TRUE(IsKPlex(graph, VertexBitset::FromList(6, {3}), 1));
}

TEST(KPlexTest, CliqueIsOnePlex) {
  Graph graph = CompleteGraph(5);
  VertexBitset all = VertexBitset::FromList(5, {0, 1, 2, 3, 4});
  EXPECT_TRUE(IsKPlex(graph, all, 1));
}

TEST(KPlexTest, MaskAndBitsetFormsAgree) {
  auto graph = RandomGnm(8, 14, 3).value();
  const auto adjacency = AdjacencyMasks(graph);
  for (std::uint64_t mask = 0; mask < 256; ++mask) {
    const VertexBitset members = MaskToBitset(8, mask);
    for (int k = 1; k <= 3; ++k) {
      EXPECT_EQ(IsKPlexMask(adjacency, mask, k), IsKPlex(graph, members, k))
          << "mask=" << mask << " k=" << k;
      EXPECT_EQ(IsKCplexMask(adjacency, mask, k), IsKCplex(graph, members, k))
          << "mask=" << mask << " k=" << k;
    }
  }
}

TEST(KPlexTest, PlexEqualsCplexOnComplement) {
  auto graph = RandomGnm(9, 16, 5).value();
  Graph complement = graph.Complement();
  const auto adjacency = AdjacencyMasks(graph);
  const auto co_adjacency = AdjacencyMasks(complement);
  for (std::uint64_t mask = 0; mask < 512; ++mask) {
    EXPECT_EQ(IsKPlexMask(adjacency, mask, 2),
              IsKCplexMask(co_adjacency, mask, 2))
        << "mask=" << mask;
  }
}

TEST(KPlexTest, MaskBitsetConversions) {
  const std::uint64_t mask = 0b100101;
  VertexBitset set = MaskToBitset(6, mask);
  EXPECT_EQ(set.ToList(), (VertexList{0, 2, 5}));
  EXPECT_EQ(BitsetToMask(set), mask);
}

// -- decompositions -----------------------------------------------------------

TEST(DecompositionTest, CoreNumbersOfCompleteGraph) {
  Graph graph = CompleteGraph(6);
  for (int c : CoreNumbers(graph)) {
    EXPECT_EQ(c, 5);
  }
  EXPECT_EQ(Degeneracy(graph), 5);
}

TEST(DecompositionTest, CoreNumbersOfStar) {
  Graph graph = StarGraph(7);
  const auto core = CoreNumbers(graph);
  for (int v = 0; v < 7; ++v) {
    EXPECT_EQ(core[v], 1);
  }
}

TEST(DecompositionTest, CoreNumbersOfKarate) {
  // Zachary's karate club has degeneracy 4.
  EXPECT_EQ(Degeneracy(KarateClub()), 4);
}

TEST(DecompositionTest, DegeneracyOrderingIsPermutation) {
  auto graph = RandomGnm(20, 50, 9).value();
  VertexList order = DegeneracyOrdering(graph);
  std::sort(order.begin(), order.end());
  for (int v = 0; v < 20; ++v) {
    EXPECT_EQ(order[v], v);
  }
}

TEST(DecompositionTest, TriangleCounts) {
  EXPECT_EQ(CountTriangles(CompleteGraph(5)), 10);
  EXPECT_EQ(CountTriangles(CycleGraph(5).value()), 0);
  EXPECT_EQ(CountTriangles(PetersenGraph()), 0);
  EXPECT_EQ(CountTriangles(KarateClub()), 45);
}

TEST(DecompositionTest, EdgeSupportsOfTriangle) {
  Graph graph = CompleteGraph(3);
  for (int s : EdgeSupports(graph)) {
    EXPECT_EQ(s, 1);
  }
}

TEST(DecompositionTest, GreedyColoringIsProper) {
  auto graph = RandomGnm(25, 80, 17).value();
  const auto color = GreedyColoring(graph);
  for (const auto& [u, v] : graph.Edges()) {
    EXPECT_NE(color[u], color[v]);
  }
  const int max_color = *std::max_element(color.begin(), color.end());
  EXPECT_LE(max_color, Degeneracy(graph));
}

// -- generators ---------------------------------------------------------------

TEST(GeneratorsTest, GnmExactCounts) {
  auto graph = RandomGnm(10, 23, 123).value();
  EXPECT_EQ(graph.num_vertices(), 10);
  EXPECT_EQ(graph.num_edges(), 23);
}

TEST(GeneratorsTest, GnmDeterministicPerSeed) {
  auto a = RandomGnm(15, 40, 5).value();
  auto b = RandomGnm(15, 40, 5).value();
  EXPECT_EQ(a.Edges(), b.Edges());
  auto c = RandomGnm(15, 40, 6).value();
  EXPECT_NE(a.Edges(), c.Edges());
}

TEST(GeneratorsTest, GnmRejectsOverfull) {
  EXPECT_FALSE(RandomGnm(4, 7, 1).ok());
  EXPECT_TRUE(RandomGnm(4, 6, 1).ok());
}

TEST(GeneratorsTest, GnmDenseUsesRejectionPath) {
  auto graph = RandomGnm(40, 20, 2).value();  // sparse => rejection path
  EXPECT_EQ(graph.num_edges(), 20);
}

TEST(GeneratorsTest, GnpExtremes) {
  EXPECT_EQ(RandomGnp(8, 0.0, 1).value().num_edges(), 0);
  EXPECT_EQ(RandomGnp(8, 1.0, 1).value().num_edges(), 28);
  EXPECT_FALSE(RandomGnp(8, 1.5, 1).ok());
}

TEST(GeneratorsTest, PlantedKPlexContainsPlex) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto graph = PlantedKPlex(12, 5, 2, 0.2, seed).value();
    // Some 2-plex of size >= 5 must exist (the planted one).
    const auto adjacency = AdjacencyMasks(graph);
    bool found = false;
    for (std::uint64_t mask = 0; mask < (1u << 12) && !found; ++mask) {
      if (__builtin_popcountll(mask) == 5 && IsKPlexMask(adjacency, mask, 2)) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "seed " << seed;
  }
}

TEST(GeneratorsTest, FixedTopologies) {
  EXPECT_EQ(CompleteGraph(6).num_edges(), 15);
  EXPECT_EQ(CycleGraph(6).value().num_edges(), 6);
  EXPECT_FALSE(CycleGraph(2).ok());
  EXPECT_EQ(PathGraph(6).num_edges(), 5);
  EXPECT_EQ(StarGraph(6).num_edges(), 5);
  EXPECT_EQ(PetersenGraph().num_edges(), 15);
  EXPECT_EQ(KarateClub().num_edges(), 78);
}

// -- IO -----------------------------------------------------------------------

TEST(IoTest, EdgeListRoundTrip) {
  auto graph = RandomGnm(9, 15, 4).value();
  auto parsed = ParseEdgeList(WriteEdgeList(graph)).value();
  EXPECT_EQ(parsed.num_vertices(), 9);
  EXPECT_EQ(parsed.Edges(), graph.Edges());
}

TEST(IoTest, EdgeListComments) {
  auto graph = ParseEdgeList("# header\n4\n# mid comment\n0 1\n2 3\n").value();
  EXPECT_EQ(graph.num_vertices(), 4);
  EXPECT_EQ(graph.num_edges(), 2);
}

TEST(IoTest, EdgeListErrors) {
  EXPECT_FALSE(ParseEdgeList("").ok());
  EXPECT_FALSE(ParseEdgeList("3\n0 9\n").ok());
  EXPECT_FALSE(ParseEdgeList("abc\n").ok());
}

TEST(IoTest, DimacsRoundTrip) {
  auto graph = RandomGnm(11, 20, 8).value();
  auto parsed = ParseDimacs(WriteDimacs(graph)).value();
  EXPECT_EQ(parsed.num_vertices(), 11);
  EXPECT_EQ(parsed.Edges(), graph.Edges());
}

TEST(IoTest, DimacsErrors) {
  EXPECT_FALSE(ParseDimacs("e 1 2\n").ok());               // edge before p
  EXPECT_FALSE(ParseDimacs("p edge 3 1\ne 0 1\n").ok());   // 0-based edge
  EXPECT_FALSE(ParseDimacs("p clique 3 1\n").ok());        // wrong kind
  EXPECT_TRUE(ParseDimacs("c hi\np edge 3 1\ne 1 2\n").ok());
}

TEST(IoTest, EdgeListRejectsSelfLoopsWithLineNumber) {
  const Result<Graph> parsed = ParseEdgeList("4\n0 1\n2 2\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("self-loop"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
}

TEST(IoTest, EdgeListDeduplicatesRepeatedEdges) {
  // The same edge in both orientations plus a literal repeat: one edge each,
  // degrees unaffected by the noise.
  const Graph graph = ParseEdgeList("4\n0 1\n1 0\n0 1\n2 3\n").value();
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_EQ(graph.Degree(0), 1);
  EXPECT_EQ(graph.Degree(1), 1);
}

TEST(IoTest, EdgeListReportsOutOfRangeLine) {
  const Result<Graph> parsed = ParseEdgeList("3\n0 1\n0 7\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
}

TEST(IoTest, DimacsRejectsSelfLoopsWithLineNumber) {
  const Result<Graph> parsed = ParseDimacs("p edge 3 2\ne 1 2\ne 3 3\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("self-loop"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
}

TEST(IoTest, DimacsDeduplicatesRepeatedEdges) {
  const Graph graph =
      ParseDimacs("p edge 3 4\ne 1 2\ne 2 1\ne 1 2\ne 1 3\n").value();
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_EQ(graph.Degree(0), 2);
}

TEST(IoTest, LoadMalformedEdgeListFileFails) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "qplex_malformed.el";
  {
    std::ofstream out(path);
    out << "5\n0 1\n3 3\n1 2\n";
  }
  const Result<Graph> loaded = LoadEdgeListFile(path.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("self-loop"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(IoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadEdgeListFile("/nonexistent/x.el").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadDimacsFile("/nonexistent/x.col").status().code(),
            StatusCode::kNotFound);
}

TEST(VertexBitsetTest, WordOpsAndTailMasking) {
  VertexBitset set(70);
  set.SetAll();
  EXPECT_EQ(set.Count(), 70);
  set.FlipAll();
  EXPECT_TRUE(set.None());  // the tail bits beyond 70 stay clear
  set.Set(3);
  set.Set(68);
  VertexBitset other(70);
  other.Set(3);
  other.Set(65);
  VertexBitset or_result = set;
  or_result.OrWith(other);
  EXPECT_EQ(or_result.ToList(), (VertexList{3, 65, 68}));
  VertexBitset and_result = set;
  and_result.AndWith(other);
  EXPECT_EQ(and_result.ToList(), (VertexList{3}));
  VertexBitset andnot_result = set;
  andnot_result.AndNotWith(other);
  EXPECT_EQ(andnot_result.ToList(), (VertexList{68}));
}

TEST(GraphTest, AddEdgesMatchesAddEdge) {
  const Graph reference = RandomGnm(50, 300, 42).value();
  std::vector<std::pair<Vertex, Vertex>> edges = reference.Edges();
  // Scramble, duplicate, and add self-loops: the bulk path must dedup and
  // skip exactly like repeated AddEdge calls.
  std::reverse(edges.begin(), edges.end());
  edges.push_back(edges.front());
  edges.emplace_back(7, 7);
  Graph bulk(50);
  bulk.AddEdges(edges);
  EXPECT_EQ(bulk.num_edges(), reference.num_edges());
  for (Vertex v = 0; v < 50; ++v) {
    EXPECT_EQ(bulk.Neighbors(v), reference.Neighbors(v));
    EXPECT_EQ(bulk.NeighborBits(v), reference.NeighborBits(v));
  }
}

TEST(GraphTest, ComplementWordParallelMatchesDefinition) {
  for (const int n : {5, 64, 67}) {
    const Graph graph = RandomGnp(n, 0.4, 100 + n).value();
    const Graph complement = graph.Complement();
    int expected_edges = 0;
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u + 1; v < n; ++v) {
        EXPECT_EQ(complement.HasEdge(u, v), !graph.HasEdge(u, v));
        expected_edges += graph.HasEdge(u, v) ? 0 : 1;
      }
      // Neighbour lists must stay sorted and consistent with the bitsets.
      EXPECT_EQ(complement.NeighborBits(u).ToList(), complement.Neighbors(u));
      EXPECT_EQ(complement.Degree(u), n - 1 - graph.Degree(u));
    }
    EXPECT_EQ(complement.num_edges(), expected_edges);
  }
}

}  // namespace
}  // namespace qplex
