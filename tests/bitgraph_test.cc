#include "graph/bitgraph.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/kplex.h"

namespace qplex {
namespace {

/// A random subset of [0, n) where each vertex joins with probability ~1/2
/// (or a smaller slice for dense-subset stress, via `keep_mod`).
VertexBitset RandomSubset(int n, Rng& rng, int keep_mod = 2) {
  VertexBitset subset(n);
  for (Vertex v = 0; v < n; ++v) {
    if (rng.UniformInt(static_cast<std::uint64_t>(keep_mod)) == 0) {
      subset.Set(v);
    }
  }
  return subset;
}

TEST(BitGraphTest, PrimitivesMatchGraph) {
  for (const int n : {8, 63, 64, 65, 200}) {
    const Graph graph = RandomGnp(n, 0.3, 7 + n).value();
    const BitGraph bits(graph);
    ASSERT_EQ(bits.num_vertices(), n);
    ASSERT_EQ(bits.words_per_row(), (n + 63) / 64);
    Rng rng(11 + n);
    for (Vertex u = 0; u < n; ++u) {
      EXPECT_EQ(bits.Degree(u), graph.Degree(u));
      const Vertex v =
          static_cast<Vertex>(rng.UniformInt(static_cast<std::uint64_t>(n)));
      EXPECT_EQ(bits.HasEdge(u, v), graph.HasEdge(u, v));
      EXPECT_EQ(bits.IntersectCount(u, v),
                graph.NeighborBits(u).IntersectCount(graph.NeighborBits(v)));
      const VertexBitset subset = RandomSubset(n, rng);
      EXPECT_EQ(bits.DegreeIn(u, subset), graph.DegreeIn(u, subset));
      VertexList listed;
      bits.ForEachNeighbor(u, [&listed](Vertex w) { listed.push_back(w); });
      EXPECT_EQ(listed, graph.Neighbors(u));
    }
  }
}

TEST(BitGraphTest, RemoveEdgeAndVertex) {
  const Graph graph = RandomGnp(70, 0.4, 3).value();
  BitGraph bits(graph);
  const auto edges = graph.Edges();
  ASSERT_FALSE(edges.empty());
  const auto [u, v] = edges.front();
  bits.RemoveEdge(u, v);
  EXPECT_FALSE(bits.HasEdge(u, v));
  EXPECT_FALSE(bits.HasEdge(v, u));
  EXPECT_EQ(bits.Degree(u), graph.Degree(u) - 1);
  bits.RemoveEdge(u, v);  // no-op on an absent edge
  EXPECT_EQ(bits.Degree(u), graph.Degree(u) - 1);

  const Vertex hub = 65;
  const int hub_degree = bits.Degree(hub);
  ASSERT_GT(hub_degree, 0);
  const VertexList hub_neighbors = graph.Neighbors(hub);
  bits.RemoveVertex(hub);
  EXPECT_EQ(bits.Degree(hub), 0);
  for (Vertex w : hub_neighbors) {
    EXPECT_FALSE(bits.HasEdge(w, hub));
  }
}

/// The issue's cross-check: IsKPlex (bitset), IsKPlexMask (uint64), and the
/// BitGraph feasibility kernel must agree on random subsets of random graphs
/// at sizes straddling the one-word boundary.
TEST(BitGraphTest, KPlexPredicatesAgreeAcrossRepresentations) {
  for (const int n : {8, 63, 64, 65, 200}) {
    const Graph graph = RandomGnp(n, 0.5, 21 + n).value();
    const BitGraph bits(graph);
    Rng rng(33 + n);
    for (int trial = 0; trial < 40; ++trial) {
      const VertexBitset subset = RandomSubset(n, rng, 2 + trial % 4);
      for (const int k : {1, 2, 3}) {
        const bool expected = IsKPlex(graph, subset, k);
        EXPECT_EQ(bits.IsKPlex(subset, k), expected)
            << "n=" << n << " k=" << k << " trial=" << trial;
        if (n <= 64) {
          const auto masks = AdjacencyMasks(graph);
          EXPECT_EQ(IsKPlexMask(masks, BitsetToMask(subset), k), expected)
              << "n=" << n << " k=" << k << " trial=" << trial;
        }
      }
    }
  }
}

/// The two engines must make identical extension decisions on n <= 64
/// graphs — this is the contract that lets solvers dispatch per search
/// graph without changing results.
TEST(BitGraphTest, EnginesAgreeOnExtensionDecisions) {
  for (const int n : {8, 63, 64}) {
    const Graph graph = RandomGnp(n, 0.4, 55 + n).value();
    const MaskEngine narrow(graph);
    const WideEngine wide(graph);
    Rng rng(77 + n);
    for (int trial = 0; trial < 60; ++trial) {
      const VertexBitset subset = RandomSubset(n, rng, 3);
      const std::uint64_t mask = BitsetToMask(subset);
      const int size = subset.Count();
      for (const int k : {1, 2, 3}) {
        for (Vertex v = 0; v < n; ++v) {
          if (subset.Test(v)) {
            continue;
          }
          EXPECT_EQ(CanExtendPlex(narrow, mask, size, v, k),
                    CanExtendPlex(wide, subset, size, v, k))
              << "n=" << n << " k=" << k << " v=" << v;
        }
      }
    }
  }
}

TEST(BitGraphTest, CanExtendPlexMatchesDefinition) {
  const Graph graph = RandomGnp(90, 0.45, 9).value();
  const WideEngine engine(graph);
  Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    // Start from a set that is itself a k-plex so the extension contract
    // ("stays a k-plex after adding v") is well-defined.
    const int k = 2;
    VertexBitset plex(90);
    plex.Set(static_cast<Vertex>(rng.UniformInt(90)));
    for (Vertex v = 0; v < 90; ++v) {
      if (!plex.Test(v) && CanExtendPlex(engine, plex, plex.Count(), v, k) &&
          rng.UniformInt(2) == 0) {
        plex.Set(v);
      }
    }
    ASSERT_TRUE(IsKPlex(graph, plex, k));
    const int size = plex.Count();
    for (Vertex v = 0; v < 90; ++v) {
      if (plex.Test(v)) {
        continue;
      }
      VertexBitset with_v = plex;
      with_v.Set(v);
      EXPECT_EQ(CanExtendPlex(engine, plex, size, v, k),
                IsKPlex(graph, with_v, k))
          << "trial=" << trial << " v=" << v;
    }
  }
}

TEST(BitGraphTest, IterateBitsAscending) {
  VertexBitset set(130);
  const VertexList members{0, 1, 63, 64, 127, 129};
  for (Vertex v : members) {
    set.Set(v);
  }
  VertexList seen;
  IterateBits(set.words(), set.num_words(),
              [&seen](Vertex v) { seen.push_back(v); });
  EXPECT_EQ(seen, members);

  VertexList partial;
  const bool finished = set.ForEachBitWhile([&partial](Vertex v) {
    partial.push_back(v);
    return v < 64;
  });
  EXPECT_FALSE(finished);
  EXPECT_EQ(partial, (VertexList{0, 1, 63, 64}));
}

}  // namespace
}  // namespace qplex
