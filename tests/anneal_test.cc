#include <gtest/gtest.h>

#include <algorithm>

#include "anneal/hybrid_solver.h"
#include "anneal/parallel_tempering.h"
#include "anneal/path_integral_annealer.h"
#include "anneal/simulated_annealer.h"
#include "classical/exact.h"
#include "graph/generators.h"
#include "graph/instances.h"
#include "qubo/mkp_qubo.h"

namespace qplex {
namespace {

/// A tiny QUBO with a known unique minimum: E = (x0 + x1 - 1)^2 - x2,
/// minimized at exactly one of {x0, x1} set and x2 = 1, energy -1.
QuboModel ToyModel() {
  QuboModel model(3);
  model.AddOffset(1.0);
  model.AddLinear(0, -1.0);
  model.AddLinear(1, -1.0);
  model.AddQuadratic(0, 1, 2.0);
  model.AddLinear(2, -1.0);
  return model;
}

TEST(SimulatedAnnealerTest, SolvesToyModel) {
  SimulatedAnnealerOptions options;
  options.shots = 20;
  options.sweeps_per_shot = 4;
  options.seed = 3;
  SimulatedAnnealer annealer(options);
  const AnnealResult result = annealer.Run(ToyModel()).value();
  EXPECT_NEAR(result.best_energy, -1.0, 1e-12);
  EXPECT_EQ(result.shots, 20);
  EXPECT_EQ(result.sweeps, 80);
  EXPECT_EQ(result.trace.size(), 20u);
}

TEST(SimulatedAnnealerTest, OptionValidation) {
  SimulatedAnnealerOptions options;
  options.shots = 0;
  EXPECT_FALSE(SimulatedAnnealer(options).Run(ToyModel()).ok());
  options.shots = 1;
  options.beta_initial = -1;
  EXPECT_FALSE(SimulatedAnnealer(options).Run(ToyModel()).ok());
}

TEST(SimulatedAnnealerTest, DeterministicPerSeed) {
  SimulatedAnnealerOptions options;
  options.shots = 5;
  options.seed = 42;
  const AnnealResult a = SimulatedAnnealer(options).Run(ToyModel()).value();
  const AnnealResult b = SimulatedAnnealer(options).Run(ToyModel()).value();
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_sample, b.best_sample);
}

TEST(SimulatedAnnealerTest, TraceIsMonotoneNonIncreasing) {
  SimulatedAnnealerOptions options;
  options.shots = 50;
  options.seed = 11;
  const MkpQubo qubo = BuildMkpQubo(RandomGnm(10, 25, 2).value(), 2).value();
  const AnnealResult result = SimulatedAnnealer(options).Run(qubo.model).value();
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LE(result.trace[i].energy, result.trace[i - 1].energy);
    EXPECT_GT(result.trace[i].budget_micros,
              result.trace[i - 1].budget_micros);
  }
}

TEST(SimulatedAnnealerTest, MoreShotsReachOptimumOnMkpQubo) {
  const Graph graph = PaperExampleGraph();
  const MkpQubo qubo = BuildMkpQubo(graph, 2).value();
  SimulatedAnnealerOptions options;
  options.shots = 200;
  options.sweeps_per_shot = 4;
  options.seed = 5;
  const AnnealResult result =
      SimulatedAnnealer(options).Run(qubo.model).value();
  // Optimal cost = -4 (max 2-plex size). Slack misconfiguration can leave a
  // positive penalty, but 200 shots on 6 vertices find the true optimum.
  EXPECT_NEAR(result.best_energy, -4.0, 1e-9);
  EXPECT_TRUE(qubo.IsFeasible(result.best_sample));
}

// -- path-integral (simulated quantum) annealer --------------------------------

TEST(PathIntegralTest, SolvesToyModel) {
  PathIntegralAnnealerOptions options;
  options.shots = 10;
  options.seed = 2;
  PathIntegralAnnealer annealer(options);
  const AnnealResult result = annealer.Run(ToyModel()).value();
  EXPECT_NEAR(result.best_energy, -1.0, 1e-12);
}

TEST(PathIntegralTest, OptionValidation) {
  PathIntegralAnnealerOptions options;
  options.replicas = 1;
  EXPECT_FALSE(PathIntegralAnnealer(options).Run(ToyModel()).ok());
  options.replicas = 8;
  options.annealing_time_micros = 0;
  EXPECT_FALSE(PathIntegralAnnealer(options).Run(ToyModel()).ok());
  options.annealing_time_micros = 1;
  options.gamma_final = 10.0;  // > gamma_initial
  EXPECT_FALSE(PathIntegralAnnealer(options).Run(ToyModel()).ok());
}

TEST(PathIntegralTest, AnnealingTimeMapsToSweeps) {
  PathIntegralAnnealerOptions options;
  options.shots = 2;
  options.annealing_time_micros = 10;
  options.sweeps_per_micro = 8;
  options.saturation_micros = 1e18;  // disable device saturation
  const AnnealResult result =
      PathIntegralAnnealer(options).Run(ToyModel()).value();
  EXPECT_EQ(result.sweeps, 2 * 80);
  EXPECT_NEAR(result.modeled_micros, 20.0, 1e-12);
}

TEST(PathIntegralTest, SaturationCapsSweepsButNotBudget) {
  // Past the device saturation point, longer anneals burn modeled time
  // without adding Monte Carlo sweeps (the paper's Table VI behaviour).
  PathIntegralAnnealerOptions options;
  options.shots = 3;
  options.annealing_time_micros = 100;
  options.sweeps_per_micro = 8;
  options.saturation_micros = 2.0;
  const AnnealResult result =
      PathIntegralAnnealer(options).Run(ToyModel()).value();
  EXPECT_EQ(result.sweeps, 3 * 16);
  EXPECT_NEAR(result.modeled_micros, 300.0, 1e-12);
}

TEST(PathIntegralTest, FindsMkpOptimumOnPaperExample) {
  const MkpQubo qubo = BuildMkpQubo(PaperExampleGraph(), 2).value();
  PathIntegralAnnealerOptions options;
  options.shots = 200;
  options.annealing_time_micros = 4.0;  // 32 sweeps per shot
  options.saturation_micros = 4.0;
  options.seed = 7;
  const AnnealResult result =
      PathIntegralAnnealer(options).Run(qubo.model).value();
  EXPECT_NEAR(result.best_energy, -4.0, 1e-9);
  EXPECT_TRUE(qubo.IsFeasible(result.best_sample));
}

TEST(PathIntegralTest, DeterministicPerSeed) {
  PathIntegralAnnealerOptions options;
  options.shots = 5;
  options.seed = 19;
  const AnnealResult a = PathIntegralAnnealer(options).Run(ToyModel()).value();
  const AnnealResult b = PathIntegralAnnealer(options).Run(ToyModel()).value();
  EXPECT_EQ(a.best_energy, b.best_energy);
}

// -- hybrid solver --------------------------------------------------------------

TEST(HybridSolverTest, RespectsRuntimeFloor) {
  HybridSolverOptions options;
  options.min_runtime_micros = 1000;
  options.max_restarts = 4;
  const AnnealResult result = HybridSolver(options).Run(ToyModel()).value();
  EXPECT_GE(result.modeled_micros, 1000.0);
  EXPECT_NEAR(result.best_energy, -1.0, 1e-12);
}

TEST(HybridSolverTest, ReachesOptimumOnMkpQubo) {
  const Graph graph = RandomGnm(12, 35, 9).value();
  const MkpQubo qubo = BuildMkpQubo(graph, 3).value();
  const MkpSolution expected = SolveMkpByEnumeration(graph, 3).value();
  HybridSolverOptions options;
  options.seed = 3;
  options.refine = [&qubo](QuboSample* sample) { qubo.ImproveSample(sample); };
  const AnnealResult result = HybridSolver(options).Run(qubo.model).value();
  EXPECT_NEAR(result.best_energy, MkpQubo::CostOfPlexSize(expected.size),
              1e-9);
  EXPECT_TRUE(qubo.IsFeasible(result.best_sample));
}

TEST(HybridSolverTest, OptionValidation) {
  HybridSolverOptions options;
  options.min_runtime_micros = 0;
  EXPECT_FALSE(HybridSolver(options).Run(ToyModel()).ok());
}

// -- parallel tempering -----------------------------------------------------------

TEST(ParallelTemperingTest, SolvesToyModel) {
  ParallelTemperingOptions options;
  options.rounds = 16;
  options.seed = 4;
  const AnnealResult result =
      ParallelTempering(options).Run(ToyModel()).value();
  EXPECT_NEAR(result.best_energy, -1.0, 1e-12);
  EXPECT_EQ(result.shots, 16);
  EXPECT_EQ(result.sweeps, 16 * 8 * 4);  // rounds * replicas * sweeps
}

TEST(ParallelTemperingTest, BeatsOrMatchesSaOnRuggedQubo) {
  const Graph graph = RandomGnm(14, 45, 12).value();
  const MkpQubo qubo = BuildMkpQubo(graph, 3).value();
  ParallelTemperingOptions pt;
  pt.rounds = 64;
  pt.seed = 2;
  const AnnealResult tempered = ParallelTempering(pt).Run(qubo.model).value();

  SimulatedAnnealerOptions sa;
  // Match the sweep budget.
  sa.shots = 64;
  sa.sweeps_per_shot = 8 * 4;
  sa.seed = 2;
  const AnnealResult annealed = SimulatedAnnealer(sa).Run(qubo.model).value();
  EXPECT_LE(tempered.best_energy, annealed.best_energy + 1e-9);
}

TEST(ParallelTemperingTest, Validation) {
  ParallelTemperingOptions options;
  options.num_replicas = 1;
  EXPECT_FALSE(ParallelTempering(options).Run(ToyModel()).ok());
  options.num_replicas = 4;
  options.beta_min = -1;
  EXPECT_FALSE(ParallelTempering(options).Run(ToyModel()).ok());
  options.beta_min = 0.1;
  options.rounds = 0;
  EXPECT_FALSE(ParallelTempering(options).Run(ToyModel()).ok());
}

TEST(ParallelTemperingTest, EnergyBookkeepingConsistent) {
  // The incremental energies must match a fresh evaluation at the end.
  ParallelTemperingOptions options;
  options.rounds = 8;
  options.seed = 77;
  const MkpQubo qubo = BuildMkpQubo(RandomGnm(9, 18, 5).value(), 2).value();
  const AnnealResult result =
      ParallelTempering(options).Run(qubo.model).value();
  EXPECT_NEAR(result.best_energy, qubo.model.Evaluate(result.best_sample),
              1e-9);
}

TEST(SteepestDescentTest, ReachesLocalMinimum) {
  const QuboModel model = ToyModel();
  QuboSample sample{1, 1, 0};  // energy (1+1-1)^2 - 0 = 1
  const int flips = SteepestDescent(model, &sample);
  EXPECT_GT(flips, 0);
  // No single flip may improve further.
  for (int i = 0; i < model.num_variables(); ++i) {
    EXPECT_GE(model.FlipDelta(sample, i), -1e-12);
  }
  EXPECT_LE(model.Evaluate(sample), 0.0);
}

TEST(SimulatedAnnealerTest, CancellationStopsShotsEarly) {
  SimulatedAnnealerOptions options;
  options.shots = 1'000'000;
  options.sweeps_per_shot = 100;
  CancelToken cancel;
  cancel.Cancel();  // pre-cancelled: polled in the shot loop
  options.cancel = &cancel;
  const AnnealResult result =
      SimulatedAnnealer(options).Run(ToyModel()).value();
  EXPECT_FALSE(result.completed);
  EXPECT_LT(result.shots, options.shots);
}

TEST(SimulatedAnnealerTest, TimeLimitStopsShotsEarly) {
  SimulatedAnnealerOptions options;
  options.shots = 1'000'000;
  options.sweeps_per_shot = 100;
  options.time_limit_seconds = 1e-3;
  const AnnealResult result =
      SimulatedAnnealer(options).Run(ToyModel()).value();
  EXPECT_FALSE(result.completed);
  EXPECT_LT(result.shots, options.shots);
}

TEST(ParallelTemperingTest, CancellationStopsRoundsEarly) {
  ParallelTemperingOptions options;
  options.rounds = 1'000'000;
  CancelToken cancel;
  cancel.Cancel();
  options.cancel = &cancel;
  const AnnealResult result =
      ParallelTempering(options).Run(ToyModel()).value();
  EXPECT_FALSE(result.completed);
  EXPECT_LT(result.sweeps,
            static_cast<std::int64_t>(options.rounds) *
                options.sweeps_per_round * options.num_replicas);
}

}  // namespace
}  // namespace qplex
