#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/status.h"
#include "quantum/basis_sim.h"
#include "quantum/bitstring.h"
#include "quantum/circuit.h"
#include "quantum/gate.h"
#include "quantum/statevector.h"
#include "resilience/fault_injection.h"

namespace qplex {
namespace {

// -- BitString ----------------------------------------------------------------

TEST(BitStringTest, GetSetFlip) {
  BitString bits(130);
  EXPECT_TRUE(bits.IsZero());
  bits.Set(0, true);
  bits.Set(64, true);
  bits.Set(129, true);
  EXPECT_EQ(bits.PopCount(), 3);
  bits.Flip(64);
  EXPECT_FALSE(bits.Get(64));
  EXPECT_EQ(bits.PopCount(), 2);
}

TEST(BitStringTest, StoreLoadInt) {
  BitString bits(80);
  bits.StoreInt(10, 8, 0xAB);
  EXPECT_EQ(bits.LoadInt(10, 8), 0xABu);
  EXPECT_EQ(bits.LoadInt(0, 10), 0u);
  bits.StoreInt(60, 10, 0x3FF);
  EXPECT_EQ(bits.LoadInt(60, 10), 0x3FFu);
  // Overwrite narrows correctly.
  bits.StoreInt(60, 10, 5);
  EXPECT_EQ(bits.LoadInt(60, 10), 5u);
}

TEST(BitStringTest, ToStringOrder) {
  BitString bits(4);
  bits.Set(0, true);
  bits.Set(3, true);
  EXPECT_EQ(bits.ToString(), "1001");
}

// -- Gate ---------------------------------------------------------------------

TEST(GateTest, Constructors) {
  EXPECT_EQ(MakeX(3).ToString(), "X(3)");
  EXPECT_EQ(MakeCX(1, 2).ToString(), "CX(1 -> 2)");
  EXPECT_EQ(MakeCCX(0, 1, 2).ToString(), "CCX(0,1 -> 2)");
  EXPECT_EQ(MakeMCX({Control{4, false}}, 5).ToString(), "CX(!4 -> 5)");
  EXPECT_TRUE(MakeX(0).IsClassical());
  EXPECT_TRUE(MakeZ(0).IsClassical());
  EXPECT_FALSE(MakeH(0).IsClassical());
}

TEST(GateTest, CostCountsControls) {
  EXPECT_EQ(MakeX(0).Cost(), 1);
  EXPECT_EQ(MakeCCX(0, 1, 2).Cost(), 3);
  EXPECT_EQ(MakeMCX({1, 2, 3, 4}, 0).Cost(), 5);
}

// -- Circuit ------------------------------------------------------------------

TEST(CircuitTest, RegisterAllocation) {
  Circuit circuit;
  const QubitRange a = circuit.AllocateRegister("a", 3);
  const int b = circuit.AllocateQubit("b");
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(a.width, 3);
  EXPECT_EQ(a[2], 2);
  EXPECT_EQ(b, 3);
  EXPECT_EQ(circuit.num_qubits(), 4);
  EXPECT_TRUE(circuit.FindRegister("a").ok());
  EXPECT_FALSE(circuit.FindRegister("zzz").ok());
}

TEST(CircuitTest, AncillaNamesUnique) {
  Circuit circuit;
  const QubitRange a = circuit.AllocateAncilla("tmp", 2);
  const QubitRange b = circuit.AllocateAncilla("tmp", 2);
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(b.start, 2);
}

TEST(CircuitTest, StageTagging) {
  Circuit circuit;
  circuit.AllocateRegister("q", 3);
  circuit.Append(MakeX(0));
  circuit.BeginStage("phase2");
  circuit.Append(MakeCX(0, 1));
  circuit.Append(MakeCCX(0, 1, 2));
  const auto counts = circuit.GateCountsByStage();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  const auto costs = circuit.CostsByStage();
  EXPECT_EQ(costs[0], 1);
  EXPECT_EQ(costs[1], 2 + 3);
  EXPECT_EQ(circuit.TotalCost(), 6);
}

TEST(CircuitTest, BeginStageReusesExistingName) {
  Circuit circuit;
  circuit.AllocateQubit("q");
  const int first = circuit.BeginStage("s");
  circuit.BeginStage("other");
  const int again = circuit.BeginStage("s");
  EXPECT_EQ(first, again);
  EXPECT_EQ(circuit.stage_names().size(), 3u);  // default, s, other
}

TEST(CircuitTest, InverseOfRangeRestoresState) {
  Circuit circuit;
  circuit.AllocateRegister("q", 4);
  circuit.Append(MakeX(0));
  circuit.Append(MakeCX(0, 1));
  circuit.Append(MakeCCX(0, 1, 2));
  circuit.Append(MakeCX(2, 3));
  circuit.AppendInverseOfSuffix(0);

  BitString input(4);
  const BitString output =
      BasisStateSimulator::Execute(circuit, input).value();
  EXPECT_TRUE(output.IsZero());
}

// -- BasisStateSimulator --------------------------------------------------------

TEST(BasisSimTest, XFlipsTarget) {
  Circuit circuit;
  circuit.AllocateRegister("q", 2);
  circuit.Append(MakeX(1));
  const BitString out =
      BasisStateSimulator::Execute(circuit, BitString(2)).value();
  EXPECT_FALSE(out.Get(0));
  EXPECT_TRUE(out.Get(1));
}

TEST(BasisSimTest, ControlledXRespectsPolarity) {
  Circuit circuit;
  circuit.AllocateRegister("q", 3);
  circuit.Append(MakeMCX({Control{0, true}, Control{1, false}}, 2));

  BitString in(3);
  in.Set(0, true);  // control 0 fires, control 1 (negative) fires
  BitString out = BasisStateSimulator::Execute(circuit, in).value();
  EXPECT_TRUE(out.Get(2));

  in.Set(1, true);  // negative control now blocks
  out = BasisStateSimulator::Execute(circuit, in).value();
  EXPECT_FALSE(out.Get(2));
}

TEST(BasisSimTest, RejectsHadamard) {
  Circuit circuit;
  circuit.AllocateQubit("q");
  circuit.Append(MakeH(0));
  BasisStateSimulator sim(1);
  EXPECT_EQ(sim.Run(circuit).code(), StatusCode::kFailedPrecondition);
}

TEST(BasisSimTest, ZTracksPhaseParity) {
  Circuit circuit;
  circuit.AllocateRegister("q", 2);
  circuit.Append(MakeZ(0));
  circuit.Append(MakeMCZ({1}, 0));

  BasisStateSimulator sim(2);
  sim.mutable_state()->Set(0, true);
  QPLEX_CHECK(sim.Run(circuit).ok());
  // Plain Z fires (target |1>), controlled-Z does not (control |0>).
  EXPECT_TRUE(sim.phase_parity());
}

TEST(BasisSimTest, CcxTruthTable) {
  Circuit circuit;
  circuit.AllocateRegister("q", 3);
  circuit.Append(MakeCCX(0, 1, 2));
  for (std::uint64_t in = 0; in < 8; ++in) {
    BitString bits(3);
    bits.StoreInt(0, 3, in);
    const BitString out = BasisStateSimulator::Execute(circuit, bits).value();
    const std::uint64_t expected = ((in & 3) == 3) ? (in ^ 4) : in;
    EXPECT_EQ(out.LoadInt(0, 3), expected) << "input " << in;
  }
}

TEST(BasisSimTest, InputWiderThanCircuitFails) {
  Circuit circuit;
  circuit.AllocateQubit("q");
  EXPECT_FALSE(BasisStateSimulator::Execute(circuit, BitString(5)).ok());
}

// -- StateVectorSimulator --------------------------------------------------------

TEST(StateVectorTest, InitialState) {
  StateVectorSimulator sim(3);
  EXPECT_EQ(sim.dimension(), 8u);
  EXPECT_NEAR(sim.Probability(0), 1.0, 1e-12);
  EXPECT_NEAR(sim.TotalProbability(), 1.0, 1e-12);
}

TEST(StateVectorTest, XMovesAmplitude) {
  StateVectorSimulator sim(2);
  sim.ApplyX(1);
  EXPECT_NEAR(sim.Probability(2), 1.0, 1e-12);
}

TEST(StateVectorTest, HCreatesSuperposition) {
  StateVectorSimulator sim(1);
  sim.ApplyH(0);
  EXPECT_NEAR(sim.Probability(0), 0.5, 1e-12);
  EXPECT_NEAR(sim.Probability(1), 0.5, 1e-12);
  sim.ApplyH(0);  // H is self-inverse
  EXPECT_NEAR(sim.Probability(0), 1.0, 1e-12);
}

TEST(StateVectorTest, PrepareUniform) {
  StateVectorSimulator sim(4);
  sim.PrepareUniform();
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(sim.Probability(i), 1.0 / 16, 1e-12);
  }
}

TEST(StateVectorTest, ZFlipsPhase) {
  StateVectorSimulator sim(1);
  sim.ApplyH(0);
  sim.ApplyZ(0);
  sim.ApplyH(0);  // HZH = X
  EXPECT_NEAR(sim.Probability(1), 1.0, 1e-12);
}

TEST(StateVectorTest, ControlledGateOnlyFiresWhenControlSet) {
  StateVectorSimulator sim(2);
  sim.ApplyGate(MakeCX(0, 1));
  EXPECT_NEAR(sim.Probability(0), 1.0, 1e-12);  // control |0>: no-op
  sim.ApplyX(0);
  sim.ApplyGate(MakeCX(0, 1));
  EXPECT_NEAR(sim.Probability(3), 1.0, 1e-12);  // |11>
}

TEST(StateVectorTest, BellStateViaCircuit) {
  Circuit circuit;
  circuit.AllocateRegister("q", 2);
  circuit.Append(MakeH(0));
  circuit.Append(MakeCX(0, 1));
  StateVectorSimulator sim(2);
  sim.RunCircuit(circuit);
  EXPECT_NEAR(sim.Probability(0), 0.5, 1e-12);
  EXPECT_NEAR(sim.Probability(3), 0.5, 1e-12);
  EXPECT_NEAR(sim.Probability(1), 0.0, 1e-12);
  EXPECT_NEAR(sim.Probability(2), 0.0, 1e-12);
}

TEST(StateVectorTest, PhaseOracleAndDiffusionAmplify) {
  // One Grover iteration on 3 qubits with a single marked state: success
  // probability sin^2(3*theta), theta = asin(1/sqrt(8)).
  StateVectorSimulator sim(3);
  sim.PrepareUniform();
  const std::uint64_t marked = 5;
  sim.ApplyPhaseOracle([marked](std::uint64_t x) { return x == marked; });
  sim.ApplyDiffusion();
  const double theta = std::asin(1.0 / std::sqrt(8.0));
  EXPECT_NEAR(sim.Probability(marked), std::pow(std::sin(3 * theta), 2),
              1e-12);
  EXPECT_NEAR(sim.TotalProbability(), 1.0, 1e-12);
}

TEST(StateVectorTest, PhaseOracleListForm) {
  StateVectorSimulator sim(3);
  sim.PrepareUniform();
  sim.ApplyPhaseOracle(std::vector<std::uint64_t>{1, 6});
  EXPECT_NEAR(sim.amplitude(1).real(), -1.0 / std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(sim.amplitude(6).real(), -1.0 / std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(sim.amplitude(0).real(), 1.0 / std::sqrt(8.0), 1e-12);
}

TEST(StateVectorTest, SuccessProbability) {
  StateVectorSimulator sim(3);
  sim.PrepareUniform();
  const double p = sim.SuccessProbability(
      [](std::uint64_t x) { return x % 2 == 0; });
  EXPECT_NEAR(p, 0.5, 1e-12);
}

TEST(StateVectorTest, SamplingMatchesDistribution) {
  StateVectorSimulator sim(2);
  sim.ApplyH(0);  // P(0)=P(1)=0.5 on qubit 0
  Rng rng(21);
  const std::vector<int> counts = sim.Sample(rng, 20000);
  EXPECT_EQ(counts[2] + counts[3], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.5, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.5, 0.02);
}

/// Property: on classical circuits, the dense state-vector simulator and the
/// basis-state simulator agree exactly for every basis input. This is the
/// bridge that justifies simulating the wide oracles one basis state at a
/// time.
class SimulatorEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorEquivalenceTest, BasisAndStateVectorAgree) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const int n = 6;
  Circuit circuit;
  circuit.AllocateRegister("q", n);
  for (int g = 0; g < 40; ++g) {
    const int target = static_cast<int>(rng.UniformInt(n));
    std::vector<Control> controls;
    const int num_controls = static_cast<int>(rng.UniformInt(3));
    for (int c = 0; c < num_controls; ++c) {
      const int wire = static_cast<int>(rng.UniformInt(n));
      if (wire != target) {
        controls.push_back(Control{wire, rng.Bernoulli(0.7)});
      }
    }
    circuit.Append(MakeMCX(std::move(controls), target));
  }

  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t input = rng.UniformInt(std::uint64_t{1} << n);
    // Basis simulator.
    BitString bits(n);
    bits.StoreInt(0, n, input);
    const std::uint64_t expected =
        BasisStateSimulator::Execute(circuit, bits).value().LoadInt(0, n);
    // Dense simulator from the same basis state.
    StateVectorSimulator sim(n);
    for (int q = 0; q < n; ++q) {
      if ((input >> q) & 1) {
        sim.ApplyX(q);
      }
    }
    sim.RunCircuit(circuit);
    EXPECT_NEAR(sim.Probability(expected), 1.0, 1e-9)
        << "seed=" << seed << " input=" << input;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorEquivalenceTest,
                         ::testing::Range(1, 7));

TEST(StateVectorTest, SampleOneReturnsSupportedState) {
  StateVectorSimulator sim(3);
  sim.ApplyX(2);
  Rng rng(5);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(sim.SampleOne(rng), 4u);
  }
}

// -- Threaded kernels ---------------------------------------------------------

/// A random Grover-style workload touching every parallel kernel: controlled
/// X via RunCircuit, bare X/H/Z, phase oracle (predicate form), diffusion.
/// n = 13 gives 8192 amplitudes (4096 gate pairs), i.e. several
/// kParallelChunkSize chunks, so the multi-chunk paths genuinely run.
StateVectorSimulator RunThreadedWorkload(int num_threads) {
  const int n = 13;
  StateVectorSimulator sim(n, num_threads);
  sim.PrepareUniform();
  Rng rng(99);
  Circuit circuit;
  circuit.AllocateRegister("q", n);
  for (int g = 0; g < 24; ++g) {
    const int target = static_cast<int>(rng.UniformInt(n));
    std::vector<Control> controls;
    const int num_controls = static_cast<int>(rng.UniformInt(3));
    for (int c = 0; c < num_controls; ++c) {
      const int wire = static_cast<int>(rng.UniformInt(n));
      if (wire != target) {
        controls.push_back(Control{wire, rng.Bernoulli(0.7)});
      }
    }
    circuit.Append(MakeMCX(std::move(controls), target));
  }
  sim.RunCircuit(circuit);
  for (int q = 0; q < n; ++q) {
    sim.ApplyH(q);
    if (q % 3 == 0) {
      sim.ApplyZ(q);
    }
    if (q % 4 == 1) {
      sim.ApplyX(q);
    }
  }
  for (int round = 0; round < 3; ++round) {
    sim.ApplyPhaseOracle(
        [](std::uint64_t basis) { return __builtin_popcountll(basis) >= 7; });
    sim.ApplyDiffusion();
  }
  return sim;
}

TEST(StateVectorThreadingTest, AmplitudesBitIdenticalAcrossThreadCounts) {
  // The determinism contract: fixed chunk boundaries + ordered combines mean
  // the thread count never changes a single bit of the state. Exact ==, not
  // EXPECT_NEAR.
  const StateVectorSimulator serial = RunThreadedWorkload(1);
  for (int threads : {2, 4}) {
    const StateVectorSimulator threaded = RunThreadedWorkload(threads);
    ASSERT_EQ(serial.dimension(), threaded.dimension());
    const auto& a = serial.amplitudes();
    const auto& b = threaded.amplitudes();
    for (std::uint64_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].real(), b[i].real()) << "threads=" << threads << " i=" << i;
      ASSERT_EQ(a[i].imag(), b[i].imag()) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(StateVectorThreadingTest, DistributionsAndSamplesMatchSerial) {
  // Probabilities and the sampling CDF are also built in parallel; identical
  // amplitudes must yield identical distributions and, with equal Rng streams,
  // identical draws.
  const StateVectorSimulator serial = RunThreadedWorkload(1);
  const StateVectorSimulator threaded = RunThreadedWorkload(4);
  const std::vector<double> p1 = serial.Probabilities();
  const std::vector<double> p4 = threaded.Probabilities();
  ASSERT_EQ(p1.size(), p4.size());
  for (std::uint64_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1[i], p4[i]) << "i=" << i;
  }
  EXPECT_EQ(serial.SuccessProbability([](std::uint64_t basis) {
    return __builtin_popcountll(basis) >= 7;
  }),
            threaded.SuccessProbability([](std::uint64_t basis) {
              return __builtin_popcountll(basis) >= 7;
            }));
  Rng rng_serial(7);
  Rng rng_threaded(7);
  EXPECT_EQ(serial.Sample(rng_serial, 64), threaded.Sample(rng_threaded, 64));
  EXPECT_EQ(serial.SampleOne(rng_serial), threaded.SampleOne(rng_threaded));
}

TEST(StateVectorThreadingTest, SetNumThreadsIsObservable) {
  StateVectorSimulator sim(4);
  EXPECT_EQ(sim.num_threads(), 1);
  sim.set_num_threads(3);
  EXPECT_EQ(sim.num_threads(), 3);
}

// -- Simulation memory budget -------------------------------------------------

TEST(SimulationBudgetTest, DefaultBudgetIsFourGiB) {
  EXPECT_EQ(MaxSimulationBytes(), std::uint64_t{4} << 30);
}

TEST(SimulationBudgetTest, SimulationBytesIsAmplitudeArraySize) {
  // 2^n amplitudes of std::complex<double> (16 bytes each).
  EXPECT_EQ(SimulationBytes(0), 16u);
  EXPECT_EQ(SimulationBytes(10), 16u * 1024u);
  EXPECT_EQ(SimulationBytes(30), std::uint64_t{16} << 30);
}

TEST(SimulationBudgetTest, CheckRejectsExactlyAtTheBoundary) {
  SetMaxSimulationBytes(SimulationBytes(10));
  struct Restore {
    ~Restore() { SetMaxSimulationBytes(0); }  // 0 restores the default
  } restore;

  EXPECT_TRUE(CheckSimulationBudget(10).ok());  // == budget: allowed
  const Status over = CheckSimulationBudget(11);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(over.message().find("simulation budget"), std::string::npos);

  // Restoring the default re-admits large registers (up to 28 qubits).
  SetMaxSimulationBytes(0);
  EXPECT_TRUE(CheckSimulationBudget(28).ok());
}

TEST(SimulationBudgetTest, AllocFaultSiteForcesBudgetFailure) {
  resilience::FaultInjector& injector = resilience::FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("alloc:1:1").ok());
  struct Restore {
    ~Restore() { resilience::FaultInjector::Global().Reset(); }
  } restore;

  // Even a trivially small register fails while the alloc site is armed.
  const Status status = CheckSimulationBudget(2);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("injected fault: alloc"),
            std::string::npos);

  injector.Reset();
  EXPECT_TRUE(CheckSimulationBudget(2).ok());
}

}  // namespace
}  // namespace qplex
