#include <gtest/gtest.h>

#include "classical/exact.h"
#include "graph/generators.h"
#include "graph/instances.h"
#include "milp/milp_solver.h"
#include "milp/qubo_linearization.h"
#include "milp/simplex.h"
#include "qubo/mkp_qubo.h"

namespace qplex {
namespace {

// -- simplex ------------------------------------------------------------------

TEST(SimplexTest, SimpleTwoVarProblem) {
  // minimize -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 2  ->  x=2? no:
  // optimum at x=2,y=2: obj -6.
  LpProblem problem;
  problem.num_vars = 2;
  problem.objective = {-1.0, -2.0};
  problem.AddRowLe({{0, 1.0}, {1, 1.0}}, 4.0);
  problem.upper = {3.0, 2.0};
  const LpSolution solution = SolveLp(problem).value();
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -6.0, 1e-9);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualRowsNeedPhase1) {
  // minimize x + y  s.t.  x + y >= 3, x <= 2, y <= 2  -> obj 3.
  LpProblem problem;
  problem.num_vars = 2;
  problem.objective = {1.0, 1.0};
  problem.AddRowGe({{0, 1.0}, {1, 1.0}}, 3.0);
  problem.upper = {2.0, 2.0};
  const LpSolution solution = SolveLp(problem).value();
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x >= 3 with x <= 1.
  LpProblem problem;
  problem.num_vars = 1;
  problem.objective = {0.0};
  problem.AddRowGe({{0, 1.0}}, 3.0);
  problem.upper = {1.0};
  const LpSolution solution = SolveLp(problem).value();
  EXPECT_EQ(solution.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // minimize -x, x unbounded above.
  LpProblem problem;
  problem.num_vars = 1;
  problem.objective = {-1.0};
  problem.upper = {-1.0};  // no upper bound
  const LpSolution solution = SolveLp(problem).value();
  EXPECT_EQ(solution.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple constraints active at the optimum.
  LpProblem problem;
  problem.num_vars = 3;
  problem.objective = {-0.75, 150.0, -0.02};
  problem.AddRowLe({{0, 0.25}, {1, -60.0}, {2, -0.04}}, 0.0);
  problem.AddRowLe({{0, 0.5}, {1, -90.0}, {2, -0.02}}, 0.0);
  problem.AddRowLe({{2, 1.0}}, 1.0);
  problem.upper = {-1.0, -1.0, -1.0};
  const LpSolution solution = SolveLp(problem).value();
  EXPECT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -0.05, 1e-6);
}

TEST(SimplexTest, RejectsAritymismatch) {
  LpProblem problem;
  problem.num_vars = 2;
  problem.objective = {1.0};
  EXPECT_FALSE(SolveLp(problem).ok());
}

// -- MILP ---------------------------------------------------------------------

TEST(MilpTest, SimpleKnapsack) {
  // maximize 5a + 4b + 3c (as minimize negative) s.t. 2a+3b+c <= 4, binaries.
  // Optimum: a = c = 1 (weight 3), value 8; taking b instead caps at 7.
  LpProblem lp;
  lp.num_vars = 3;
  lp.objective = {-5.0, -4.0, -3.0};
  lp.AddRowLe({{0, 2.0}, {1, 3.0}, {2, 1.0}}, 4.0);
  MilpProblem problem;
  problem.lp = lp;
  problem.binary_vars = {0, 1, 2};
  const MilpSolution solution = MilpSolver().Solve(problem).value();
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(solution.optimal);
  EXPECT_NEAR(solution.objective, -8.0, 1e-9);
  EXPECT_NEAR(solution.x[0], 1.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 0.0, 1e-9);
  EXPECT_NEAR(solution.x[2], 1.0, 1e-9);
}

TEST(MilpTest, InfeasibleIntegerProblem) {
  // x + y = 1.5 impossible for binaries: model as two inequalities.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.AddRowLe({{0, 1.0}, {1, 1.0}}, 1.5);
  lp.AddRowGe({{0, 1.0}, {1, 1.0}}, 1.5);
  MilpProblem problem;
  problem.lp = lp;
  problem.binary_vars = {0, 1};
  const MilpSolution solution = MilpSolver().Solve(problem).value();
  EXPECT_FALSE(solution.feasible);
}

TEST(MilpTest, NodeLimitStopsEarly) {
  LpProblem lp;
  lp.num_vars = 6;
  lp.objective.assign(6, -1.0);
  lp.AddRowLe({{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}, {4, 1.0}, {5, 1.0}},
              3.5);
  MilpProblem problem;
  problem.lp = lp;
  problem.binary_vars = {0, 1, 2, 3, 4, 5};
  MilpSolverOptions options;
  options.max_nodes = 1;
  const MilpSolution solution = MilpSolver(options).Solve(problem).value();
  EXPECT_FALSE(solution.optimal);
  EXPECT_LE(solution.nodes, 1);
}

// -- QUBO linearization ---------------------------------------------------------

TEST(LinearizationTest, StructureMatchesPaperEq14) {
  QuboModel model(3);
  model.AddLinear(0, -1.0);
  model.AddQuadratic(0, 1, 2.0);
  model.AddQuadratic(1, 2, -1.5);
  const LinearizedQubo linearized = LinearizeQubo(model);
  EXPECT_EQ(linearized.num_x, 3);
  EXPECT_EQ(linearized.milp.lp.num_vars, 5);  // 3 x + 2 y
  EXPECT_EQ(linearized.milp.binary_vars.size(), 3u);
  // 3 McCormick rows per product.
  EXPECT_EQ(linearized.milp.lp.rows.size(), 6u);
}

TEST(LinearizationTest, MilpMatchesQuboMinimumExhaustively) {
  Rng rng(31);
  QuboModel model(5);
  for (int i = 0; i < 5; ++i) {
    model.AddLinear(i, rng.UniformDouble() * 4 - 2);
  }
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      if (rng.Bernoulli(0.7)) {
        model.AddQuadratic(i, j, rng.UniformDouble() * 4 - 2);
      }
    }
  }
  // Exhaustive QUBO minimum.
  double qubo_min = 1e300;
  for (std::uint64_t a = 0; a < 32; ++a) {
    QuboSample sample(5);
    for (int i = 0; i < 5; ++i) {
      sample[i] = (a >> i) & 1;
    }
    qubo_min = std::min(qubo_min, model.Evaluate(sample));
  }
  const LinearizedQubo linearized = LinearizeQubo(model);
  const MilpSolution solution =
      MilpSolver().Solve(linearized.milp).value();
  ASSERT_TRUE(solution.optimal);
  EXPECT_NEAR(solution.objective + linearized.offset, qubo_min, 1e-6);
}

TEST(LinearizationTest, EndToEndMkpViaMilp) {
  // The paper's Fig. 10 "MILP" pipeline in miniature: MKP -> QUBO ->
  // McCormick MILP -> branch and bound -> maximum k-plex.
  const Graph graph = PaperExampleGraph();
  const MkpQubo qubo = BuildMkpQubo(graph, 2).value();
  const LinearizedQubo linearized = LinearizeQubo(qubo.model);
  MilpSolverOptions options;
  options.incumbent_heuristic =
      MakeQuboRoundingHeuristic(qubo.model, linearized);
  const MilpSolution solution =
      MilpSolver(options).Solve(linearized.milp).value();
  ASSERT_TRUE(solution.optimal);
  EXPECT_NEAR(solution.objective + linearized.offset,
              MkpQubo::CostOfPlexSize(4), 1e-6);
  const QuboSample sample = ExtractSample(linearized, solution.x);
  EXPECT_TRUE(qubo.IsFeasible(sample));
  EXPECT_EQ(qubo.DecodeVertices(sample).size(), 4u);
}

TEST(LinearizationTest, RoundingHeuristicProducesConsistentPoints) {
  QuboModel model(4);
  model.AddLinear(0, -2.0);
  model.AddQuadratic(0, 1, 1.0);
  model.AddQuadratic(2, 3, -1.0);
  const LinearizedQubo linearized = LinearizeQubo(model);
  const auto heuristic = MakeQuboRoundingHeuristic(model, linearized);
  std::vector<double> lp_x(linearized.milp.lp.num_vars, 0.6);
  std::vector<double> x;
  double objective = 0;
  ASSERT_TRUE(heuristic(lp_x, &x, &objective));
  // x binary, products consistent with the x block, objective matches a
  // fresh evaluation, and the built-in descent leaves a local minimum.
  QuboSample sample(linearized.num_x);
  for (int i = 0; i < linearized.num_x; ++i) {
    EXPECT_TRUE(x[i] == 0.0 || x[i] == 1.0);
    sample[i] = x[i] >= 0.5 ? 1 : 0;
  }
  for (const auto& [key, y] : linearized.product_vars) {
    EXPECT_EQ(x[y], (sample[key.first] && sample[key.second]) ? 1.0 : 0.0);
  }
  EXPECT_NEAR(objective, model.Evaluate(sample) - model.offset(), 1e-12);
  for (int i = 0; i < linearized.num_x; ++i) {
    EXPECT_GE(model.FlipDelta(sample, i), -1e-9) << "descent incomplete";
  }
}

TEST(MilpTest, TraceRecordsImprovements) {
  const Graph graph = RandomGnm(7, 12, 8).value();
  const MkpQubo qubo = BuildMkpQubo(graph, 2).value();
  const LinearizedQubo linearized = LinearizeQubo(qubo.model);
  MilpSolverOptions options;
  options.incumbent_heuristic =
      MakeQuboRoundingHeuristic(qubo.model, linearized);
  const MilpSolution solution =
      MilpSolver(options).Solve(linearized.milp).value();
  ASSERT_TRUE(solution.feasible);
  ASSERT_FALSE(solution.trace.empty());
  for (std::size_t i = 1; i < solution.trace.size(); ++i) {
    EXPECT_LT(solution.trace[i].objective, solution.trace[i - 1].objective);
  }
}

}  // namespace
}  // namespace qplex
