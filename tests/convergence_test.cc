// End-to-end tests of the anytime-convergence telemetry: every backend's
// IncumbentReporter timeline must improve strictly and monotonically, the
// qplex_obs convergence report must reconstruct byte-identically from the
// JSONL stream regardless of scheduler thread count (the default report
// carries no wall-clock and no seq ordering), and a portfolio race summary
// must name the same winner the scheduler's deterministic merge rule picked.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/io.h"
#include "obs/analysis.h"
#include "obs/convergence.h"
#include "obs/events.h"
#include "svc/registry.h"
#include "svc/scheduler.h"

namespace qplex::svc {
namespace {

std::filesystem::path EventsPath(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "qplex_convergence_test";
  std::filesystem::create_directories(dir);
  return dir / name;
}

// Two K4 blocks joined by one edge; the maximum 2-plex is a K4 (size 4).
Graph TwoBlockGraph() {
  return ParseEdgeList(
             "8\n0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n3 4\n4 5\n4 6\n"
             "5 6\n5 7\n6 7\n")
      .value();
}

SolveRequest Request(const std::string& backend, const std::string& label) {
  SolveRequest request;
  request.graph = TwoBlockGraph();
  request.k = 2;
  request.backend = backend;
  request.seed = 7;
  request.label = label;
  return request;
}

/// Runs one seeded batch of single-backend jobs under an event sink writing
/// to `path`, then returns the parsed event log. Cache off so every job
/// executes; no deadlines so the work-unit streams are deterministic.
obs::EventLog RunBatch(const std::vector<std::string>& backends,
                       int num_workers, const std::filesystem::path& path) {
  Result<std::unique_ptr<obs::EventSink>> sink =
      obs::EventSink::Open(path.string());
  QPLEX_CHECK(sink.ok()) << sink.status().ToString();
  obs::EventSink::InstallGlobal(sink.value().get());

  SolverRegistry registry;
  QPLEX_CHECK(RegisterBuiltinBackends(&registry).ok());
  {
    JobSchedulerOptions options;
    options.num_workers = num_workers;
    options.enable_cache = false;
    JobScheduler scheduler(&registry, options);
    std::vector<JobId> ids;
    int index = 0;
    for (const std::string& backend : backends) {
      const Result<JobId> id =
          scheduler.Submit(Request(backend, "job-" + std::to_string(index++)));
      QPLEX_CHECK(id.ok()) << id.status().ToString();
      ids.push_back(id.value());
    }
    for (const JobId id : ids) {
      const SolveResponse response = scheduler.Wait(id);
      QPLEX_CHECK(response.status.ok()) << response.status.ToString();
    }
  }
  obs::EventSink::InstallGlobal(nullptr);
  sink.value().reset();

  Result<obs::EventLog> log = obs::LoadEventLog(path.string());
  QPLEX_CHECK(log.ok()) << log.status().ToString();
  return std::move(log.value());
}

TEST(ConvergenceTest, EveryBackendEmitsAMonotoneIncumbentTimeline) {
  const std::vector<std::string> backends = {"bs", "enum", "grasp", "qtkp",
                                             "qmkp", "sa", "pt", "pia",
                                             "hybrid", "milp"};
  const obs::EventLog log =
      RunBatch(backends, /*num_workers=*/2, EventsPath("all_backends.jsonl"));

  // Structural stream validation: strictly improving sizes, non-decreasing
  // work, consecutive improvement indices, tightening bounds.
  const std::vector<std::string> violations = obs::ValidateIncumbents(log);
  EXPECT_TRUE(violations.empty()) << violations.front();

  std::set<std::string> reporting;
  for (const obs::IncumbentRecord& record : log.incumbents) {
    reporting.insert(record.solver);
  }
  for (const std::string& backend : backends) {
    EXPECT_TRUE(reporting.count(backend) > 0)
        << backend << " emitted no incumbent events";
  }

  // The exact searchers close their primal-dual gap: BS bounds its search
  // and the MILP converts its objective bound to a plex-size bound.
  std::set<std::string> bounding;
  for (const obs::BoundRecord& record : log.bounds) {
    bounding.insert(record.solver);
  }
  EXPECT_TRUE(bounding.count("bs") > 0);
  EXPECT_TRUE(bounding.count("milp") > 0);

  // Every emitted line carried a seq stamp, with no duplicates.
  EXPECT_EQ(log.seq_missing, 0);
  EXPECT_EQ(log.seq_duplicates, 0);
}

TEST(ConvergenceTest, ReportIsByteIdenticalAcrossThreadCounts) {
  // Five deterministic seeded jobs; the default report orders by
  // (label, trace)/path/improvement index and excludes wall-clock, so the
  // worker interleaving must not leak into a single byte.
  const std::vector<std::string> backends = {"bs", "enum", "grasp", "sa",
                                             "milp"};
  std::vector<std::string> reports;
  for (const int workers : {1, 2, 4, 1}) {
    const obs::EventLog log = RunBatch(
        backends, workers,
        EventsPath("threads_" + std::to_string(reports.size()) + ".jsonl"));
    reports.push_back(obs::FormatConvergenceReport(log));
  }
  EXPECT_NE(reports[0].find("anytime convergence report"), std::string::npos);
  EXPECT_NE(reports[0].find("timeline bs @"), std::string::npos)
      << reports[0];
  EXPECT_NE(reports[0].find("gap:"), std::string::npos);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[0], reports[i]) << "run " << i << " diverged";
  }
}

TEST(ConvergenceTest, RaceSummaryNamesTheMergedWinner) {
  const std::filesystem::path path = EventsPath("race.jsonl");
  Result<std::unique_ptr<obs::EventSink>> sink =
      obs::EventSink::Open(path.string());
  ASSERT_TRUE(sink.ok()) << sink.status();
  obs::EventSink::InstallGlobal(sink.value().get());

  SolverRegistry registry;
  ASSERT_TRUE(RegisterBuiltinBackends(&registry).ok());
  SolveResponse response;
  {
    JobSchedulerOptions options;
    options.num_workers = 2;
    options.enable_cache = false;
    JobScheduler scheduler(&registry, options);
    const Result<JobId> id = scheduler.SubmitPortfolio(
        Request("", "race-job"), {"grasp", "bs"});
    ASSERT_TRUE(id.ok()) << id.status();
    response = scheduler.Wait(id.value());
    ASSERT_TRUE(response.status.ok()) << response.status;
  }
  obs::EventSink::InstallGlobal(nullptr);
  sink.value().reset();

  // BS proves optimality, so the deterministic merge rule must pick it over
  // the heuristic regardless of finish order.
  EXPECT_EQ(response.backend, "bs");

  const Result<obs::EventLog> log = obs::LoadEventLog(path.string());
  ASSERT_TRUE(log.ok()) << log.status();
  const std::string report = obs::FormatConvergenceReport(log.value());
  EXPECT_NE(report.find("race: winner=" + response.backend),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("racers=2"), std::string::npos) << report;
  EXPECT_NE(report.find("<- winner"), std::string::npos) << report;

  // The job_end record carries the deterministic race analytics fields.
  ASSERT_EQ(log.value().jobs.size(), 1u);
  EXPECT_EQ(log.value().jobs[0].racers, 2);
  EXPECT_GE(log.value().jobs[0].winner_margin, 0);
}

}  // namespace
}  // namespace qplex::svc
