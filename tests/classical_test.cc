#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "classical/bs_solver.h"
#include "classical/exact.h"
#include "classical/grasp.h"
#include "classical/reduce.h"
#include "graph/generators.h"
#include "graph/instances.h"
#include "graph/kplex.h"

namespace qplex {
namespace {

TEST(EnumerationTest, PaperExample) {
  const MkpSolution best =
      SolveMkpByEnumeration(PaperExampleGraph(), 2).value();
  EXPECT_EQ(best.size, 4);
  EXPECT_EQ(best.mask, 0b011011u);  // {v1, v2, v4, v5}
  EXPECT_EQ(best.members, (VertexList{0, 1, 3, 4}));
}

TEST(EnumerationTest, CliqueCases) {
  EXPECT_EQ(SolveMkpByEnumeration(CompleteGraph(6), 1).value().size, 6);
  EXPECT_EQ(SolveMkpByEnumeration(CompleteGraph(6), 3).value().size, 6);
  // Empty graph: any k vertices form a k-plex (degree 0 >= k - k).
  EXPECT_EQ(SolveMkpByEnumeration(Graph(6), 2).value().size, 2);
  EXPECT_EQ(SolveMkpByEnumeration(Graph(6), 5).value().size, 5);
}

TEST(EnumerationTest, PetersenPlexes) {
  // Petersen is triangle-free and 3-regular: max clique 2.
  EXPECT_EQ(SolveMkpByEnumeration(PetersenGraph(), 1).value().size, 2);
  const MkpSolution two_plex = SolveMkpByEnumeration(PetersenGraph(), 2).value();
  EXPECT_TRUE(IsKPlexMask(AdjacencyMasks(PetersenGraph()), two_plex.mask, 2));
}

TEST(EnumerationTest, RejectsBadInput) {
  EXPECT_FALSE(SolveMkpByEnumeration(PaperExampleGraph(), 0).ok());
  EXPECT_FALSE(SolveMkpByEnumeration(Graph(31), 1).ok());
}

TEST(EnumerationTest, CountKPlexes) {
  // Paper example, k=2, T=4: exactly one solution (drives Fig. 8's 6
  // Grover iterations).
  EXPECT_EQ(CountKPlexesOfSize(PaperExampleGraph(), 2, 4).value(), 1);
  // Threshold 0 counts every 2-plex including the empty set.
  EXPECT_GT(CountKPlexesOfSize(PaperExampleGraph(), 2, 0).value(), 1);
}

// -- reduction ----------------------------------------------------------------

TEST(ReduceTest, PreservesLargePlexes) {
  for (std::uint64_t seed : {3ull, 7ull, 19ull}) {
    const Graph graph = RandomGnm(14, 40, seed).value();
    for (int k = 1; k <= 3; ++k) {
      const MkpSolution best = SolveMkpByEnumeration(graph, k).value();
      const ReductionResult reduction =
          ReduceForTarget(graph, k, best.size);
      ASSERT_LE(reduction.reduced.num_vertices(), 14);
      const MkpSolution reduced_best =
          SolveMkpByEnumeration(reduction.reduced, k).value();
      EXPECT_EQ(reduced_best.size, best.size)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(ReduceTest, RemovesLowDegreeVertices) {
  // Star graph: leaves have degree 1; for target 4, k 1 they all vanish.
  const ReductionResult reduction = ReduceForTarget(StarGraph(8), 1, 4);
  EXPECT_EQ(reduction.reduced.num_vertices(), 0);
  EXPECT_EQ(reduction.vertices_removed, 8);
}

TEST(ReduceTest, KeepsEverythingWhenTargetTiny) {
  const Graph graph = KarateClub();
  const ReductionResult reduction = ReduceForTarget(graph, 2, 1);
  EXPECT_EQ(reduction.reduced.num_vertices(), 34);
  EXPECT_EQ(reduction.reduced.num_edges(), 78);
}

TEST(ReduceTest, MappingIsConsistent) {
  const Graph graph = RandomGnm(12, 20, 4).value();
  const ReductionResult reduction = ReduceForTarget(graph, 2, 5);
  for (Vertex old_id = 0; old_id < 12; ++old_id) {
    const Vertex new_id = reduction.old_to_new[old_id];
    if (new_id >= 0) {
      EXPECT_EQ(reduction.new_to_old[new_id], old_id);
    }
  }
}

// -- BS solver ----------------------------------------------------------------

class BsRandomTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BsRandomTest, MatchesEnumeration) {
  const auto [n, k] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const int m = n * (n - 1) / 3;
    const Graph graph = RandomGnm(n, m, seed).value();
    const MkpSolution expected = SolveMkpByEnumeration(graph, k).value();
    BsSolver solver;
    const MkpSolution actual = solver.Solve(graph, k).value();
    EXPECT_EQ(actual.size, expected.size)
        << "n=" << n << " k=" << k << " seed=" << seed;
    EXPECT_TRUE(IsKPlexMask(AdjacencyMasks(graph), actual.mask, k));
    EXPECT_EQ(static_cast<int>(actual.members.size()), actual.size);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BsRandomTest,
                         ::testing::Combine(::testing::Values(8, 10, 12, 14),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(BsSolverTest, PaperExample) {
  BsSolver solver;
  const MkpSolution best = solver.Solve(PaperExampleGraph(), 2).value();
  EXPECT_EQ(best.size, 4);
  EXPECT_EQ(best.mask, 0b011011u);
}

TEST(BsSolverTest, WithoutReductionOrBound) {
  BsSolverOptions options;
  options.use_reduction = false;
  options.use_support_bound = false;
  BsSolver solver(options);
  const Graph graph = RandomGnm(12, 30, 8).value();
  const MkpSolution expected = SolveMkpByEnumeration(graph, 2).value();
  EXPECT_EQ(solver.Solve(graph, 2).value().size, expected.size);
}

TEST(BsSolverTest, BoundsReduceSearchNodes) {
  const Graph graph = RandomGnm(16, 60, 2).value();
  BsSolverOptions no_bound;
  no_bound.use_support_bound = false;
  no_bound.use_reduction = false;
  BsSolver baseline(no_bound);
  (void)baseline.Solve(graph, 2);

  BsSolver pruned;  // defaults: reduction + bound on
  (void)pruned.Solve(graph, 2);
  EXPECT_LT(pruned.stats().branch_nodes, baseline.stats().branch_nodes);
}

TEST(BsSolverTest, IncumbentCallbackMonotone) {
  std::vector<int> sizes;
  BsSolverOptions options;
  options.on_incumbent = [&](const MkpSolution& s, const BsSolverStats&) {
    sizes.push_back(s.size);
  };
  BsSolver solver(options);
  (void)solver.Solve(KarateClub(), 2);
  ASSERT_FALSE(sizes.empty());
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);
  }
}

TEST(BsSolverTest, KarateClubKnownValues) {
  // Known maximum k-plex sizes for Zachary's karate club.
  BsSolver solver;
  EXPECT_EQ(solver.Solve(KarateClub(), 1).value().size, 5);   // max clique
  const MkpSolution two = solver.Solve(KarateClub(), 2).value();
  EXPECT_TRUE(IsKPlexMask(AdjacencyMasks(KarateClub()), two.mask, 2));
  EXPECT_GE(two.size, 6);
  EXPECT_GE(solver.Solve(KarateClub(), 3).value().size, two.size);
}

TEST(BsSolverTest, EmptyAndTinyGraphs) {
  BsSolver solver;
  EXPECT_EQ(solver.Solve(Graph(0), 2).value().size, 0);
  EXPECT_EQ(solver.Solve(Graph(1), 1).value().size, 1);
  EXPECT_EQ(solver.Solve(Graph(3), 2).value().size, 2);
}

// -- GRASP ----------------------------------------------------------------------

TEST(GraspTest, FindsOptimumOnSmallInstances) {
  for (std::uint64_t seed : {1ull, 4ull, 6ull}) {
    const Graph graph = RandomGnm(12, 32, seed).value();
    const int truth = SolveMkpByEnumeration(graph, 2).value().size;
    GraspOptions options;
    options.seed = seed;
    options.iterations = 128;
    const MkpSolution solution = GraspSolver(options).Solve(graph, 2).value();
    // GRASP is a heuristic; on these sizes it reliably reaches the optimum.
    EXPECT_EQ(solution.size, truth) << "seed " << seed;
    EXPECT_TRUE(IsKPlexMask(AdjacencyMasks(graph), solution.mask, 2));
  }
}

TEST(GraspTest, AlwaysReturnsValidPlex) {
  const Graph graph = RandomGnm(20, 70, 3).value();
  for (int k = 1; k <= 4; ++k) {
    GraspOptions options;
    options.iterations = 16;
    const MkpSolution solution = GraspSolver(options).Solve(graph, k).value();
    EXPECT_TRUE(IsKPlexMask(AdjacencyMasks(graph), solution.mask, k));
    EXPECT_GE(solution.size, 1);
  }
}

TEST(GraspTest, PureGreedyAndPureRandomBothValid) {
  const Graph graph = RandomGnm(14, 40, 8).value();
  for (double alpha : {0.0, 1.0}) {
    GraspOptions options;
    options.alpha = alpha;
    options.iterations = 8;
    const MkpSolution solution = GraspSolver(options).Solve(graph, 2).value();
    EXPECT_TRUE(IsKPlexMask(AdjacencyMasks(graph), solution.mask, 2));
  }
}

TEST(GraspTest, Validation) {
  GraspOptions bad;
  bad.alpha = 2.0;
  EXPECT_FALSE(GraspSolver(bad).Solve(PathGraph(3), 1).ok());
  EXPECT_FALSE(GraspSolver().Solve(PathGraph(3), 0).ok());
  EXPECT_EQ(GraspSolver().Solve(Graph(0), 2).value().size, 0);
}

TEST(BsSolverTest, StatsPopulated) {
  BsSolver solver;
  (void)solver.Solve(RandomGnm(12, 30, 3).value(), 2);
  EXPECT_GT(solver.stats().branch_nodes, 0);
  EXPECT_GE(solver.stats().elapsed_seconds, 0.0);
  EXPECT_TRUE(solver.stats().completed);
}

TEST(BsSolverTest, DeadlineStopsSearchWithValidIncumbent) {
  // Large enough that branch-and-search cannot finish inside a microsecond;
  // the deadline poll (every ~1k nodes) must stop it with completed=false
  // while still returning a feasible incumbent.
  const Graph graph = RandomGnm(64, 1000, 5).value();
  BsSolverOptions options;
  options.time_limit_seconds = 1e-6;
  BsSolver solver(options);
  const MkpSolution solution = solver.Solve(graph, 2).value();
  EXPECT_FALSE(solver.stats().completed);
  EXPECT_TRUE(IsKPlexMask(AdjacencyMasks(graph), solution.mask, 2));
}

TEST(GraspTest, CancellationStopsIterationsEarly) {
  const Graph graph = RandomGnm(30, 120, 4).value();
  CancelToken cancel;
  cancel.Cancel();  // pre-cancelled: polled once per iteration
  GraspOptions options;
  options.iterations = 10'000'000;
  options.cancel = &cancel;
  GraspSolver solver(options);
  const MkpSolution solution = solver.Solve(graph, 2).value();
  EXPECT_FALSE(solver.stats().completed);
  // The token is polled before any work: zero iterations, empty incumbent.
  EXPECT_EQ(solver.stats().iterations_run, 0);
  EXPECT_EQ(solution.size, 0);
}

TEST(GraspTest, TimeLimitStopsIterationsEarly) {
  const Graph graph = RandomGnm(30, 120, 4).value();
  GraspOptions options;
  options.iterations = 10'000'000;
  options.time_limit_seconds = 1e-3;
  GraspSolver solver(options);
  const MkpSolution solution = solver.Solve(graph, 2).value();
  EXPECT_FALSE(solver.stats().completed);
  EXPECT_LT(solver.stats().iterations_run, options.iterations);
  EXPECT_TRUE(IsKPlexMask(AdjacencyMasks(graph), solution.mask, 2));
}

TEST(GraspTest, SameSeedSameResult) {
  // The local-search RNG tie-break must stay deterministic per seed.
  const Graph graph = RandomGnm(40, 200, 17).value();
  GraspOptions options;
  options.iterations = 32;
  options.seed = 99;
  GraspSolver first(options);
  GraspSolver second(options);
  const MkpSolution a = first.Solve(graph, 2).value();
  const MkpSolution b = second.Solve(graph, 2).value();
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.members, b.members);
}

// -- beyond 64 vertices (the multi-word kernel engine) ------------------------

TEST(BsSolverTest, SolvesBeyond64Vertices) {
  // Previously an InvalidArgument cliff; with the BitGraph engine BS must
  // recover at least the planted plex, and every answer must verify against
  // the bitset ground-truth predicate.
  const int n = 90;
  const int planted = 10;
  const int k = 2;
  const Graph graph = PlantedKPlex(n, planted, k, 0.05, 123).value();
  BsSolver solver;
  const MkpSolution solution = solver.Solve(graph, k).value();
  EXPECT_TRUE(solver.stats().completed);
  EXPECT_GE(solution.size, planted);
  EXPECT_EQ(static_cast<int>(solution.members.size()), solution.size);
  EXPECT_TRUE(IsKPlex(
      graph, VertexBitset::FromList(n, solution.members), k));
}

TEST(BsSolverTest, MatchesEnumerationAcrossWordBoundaryEmbedding) {
  // Embed a small instance in a 70-vertex graph (the extra vertices are
  // isolated): the optimum over the embedded component must be found by the
  // wide engine exactly as the mask engine finds it on the small graph.
  const Graph small = RandomGnm(12, 34, 9).value();
  Graph wide(70);
  for (const auto& [u, v] : small.Edges()) {
    wide.AddEdge(u, v);
  }
  for (int k = 1; k <= 2; ++k) {
    BsSolver small_solver;
    BsSolver wide_solver;
    const MkpSolution small_best = small_solver.Solve(small, k).value();
    const MkpSolution wide_best = wide_solver.Solve(wide, k).value();
    // Isolated vertices form a k-plex of size k by themselves; beyond that
    // the embedded component dominates.
    EXPECT_EQ(wide_best.size, std::max(small_best.size, k));
    EXPECT_TRUE(IsKPlex(
        wide, VertexBitset::FromList(70, wide_best.members), k));
  }
}

TEST(GraspTest, SolvesBeyond64Vertices) {
  const int n = 80;
  const int planted = 9;
  const int k = 2;
  const Graph graph = PlantedKPlex(n, planted, k, 0.05, 7).value();
  GraspOptions options;
  options.iterations = 64;
  GraspSolver solver(options);
  const MkpSolution solution = solver.Solve(graph, k).value();
  EXPECT_GE(solution.size, 3);
  EXPECT_EQ(static_cast<int>(solution.members.size()), solution.size);
  EXPECT_TRUE(IsKPlex(
      graph, VertexBitset::FromList(n, solution.members), k));
}

TEST(EnumerationTest, CountKPlexesStopsOnCancellation) {
  const Graph graph = RandomGnm(22, 80, 2).value();
  CancelToken cancel;
  cancel.Cancel();
  EnumerationControl control;
  control.cancel = &cancel;
  bool completed = true;
  control.completed = &completed;
  const std::int64_t partial =
      CountKPlexesOfSize(graph, 2, 1, control).value();
  EXPECT_FALSE(completed);
  // The poll fires within the first 0x1000 masks, so only a sliver of the
  // 2^22 space is counted.
  EXPECT_LE(partial, 0x1000);
}

TEST(EnumerationTest, CountKPlexesControlDefaultsComplete) {
  EnumerationControl control;
  bool completed = false;
  control.completed = &completed;
  EXPECT_EQ(CountKPlexesOfSize(PaperExampleGraph(), 2, 4, control).value(), 1);
  EXPECT_TRUE(completed);
}

}  // namespace
}  // namespace qplex
