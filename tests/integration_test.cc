// Cross-module integration tests: every solver in the repository must agree
// on the maximum k-plex of shared instances, and the umbrella header must be
// self-contained (this file includes only it).

#include <gtest/gtest.h>

#include "qplex/qplex.h"

namespace qplex {
namespace {

/// The grand cross-check: enumeration, BS, qMKP (gate model), SA / SQA /
/// hybrid over the QUBO, and MILP over the McCormick linearization all
/// solve the same instances.
class AllSolversTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllSolversTest, AgreeOnOptimalSize) {
  const std::uint64_t seed = GetParam();
  const int n = 8;
  const Graph graph = RandomGnm(n, 15, seed).value();
  const int k = 2;

  const int truth = SolveMkpByEnumeration(graph, k).value().size;

  // BS branch-and-search.
  BsSolver bs;
  EXPECT_EQ(bs.Solve(graph, k).value().size, truth) << "BS";

  // Gate model: qMKP over the literal oracle circuits.
  QtkpOptions gate_options;
  gate_options.seed = seed + 1;
  gate_options.max_attempts = 6;
  EXPECT_EQ(RunQmkp(graph, k, gate_options).value().best_size, truth)
      << "qMKP";

  // Annealing model: the QUBO's decoded/repaired optimum.
  const MkpQubo qubo = BuildMkpQubo(graph, k).value();
  HybridSolverOptions hybrid_options;
  hybrid_options.seed = seed + 2;
  hybrid_options.refine = [&qubo](QuboSample* sample) {
    qubo.ImproveSample(sample);
  };
  const AnnealResult hybrid =
      HybridSolver(hybrid_options).Run(qubo.model).value();
  EXPECT_NEAR(hybrid.best_energy, MkpQubo::CostOfPlexSize(truth), 1e-9)
      << "hybrid";
  EXPECT_EQ(static_cast<int>(qubo.RepairToPlex(hybrid.best_sample).size()),
            truth)
      << "hybrid decode";

  // MILP over the McCormick linearization.
  const LinearizedQubo linearized = LinearizeQubo(qubo.model);
  MilpSolverOptions milp_options;
  milp_options.incumbent_heuristic =
      MakeQuboRoundingHeuristic(qubo.model, linearized);
  const MilpSolution milp =
      MilpSolver(milp_options).Solve(linearized.milp).value();
  ASSERT_TRUE(milp.optimal) << "MILP";
  EXPECT_NEAR(milp.objective + linearized.offset,
              MkpQubo::CostOfPlexSize(truth), 1e-6)
      << "MILP objective";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllSolversTest,
                         ::testing::Values(11, 22, 33));

TEST(IntegrationTest, ReductionThenQmkpPipeline) {
  // The paper's Section V-B setup: core-truss co-pruning first, then qMKP on
  // the reduced instance, mapped back to original ids.
  const Graph graph = RandomGnm(14, 45, 4).value();
  const int k = 2;
  const int truth = SolveMkpByEnumeration(graph, k).value().size;

  // A greedy lower bound from BS's internals: reuse BS itself briefly.
  BsSolver bs;
  const int lower_bound = bs.Solve(graph, k).value().size;
  ASSERT_EQ(lower_bound, truth);

  const ReductionResult reduction = ReduceForTarget(graph, k, truth);
  ASSERT_GT(reduction.reduced.num_vertices(), 0);

  QtkpOptions options;
  options.backend = OracleBackend::kPredicate;
  options.seed = 3;
  options.max_attempts = 6;
  const QmkpResult result =
      RunQmkp(reduction.reduced, k, options).value();
  EXPECT_EQ(result.best_size, truth);

  // Map members back and verify against the original graph.
  VertexList original_members;
  for (Vertex v : result.best_plex) {
    original_members.push_back(reduction.new_to_old[v]);
  }
  EXPECT_TRUE(IsKPlex(graph,
                      VertexBitset::FromList(graph.num_vertices(),
                                             original_members),
                      k));
}

TEST(IntegrationTest, QuboOptimumMatchesGateModelOnPaperExample) {
  const Graph graph = PaperExampleGraph();
  QtkpOptions gate_options;
  gate_options.seed = 9;
  const QmkpResult gate = RunQmkp(graph, 2, gate_options).value();

  const MkpQubo qubo = BuildMkpQubo(graph, 2).value();
  SimulatedAnnealerOptions sa;
  sa.shots = 300;
  sa.sweeps_per_shot = 4;
  sa.seed = 10;
  const AnnealResult annealed = SimulatedAnnealer(sa).Run(qubo.model).value();

  EXPECT_EQ(gate.best_size, 4);
  EXPECT_NEAR(annealed.best_energy, -4.0, 1e-9);
  EXPECT_EQ(qubo.DecodeVertices(annealed.best_sample).size(), 4u);
}

TEST(IntegrationTest, CircuitOracleGroverMatchesTheoryEndToEnd) {
  // Build the literal oracle, compute its marked set, run Grover, and check
  // the amplitude against the closed-form at every step (Fig. 8's physics).
  const Graph graph = PaperExampleGraph();
  const MkpOracle oracle = MkpOracle::Build(graph, 2, 4).value();
  const auto marked = oracle.MarkedStates();
  ASSERT_EQ(marked.size(), 1u);
  GroverSimulation grover(6, marked);
  for (int step = 0; step <= 6; ++step) {
    EXPECT_NEAR(grover.SuccessProbability(),
                TheoreticalSuccessProbability(6, 1, step), 1e-9)
        << "step " << step;
    grover.Step();
  }
}

TEST(IntegrationTest, DatasetRegistryFeedsEverySolver) {
  const Graph graph = MakeDataset(GateModelDatasets()[0]).value();  // G_{7,8}
  BsSolver bs;
  const int truth = bs.Solve(graph, 2).value().size;
  EXPECT_EQ(truth, 4);  // the calibrated Table III value

  QtkpOptions options;
  options.seed = 21;
  options.max_attempts = 6;
  EXPECT_EQ(RunQmkp(graph, 2, options).value().best_size, truth);

  const MkpQubo qubo = BuildMkpQubo(graph, 2).value();
  HybridSolverOptions hybrid_options;
  hybrid_options.refine = [&qubo](QuboSample* sample) {
    qubo.ImproveSample(sample);
  };
  const AnnealResult annealed =
      HybridSolver(hybrid_options).Run(qubo.model).value();
  EXPECT_NEAR(annealed.best_energy, MkpQubo::CostOfPlexSize(truth), 1e-9);
}

}  // namespace
}  // namespace qplex
