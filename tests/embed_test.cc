#include <gtest/gtest.h>

#include "embed/clique_template.h"
#include "embed/hardware.h"
#include "embed/minor_embedding.h"
#include "graph/generators.h"
#include "qubo/mkp_qubo.h"

namespace qplex {
namespace {

TEST(ChimeraTest, CellStructure) {
  // C(1,1,4): one K_{4,4} cell -> 8 qubits, 16 couplers.
  const Graph cell = ChimeraGraph(1, 1, 4).value();
  EXPECT_EQ(cell.num_vertices(), 8);
  EXPECT_EQ(cell.num_edges(), 16);
  for (Vertex v = 0; v < 8; ++v) {
    EXPECT_EQ(cell.Degree(v), 4);
  }
}

TEST(ChimeraTest, GridCouplers) {
  // C(2,2,4): 32 qubits; 4 cells x 16 intra + 2x4 vertical + 2x4 horizontal.
  const Graph graph = ChimeraGraph(2, 2, 4).value();
  EXPECT_EQ(graph.num_vertices(), 32);
  EXPECT_EQ(graph.num_edges(), 4 * 16 + 8 + 8);
  // A vertical qubit in cell (0,0) couples to its twin in cell (1,0).
  EXPECT_TRUE(graph.HasEdge(ChimeraIndex(2, 2, 4, 0, 0, 0, 1),
                            ChimeraIndex(2, 2, 4, 1, 0, 0, 1)));
  EXPECT_FALSE(graph.HasEdge(ChimeraIndex(2, 2, 4, 0, 0, 0, 1),
                             ChimeraIndex(2, 2, 4, 1, 0, 0, 2)));
}

TEST(ChimeraTest, Validation) {
  EXPECT_FALSE(ChimeraGraph(0, 1, 4).ok());
  EXPECT_FALSE(ChimeraGraph(1, 1, 0).ok());
}

TEST(PegasusLikeTest, DenserThanChimera) {
  const Graph chimera = ChimeraGraph(4, 4, 4).value();
  const Graph pegasus = PegasusLikeGraph(4).value();
  EXPECT_EQ(pegasus.num_vertices(), chimera.num_vertices());
  EXPECT_GT(pegasus.num_edges(), chimera.num_edges());
  EXPECT_GT(pegasus.MaxDegree(), chimera.MaxDegree());
}

// -- minor embedding ------------------------------------------------------------

TEST(EmbeddingStatsTest, Aggregates) {
  Embedding embedding;
  embedding.chains = {{1, 2}, {3}, {4, 5, 6}};
  const EmbeddingStats stats = ComputeEmbeddingStats(embedding);
  EXPECT_EQ(stats.num_variables, 3);
  EXPECT_EQ(stats.num_physical_qubits, 6);
  EXPECT_EQ(stats.max_chain, 3);
  EXPECT_NEAR(stats.average_chain, 2.0, 1e-12);
}

TEST(ValidateEmbeddingTest, CatchesViolations) {
  const Graph logical = CompleteGraph(2);
  const Graph hardware = PathGraph(4);
  // Valid: chains {0,1} and {2} joined by edge (1,2).
  Embedding good;
  good.chains = {{0, 1}, {2}};
  EXPECT_TRUE(ValidateEmbedding(logical, hardware, good).ok());
  // Overlapping chains.
  Embedding overlap;
  overlap.chains = {{0, 1}, {1}};
  EXPECT_FALSE(ValidateEmbedding(logical, hardware, overlap).ok());
  // Disconnected chain.
  Embedding disconnected;
  disconnected.chains = {{0, 2}, {3}};
  EXPECT_FALSE(ValidateEmbedding(logical, hardware, disconnected).ok());
  // Uncovered logical edge.
  Embedding uncovered;
  uncovered.chains = {{0}, {3}};
  EXPECT_FALSE(ValidateEmbedding(logical, hardware, uncovered).ok());
  // Missing chain.
  Embedding missing;
  missing.chains = {{0}};
  EXPECT_FALSE(ValidateEmbedding(logical, hardware, missing).ok());
}

TEST(MinorEmbedderTest, TriangleIntoChimeraCell) {
  // K_3 cannot embed 1:1 into bipartite K_{4,4}; a chain of length 2 is
  // required. The heuristic must find a valid embedding.
  const Graph logical = CompleteGraph(3);
  const Graph hardware = ChimeraGraph(1, 1, 4).value();
  const Embedding embedding =
      MinorEmbedder().Embed(logical, hardware).value();
  EXPECT_TRUE(ValidateEmbedding(logical, hardware, embedding).ok());
  const EmbeddingStats stats = ComputeEmbeddingStats(embedding);
  EXPECT_GE(stats.num_physical_qubits, 4);  // at least one chain of 2
}

TEST(MinorEmbedderTest, K8IntoChimera2x2) {
  const Graph logical = CompleteGraph(8);
  const Graph hardware = ChimeraGraph(2, 2, 4).value();
  MinorEmbedderOptions options;
  options.max_passes = 12;
  const auto result = MinorEmbedder(options).Embed(logical, hardware);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(ValidateEmbedding(logical, hardware, result.value()).ok());
}

TEST(MinorEmbedderTest, RandomGraphsIntoChimera) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph logical = RandomGnm(12, 24, seed).value();
    const Graph hardware = ChimeraGraph(4, 4, 4).value();
    MinorEmbedderOptions options;
    options.seed = seed;
    const auto result = MinorEmbedder(options).Embed(logical, hardware);
    ASSERT_TRUE(result.ok()) << result.status() << " seed " << seed;
    EXPECT_TRUE(ValidateEmbedding(logical, hardware, result.value()).ok());
  }
}

TEST(MinorEmbedderTest, MkpQuboInteractionGraphEmbeds) {
  // End-to-end slice of the Fig. 12 pipeline: MKP QUBO -> interaction graph
  // -> chains on Pegasus-like hardware.
  const Graph graph = RandomGnm(10, 22, 6).value();
  const MkpQubo qubo = BuildMkpQubo(graph, 3).value();
  const Graph logical = qubo.model.InteractionGraph();
  const Graph hardware = PegasusLikeGraph(8).value();
  MinorEmbedderOptions options;
  options.max_passes = 40;
  const auto result = MinorEmbedder(options).Embed(logical, hardware);
  ASSERT_TRUE(result.ok()) << result.status();
  const EmbeddingStats stats = ComputeEmbeddingStats(result.value());
  EXPECT_EQ(stats.num_variables, qubo.num_variables());
  EXPECT_GE(stats.average_chain, 1.0);
}

TEST(MinorEmbedderTest, FailsOnHopelesslySmallHardware) {
  const Graph logical = CompleteGraph(10);
  const Graph hardware = PathGraph(5);
  EXPECT_FALSE(MinorEmbedder().Embed(logical, hardware).ok());
}

TEST(MinorEmbedderTest, EmptyLogicalGraph) {
  const Graph hardware = ChimeraGraph(1, 1, 2).value();
  const Embedding embedding =
      MinorEmbedder().Embed(Graph(0), hardware).value();
  EXPECT_TRUE(embedding.chains.empty());
}

// -- clique template ------------------------------------------------------------

class CliqueTemplateTest : public ::testing::TestWithParam<int> {};

TEST_P(CliqueTemplateTest, RealisesCompleteGraph) {
  const int n = GetParam();
  const int t = 4;
  const int m = (n + t - 1) / t;
  const Graph hardware = ChimeraGraph(m, m, t).value();
  const Embedding embedding = ChimeraCliqueTemplate(n, m, t).value();
  // The template must be a valid embedding of K_n (hence of ANY n-vertex
  // logical graph).
  EXPECT_TRUE(ValidateEmbedding(CompleteGraph(n), hardware, embedding).ok());
  const EmbeddingStats stats = ComputeEmbeddingStats(embedding);
  EXPECT_EQ(stats.num_variables, n);
  EXPECT_EQ(stats.max_chain, m + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CliqueTemplateTest,
                         ::testing::Values(1, 4, 7, 12, 16, 25, 36));

TEST(CliqueTemplateTest, CapacityBound) {
  EXPECT_EQ(ChimeraCliqueCapacity(4, 4), 16);
  EXPECT_FALSE(ChimeraCliqueTemplate(17, 4, 4).ok());
  EXPECT_FALSE(ChimeraCliqueTemplate(1, 0, 4).ok());
  EXPECT_TRUE(ChimeraCliqueTemplate(0, 2, 4).value().chains.empty());
}

TEST(CliqueTemplateTest, WorksOnPegasusLikeToo) {
  // Pegasus-like hardware is a Chimera superset, so the template stays valid.
  const Graph hardware = PegasusLikeGraph(3).value();
  const Embedding embedding = ChimeraCliqueTemplate(12, 3, 4).value();
  EXPECT_TRUE(ValidateEmbedding(CompleteGraph(12), hardware, embedding).ok());
}

TEST(MinorEmbedderTest, DisconnectedLogicalVariables) {
  // Variables with no quadratic terms still need (singleton) chains.
  Graph logical(4);
  logical.AddEdge(0, 1);
  const Graph hardware = ChimeraGraph(2, 2, 4).value();
  const Embedding embedding =
      MinorEmbedder().Embed(logical, hardware).value();
  EXPECT_TRUE(ValidateEmbedding(logical, hardware, embedding).ok());
  EXPECT_EQ(embedding.chains[2].size(), 1u);
  EXPECT_EQ(embedding.chains[3].size(), 1u);
}

}  // namespace
}  // namespace qplex
